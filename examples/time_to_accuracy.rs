//! Two-plane time-to-accuracy (the DAWNBench idea of §VIII-C, end to end).
//!
//! Run with: `cargo run --release --example time_to_accuracy`
//!
//! The data plane trains a real model to an accuracy target (steps needed is
//! a property of the optimization, identical for every synchronous engine);
//! the timing plane prices each step on a simulated cluster. The product is
//! wall-clock-to-accuracy — where the communication engine makes all the
//! difference.

use aiacc::prelude::*;
use aiacc::trainer::timeline::time_to_accuracy;

fn main() {
    let dp = DataParallelConfig::new(vec![8, 48, 4], 8, 16);
    let cluster = ClusterSpec::tcp_v100(32);
    let target = 0.9;

    println!("Training a real 8->48->4 MLP on 8 workers to {:.0}% accuracy,", target * 100.0);
    println!("priced as a VGG-16-sized communication footprint on 32 V100s / 30Gbps TCP:\n");
    println!("{:<14} {:>7} {:>14} {:>16}", "engine", "steps", "s per step", "wall-clock (s)");
    for (name, engine) in [
        ("aiacc", EngineKind::aiacc_default()),
        ("horovod", EngineKind::Horovod(Default::default())),
        ("pytorch-ddp", EngineKind::PyTorchDdp(Default::default())),
    ] {
        let t = time_to_accuracy(dp.clone(), target, 2000, cluster.clone(), zoo::vgg16(), engine);
        println!("{:<14} {:>7} {:>14.4} {:>16.2}", name, t.steps, t.secs_per_step, t.total_secs);
    }
    println!("\nSame convergence, different wall-clock: communication is the whole story. ✓");
}
