//! Quickstart: simulate AIACC-Training vs Horovod on one workload.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! Trains (in simulation) ResNet-50 on 4 nodes × 8 V100 GPUs connected by a
//! 30 Gbps VPC TCP network — the paper's evaluation platform (§VII-A) — and
//! prints throughput for AIACC-Training and Horovod side by side. The AIACC
//! run is traced: a Chrome-trace JSON is written next to the binary's temp
//! dir so the per-stream lanes (Fig. 7b) can be inspected in Perfetto.

use aiacc::prelude::*;

fn main() {
    let gpus = 32;
    let model = zoo::resnet50();
    println!(
        "Simulating {} ({:.1}M params, {} gradient tensors) on {gpus} V100s / 30Gbps TCP\n",
        model.name(),
        model.num_params() as f64 / 1e6,
        model.num_gradients(),
    );

    let run = |engine: EngineKind| -> ThroughputReport {
        run_training_sim(
            TrainingSimConfig::new(ClusterSpec::tcp_v100(gpus), model.clone(), engine)
                .with_iterations(2, 3),
        )
    };

    let single = run_training_sim(TrainingSimConfig::new(
        ClusterSpec::tcp_v100(1),
        model.clone(),
        EngineKind::aiacc_default(),
    ));
    println!("single GPU reference : {:8.0} images/s", single.samples_per_sec);

    let aiacc = run(EngineKind::aiacc_default());
    let horovod = run(EngineKind::Horovod(Default::default()));

    for r in [&aiacc, &horovod] {
        println!(
            "{:<21}: {:8.0} images/s  (scaling efficiency {:.1}%)",
            r.engine,
            r.samples_per_sec,
            100.0 * scaling_efficiency(&single, r),
        );
    }
    println!("\nAIACC-Training speedup over Horovod: {:.2}x", speedup(&aiacc, &horovod));
    println!("(the paper reports 1.3x on ResNet-50 at 32 GPUs, growing with scale — §III)");

    // Re-run one traced AIACC iteration and export the communication
    // timeline: every gradient unit appears as a span on its stream's lane.
    let mut traced = TrainingSim::new(
        TrainingSimConfig::new(ClusterSpec::tcp_v100(gpus), model, EngineKind::aiacc_default())
            .with_trace(true),
    );
    let _ = traced.run_iteration(); // warm-up
    let _ = traced.run_iteration_detailed();
    let s = traced.trace().summary();
    let path = std::env::temp_dir().join("aiacc_quickstart_trace.json");
    std::fs::write(&path, traced.trace().to_chrome_json()).expect("write trace");
    println!(
        "\ntraced one AIACC iteration: {} stream lanes, {:.0}% comm overlap -> {}",
        s.stream_lanes,
        s.overlap_fraction * 100.0,
        path.display(),
    );
    println!("(open it in chrome://tracing or https://ui.perfetto.dev)");
}
