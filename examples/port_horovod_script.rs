//! The §IV source-to-source porting tool in action.
//!
//! Run with: `cargo run --release --example port_horovod_script`
//!
//! Shows both porting paths: the one-line Horovod → Perseus import swap,
//! and the full conversion of a sequential single-GPU script into a
//! distributed one.

use aiacc::core::translate::{translate_pytorch, ScriptKind};

const HOROVOD_SCRIPT: &str = r#"import torch
import horovod.torch as hvd

hvd.init()
torch.cuda.set_device(hvd.local_rank())
model = torchvision.models.resnet50()
optimizer = torch.optim.SGD(model.parameters(), lr=0.0125 * hvd.size())
optimizer = hvd.DistributedOptimizer(optimizer)
"#;

const SEQUENTIAL_SCRIPT: &str = r#"import torch
model = torchvision.models.resnet50().cuda()
optimizer = torch.optim.SGD(model.parameters(), lr=0.1, momentum=0.9)
loader = DataLoader(dataset, batch_size=64, shuffle=True)
for epoch in range(90):
    for x, y in loader:
        loss = criterion(model(x.cuda()), y.cuda())
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
"#;

fn show(title: &str, source: &str) {
    println!("=== {title} ===");
    let t = translate_pytorch(source);
    println!("detected: {:?}\n", t.kind);
    for e in &t.edits {
        println!("  line {:>2}: {}", e.line, e.what);
    }
    println!("\n--- ported source ---\n{}", t.source);
}

fn main() {
    show("Horovod program (one-line port)", HOROVOD_SCRIPT);
    show("Sequential program (full conversion)", SEQUENTIAL_SCRIPT);

    // Idempotence: porting a ported script changes nothing.
    let once = translate_pytorch(SEQUENTIAL_SCRIPT);
    let twice = translate_pytorch(&once.source);
    assert_eq!(twice.kind, ScriptKind::Perseus);
    assert!(twice.edits.is_empty());
    println!("porting is idempotent: a ported script is left untouched. ✓");
}
