//! Anatomy of the multi-stream win (§III, Fig. 7).
//!
//! Run with: `cargo run --release --example bandwidth_anatomy`
//!
//! Shows, at the network level, why a single communication stream wastes a
//! VPC TCP link and how concurrent all-reduce rings recover the bandwidth —
//! the core observation AIACC-Training is built on.

use aiacc::prelude::*;

fn main() {
    println!("30 Gbps TCP NIC, single-flow cap 30% (measured in §III)\n");
    println!("{:>8} {:>13} {:>15}", "streams", "utilization", "effective Gbps");
    for streams in [1usize, 2, 3, 4, 6, 8, 12] {
        let mut sim = Simulator::new();
        let cluster = ClusterNet::build(&ClusterSpec::tcp_v100(16), sim.net_mut());
        for i in 0..streams {
            sim.start_flow(cluster.path(i % 8, 8 + (i % 8)).flow(1e12));
        }
        sim.net_mut().advance_to(SimTime::from_secs_f64(0.001));
        let util = sim.net_mut().utilization(cluster.node_tx_resource(0));
        println!("{streams:>8} {:>12.0}% {:>15.1}", util * 100.0, util * 30.0);
    }

    println!("\nEnd-to-end effect on one 100 MB all-reduce across 2 nodes:");
    for n in [1usize, 4, 8] {
        let mut sim = Simulator::new();
        let cluster = ClusterNet::build(&ClusterSpec::tcp_v100(16), sim.net_mut());
        let mut eng = CollectiveEngine::new();
        // n concurrent rings each carrying 1/n of the data (AIACC's unit
        // packing splits the volume across streams).
        for _ in 0..n {
            eng.launch(
                &mut sim,
                &cluster,
                CollectiveSpec::allreduce(1e8 / n as f64).with_mode(RingMode::Coarse),
            );
        }
        let mut t_done = 0.0;
        while let Some((t, ev)) = sim.next_event() {
            if let Event::FlowCompleted(f) = ev {
                if eng.on_flow_completed(&mut sim, f).is_some() {
                    t_done = t.as_secs_f64();
                }
            }
        }
        println!("  {n:>2} concurrent ring(s): {:.0} ms", t_done * 1e3);
    }
    println!("\nMore streams -> the same bytes move in a fraction of the time. ✓");
}
