//! Scaling sweep: reproduce the shape of Fig. 9 for one model.
//!
//! Run with: `cargo run --release --example scaling_sweep [model]`
//! (models: vgg16 | resnet50 | resnet101 | transformer | bert_large)
//!
//! Sweeps 1 → 64 GPUs and prints the throughput of all four competing
//! methods (§VII-C) plus AIACC's scaling efficiency.

use aiacc::prelude::*;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "vgg16".to_string());
    let Some(model) = zoo::by_name(&name) else {
        eprintln!(
            "unknown model {name}; try vgg16 / resnet50 / resnet101 / transformer / bert_large"
        );
        std::process::exit(2);
    };

    let engines: Vec<(&str, EngineKind)> = vec![
        ("aiacc", EngineKind::aiacc_default()),
        ("horovod", EngineKind::Horovod(Default::default())),
        ("pytorch-ddp", EngineKind::PyTorchDdp(Default::default())),
        ("byteps", EngineKind::BytePs(Default::default())),
    ];

    println!(
        "{} — batch {}/GPU, 30Gbps TCP, 8xV100 nodes",
        model.name(),
        model.default_batch_per_gpu()
    );
    print!("{:>6}", "gpus");
    for (n, _) in &engines {
        print!("{n:>14}");
    }
    println!("{:>10}", "aiacc eff");

    let single = run_training_sim(TrainingSimConfig::new(
        ClusterSpec::tcp_v100(1),
        model.clone(),
        engines[0].1,
    ));
    for gpus in [1usize, 2, 4, 8, 16, 32, 64] {
        print!("{gpus:>6}");
        let mut aiacc_eff = 1.0;
        for (i, (_, e)) in engines.iter().enumerate() {
            let r = run_training_sim(
                TrainingSimConfig::new(ClusterSpec::tcp_v100(gpus), model.clone(), *e)
                    .with_iterations(1, 2),
            );
            print!("{:>14.0}", r.samples_per_sec);
            if i == 0 && gpus > 1 {
                aiacc_eff = scaling_efficiency(&single, &r);
            }
        }
        println!("{aiacc_eff:>10.3}");
    }
}
