//! Real data-parallel training through the exact collectives.
//!
//! Run with: `cargo run --release --example real_data_parallel`
//!
//! This is the *data plane*: a real MLP trained across 8 simulated workers.
//! Gradients are computed by real backprop, packed into all-reduce units,
//! pushed through the exact chunk-level ring all-reduce (Fig. 1), averaged,
//! and applied — then the distributed run is checked against single-worker
//! large-batch training, step for step.

use aiacc::prelude::*;

fn main() {
    let world = 8;
    let batch = 16;
    println!("Training a real MLP on {world} workers (batch {batch}/worker)...\n");

    let mut distributed =
        DataParallelTrainer::new(DataParallelConfig::new(vec![8, 64, 32, 4], world, batch));
    let mut single =
        DataParallelTrainer::new(DataParallelConfig::new(vec![8, 64, 32, 4], 1, world * batch));

    for step in 0..100u32 {
        let l_multi = distributed.step();
        let l_single = single.step();
        if step % 20 == 0 {
            println!(
                "step {step:>3}: distributed loss {l_multi:.4}   single-worker loss {l_single:.4}"
            );
        }
    }

    // The invariant data parallelism rests on:
    let a = distributed.model().params_flat();
    let b = single.model().params_flat();
    let max_diff = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).fold(0.0f32, f32::max);
    println!("\nmax parameter difference distributed vs single-worker: {max_diff:.2e}");
    assert!(max_diff < 1e-3, "data-parallel training diverged from the reference");

    let test = Dataset::gaussian_blobs(2000, 8, 4, 9999);
    println!("test accuracy: {:.1}%", 100.0 * distributed.accuracy(&test));
    println!("\nDistributed and single-worker training are numerically equivalent. ✓");
}
