//! Fault tolerance and elastic deployment (§IV).
//!
//! Run with: `cargo run --release --example fault_tolerance`
//!
//! Demonstrates the production features AIACC-Training ships beyond raw
//! communication speed: checkpoint/restart after a (simulated) node
//! failure, elastic scale-out that propagates parameters to new nodes, and
//! the NaN gradient inspector.

use aiacc::optim::debug::find_non_finite;
use aiacc::prelude::*;

fn main() {
    // --- Checkpoint / restart -------------------------------------------
    println!("=== fault tolerance: checkpoint + restart ===");
    let mut job = DataParallelTrainer::new(DataParallelConfig::new(vec![6, 32, 3], 4, 8));
    job.train(40);
    let ckpt = job.checkpoint();
    println!("checkpointed at step {}", job.step_count());

    // "Node failure": the job object is dropped; a new one restarts from
    // the checkpoint and must continue bit-identically.
    let survivor_losses: Vec<f64> = (0..5).map(|_| job.step()).collect();
    drop(job);
    let mut restarted = DataParallelTrainer::restore(ckpt);
    let replay_losses: Vec<f64> = (0..5).map(|_| restarted.step()).collect();
    assert_eq!(survivor_losses, replay_losses);
    println!("restart replays identically: {replay_losses:?}\n");

    // --- Elastic scale-out ----------------------------------------------
    println!("=== elastic deployment: 4 -> 8 workers ===");
    restarted.scale_out(4);
    println!("scaled out to {} workers; parameters broadcast to newcomers", 8);
    restarted.train(20);
    let test = Dataset::gaussian_blobs(1000, 6, 3, 4242);
    println!("accuracy after elastic training: {:.1}%\n", 100.0 * restarted.accuracy(&test));

    // --- NaN debugging -----------------------------------------------------
    println!("=== NaN gradient inspector ===");
    let grads = vec![
        (aiacc::dnn::GradId(0), "conv1.weight".to_string(), vec![0.1, -0.2, 0.3]),
        (aiacc::dnn::GradId(1), "fc.weight".to_string(), vec![1.0, f32::NAN, 2.0]),
        (aiacc::dnn::GradId(2), "fc.bias".to_string(), vec![f32::INFINITY]),
    ];
    for report in find_non_finite(&grads, 10) {
        println!("non-finite gradient: {report}");
    }
    println!("\nAll production features exercised. ✓");
}
