//! Fault tolerance and elastic deployment (§IV).
//!
//! Run with: `cargo run --release --example fault_tolerance`
//!
//! Demonstrates the production features AIACC-Training ships beyond raw
//! communication speed: checkpoint/restart after a (simulated) node
//! failure, elastic scale-out that propagates parameters to new nodes,
//! deterministic fault injection into a live training simulation, and the
//! NaN gradient inspector.

use aiacc::optim::debug::find_non_finite;
use aiacc::prelude::*;
use aiacc::simnet::FaultPlan;
use aiacc::trainer::recovery::{replay_failure_recovery, RecoveryConfig};

fn main() {
    // --- Checkpoint / restart -------------------------------------------
    println!("=== fault tolerance: checkpoint + restart ===");
    let mut job = DataParallelTrainer::new(DataParallelConfig::new(vec![6, 32, 3], 4, 8));
    job.train(40);
    let ckpt = job.checkpoint();
    println!("checkpointed at step {}", job.step_count());

    // "Node failure": the job object is dropped; a new one restarts from
    // the checkpoint and must continue bit-identically.
    let survivor_losses: Vec<f64> = (0..5).map(|_| job.step()).collect();
    drop(job);
    let mut restarted = DataParallelTrainer::restore(ckpt);
    let replay_losses: Vec<f64> = (0..5).map(|_| restarted.step()).collect();
    assert_eq!(survivor_losses, replay_losses);
    println!("restart replays identically: {replay_losses:?}\n");

    // --- Elastic scale-out ----------------------------------------------
    println!("=== elastic deployment: 4 -> 8 workers ===");
    restarted.scale_out(4);
    println!("scaled out to {} workers; parameters broadcast to newcomers", 8);
    restarted.train(20);
    let test = Dataset::gaussian_blobs(1000, 6, 3, 4242);
    println!("accuracy after elastic training: {:.1}%\n", 100.0 * restarted.accuracy(&test));

    // --- Fault injection into a live training simulation ----------------
    println!("=== fault injection: degrade + flap + crash on ResNet-50 @ 16 GPUs ===");
    // Node 0's NIC runs at 60% for a second, node 1's NIC flaps dark for
    // 80 ms mid-iteration, and node 1 crashes outright at t = 1 s.
    let plan = FaultPlan::new()
        .degrade_node(0, 0.6, SimTime::from_secs_f64(0.1), Some(SimDuration::from_secs_f64(1.0)))
        .with_event(aiacc::simnet::FaultEvent {
            target: aiacc::simnet::FaultTarget::Node(1),
            kind: aiacc::simnet::FaultKind::Flap,
            at: SimTime::from_secs_f64(0.3),
            duration: Some(SimDuration::from_secs_f64(0.08)),
        })
        .crash_node(1, SimTime::from_secs_f64(1.0));
    let engine = EngineKind::Aiacc(
        AiaccConfig::default().with_stall_timeout(SimDuration::from_secs_f64(0.5)),
    );
    let mut sim = TrainingSim::new(
        TrainingSimConfig::new(ClusterSpec::tcp_v100(16), zoo::resnet50(), engine)
            .with_faults(plan),
    );
    for i in 0..5 {
        let d = sim.run_iteration_detailed();
        print!("iter {i}: {:.0} ms", d.iter_secs * 1e3);
        if d.fault_impacted() {
            print!(
                "  [{} fault event(s), {} crash(es), {:.1} s recovery]",
                d.fault_events, d.crashes, d.recovery_secs
            );
        }
        println!();
    }
    // The crash's pause is the replayed checkpoint restart — the same number
    // the closed-form model predicts.
    let replay = replay_failure_recovery(
        &ClusterSpec::tcp_v100(16),
        &zoo::resnet50(),
        RecoveryConfig::default(),
    );
    println!(
        "crash pause = replayed restart: {:.2} s ({:.0} s overhead + {:.2} s re-reading checkpoints)\n",
        replay.total_secs, replay.overhead_secs, replay.transfer_secs
    );

    // --- NaN debugging -----------------------------------------------------
    println!("=== NaN gradient inspector ===");
    let grads = vec![
        (aiacc::dnn::GradId(0), "conv1.weight".to_string(), vec![0.1, -0.2, 0.3]),
        (aiacc::dnn::GradId(1), "fc.weight".to_string(), vec![1.0, f32::NAN, 2.0]),
        (aiacc::dnn::GradId(2), "fc.bias".to_string(), vec![f32::INFINITY]),
    ];
    for report in find_non_finite(&grads, 10) {
        println!("non-finite gradient: {report}");
    }
    println!("\nAll production features exercised. ✓");
}
