//! The §VI auto-tuner in action.
//!
//! Run with: `cargo run --release --example autotune_demo`
//!
//! Tunes AIACC's communication hyper-parameters (stream count, all-reduce
//! unit granularity, ring vs tree) for BERT-Large on 4 nodes, using the
//! multi-armed-bandit meta solver over grid search, PBT, Bayesian
//! optimization and Hyperband — then shows the warm-start cache kicking in
//! for a second, similar deployment.

use aiacc::autotune::cache::TuningCache;
use aiacc::prelude::*;
use aiacc::trainer::tune::tune_aiacc;

fn main() {
    let model = zoo::bert_large();
    let cluster = ClusterSpec::tcp_v100(32);
    let cache = TuningCache::new();

    println!("Tuning {} on 32 V100s (budget: 40 warm-up iterations)...\n", model.name());
    let (cfg, report) = tune_aiacc(&model, &cluster, 40, 7, Some(&cache));

    println!("technique usage (chosen by the sliding-window AUC bandit):");
    for (name, uses) in &report.usage {
        println!("  {name:<12} {uses:>3} evaluations");
    }
    println!(
        "\nbest configuration: {} streams, {:.0} MiB units, {:?}  ({:.4}s / iteration)",
        cfg.streams,
        cfg.granularity / (1024.0 * 1024.0),
        cfg.algo,
        report.best_value,
    );

    // A second deployment of the same model on a similar cluster warm-starts
    // from the cached winner (§VI: graph-edit-distance similarity).
    println!("\nRe-tuning on a similar deployment (same model, 64 GPUs)...");
    let (cfg2, report2) = tune_aiacc(&model, &ClusterSpec::tcp_v100(64), 15, 8, Some(&cache));
    println!("first evaluation came from: {:?} (warm start)", report2.evaluations[0].searcher);
    println!(
        "tuned: {} streams, {:.0} MiB, {:?}",
        cfg2.streams,
        cfg2.granularity / (1024.0 * 1024.0),
        cfg2.algo
    );

    // Compare tuned vs untuned single-stream.
    let tuned = run_training_sim(
        TrainingSimConfig::new(cluster.clone(), model.clone(), EngineKind::Aiacc(cfg))
            .with_iterations(1, 2),
    );
    let naive = run_training_sim(
        TrainingSimConfig::new(
            cluster,
            model,
            EngineKind::Aiacc(AiaccConfig::default().with_streams(1)),
        )
        .with_iterations(1, 2),
    );
    println!(
        "\ntuned: {:.0} seq/s   single-stream: {:.0} seq/s   ({:.2}x from tuning)",
        tuned.samples_per_sec,
        naive.samples_per_sec,
        tuned.samples_per_sec / naive.samples_per_sec
    );
}
