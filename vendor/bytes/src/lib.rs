//! Offline stub of `bytes`.
//!
//! Implements the `Buf`/`BufMut`/`Bytes`/`BytesMut` surface the workspace
//! wire format uses, over plain `Vec<u8>` (no refcounted slices — `Bytes`
//! clones copy, which is fine for test-sized frames). Multi-byte integer
//! accessors default to big-endian with explicit `_le` variants, matching
//! upstream.

use std::ops::Deref;

/// An immutable byte buffer (owned; clones copy in this stub).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies `data` into an owned buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: data.to_vec() }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Write-side buffer operations (stub of `bytes::BufMut`).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a big-endian `f32`.
    fn put_f32(&mut self, v: f32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read-side buffer operations (stub of `bytes::Buf`).
///
/// The `get_*` methods panic when the buffer is too short, matching
/// upstream; callers check [`Buf::remaining`] first.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Copies exactly `dst.len()` bytes out.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a big-endian `f32`.
    fn get_f32(&mut self) -> f32 {
        f32::from_bits(self.get_u32())
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        f32::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endianness_matches_upstream_defaults() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u16(0x0102);
        buf.put_u16_le(0x0102);
        let frozen = buf.freeze();
        assert_eq!(&frozen[..], &[0x01, 0x02, 0x02, 0x01]);

        let mut rd: &[u8] = &frozen;
        assert_eq!(rd.get_u16(), 0x0102);
        assert_eq!(rd.get_u16_le(), 0x0102);
        assert_eq!(rd.remaining(), 0);
    }

    #[test]
    fn f32_le_roundtrip() {
        let mut buf = BytesMut::new();
        buf.put_f32_le(-2.5);
        let frozen = buf.freeze();
        let mut rd: &[u8] = &frozen;
        assert_eq!(rd.get_f32_le(), -2.5);
    }
}
