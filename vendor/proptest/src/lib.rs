//! Offline stub of `proptest`.
//!
//! Implements the subset of the proptest API the workspace's property
//! tests use: the `proptest!` / `prop_assert!` / `prop_assert_eq!` macros,
//! the [`strategy::Strategy`] trait with `prop_map`/`prop_flat_map`, range
//! and tuple strategies, `prop::collection::vec`, `prop::option::of`,
//! `any::<T>()`, and `ProptestConfig::with_cases`.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! case index and message only), and the default case count is 64. Each
//! case's RNG is seeded deterministically from the test's module path and
//! case index, so failures reproduce exactly across runs.

use std::fmt;

pub mod rng {
    //! Deterministic per-case random number generation.

    /// SplitMix64 generator seeding each test case deterministically.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates the RNG for `(test name, case index)`.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            // FNV-1a over the test name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h ^ ((case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)) }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform index in `[0, n)`; `n` must be positive.
        pub fn next_index(&mut self, n: usize) -> usize {
            assert!(n > 0, "cannot sample an empty domain");
            (self.next_u64() % n as u64) as usize
        }
    }
}

/// A failed test case (stub of `proptest::test_runner::TestCaseError`).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure carrying `message`.
    pub fn fail(message: String) -> Self {
        TestCaseError { message }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

pub mod config {
    //! Test-runner configuration.

    /// Controls how many random cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::rng::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Generates random values of `Self::Value`.
    ///
    /// Unlike upstream there is no value tree / shrinking: `generate`
    /// produces the final value directly.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { source: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.source.generate(rng)).generate(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty integer range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty float range strategy");
                    self.start + (rng.next_f64() as $t) * (self.end - self.start)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty float range strategy");
                    lo + (rng.next_f64() as $t) * (hi - lo)
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, G);
}

pub mod collection {
    //! Collection strategies.

    use crate::rng::TestRng;
    use crate::strategy::Strategy;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max_inclusive: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max_inclusive: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { min: *r.start(), max_inclusive: *r.end() }
        }
    }

    /// Strategy for `Vec<S::Value>` with length in a [`SizeRange`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.max_inclusive - self.size.min + 1;
            let len = self.size.min + rng.next_index(span.max(1)).min(span - 1);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec`: vectors of `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::rng::TestRng;
    use crate::strategy::Strategy;

    /// Strategy yielding `None` some of the time, else `Some(inner)`.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Some ~75% of the time, mirroring upstream's default weighting.
            if rng.next_index(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// `prop::option::of`: optional values of `inner`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod arbitrary {
    //! `any::<T>()` support.

    use crate::rng::TestRng;
    use crate::strategy::Strategy;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.next_f64()
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            rng.next_f64() as f32
        }
    }

    /// Strategy form of [`Arbitrary`].
    #[derive(Debug)]
    pub struct AnyStrategy<A> {
        _marker: PhantomData<A>,
    }

    impl<A: Arbitrary> Strategy for AnyStrategy<A> {
        type Value = A;
        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// `any::<T>()`: the full-domain strategy for `T`.
    pub fn any<A: Arbitrary>() -> AnyStrategy<A> {
        AnyStrategy { _marker: PhantomData }
    }
}

/// The usual imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::config::ProptestConfig;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespaced strategy constructors (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Defines property tests. See the crate docs for supported forms.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { ($crate::config::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::config::ProptestConfig = $cfg;
            let test_name = concat!(module_path!(), "::", stringify!($name));
            for case in 0..config.cases {
                let mut rng = $crate::rng::TestRng::for_case(test_name, case);
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                )+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (move || {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {case}/{total} of {name} failed: {e}",
                        case = case,
                        total = config.cases,
                        name = test_name,
                        e = e
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Asserts inside a `proptest!` body, failing the case without panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                l,
                r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                l, r
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs(xs in prop::collection::vec(0u64..100, 1..10), f in -1.0f64..1.0) {
            prop_assert!(!xs.is_empty() && xs.len() < 10);
            prop_assert!(xs.iter().all(|&x| x < 100));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn maps_and_tuples(v in (1usize..5, 0u32..7).prop_map(|(a, b)| a + b as usize)) {
            prop_assert!(v < 12, "v was {}", v);
        }

        #[test]
        fn flat_map_and_option(
            nested in (1usize..4).prop_flat_map(|n| prop::collection::vec(0i32..10, n..=n)),
            opt in prop::option::of(0u8..3),
        ) {
            prop_assert!(!nested.is_empty());
            if let Some(x) = opt {
                prop_assert!(x < 3);
            }
            prop_assert_eq!(nested.len(), nested.len());
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::rng::TestRng::for_case("t", 3);
        let mut b = crate::rng::TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
