//! Offline stub of `parking_lot`.
//!
//! `RwLock`/`Mutex` with parking_lot's no-poison API, implemented over the
//! std locks (poison is surfaced as a panic, matching parking_lot's
//! practical behavior for workloads that never poison).

use std::sync;

/// Reader-writer lock with `parking_lot`'s panic-free guard API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared read guard.
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive write guard.
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock around `value`.
    pub fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().expect("poisoned RwLock")
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().expect("poisoned RwLock")
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().expect("poisoned RwLock")
    }
}

/// Mutex with `parking_lot`'s panic-free guard API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Mutex guard.
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex around `value`.
    pub fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().expect("poisoned Mutex")
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().expect("poisoned Mutex")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }
}
