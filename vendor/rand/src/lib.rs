//! Offline stub of `rand`.
//!
//! Provides the subset of the `rand` 0.10 API the workspace uses —
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `RngExt::{random, random_range}` — backed by SplitMix64. The stream is
//! deterministic per seed (which is all the callers rely on) but does not
//! match upstream `rand` output bit-for-bit.

use std::ops::{Range, RangeInclusive};

/// A seedable random number generator (stub of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Low-level generator interface (stub of `rand::RngCore`).
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Concrete generators.
pub mod rngs {
    /// The standard generator: SplitMix64 in this stub.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng { state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15) }
    }
}

impl RngCore for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        // SplitMix64 (Steele, Lea, Flood 2014) — passes BigCrush, tiny state.
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Types samplable uniformly over their full "standard" domain
/// (`[0, 1)` for floats, the whole range for integers and `bool`).
pub trait StandardSample: Sized {
    /// Draws one standard sample.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a value of type `T` can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u: $t = StandardSample::standard_sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u: $t = StandardSample::standard_sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
range_float!(f32, f64);

/// Convenience sampling methods (stub of rand 0.10's `Rng`/`RngExt`).
pub trait RngExt: RngCore {
    /// Draws a standard sample (uniform in `[0, 1)` for floats).
    fn random<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&x));
            let n: usize = rng.random_range(3..9);
            assert!((3..9).contains(&n));
            let i: i64 = rng.random_range(-5..=5);
            assert!((-5..=5).contains(&i));
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
