//! Offline stub of `criterion`.
//!
//! Provides the macro + builder surface the workspace benchmarks use.
//! Instead of statistical sampling, each benchmark closure is timed over a
//! small fixed number of iterations and the mean wall time is printed —
//! enough to eyeball regressions and to keep `cargo bench` compiling and
//! running without the real crate's dependency tree.

use std::time::Instant;

const ITERS: u32 = 10;

/// How batched inputs are grouped (accepted, ignored by the stub).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Passed to benchmark closures; runs and times the measured routine.
#[derive(Debug, Default)]
pub struct Bencher {
    nanos_per_iter: f64,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..ITERS {
            std::hint::black_box(routine());
        }
        self.nanos_per_iter = start.elapsed().as_nanos() as f64 / ITERS as f64;
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup cost.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = 0u128;
        for _ in 0..ITERS {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed().as_nanos();
        }
        self.nanos_per_iter = total as f64 / ITERS as f64;
    }
}

fn report(id: &str, nanos: f64) {
    if nanos >= 1e6 {
        println!("bench {id:<50} {:>12.3} ms/iter", nanos / 1e6);
    } else {
        println!("bench {id:<50} {:>12.1} ns/iter", nanos);
    }
}

/// Benchmark registry (stub of `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        report(id, b.nanos_per_iter);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.to_string() }
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the stub's iteration count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        report(&format!("{}/{}", self.name, id), b.nanos_per_iter);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Under `cargo test` non-harness bench binaries are executed for
            // a smoke check; skip the timed run to keep the suite fast.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        c.bench_function("stub/self_test", |b| b.iter(|| ran += 1));
        assert!(ran >= 1);
    }

    #[test]
    fn groups_run_and_finish() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(5);
        g.bench_function("x", |b| b.iter_batched(|| 3u64, |v| v * 2, BatchSize::SmallInput));
        g.finish();
    }
}
