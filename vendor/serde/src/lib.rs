//! Offline stub of `serde`.
//!
//! The workspace builds in a network-isolated environment; no code path
//! actually serializes (there is no `serde_json`/`bincode` in the tree),
//! so `Serialize`/`Deserialize` only need to exist as names for the
//! `#[derive(...)]` attributes to resolve. The derives (re-exported from
//! the stub `serde_derive`) expand to nothing.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
