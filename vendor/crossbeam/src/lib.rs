//! Offline stub of `crossbeam`.
//!
//! Only the `channel` module is provided, layered over `std::sync::mpsc`.
//! Unlike real crossbeam the receiver is single-consumer, which is all the
//! workspace needs (one coordinator thread drains each receiver).

/// Multi-producer channels (stub of `crossbeam::channel`).
pub mod channel {
    use std::fmt;
    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    enum SenderInner<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    /// The sending half of a channel. Cloneable.
    pub struct Sender<T> {
        inner: SenderInner<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let inner = match &self.inner {
                SenderInner::Unbounded(s) => SenderInner::Unbounded(s.clone()),
                SenderInner::Bounded(s) => SenderInner::Bounded(s.clone()),
            };
            Sender { inner }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Sends `msg`, blocking if the channel is bounded and full.
        ///
        /// # Errors
        /// Returns the message if the receiving side has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            match &self.inner {
                SenderInner::Unbounded(s) => s.send(msg).map_err(|e| SendError(e.0)),
                SenderInner::Bounded(s) => s.send(msg).map_err(|e| SendError(e.0)),
            }
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives.
        ///
        /// # Errors
        /// Fails once every sender has been dropped and the queue is empty.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive; `None`-shaped errors map to `Err`.
        ///
        /// # Errors
        /// Fails if the queue is currently empty or disconnected.
        pub fn try_recv(&self) -> Result<T, RecvError> {
            self.inner.try_recv().map_err(|_| RecvError)
        }

        /// Iterates over messages until the channel disconnects.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.inner.iter()
        }
    }

    /// Creates a channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: SenderInner::Unbounded(tx) }, Receiver { inner: rx })
    }

    /// Creates a channel holding at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender { inner: SenderInner::Bounded(tx) }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_roundtrip_and_disconnect() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            tx2.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            drop(tx);
            drop(tx2);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn bounded_reply_channel() {
            let (tx, rx) = bounded(1);
            tx.send("ok").unwrap();
            assert_eq!(rx.recv(), Ok("ok"));
        }
    }
}
