//! Offline stub of `serde_derive`.
//!
//! This workspace builds in a network-isolated environment, so the real
//! `serde_derive` (and its `syn`/`quote` dependency tree) is unavailable.
//! Nothing in the workspace serializes through serde at runtime — the
//! derives are only used as markers on config/spec types — so the derive
//! macros here expand to an empty token stream. If real serialization is
//! ever needed, swap this stub for the upstream crate.

use proc_macro::TokenStream;

/// Stub `#[derive(Serialize)]`: expands to nothing. Registers the `serde`
/// helper attribute so field annotations like `#[serde(default)]` parse.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Stub `#[derive(Deserialize)]`: expands to nothing. Registers the `serde`
/// helper attribute so field annotations like `#[serde(default)]` parse.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
