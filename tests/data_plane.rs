//! Cross-crate numerical integration: real gradients through the exact
//! collectives, optimizers, and compression.

use aiacc::optim::schedule::{LinearDecay, LrSchedule, StepDecay};
use aiacc::prelude::*;

#[test]
fn perseus_allreduce_equals_manual_average() {
    let layout = vec![("w".to_string(), 64usize), ("b".to_string(), 8)];
    let p = Perseus::new(&layout, PerseusConfig::new(5));
    let grads: Vec<Vec<Vec<f32>>> = (0..5)
        .map(|w| {
            vec![
                (0..64).map(|i| (w * 100 + i) as f32 * 0.01).collect(),
                (0..8).map(|i| (w + i) as f32).collect(),
            ]
        })
        .collect();
    let out = p.allreduce_step(grads.clone());
    for t in 0..2 {
        for i in 0..grads[0][t].len() {
            let mean: f32 = (0..5).map(|w| grads[w][t][i]).sum::<f32>() / 5.0;
            assert!((out[t][i] - mean).abs() < 1e-4, "tensor {t} elem {i}");
        }
    }
}

#[test]
fn dataplane_ring_matches_perseus_for_whole_tensors() {
    // The low-level collective and the packed Perseus session must agree.
    let mut bufs: Vec<Vec<f32>> = (0..4).map(|w| vec![w as f32 + 0.5; 32]).collect();
    ring_allreduce(&mut bufs, ReduceOp::Sum);
    let layout = vec![("t".to_string(), 32usize)];
    let p = Perseus::new(&layout, PerseusConfig::new(4).with_sum());
    let out = p.allreduce_step((0..4).map(|w| vec![vec![w as f32 + 0.5; 32]]).collect());
    assert_eq!(out[0], bufs[0]);
}

#[test]
fn all_optimizers_train_the_distributed_mlp() {
    // Swap each optimizer into a manual data-parallel loop built from public
    // parts: MLP grads -> Perseus -> optimizer.
    let world = 4;
    let data = Dataset::gaussian_blobs(512, 4, 3, 77);
    for (name, mut opt) in [
        ("sgd", Box::new(Sgd::new(0.1).with_momentum(0.9)) as Box<dyn Optimizer>),
        ("adam", Box::new(Adam::new(0.01))),
        ("adam_sgd", Box::new(AdamSgd::new(0.01, 0.05))),
    ] {
        let mut model = Mlp::new(&MlpConfig::new(vec![4, 24, 3], 5));
        let perseus = Perseus::new(&model.param_layout(), PerseusConfig::new(world));
        let mut first_loss = None;
        let mut last_loss = 0.0;
        for step in 0..80 {
            let mut grads_per_worker = Vec::new();
            let mut loss_sum = 0.0;
            for w in 0..world {
                let mut xs = Vec::new();
                let mut ys = Vec::new();
                for i in 0..8 {
                    let (f, l) = data.sample((step * world * 8 + w * 8 + i) % data.len());
                    xs.extend_from_slice(f);
                    ys.push(l);
                }
                let (loss, grads) = model.loss_and_grads(&xs, &ys);
                loss_sum += loss;
                grads_per_worker.push(grads);
            }
            let reduced = perseus.allreduce_step(grads_per_worker);
            let flat: Vec<f32> = reduced.into_iter().flatten().collect();
            let mut params = model.params_flat();
            opt.step(&mut params, &flat);
            model.set_params_flat(&params);
            last_loss = loss_sum / world as f64;
            first_loss.get_or_insert(last_loss);
        }
        let first = first_loss.unwrap();
        assert!(last_loss < first * 0.6, "{name}: loss did not improve ({first} -> {last_loss})");
    }
}

#[test]
fn fp16_wire_compression_precision_is_adequate_for_training() {
    let mut exact = DataParallelTrainer::new(DataParallelConfig::new(vec![4, 16, 3], 4, 8));
    let mut cfg = DataParallelConfig::new(vec![4, 16, 3], 4, 8);
    cfg.compress = Scheme::Fp16;
    let mut lossy = DataParallelTrainer::new(cfg);
    exact.train(100);
    lossy.train(100);
    let test = Dataset::gaussian_blobs(1000, 4, 3, 12345);
    let acc_exact = exact.accuracy(&test);
    let acc_lossy = lossy.accuracy(&test);
    assert!(acc_lossy > acc_exact - 0.05, "fp16 wire hurt accuracy: {acc_exact} vs {acc_lossy}");
}

#[test]
fn linear_decay_trains_at_least_as_well_as_step_decay_here() {
    // §IV: AIACC uses linear decay. On this smooth problem both work; the
    // linear schedule must not be worse — and the schedules themselves must
    // decay as specified.
    let linear = LinearDecay::new(0.1, 0.001, 200);
    let step = StepDecay::new(0.1, 0.1, 70);
    assert!(linear.lr_at(100) > step.lr_at(100)); // linear decays smoothly
    let run = |use_linear: bool| {
        let mut cfg = DataParallelConfig::new(vec![4, 16, 3], 2, 16);
        cfg.decay_steps = if use_linear { Some(200) } else { None };
        let mut t = DataParallelTrainer::new(cfg);
        let stats = t.train(200);
        stats.losses.last().copied().unwrap()
    };
    let with_decay = run(true);
    let without = run(false);
    assert!(with_decay <= without * 1.5, "decay {with_decay} vs constant {without}");
}

#[test]
fn threaded_perseus_trains_real_models_from_worker_threads() {
    // Horovod-shaped usage: each worker thread owns a handle and its own
    // model replica; replicas stay identical across steps.
    use aiacc::core::perseus_world;
    let world = 4;
    let template = Mlp::new(&MlpConfig::new(vec![4, 12, 3], 3));
    let data = Dataset::gaussian_blobs(256, 4, 3, 21);
    let handles = perseus_world(&template.param_layout(), PerseusConfig::new(world));
    let joins: Vec<_> = handles
        .into_iter()
        .map(|h| {
            let mut model = template.clone();
            let shard = data.shard(h.rank(), world);
            std::thread::spawn(move || {
                for step in 0..20 {
                    let start = (step * 8) % (shard.len() - 8);
                    let xs = &shard.features[start * 4..(start + 8) * 4];
                    let ys = &shard.labels[start..start + 8];
                    let (_, grads) = model.loss_and_grads(xs, ys);
                    let reduced = h.allreduce(grads);
                    let flat: Vec<f32> = reduced.into_iter().flatten().collect();
                    model.apply_sgd(&flat, 0.1);
                }
                model.params_flat()
            })
        })
        .collect();
    let finals: Vec<Vec<f32>> = joins.into_iter().map(|j| j.join().unwrap()).collect();
    for f in &finals[1..] {
        assert_eq!(f, &finals[0], "replicas diverged across threads");
    }
}

#[test]
fn wire_frames_round_trip_packed_buckets() {
    // Pack → encode → decode → unpack across the crate boundary.
    use aiacc::core::packing::pack_units;
    use aiacc::core::wire::{decode_frame, encode_frame};
    use aiacc::core::GradientRegistry;
    use aiacc::dnn::GradId;

    let layout = vec![("a".to_string(), 10usize), ("b".to_string(), 7)];
    let reg = GradientRegistry::from_layout(&layout, DType::F32);
    let (units, partial) = pack_units(&reg, [GradId(0), GradId(1)], 24.0);
    let all: Vec<_> = units.into_iter().chain(partial).collect();
    let payload: Vec<f32> = (0..17).map(|i| i as f32 * 0.5).collect();
    let mut offset = 0;
    for unit in &all {
        let n = unit.elems();
        let frame = encode_frame(&unit.segments, &payload[offset..offset + n], DType::F32);
        let decoded = decode_frame(&frame).expect("well-formed frame");
        assert_eq!(decoded.segments, unit.segments);
        assert_eq!(decoded.values, &payload[offset..offset + n]);
        offset += n;
    }
    assert_eq!(offset, 17, "frames covered the full payload");
}

#[test]
fn gradient_queue_feeds_perseus_buckets() {
    use aiacc::core::{GradientQueue, GradientRegistry};
    use aiacc::dnn::GradId;

    let mlp = Mlp::new(&MlpConfig::new(vec![3, 6, 2], 1));
    let reg = GradientRegistry::from_layout(&mlp.param_layout(), DType::F32);
    let mut q = GradientQueue::new(&reg, 64.0); // 16 f32 elements per bucket
    let (_, grads) = mlp.loss_and_grads(&[0.1, 0.2, 0.3], &[1]);
    let mut buckets = Vec::new();
    for (i, g) in grads.into_iter().enumerate() {
        if let Some(b) = q.push(GradId(i as u32), Tensor::from_vec(g)) {
            buckets.push(b);
        }
    }
    assert!(q.all_pushed());
    let tail = q.flush();
    if !tail.is_empty() {
        buckets.push(tail);
    }
    let total: usize = buckets.iter().flatten().map(|(_, t)| t.len()).sum();
    assert_eq!(total, mlp.num_params(), "queue lost or duplicated elements");
}

#[test]
fn gradient_values_survive_pack_unpack_at_any_granularity() {
    // Property-style check across the crate boundary: oddly-sized tensors,
    // several granularities, world sizes 2..5.
    for world in 2..=5 {
        for gran in [8.0, 64.0, 4096.0, 1e9] {
            let layout =
                vec![("a".to_string(), 17usize), ("b".to_string(), 1), ("c".to_string(), 130)];
            let p = Perseus::new(&layout, PerseusConfig::new(world).with_granularity(gran));
            let grads: Vec<Vec<Vec<f32>>> = (0..world)
                .map(|w| {
                    layout
                        .iter()
                        .map(|(_, n)| (0..*n).map(|i| ((w + 1) * (i + 3)) as f32 * 0.125).collect())
                        .collect()
                })
                .collect();
            let out = p.allreduce_step(grads.clone());
            for (t, (_, n)) in layout.iter().enumerate() {
                for i in 0..*n {
                    let mean: f32 = (0..world).map(|w| grads[w][t][i]).sum::<f32>() / world as f32;
                    assert!(
                        (out[t][i] - mean).abs() < 1e-3,
                        "world {world} gran {gran} tensor {t} elem {i}"
                    );
                }
            }
        }
    }
}
