//! Multi-job scheduler guarantees: single-job runs are bit-identical to the
//! single-job `TrainingSim`, jobs on a shared fabric stay isolated in
//! accounting, the whole scenario is deterministic for any sweep worker
//! count, and the paper's multi-stream advantage shows up in the JCT tail
//! under multi-tenant contention.

use aiacc::prelude::*;
use aiacc::sched::{JobMix, JobSpec, MultiJobSim};
use aiacc::trainer::TrainingSim;

fn one_job(model: &str, gpus: usize, engine: EngineKind, iterations: usize, seed: u64) -> Workload {
    Workload {
        jobs: vec![JobSpec {
            id: 0,
            arrival_secs: 0.0,
            model: model.to_string(),
            gpus,
            engine,
            iterations,
            seed,
        }],
    }
}

/// With a single job occupying the whole cluster, the scheduler's shared
/// event loop must reproduce `TrainingSim`'s iteration times *bit for bit* —
/// the contention machinery is a strict superset of the single-job path.
#[test]
fn single_job_bit_identical_to_training_sim() {
    for engine in [
        EngineKind::aiacc_default(),
        EngineKind::Horovod(Default::default()),
        EngineKind::PyTorchDdp(Default::default()),
        EngineKind::BytePs(Default::default()),
    ] {
        let cluster = ClusterSpec::tcp_v100(16);
        let mut single =
            TrainingSim::new(TrainingSimConfig::new(cluster.clone(), zoo::vgg16(), engine));
        let expect: Vec<f64> = (0..4).map(|_| single.run_iteration().as_secs_f64()).collect();

        let wl = one_job("vgg16", 16, engine, 4, 42); // TrainingSim's default seed
        let report = run_multijob(MultiJobCfg::new(cluster, PlacePolicy::Packed, wl));
        assert_eq!(
            report.jobs[0].iter_secs,
            expect,
            "scheduler N=1 diverged from TrainingSim for {}",
            engine.label()
        );
    }
}

/// Two identical jobs whose lifetimes never overlap must produce identical
/// iteration times: the second tenant inherits a fabric with no residue of
/// the first (flows cancelled, GPUs freed, placement reproduced).
#[test]
fn sequential_jobs_leave_no_residue() {
    let mut wl = one_job("tiny_cnn", 8, EngineKind::aiacc_default(), 3, 9);
    wl.jobs.push(JobSpec { id: 1, arrival_secs: 1000.0, ..wl.jobs[0].clone() });
    wl.jobs[1].id = 1;
    let report = run_multijob(MultiJobCfg::new(ClusterSpec::tcp_v100(32), PlacePolicy::Packed, wl));
    assert_eq!(report.jobs[0].iter_secs, report.jobs[1].iter_secs);
    assert_eq!(report.jobs[0].comm_bytes_delivered, report.jobs[1].comm_bytes_delivered);
}

/// Per-job flow accounting under real concurrency: every job's flows are
/// stamped with its own tag, bytes delivered never exceed bytes launched,
/// and communication actually happened for every job. (Cross-job FlowId
/// collisions panic inside the driver's ownership probe, so any multi-job
/// run also exercises that isolation invariant.)
#[test]
fn concurrent_jobs_keep_per_job_byte_accounting() {
    let wl = Workload::generate(
        &WorkloadCfg::new(4, 11).with_mix(JobMix::Tiny).with_interarrival(0.05).with_iterations(3),
    );
    let report = run_multijob(MultiJobCfg::new(ClusterSpec::tcp_v100(32), PlacePolicy::Spread, wl));
    for j in &report.jobs {
        assert!(j.comm_bytes_delivered > 0.0, "job {} moved no bytes", j.id);
        assert!(
            j.comm_bytes_delivered <= j.comm_bytes_launched * (1.0 + 1e-9),
            "job {} delivered {} > launched {}",
            j.id,
            j.comm_bytes_delivered,
            j.comm_bytes_launched
        );
        assert_eq!(j.iter_secs.len(), 3, "job {} lost iterations", j.id);
    }
}

/// A contended job can only be slower than the same job running alone —
/// the shared fabric takes capacity away, never adds it.
#[test]
fn contention_never_speeds_a_job_up() {
    let cluster = ClusterSpec::tcp_v100(32);
    let engine = EngineKind::aiacc_default();
    let alone = run_multijob(MultiJobCfg::new(
        cluster.clone(),
        PlacePolicy::Spread,
        one_job("vgg16", 8, engine, 3, 5),
    ));

    let mut wl = one_job("vgg16", 8, engine, 3, 5);
    for id in 1..4 {
        let mut j = wl.jobs[0].clone();
        j.id = id;
        j.arrival_secs = 0.0;
        j.seed = 5 + id as u64;
        wl.jobs.push(j);
    }
    let contended = run_multijob(MultiJobCfg::new(cluster, PlacePolicy::Spread, wl));
    let solo = alone.jobs[0].mean_iter_secs();
    let shared = contended.jobs[0].mean_iter_secs();
    assert!(shared >= solo, "contended {shared} faster than solo {solo}");
}

/// The whole scenario must be a pure function of (cluster, workload,
/// policy): repeated runs and policy sweeps fanned out over different
/// worker counts give identical reports.
#[test]
fn scenario_is_deterministic_across_sweep_workers() {
    let sweep = |jobs: usize| -> Vec<String> {
        aiacc::simnet::par::set_jobs(jobs);
        let out = aiacc::simnet::par::map(&PlacePolicy::all(), |&policy| {
            let wl = Workload::generate(
                &WorkloadCfg::new(6, 7).with_mix(JobMix::Tiny).with_iterations(2),
            );
            let report = run_multijob(MultiJobCfg::new(ClusterSpec::tcp_v100(32), policy, wl));
            summarize(&report).to_tsv_row()
        });
        aiacc::simnet::par::set_jobs(1);
        out
    };
    let serial = sweep(1);
    let parallel = sweep(4);
    assert_eq!(serial, parallel);
    assert_eq!(serial, sweep(4), "repeated parallel sweep diverged");
}

/// The headline claim: under multi-tenant contention, AIACC's multi-streamed
/// communication keeps the JCT *tail* lower than single-stream Horovod on
/// the same workload (same arrivals, same models, same gangs).
#[test]
fn aiacc_tail_jct_beats_horovod_under_contention() {
    let run = |engine: EngineKind| {
        let wl = Workload::generate(&WorkloadCfg::new(4, 7).with_engine(engine).with_iterations(4));
        summarize(&run_multijob(MultiJobCfg::new(
            ClusterSpec::tcp_v100(32),
            PlacePolicy::Spread,
            wl,
        )))
    };
    let aiacc = run(EngineKind::aiacc_default());
    let horovod = run(EngineKind::Horovod(Default::default()));
    assert!(
        aiacc.jct_p99_secs < horovod.jct_p99_secs,
        "p99 JCT: aiacc {} vs horovod {}",
        aiacc.jct_p99_secs,
        horovod.jct_p99_secs
    );
    assert!(
        aiacc.jct_p50_secs < horovod.jct_p50_secs,
        "p50 JCT: aiacc {} vs horovod {}",
        aiacc.jct_p50_secs,
        horovod.jct_p50_secs
    );
}

/// Tracing a multi-job run yields well-formed Chrome JSON with one lane
/// group per job, and does not perturb the simulation.
#[test]
fn multijob_trace_is_populated_and_harmless() {
    let mk = |trace: bool| {
        let wl =
            Workload::generate(&WorkloadCfg::new(2, 3).with_mix(JobMix::Tiny).with_iterations(2));
        MultiJobCfg::new(ClusterSpec::tcp_v100(16), PlacePolicy::Packed, wl).with_trace(trace)
    };
    let plain = run_multijob(mk(false));
    let (traced, json) = MultiJobSim::new(mk(true)).run_with_trace();
    assert_eq!(plain, traced, "tracing changed the simulation");
    assert!(json.contains("job0 iter 0"), "missing job 0 lane");
    assert!(json.contains("job1 iter 0"), "missing job 1 lane");
    assert!(json.ends_with("]}"), "malformed trace json");
}
