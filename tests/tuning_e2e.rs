//! End-to-end auto-tuning behaviour on the simulated cluster (§VI +
//! §VIII-D observations).

use aiacc::autotune::cache::TuningCache;
use aiacc::autotune::{Objective, TuneAlgo, TuningConfig};
use aiacc::prelude::*;
use aiacc::trainer::tune::{aiacc_config_from, graph_signature, tune_aiacc, SimObjective};

#[test]
fn tuner_beats_the_worst_corner_comfortably() {
    let model = zoo::vgg16();
    let cluster = ClusterSpec::tcp_v100(16);
    let (_, report) = tune_aiacc(&model, &cluster, 20, 21, None);
    let mut obj = SimObjective::new(cluster, model, None);
    let worst = obj.evaluate(&TuningConfig {
        streams: 1,
        granularity: 256.0 * 1024.0 * 1024.0,
        algo: TuneAlgo::Ring,
        compress: Default::default(),
    });
    assert!(
        report.best_value < worst * 0.6,
        "tuned {} vs worst corner {}",
        report.best_value,
        worst
    );
}

#[test]
fn multinode_tuning_picks_multiple_streams_on_comm_bound_model() {
    // §VIII-D: "AIACC-Training tends to use a larger number of CUDA streams
    // when a higher number of GPUs is available." On a single NVLink node
    // the choice is a tie (any value works), so the observation concerns
    // multi-node, communication-bound deployments — where a single stream
    // must never be the tuner's answer.
    let model = zoo::vgg16();
    let pick = |gpus| {
        let (cfg, _) = tune_aiacc(&model, &ClusterSpec::tcp_v100(gpus), 30, 5, None);
        cfg.streams
    };
    let s16 = pick(16);
    let s64 = pick(64);
    assert!(s16 >= 2, "16-GPU tuning picked a single stream");
    assert!(s64 >= 4, "64-GPU tuning picked only {s64} streams");
}

#[test]
fn tree_wins_when_the_network_is_congested() {
    // §V-B: the hierarchical algorithm exists for congested links — its
    // inter-node critical path is 2(M−1) hops instead of 2(W−1). With
    // inflated per-hop latency (bursty neighbours), tree must beat ring.
    // (On our clean fluid network the two are near-equal with a slight
    // hierarchical edge — see EXPERIMENTS.md for the divergence note
    // versus the paper's observed ring preference.)
    use aiacc::cluster::{NicSpec, NodeSpec};
    let mut node = NodeSpec::alibaba_v100_tcp();
    node.nic = NicSpec { latency: SimDuration::from_micros(400), ..node.nic };
    let congested = ClusterSpec::with_total_gpus(64, node);
    let mk = |algo| {
        run_training_sim(
            TrainingSimConfig::new(
                congested.clone(),
                zoo::resnet50(),
                EngineKind::Aiacc(AiaccConfig::default().with_algo(algo)),
            )
            .with_iterations(1, 2),
        )
        .samples_per_sec
    };
    let ring = mk(Algo::Ring);
    let tree = mk(Algo::Tree);
    assert!(tree > ring, "congested net: tree {tree:.0} vs ring {ring:.0}");
}

#[test]
fn warm_start_transfers_across_similar_deployments() {
    let cache = TuningCache::new();
    let model = zoo::resnet50();
    let (_, _) = tune_aiacc(&model, &ClusterSpec::tcp_v100(16), 15, 1, Some(&cache));
    // Same model, 4 nodes instead of 2: similar deployment, must warm-start.
    let (_, report) = tune_aiacc(&model, &ClusterSpec::tcp_v100(32), 10, 2, Some(&cache));
    assert_eq!(report.evaluations[0].searcher, "warm-start");
    // A very different model must NOT inherit the prior.
    let (_, fresh) =
        tune_aiacc(&zoo::ctr_production(), &ClusterSpec::tcp_v100(16), 8, 3, Some(&cache));
    assert_ne!(fresh.evaluations[0].searcher, "warm-start");
}

#[test]
fn graph_signatures_feed_the_cache_sensibly() {
    let a = graph_signature(&zoo::resnet50());
    let b = graph_signature(&zoo::resnet101());
    let c = graph_signature(&zoo::bert_large());
    // Normalized by the longer chain, as the cache lookup does: raw edit
    // distance would favour chains of similar *length* over similar content.
    let norm = |x: &aiacc::autotune::cache::GraphSig, y: &aiacc::autotune::cache::GraphSig| {
        aiacc::autotune::cache::graph_edit_distance(x, y) as f64 / x.0.len().max(y.0.len()) as f64
    };
    let d_ab = norm(&a, &b);
    let d_ac = norm(&a, &c);
    // ResNet-50 is closer to ResNet-101 than to BERT.
    assert!(d_ab < d_ac, "GED r50-r101 {d_ab:.3} vs r50-bert {d_ac:.3}");
}

#[test]
fn tuned_config_converts_to_engine_config() {
    let t = TuningConfig {
        streams: 12,
        granularity: 8.0 * 1024.0 * 1024.0,
        algo: TuneAlgo::Tree,
        compress: Default::default(),
    };
    let cfg = aiacc_config_from(&t);
    assert_eq!(cfg.streams, 12);
    assert_eq!(cfg.granularity, 8.0 * 1024.0 * 1024.0);
    assert_eq!(format!("{:?}", cfg.algo), "Tree");
    // And it runs.
    let r = run_training_sim(
        TrainingSimConfig::new(ClusterSpec::tcp_v100(8), zoo::tiny_cnn(), EngineKind::Aiacc(cfg))
            .with_iterations(0, 1),
    );
    assert!(r.samples_per_sec > 0.0);
}
