//! End-to-end guarantees of the tracing layer: the exported Chrome trace is
//! well-formed, its stream lanes agree with the engine's own counters, a
//! comm-bound multi-stream run really overlaps (the acceptance criterion of
//! the paper's Fig. 7 claim), and arming the sink never perturbs the
//! simulation.

use aiacc::prelude::*;
use aiacc::simnet::trace::track;
use aiacc::simnet::TracePhase;
use std::collections::HashMap;

/// A comm-bound workload: VGG-16's 528 MB of gradients on 30 Gbps TCP keep
/// AIACC's stream pool saturated.
fn comm_bound_cfg(trace: bool) -> TrainingSimConfig {
    TrainingSimConfig::new(
        ClusterSpec::tcp_v100(16),
        aiacc::dnn::zoo::vgg16(),
        EngineKind::aiacc_default(),
    )
    .with_iterations(0, 1)
    .with_trace(trace)
}

// ---------------------------------------------------------------------------
// A minimal JSON validity checker (no serde_json in the vendored set): parses
// one complete JSON value and requires it to consume the whole input.

fn skip_ws(b: &[u8], mut i: usize) -> usize {
    while i < b.len() && matches!(b[i], b' ' | b'\t' | b'\n' | b'\r') {
        i += 1;
    }
    i
}

fn parse_string(b: &[u8], mut i: usize) -> Result<usize, String> {
    if b.get(i) != Some(&b'"') {
        return Err(format!("expected string at {i}"));
    }
    i += 1;
    while i < b.len() {
        match b[i] {
            b'"' => return Ok(i + 1),
            b'\\' => match b.get(i + 1) {
                Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => i += 2,
                Some(b'u') => {
                    let hex = b.get(i + 2..i + 6).ok_or("truncated \\u escape")?;
                    if !hex.iter().all(u8::is_ascii_hexdigit) {
                        return Err(format!("bad \\u escape at {i}"));
                    }
                    i += 6;
                }
                _ => return Err(format!("bad escape at {i}")),
            },
            c if c < 0x20 => return Err(format!("raw control byte {c:#x} in string at {i}")),
            _ => i += 1,
        }
    }
    Err("unterminated string".into())
}

fn parse_value(b: &[u8], i: usize) -> Result<usize, String> {
    let i = skip_ws(b, i);
    match b.get(i) {
        Some(b'"') => parse_string(b, i),
        Some(b'{') => {
            let mut i = skip_ws(b, i + 1);
            if b.get(i) == Some(&b'}') {
                return Ok(i + 1);
            }
            loop {
                i = parse_string(b, skip_ws(b, i))?;
                i = skip_ws(b, i);
                if b.get(i) != Some(&b':') {
                    return Err(format!("expected ':' at {i}"));
                }
                i = parse_value(b, i + 1)?;
                i = skip_ws(b, i);
                match b.get(i) {
                    Some(b',') => i += 1,
                    Some(b'}') => return Ok(i + 1),
                    _ => return Err(format!("expected ',' or '}}' at {i}")),
                }
            }
        }
        Some(b'[') => {
            let mut i = skip_ws(b, i + 1);
            if b.get(i) == Some(&b']') {
                return Ok(i + 1);
            }
            loop {
                i = parse_value(b, i)?;
                i = skip_ws(b, i);
                match b.get(i) {
                    Some(b',') => i += 1,
                    Some(b']') => return Ok(i + 1),
                    _ => return Err(format!("expected ',' or ']' at {i}")),
                }
            }
        }
        Some(b't') if b[i..].starts_with(b"true") => Ok(i + 4),
        Some(b'f') if b[i..].starts_with(b"false") => Ok(i + 5),
        Some(b'n') if b[i..].starts_with(b"null") => Ok(i + 4),
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let mut j = i + 1;
            while j < b.len() && matches!(b[j], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
                j += 1;
            }
            Ok(j)
        }
        other => Err(format!("unexpected {other:?} at {i}")),
    }
}

fn assert_valid_json(s: &str) {
    let b = s.as_bytes();
    let end = parse_value(b, 0).unwrap_or_else(|e| panic!("invalid JSON: {e}"));
    assert_eq!(skip_ws(b, end), b.len(), "trailing garbage after JSON value");
}

// ---------------------------------------------------------------------------

#[test]
fn traced_run_is_bit_identical_to_untraced() {
    let untraced = run_training_sim(comm_bound_cfg(false));
    let traced = run_training_sim(comm_bound_cfg(true));
    assert_eq!(untraced.iter_secs, traced.iter_secs, "tracing perturbed the simulation");
    assert_eq!(untraced.samples_per_sec, traced.samples_per_sec);
}

#[test]
fn untraced_run_records_no_events() {
    let mut sim = TrainingSim::new(comm_bound_cfg(false));
    let _ = sim.run_iteration();
    assert!(sim.trace().events().is_empty(), "disabled sink must allocate nothing");
}

#[test]
fn chrome_export_is_valid_json_with_balanced_spans() {
    let mut sim = TrainingSim::new(comm_bound_cfg(true));
    let _ = sim.run_iteration();
    let events = sim.trace().events();
    assert!(!events.is_empty());

    // Every lane's B/E events nest: depth never goes negative and every
    // span opened is closed by the end of the (completed) iteration.
    let mut stacks: HashMap<(u32, u64), Vec<&str>> = HashMap::new();
    for ev in events {
        match ev.phase {
            TracePhase::Begin => stacks.entry((ev.pid, ev.tid)).or_default().push(&ev.name),
            TracePhase::End => {
                let top = stacks
                    .get_mut(&(ev.pid, ev.tid))
                    .and_then(Vec::pop)
                    .unwrap_or_else(|| panic!("E without B on ({}, {})", ev.pid, ev.tid));
                assert_eq!(top, ev.name, "mismatched span close on ({}, {})", ev.pid, ev.tid);
            }
            _ => {}
        }
    }
    for ((pid, tid), stack) in &stacks {
        assert!(stack.is_empty(), "unclosed span {:?} on ({pid}, {tid})", stack.last());
    }

    // Timestamps never go backwards (the sink records in simulator order).
    for w in events.windows(2) {
        assert!(w[0].at <= w[1].at, "trace out of order");
    }

    assert_valid_json(&sim.trace().to_chrome_json());
}

#[test]
fn stream_lanes_match_engine_peak_streams() {
    let mut sim = TrainingSim::new(comm_bound_cfg(true));
    let report = sim.run(); // 0 warm-up + 1 measured iteration
    assert!(report.samples_per_sec > 0.0);
    let stats = sim.engine_stats().expect("aiacc engine exposes stats");
    let summary = sim.trace().summary();
    assert_eq!(
        summary.stream_lanes, stats.peak_streams,
        "trace lanes disagree with the engine's peak concurrent streams"
    );
}

#[test]
fn multi_stream_comm_bound_run_overlaps() {
    // The acceptance criterion: on a comm-bound model with a multi-stream
    // engine, the trace must show >= 2 concurrent per-stream lanes and a
    // strictly positive overlap fraction (Fig. 7b).
    let mut sim = TrainingSim::new(comm_bound_cfg(true));
    let _ = sim.run_iteration();
    let s = sim.trace().summary();
    assert!(s.stream_lanes >= 2, "expected >= 2 stream lanes, got {}", s.stream_lanes);
    assert!(
        s.overlap_fraction > 0.0,
        "expected concurrent stream activity, overlap fraction was 0"
    );
    assert!(s.comm_busy_secs > 0.0);
    let busy_lanes = s.per_stream_busy_secs.iter().filter(|&&(_, b)| b > 0.0).count();
    assert!(busy_lanes >= 2, "expected >= 2 busy lanes, got {busy_lanes}");
}

#[test]
fn single_stream_run_never_overlaps() {
    // Control: with one communication stream there is exactly one lane and
    // the overlap fraction is zero by construction.
    let cfg = TrainingSimConfig::new(
        ClusterSpec::tcp_v100(16),
        aiacc::dnn::zoo::vgg16(),
        EngineKind::Aiacc(AiaccConfig::default().with_streams(1)),
    )
    .with_iterations(0, 1)
    .with_trace(true);
    let mut sim = TrainingSim::new(cfg);
    let _ = sim.run_iteration();
    let s = sim.trace().summary();
    assert_eq!(s.stream_lanes, 1);
    assert_eq!(s.overlap_fraction, 0.0);
}

#[test]
fn trace_covers_every_subsystem_track() {
    let mut sim = TrainingSim::new(comm_bound_cfg(true));
    let _ = sim.run_iteration();
    let events = sim.trace().events();
    for (pid, what) in [
        (track::TRAINER, "iteration spans"),
        (track::ENGINE, "engine control events"),
        (track::STREAMS, "per-stream unit spans"),
        (track::COLLECTIVES, "collective phase spans"),
        (track::NET, "network counters"),
    ] {
        assert!(events.iter().any(|e| e.pid == pid), "no events on track {pid} ({what})");
    }
    // The iteration span and its phase markers are present.
    assert!(events.iter().any(|e| e.pid == track::TRAINER && e.name == "iter 0"));
    assert!(events.iter().any(|e| e.pid == track::TRAINER && e.name == "backward done"));
    assert!(events.iter().any(|e| e.pid == track::TRAINER && e.name == "comm done"));
}
