//! Integration tests for the paper's headline claims, exercised through the
//! public facade API exactly as a downstream user would.

use aiacc::prelude::*;

fn throughput(model: ModelProfile, gpus: usize, engine: EngineKind) -> f64 {
    run_training_sim(
        TrainingSimConfig::new(ClusterSpec::tcp_v100(gpus), model, engine).with_iterations(1, 2),
    )
    .samples_per_sec
}

#[test]
fn aiacc_beats_every_baseline_on_every_table1_model_at_32_gpus() {
    for model in zoo::table1_models() {
        let a = throughput(model.clone(), 32, EngineKind::aiacc_default());
        for engine in [
            EngineKind::Horovod(Default::default()),
            EngineKind::PyTorchDdp(Default::default()),
            EngineKind::BytePs(Default::default()),
            EngineKind::MxnetKvStore(Default::default()),
        ] {
            let b = throughput(model.clone(), 32, engine);
            assert!(a > b, "{}: aiacc {a:.0} <= {} {b:.0}", model.name(), engine.label());
        }
    }
}

#[test]
fn aiacc_advantage_grows_with_gpu_count() {
    // §VIII-A: "Such performance advantage is more evident with a large
    // number of GPUs."
    let model = zoo::vgg16();
    let speedup_at = |gpus| {
        throughput(model.clone(), gpus, EngineKind::aiacc_default())
            / throughput(model.clone(), gpus, EngineKind::Horovod(Default::default()))
    };
    let s8 = speedup_at(8);
    let s64 = speedup_at(64);
    assert!(s64 > s8, "speedup shrank with scale: {s8:.2} @8 -> {s64:.2} @64");
}

#[test]
fn resnet50_is_the_most_scalable_model() {
    // §VIII-A: "The most scalable model is ResNet-50 … over 95 % scaling
    // efficiency", better than the larger models.
    let eff = |model: ModelProfile| {
        let single = run_training_sim(TrainingSimConfig::new(
            ClusterSpec::tcp_v100(1),
            model.clone(),
            EngineKind::aiacc_default(),
        ));
        let multi = run_training_sim(
            TrainingSimConfig::new(ClusterSpec::tcp_v100(64), model, EngineKind::aiacc_default())
                .with_iterations(1, 2),
        );
        scaling_efficiency(&single, &multi)
    };
    let r50 = eff(zoo::resnet50());
    let vgg = eff(zoo::vgg16());
    let bert = eff(zoo::bert_large());
    // With the paper's near-memory-capacity batches this reaches ≥0.95; our
    // default batches deliberately expose more communication (§VII-D notes
    // the improvement is then *more* evident), so demand ≥0.80 here and
    // strict ordering below.
    assert!(r50 > 0.80, "ResNet-50 aiacc efficiency {r50:.3}");
    assert!(r50 > vgg, "ResNet-50 ({r50:.3}) should scale better than VGG-16 ({vgg:.3})");
    // BERT's scalability depends strongly on the batch/sequence setting: at
    // our compute-heavy default it can match ResNet-50, so no strict
    // ordering is asserted — only that the clearly communication-bound VGG
    // trails both.
    assert!(bert > vgg, "BERT ({bert:.3}) should scale better than VGG-16 ({vgg:.3})");
}

#[test]
fn single_stream_utilization_matches_section3() {
    // §III: a single communication stream utilizes at most ~30 % of TCP.
    let mut sim = Simulator::new();
    let cluster = ClusterNet::build(&ClusterSpec::tcp_v100(16), sim.net_mut());
    sim.start_flow(cluster.path(0, 8).flow(1e12));
    sim.net_mut().advance_to(SimTime::from_secs_f64(0.01));
    let util = sim.net_mut().utilization(cluster.node_tx_resource(0));
    assert!((util - 0.30).abs() < 1e-9, "single-stream utilization {util}");
}

#[test]
fn decentralized_sync_dominates_on_gradient_heavy_workloads() {
    // §VIII-C: the CTR system — 13.4× at 128 GPUs in the paper. The exact
    // factor depends on the (undisclosed) model; demand the same regime.
    let model = zoo::ctr_production();
    let s = throughput(model.clone(), 64, EngineKind::aiacc_default())
        / throughput(model, 64, EngineKind::Horovod(Default::default()));
    assert!(s > 4.0, "CTR speedup at 64 GPUs only {s:.1}");
}

#[test]
fn rdma_speedups_exceed_tcp_speedups_for_large_models() {
    // §VIII-D: AIACC gives extra improvement on RDMA; GPT-2 reaches 9.8×
    // over PyTorch-DDP at 64 GPUs.
    let model = zoo::gpt2_xl();
    let rdma = {
        let mk = |e| {
            run_training_sim(
                TrainingSimConfig::new(ClusterSpec::rdma_v100(64), model.clone(), e)
                    .with_iterations(1, 1),
            )
            .samples_per_sec
        };
        mk(EngineKind::aiacc_default()) / mk(EngineKind::PyTorchDdp(Default::default()))
    };
    assert!(rdma > 2.5, "GPT-2 RDMA speedup {rdma:.2}");
}

#[test]
fn smaller_batches_amplify_the_win() {
    // Fig. 14: AIACC gives better speedups at small batch sizes.
    let model = zoo::bert_large();
    let speedup_at = |batch| {
        let mk = |e| {
            run_training_sim(
                TrainingSimConfig::new(ClusterSpec::tcp_v100(16), model.clone(), e)
                    .with_batch(batch)
                    .with_iterations(1, 2),
            )
            .samples_per_sec
        };
        mk(EngineKind::aiacc_default()) / mk(EngineKind::Horovod(Default::default()))
    };
    assert!(speedup_at(2) > speedup_at(16));
}

#[test]
fn tree_allreduce_available_and_correct_end_to_end() {
    // §V-B: both algorithms supported; result must be identical data.
    let t = throughput(
        zoo::resnet50(),
        32,
        EngineKind::Aiacc(AiaccConfig::default().with_algo(Algo::Tree)),
    );
    assert!(t > 1000.0, "tree all-reduce throughput {t}");
}
