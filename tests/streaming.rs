//! Streaming-replay oracle tests: batch differential, snapshot/resume
//! bit-identity, chaos determinism and bounded-memory witnesses.

use aiacc_cluster::ClusterSpec;
use aiacc_sched::stream::{ArrivalCfg, ArrivalProcess, StreamCfg, StreamSim};
use aiacc_sched::{
    summarize, JobMix, MultiJobCfg, MultiJobSim, PlacePolicy, RecoveryPolicy, Workload, WorkloadCfg,
};
use aiacc_simnet::{FaultPlan, SimDuration, SimTime};

/// A unique temp path per test (tests run in parallel in one process).
fn tmp_path(name: &str) -> String {
    let mut p = std::env::temp_dir();
    p.push(format!("aiacc_stream_{}_{}", std::process::id(), name));
    p.to_string_lossy().into_owned()
}

fn base_cfg(gpus: usize) -> MultiJobCfg {
    // The workload field is unused in streaming mode; give it one
    // placeholder job to satisfy the batch constructor's shape.
    let wl = Workload::generate(&WorkloadCfg::new(1, 1).with_mix(JobMix::Tiny));
    MultiJobCfg::new(ClusterSpec::tcp_v100(gpus), PlacePolicy::Packed, wl)
}

/// Streaming a saved trace with per-job rows reproduces the batch run of
/// the same workload exactly: same per-job TSV rows, summary means within
/// float-fold tolerance, percentiles within the sketch bound (here exact,
/// because the sample count is far below the sketch capacity).
#[test]
fn stream_trace_replay_matches_batch() {
    let wl =
        Workload::generate(&WorkloadCfg::new(60, 11).with_mix(JobMix::Tiny).with_interarrival(1.0));
    let trace_path = tmp_path("diff.tsv");
    std::fs::write(&trace_path, wl.to_tsv()).unwrap();

    let batch = MultiJobSim::new(MultiJobCfg::new(
        ClusterSpec::tcp_v100(32),
        PlacePolicy::Packed,
        wl.clone(),
    ))
    .run();
    let batch_metrics = summarize(&batch);
    let batch_rows: Vec<String> = batch.jobs.iter().map(|j| j.tsv_row()).collect();

    let arrivals = ArrivalCfg::new(ArrivalProcess::Trace { path: trace_path.clone() }, 0, 0);
    let cfg = StreamCfg::new(base_cfg(32), arrivals)
        .with_window(1_000_000) // no window rows mid-run
        .with_per_job_rows(true);
    let report = StreamSim::try_new(cfg).unwrap().run().unwrap();
    std::fs::remove_file(&trace_path).ok();

    let mut stream_rows: Vec<String> =
        report.lines.iter().filter(|l| !l.starts_with("window\t")).cloned().collect();
    // Stream rows are in completion order; batch rows in id order.
    stream_rows.sort_by_key(|r| r.split('\t').next().unwrap().parse::<usize>().unwrap());
    assert_eq!(stream_rows, batch_rows, "per-job rows must match batch exactly");

    let s = report.summary.expect("natural end has a summary");
    assert_eq!(s.njobs, batch_metrics.njobs);
    assert_eq!(s.njobs_failed, batch_metrics.njobs_failed);
    let close = |a: f64, b: f64, what: &str| {
        assert!((a - b).abs() <= 1e-9 * b.abs().max(1.0), "{what}: stream {a} vs batch {b}");
    };
    close(s.jct_mean_secs, batch_metrics.jct_mean_secs, "jct mean");
    close(s.queue_delay_mean_secs, batch_metrics.queue_delay_mean_secs, "queue delay mean");
    close(s.makespan_secs, batch_metrics.makespan_secs, "makespan");
    close(s.fabric_utilization, batch_metrics.fabric_utilization, "fabric utilization");
    close(s.jain_fairness, batch_metrics.jain_fairness, "jain fairness");
    // 60 samples in a 1024-capacity sketch: no compaction, exact quantiles.
    assert_eq!(report.stats.sketch_max_rank_error, 0);
    close(s.jct_p50_secs, batch_metrics.jct_p50_secs, "p50");
    close(s.jct_p95_secs, batch_metrics.jct_p95_secs, "p95");
    close(s.jct_p99_secs, batch_metrics.jct_p99_secs, "p99");
}

fn poisson_cfg(total: u64, snapshot: Option<(u64, String)>) -> StreamCfg {
    let mut arrivals = ArrivalCfg::new(ArrivalProcess::Poisson, total, 7);
    arrivals.mean_interarrival_secs = 1.0;
    let mut cfg = StreamCfg::new(base_cfg(32), arrivals).with_window(50).with_per_job_rows(true);
    if let Some((every, path)) = snapshot {
        cfg = cfg.with_snapshots(every, path);
    }
    cfg
}

/// Stopping at a snapshot and resuming reproduces the uninterrupted run's
/// output byte-for-byte: `stopped.lines + resumed.lines == full.lines`, and
/// the resumed summary equals the uninterrupted one bitwise.
#[test]
fn snapshot_resume_is_byte_identical() {
    let snap_a = tmp_path("resume_a.snap");
    let snap_b = tmp_path("resume_b.snap");

    let full =
        StreamSim::try_new(poisson_cfg(400, Some((150, snap_b.clone())))).unwrap().run().unwrap();
    assert!(!full.stats.stopped_at_snapshot);
    assert!(full.stats.snapshots_written >= 1, "full run must hit the snapshot interval");

    let stopped = StreamSim::try_new(
        poisson_cfg(400, Some((150, snap_a.clone()))).with_stop_after_snapshot(true),
    )
    .unwrap()
    .run()
    .unwrap();
    assert!(stopped.stats.stopped_at_snapshot);
    assert!(stopped.summary.is_none(), "a stopped run does not own the summary");
    assert!(stopped.stats.completed >= 150 && stopped.stats.completed < 400);

    let resumed =
        StreamSim::resume_from_file(poisson_cfg(400, Some((150, snap_a.clone()))), &snap_a)
            .unwrap()
            .run()
            .unwrap();
    std::fs::remove_file(&snap_a).ok();
    std::fs::remove_file(&snap_b).ok();

    let mut joined = stopped.lines.clone();
    joined.extend(resumed.lines.iter().cloned());
    assert_eq!(joined, full.lines, "stopped+resumed output must equal the uninterrupted run");
    assert_eq!(
        format!("{:?}", resumed.summary),
        format!("{:?}", full.summary),
        "resumed summary must be bit-identical"
    );
    // The restored accumulator is cumulative: the resumed run reports the
    // whole horizon, not just its own segment.
    assert_eq!(resumed.stats.completed, full.stats.completed);
    assert!(stopped.stats.completed < full.stats.completed);
}

/// Snapshot/resume bit-identity holds under chaos too: crashes, restarts
/// and permanently-down nodes all land before the quiescent point and are
/// restored from the snapshot (generations, down nodes, carried bytes).
#[test]
fn snapshot_resume_survives_chaos() {
    let snap = tmp_path("chaos.snap");
    let make = || {
        // Crashes aimed at the packed low nodes while dense arrivals keep
        // them busy, so the recovery path is exercised deterministically.
        let plan = FaultPlan::new()
            .crash_node_for(0, SimTime::from_secs_f64(3.0), SimDuration::from_secs_f64(2.0))
            .crash_node_for(1, SimTime::from_secs_f64(6.0), SimDuration::from_secs_f64(2.0))
            .straggle_node(
                2,
                2.0,
                SimTime::from_secs_f64(4.0),
                Some(SimDuration::from_secs_f64(3.0)),
            );
        let base = base_cfg(32).with_faults(plan).with_recovery(RecoveryPolicy::Restart);
        let mut arrivals = ArrivalCfg::new(ArrivalProcess::Poisson, 300, 9);
        arrivals.mean_interarrival_secs = 0.1;
        arrivals.iterations = 12;
        StreamCfg::new(base, arrivals)
            .with_window(40)
            .with_per_job_rows(true)
            .with_snapshots(120, snap.clone())
    };

    let full = StreamSim::try_new(make()).unwrap().run().unwrap();
    let stopped = StreamSim::try_new(make().with_stop_after_snapshot(true)).unwrap().run().unwrap();
    assert!(stopped.stats.stopped_at_snapshot);
    let resumed = StreamSim::resume_from_file(make(), &snap).unwrap().run().unwrap();
    std::fs::remove_file(&snap).ok();

    let mut joined = stopped.lines.clone();
    joined.extend(resumed.lines.iter().cloned());
    assert_eq!(joined, full.lines);
    assert_eq!(format!("{:?}", resumed.summary), format!("{:?}", full.summary));
    // Chaos actually exercised the recovery path.
    let s = full.summary.unwrap();
    assert!(s.crashes_total > 0, "chaos plan must produce at least one crash");
}

/// A snapshot refuses to resume into a different configuration.
#[test]
fn snapshot_rejects_mismatched_config() {
    let snap = tmp_path("mismatch.snap");
    let stopped = StreamSim::try_new(
        poisson_cfg(200, Some((80, snap.clone()))).with_stop_after_snapshot(true),
    )
    .unwrap()
    .run()
    .unwrap();
    assert!(stopped.stats.stopped_at_snapshot);
    let mut other = poisson_cfg(200, Some((80, snap.clone())));
    other.arrivals.seed = 8; // different arrival stream
    let err = StreamSim::resume_from_file(other, &snap).err().expect("must reject");
    std::fs::remove_file(&snap).ok();
    assert!(err.to_string().contains("digest"), "got: {err}");
}

/// The same configuration always produces the same output (run-to-run
/// determinism of the full streaming pipeline, chaos included).
#[test]
fn streaming_is_deterministic_under_chaos() {
    let make = || {
        let base = base_cfg(32)
            .with_faults(FaultPlan::chaos(5, 4, SimDuration::from_secs_f64(15.0), 2))
            .with_recovery(RecoveryPolicy::Shrink);
        let mut arrivals = ArrivalCfg::new(ArrivalProcess::Bursty, 250, 13);
        arrivals.mean_interarrival_secs = 0.8;
        StreamCfg::new(base, arrivals).with_window(25).with_per_job_rows(true)
    };
    let a = StreamSim::try_new(make()).unwrap().run().unwrap();
    let b = StreamSim::try_new(make()).unwrap().run().unwrap();
    assert_eq!(a.lines, b.lines);
    assert_eq!(format!("{:?}", a.summary), format!("{:?}", b.summary));
    assert_eq!(a.stats, b.stats);
}

/// The slot pool bounds live state: every job completes, concurrency never
/// exceeds the pool, and the cumulative sketch stays far below one entry
/// per job.
#[test]
fn slot_pool_bounds_live_state() {
    let mut arrivals = ArrivalCfg::new(ArrivalProcess::Diurnal { period_secs: 120.0 }, 2_000, 21);
    arrivals.mean_interarrival_secs = 0.05; // heavy load: forces queueing + slot reuse
    arrivals.iterations = 2;
    let cfg = StreamCfg::new(base_cfg(32), arrivals).with_window(200).with_nslots(24);
    let report = StreamSim::try_new(cfg).unwrap().run().unwrap();
    let stats = &report.stats;
    assert_eq!(stats.emitted, 2_000);
    assert_eq!(stats.completed, 2_000);
    assert_eq!(stats.nslots, 24);
    assert!(stats.peak_active <= 24, "peak active {} > pool", stats.peak_active);
    assert!(stats.peak_active > 1, "load must actually overlap jobs");
    assert_eq!(stats.windows_emitted, 10);
    assert!(
        stats.sketch_stored_items < 2_000,
        "sketch must compact below one item per job, got {}",
        stats.sketch_stored_items
    );
}
