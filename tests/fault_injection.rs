//! Robustness under injected faults: flaps delay but never corrupt, seeded
//! fault plans are bit-reproducible, and AIACC's multi-streamed engine
//! degrades more gracefully than Horovod's single stream when a NIC loses
//! capacity (the paper's §II-C motivation, inverted: fewer lanes hurt the
//! framework that only ever had one).

use aiacc::prelude::*;
use aiacc::simnet::{FaultPlan, Token};

/// Drives one timed allreduce to completion, returns the finish time in
/// seconds. `faults` is installed before the collective launches.
fn timed_allreduce_secs(bytes: f64, faults: Option<&dyn Fn(&ClusterNet) -> FaultPlan>) -> f64 {
    let spec = ClusterSpec::tcp_v100(16);
    let mut sim = Simulator::new();
    let cluster = ClusterNet::build(&spec, sim.net_mut());
    if let Some(mk) = faults {
        let plan = mk(&cluster);
        sim.install_faults(&plan);
    }
    let mut eng = CollectiveEngine::new();
    let op = eng.launch(&mut sim, &cluster, CollectiveSpec::allreduce(bytes));
    while let Some((t, ev)) = sim.next_event() {
        if let Event::FlowCompleted(f) = ev {
            if eng.on_flow_completed(&mut sim, f) == Some(op) {
                return (t - SimTime::ZERO).as_secs_f64();
            }
        }
    }
    panic!("allreduce never completed");
}

#[test]
fn link_flap_mid_allreduce_delays_but_terminates() {
    let bytes = 1e9;
    let clean = timed_allreduce_secs(bytes, None);
    assert!(clean > 0.0);

    // Take node 0's TX NIC down for 100 ms right in the middle of the
    // transfer. The collective must still terminate — frozen flows resume
    // when capacity returns — and finish at least ~one outage later.
    let outage = 0.100;
    let at = clean * 0.5;
    let faulty = timed_allreduce_secs(
        bytes,
        Some(&move |cluster: &ClusterNet| {
            FaultPlan::new().flap_link(
                cluster.node_tx_resource(0),
                SimTime::from_secs_f64(at),
                SimDuration::from_secs_f64(outage),
            )
        }),
    );
    assert!(
        faulty >= clean + outage * 0.9,
        "flap did not delay the collective: clean {clean:.4}s vs faulty {faulty:.4}s"
    );
    // The delay is bounded: a 100 ms outage cannot cost much more than
    // 100 ms plus the work it interrupted.
    assert!(
        faulty <= clean + outage * 2.0 + 0.05,
        "flap cost far more than the outage: clean {clean:.4}s vs faulty {faulty:.4}s"
    );
}

#[test]
fn data_plane_sums_are_exact_regardless_of_timing_faults() {
    // The timed engine only models *when* bytes arrive; the data plane
    // computes *what* arrives. A timing fault must never change the math, so
    // the exact collective run alongside a faulty timed run still produces
    // the true sum.
    let _ = timed_allreduce_secs(
        1e8,
        Some(&|cluster: &ClusterNet| {
            FaultPlan::new().flap_link(
                cluster.node_tx_resource(1),
                SimTime::from_secs_f64(0.01),
                SimDuration::from_secs_f64(0.05),
            )
        }),
    );
    let world = 8;
    let mut bufs: Vec<Vec<f32>> =
        (0..world).map(|w| (0..64).map(|i| (w * 64 + i) as f32 * 0.25).collect()).collect();
    let expect: Vec<f32> =
        (0..64).map(|i| (0..world).map(|w| (w * 64 + i) as f32 * 0.25).sum()).collect();
    ring_allreduce(&mut bufs, ReduceOp::Sum);
    for buf in &bufs {
        for (got, want) in buf.iter().zip(&expect) {
            assert!((got - want).abs() < 1e-3, "{got} != {want}");
        }
    }
}

fn faulty_training(seed: u64) -> Vec<f64> {
    // A busy plan: a permanent degrade, a straggler window, and a crash in
    // the first measured iteration — plus the stall watchdog armed so the
    // resubmission path runs.
    let plan = FaultPlan::new()
        .degrade_node(0, 0.6, SimTime::from_secs_f64(0.1), None)
        .straggle_node(1, 1.3, SimTime::from_secs_f64(0.2), Some(SimDuration::from_secs_f64(1.0)))
        .crash_node(1, SimTime::from_secs_f64(0.8));
    let engine = EngineKind::Aiacc(
        AiaccConfig::default().with_stall_timeout(SimDuration::from_secs_f64(0.25)),
    );
    run_training_sim(
        TrainingSimConfig::new(ClusterSpec::tcp_v100(16), zoo::resnet50(), engine)
            .with_iterations(1, 3)
            .with_seed(seed)
            .with_faults(plan),
    )
    .iter_secs
}

#[test]
fn identical_seed_and_fault_plan_are_bit_reproducible() {
    let a = faulty_training(42);
    let b = faulty_training(42);
    assert_eq!(a, b, "same seed + same FaultPlan must replay identically");
    // The crash actually happened: some iteration absorbed a recovery pause
    // that dwarfs a normal iteration.
    assert!(a.iter().any(|&s| s > 5.0), "no iteration shows the crash recovery pause: {a:?}");
}

#[test]
fn multi_stream_loses_less_throughput_than_single_stream_under_degradation() {
    // Halve every node NIC for the whole run. AIACC's eight concurrent
    // streams still aggregate most of the shrunken NIC and keep overlapping
    // with backward; Horovod's lone stream sees its per-flow ceiling halved
    // and its serial tail doubles.
    let run = |engine: EngineKind, faults: FaultPlan| {
        run_training_sim(
            TrainingSimConfig::new(ClusterSpec::tcp_v100(16), zoo::resnet50(), engine)
                .with_iterations(1, 3)
                .with_faults(faults),
        )
        .samples_per_sec
    };
    let degraded = || {
        FaultPlan::new().degrade_node(0, 0.5, SimTime::ZERO, None).degrade_node(
            1,
            0.5,
            SimTime::ZERO,
            None,
        )
    };

    let aiacc_clean = run(EngineKind::aiacc_default(), FaultPlan::new());
    let aiacc_faulty = run(EngineKind::aiacc_default(), degraded());
    let hvd_clean = run(EngineKind::Horovod(Default::default()), FaultPlan::new());
    let hvd_faulty = run(EngineKind::Horovod(Default::default()), degraded());

    let aiacc_loss = 1.0 - aiacc_faulty / aiacc_clean;
    let hvd_loss = 1.0 - hvd_faulty / hvd_clean;
    assert!(
        aiacc_loss < hvd_loss,
        "AIACC must degrade less than Horovod under a 50% NIC degrade: \
         aiacc {:.1}% vs horovod {:.1}%",
        aiacc_loss * 100.0,
        hvd_loss * 100.0
    );
    // And the degraded AIACC still beats the degraded single stream outright.
    assert!(
        aiacc_faulty > hvd_faulty,
        "degraded AIACC ({aiacc_faulty:.0}) should outrun degraded Horovod ({hvd_faulty:.0})"
    );
}

#[test]
fn fault_log_annotates_probe_windows() {
    // The telemetry probe picks up exactly the fault records that landed in
    // its sampling window.
    use aiacc::simnet::UtilizationProbe;
    let mut sim = Simulator::new();
    let r = sim.net_mut().add_resource("nic", 1e9);
    let mut probe = UtilizationProbe::new(sim.net_mut(), r);
    let plan = FaultPlan::new().degrade_link(
        r,
        0.25,
        SimTime::from_secs_f64(1.0),
        Some(SimDuration::from_secs_f64(1.0)),
    );
    sim.install_faults(&plan);
    sim.schedule(SimDuration::from_secs_f64(3.0), Token::new(9, 0, 0));
    while sim.next_event().is_some() {}
    let log = sim.fault_log().to_vec();
    let sample = probe.sample_annotated(sim.net_mut(), &log);
    assert_eq!(sample.faults.len(), 2, "expected apply + restore in window");
    assert_eq!(sample.capacity_now, 1e9, "restore must return the baseline");
}
