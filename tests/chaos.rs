//! Elastic failure-recovery guarantees for the multi-job scheduler: crash
//! handling reconciles with the single-job `TrainingSim` and the recovery
//! replay closed forms, dead nodes are quarantined until repair, every
//! recovery policy survives a full chaos plan without stalling, the whole
//! chaos scenario is bit-reproducible for any sweep worker count, and the
//! availability headline (AIACC's tail degrades less than Horovod's under
//! identical seeded chaos) holds.

use aiacc::prelude::*;
use aiacc::sched::{JobSpec, MultiJobSim, RecoveryPolicy, SchedError};
use aiacc::trainer::recovery::{replay_elastic_join, replay_failure_recovery, RecoveryConfig};
use aiacc::trainer::TrainingSim;

fn one_job(model: &str, gpus: usize, engine: EngineKind, iterations: usize, seed: u64) -> Workload {
    Workload {
        jobs: vec![JobSpec {
            id: 0,
            arrival_secs: 0.0,
            model: model.to_string(),
            gpus,
            engine,
            iterations,
            seed,
        }],
    }
}

/// A crash that repairs itself well inside the ~20 s checkpoint-restart
/// pause, so the victim re-places on its original nodes.
fn crash_with_quick_repair(node: u32, at_secs: f64) -> FaultPlan {
    FaultPlan::new().crash_node_for(
        node,
        SimTime::from_secs_f64(at_secs),
        SimDuration::from_secs_f64(5.0),
    )
}

/// The standard chaos scenario the CLI's `--chaos` flag drives: 8 jobs on a
/// 4-node cluster under a seeded plan with a guaranteed crash + straggler.
fn chaos_cfg(seed: u64, recovery: RecoveryPolicy) -> MultiJobCfg {
    let cluster = ClusterSpec::tcp_v100(32);
    let wl = Workload::generate(&WorkloadCfg::new(8, seed).with_iterations(3));
    let plan = FaultPlan::chaos(seed, cluster.nodes, SimDuration::from_secs_f64(40.0), 6);
    MultiJobCfg::new(cluster, PlacePolicy::Spread, wl)
        .with_faults(plan)
        .with_recovery(recovery)
        .with_straggler_mitigation(1.3)
}

/// With a single job occupying the whole cluster, a node crash under
/// `RecoveryPolicy::Restart` must cost exactly what the single-job
/// `TrainingSim` charges for the same `FaultPlan`: the interrupted
/// iteration absorbs the lost attempt plus the replayed checkpoint-restart
/// pause, and every other iteration is untouched.
#[test]
fn single_job_crash_matches_training_sim() {
    let cluster = ClusterSpec::tcp_v100(16);
    let plan = crash_with_quick_repair(1, 1.0);
    let mut single = TrainingSim::new(
        TrainingSimConfig::new(cluster.clone(), zoo::vgg16(), EngineKind::aiacc_default())
            .with_faults(plan.clone()),
    );
    let expect: Vec<f64> = (0..4).map(|_| single.run_iteration().as_secs_f64()).collect();

    let wl = one_job("vgg16", 16, EngineKind::aiacc_default(), 4, 42);
    let report = run_multijob(
        MultiJobCfg::new(cluster, PlacePolicy::Packed, wl)
            .with_faults(plan)
            .with_recovery(RecoveryPolicy::Restart),
    );
    let job = &report.jobs[0];
    assert_eq!(job.crashes, 1, "the crash must hit the whole-cluster gang");
    assert_eq!(job.restarts, 1);
    assert_eq!(job.iter_secs, expect, "scheduler crash accounting diverged from TrainingSim");
}

/// `Restart` recovery charges the replayed checkpoint-restart timeline; the
/// job's recovery bill must reconcile with the closed form within 10%.
#[test]
fn restart_recovery_reconciles_with_replay_closed_form() {
    let cluster = ClusterSpec::tcp_v100(16);
    let wl = one_job("vgg16", 16, EngineKind::aiacc_default(), 4, 42);
    let report = run_multijob(
        MultiJobCfg::new(cluster.clone(), PlacePolicy::Packed, wl)
            .with_faults(crash_with_quick_repair(0, 1.0))
            .with_recovery(RecoveryPolicy::Restart),
    );
    let job = &report.jobs[0];
    assert_eq!(job.restarts, 1);
    let closed =
        replay_failure_recovery(&cluster, &zoo::vgg16(), RecoveryConfig::default()).total_secs;
    let ratio = job.recovery_secs / (f64::from(job.restarts) * closed);
    assert!(
        (ratio - 1.0).abs() < 0.10,
        "restart bill {} vs closed form {} per restart",
        job.recovery_secs,
        closed
    );
    // The pause lands inside the victim's JCT, not beside it.
    assert!(job.jct_secs() > closed, "JCT {} must absorb the pause {}", job.jct_secs(), closed);
}

/// `Shrink` recovery charges an elastic membership change on the surviving
/// sub-cluster; the bill must reconcile with `replay_elastic_join` on the
/// survivor spec within 10%, and the shrunken gang must lose its dead node.
#[test]
fn shrink_recovery_reconciles_with_elastic_join_closed_form() {
    let cluster = ClusterSpec::tcp_v100(16); // 2 nodes x 8
    let wl = one_job("vgg16", 16, EngineKind::aiacc_default(), 4, 42);
    let report = run_multijob(
        MultiJobCfg::new(cluster, PlacePolicy::Packed, wl)
            .with_faults(FaultPlan::new().crash_node_for(
                1,
                SimTime::from_secs_f64(1.0),
                SimDuration::from_secs_f64(1000.0),
            ))
            .with_recovery(RecoveryPolicy::Shrink),
    );
    let job = &report.jobs[0];
    assert_eq!(job.shrinks, 1);
    assert_eq!(job.restarts, 0);
    assert_eq!(job.nodes_used, 1, "gang must continue on the lone surviving node");
    assert!(!job.failed);
    assert_eq!(job.iter_secs.len(), 4, "elastic continue must still finish every iteration");
    let survivors = ClusterSpec::tcp_v100(8);
    let closed =
        replay_elastic_join(&survivors, &zoo::vgg16(), 1, RecoveryConfig::default()).total_secs;
    let ratio = job.recovery_secs / closed;
    assert!(
        (ratio - 1.0).abs() < 0.10,
        "shrink bill {} vs elastic-join closed form {}",
        job.recovery_secs,
        closed
    );
    // Shrinking is much cheaper than a full checkpoint restart — that is
    // the point of the elastic path.
    let restart = replay_failure_recovery(
        &ClusterSpec::tcp_v100(16),
        &zoo::vgg16(),
        RecoveryConfig::default(),
    )
    .total_secs;
    assert!(job.recovery_secs < restart / 2.0);
}

/// A crashed node's GPUs are quarantined: a gang that fits only with the
/// dead node's capacity must wait in the queue until the repair lands, and
/// its start time pins to the repair instant.
#[test]
fn dead_node_is_quarantined_until_repair() {
    let mut wl = one_job("tiny_cnn", 8, EngineKind::aiacc_default(), 2, 9);
    wl.jobs.push(JobSpec {
        id: 1,
        arrival_secs: 2.0,
        model: "vgg16".to_string(),
        gpus: 16,
        engine: EngineKind::aiacc_default(),
        iterations: 2,
        seed: 10,
    });
    let crash_at = 0.5;
    let repair_after = 4.0;
    let report = run_multijob(
        MultiJobCfg::new(ClusterSpec::tcp_v100(16), PlacePolicy::Packed, wl)
            .with_faults(FaultPlan::new().crash_node_for(
                1,
                SimTime::from_secs_f64(crash_at),
                SimDuration::from_secs_f64(repair_after),
            ))
            .with_recovery(RecoveryPolicy::Restart),
    );
    // Job 0 packs onto node 0; the crash on node 1 never touches it.
    assert_eq!(report.jobs[0].crashes, 0);
    // Job 1 needs the whole cluster: it arrives at 2.0 s while node 1 is
    // down and must not start before the repair at 4.5 s.
    let job = &report.jobs[1];
    assert!(!job.failed);
    assert!(
        job.start_secs >= crash_at + repair_after - 1e-9,
        "job 1 started at {} on a cluster missing a node",
        job.start_secs
    );
    assert_eq!(job.iter_secs.len(), 2);
}

/// With the dead node never repaired, a gang larger than the surviving
/// capacity cannot wait forever: the anti-stall path must fail it
/// deterministically instead of deadlocking the queue.
#[test]
fn unplaceable_job_fails_instead_of_stalling() {
    let mut wl = one_job("tiny_cnn", 8, EngineKind::aiacc_default(), 2, 9);
    wl.jobs.push(JobSpec {
        id: 1,
        arrival_secs: 2.0,
        model: "vgg16".to_string(),
        gpus: 16,
        engine: EngineKind::aiacc_default(),
        iterations: 2,
        seed: 10,
    });
    let report = run_multijob(
        MultiJobCfg::new(ClusterSpec::tcp_v100(16), PlacePolicy::Packed, wl)
            .with_faults(FaultPlan::new().crash_node(1, SimTime::from_secs_f64(0.5)))
            .with_recovery(RecoveryPolicy::Restart),
    );
    assert!(!report.jobs[0].failed, "job 0 fits on the surviving node");
    assert!(report.jobs[1].failed, "a 16-GPU gang cannot ever fit on 8 surviving GPUs");
    assert!(report.jobs[1].iter_secs.is_empty());
    let m = summarize(&report);
    assert_eq!(m.njobs_failed, 1);
}

/// Every recovery policy must drive the full chaos plan (guaranteed crash +
/// straggler plus mixed NIC faults) to completion with no stalled jobs:
/// every job either finishes all its iterations or is explicitly failed.
#[test]
fn chaos_completes_without_stalls_for_every_policy() {
    let plan = FaultPlan::chaos(7, 4, SimDuration::from_secs_f64(40.0), 6);
    assert!(
        plan.events().iter().any(|e| matches!(e.kind, FaultKind::Straggler { .. })),
        "chaos plan must schedule a straggler"
    );
    assert!(!plan.crash_spans().is_empty(), "chaos plan must schedule a crash");

    for policy in [RecoveryPolicy::Restart, RecoveryPolicy::Shrink, RecoveryPolicy::Fail] {
        let report = run_multijob(chaos_cfg(7, policy));
        assert_eq!(report.jobs.len(), 8);
        for job in &report.jobs {
            assert!(
                job.failed || job.iter_secs.len() == 3,
                "{policy:?}: job {} stalled with {} of 3 iterations and was not failed",
                job.id,
                job.iter_secs.len()
            );
        }
        let m = summarize(&report);
        assert!(m.crashes_total >= 1, "{policy:?}: no crash ever hit a gang");
        match policy {
            RecoveryPolicy::Restart => assert!(m.restarts_total >= 1 && m.njobs_failed == 0),
            RecoveryPolicy::Shrink => assert!(m.shrinks_total >= 1 && m.njobs_failed == 0),
            RecoveryPolicy::Fail => assert!(m.njobs_failed >= 1),
        }
    }
}

/// Jobs killed by `RecoveryPolicy::Fail` are counted, not averaged: the JCT
/// percentiles must be computed over survivors only.
#[test]
fn failed_jobs_are_excluded_from_jct_percentiles() {
    let report = run_multijob(chaos_cfg(3, RecoveryPolicy::Fail));
    let m = summarize(&report);
    assert!(m.njobs_failed >= 1, "seed 3's guaranteed crash must kill at least one job");
    let worst_survivor =
        report.jobs.iter().filter(|j| !j.failed).map(|j| j.jct_secs()).fold(0.0_f64, f64::max);
    assert!(
        m.jct_p99_secs <= worst_survivor + 1e-9,
        "p99 {} exceeds the worst surviving JCT {} — a failed job leaked into the percentile",
        m.jct_p99_secs,
        worst_survivor
    );
}

/// The whole chaos scenario — crashes, repairs, shrinks, straggler
/// mitigation — must be a pure function of (cluster, workload, plan,
/// policy): repeats and policy sweeps fanned over different worker counts
/// give byte-identical summaries.
#[test]
fn chaos_scenario_is_bit_reproducible() {
    let policies = [RecoveryPolicy::Restart, RecoveryPolicy::Shrink, RecoveryPolicy::Fail];
    let sweep = |jobs: usize| -> Vec<String> {
        aiacc::simnet::par::set_jobs(jobs);
        let out = aiacc::simnet::par::map(&policies, |&policy| {
            summarize(&run_multijob(chaos_cfg(7, policy))).to_tsv_row()
        });
        aiacc::simnet::par::set_jobs(1);
        out
    };
    let serial = sweep(1);
    let parallel = sweep(4);
    assert_eq!(serial, parallel, "chaos summaries differ across sweep worker counts");
    assert_eq!(serial, sweep(4), "repeated parallel chaos sweep diverged");
}

/// Invalid configurations are rejected with typed errors before any event
/// is scheduled — including fault plans that target nodes the cluster does
/// not have.
#[test]
fn try_new_rejects_bad_configs_with_typed_errors() {
    let cluster = ClusterSpec::tcp_v100(16);
    let ok = || one_job("tiny_cnn", 8, EngineKind::aiacc_default(), 2, 1);
    let cfg = |wl| MultiJobCfg::new(cluster.clone(), PlacePolicy::Packed, wl);
    let reject = |cfg: MultiJobCfg| -> SchedError {
        match MultiJobSim::try_new(cfg) {
            Ok(_) => panic!("bad config was accepted"),
            Err(e) => e,
        }
    };

    let err = reject(cfg(Workload { jobs: vec![] }));
    assert!(matches!(err, SchedError::EmptyWorkload), "{err}");

    let mut wl = ok();
    wl.jobs[0].id = 3;
    let err = reject(cfg(wl));
    assert!(matches!(err, SchedError::NonDenseJobIds { .. }), "{err}");

    let mut wl = ok();
    wl.jobs[0].gpus = 64;
    let err = reject(cfg(wl));
    assert!(matches!(err, SchedError::BadGangSize { gpus: 64, .. }), "{err}");

    let mut wl = ok();
    wl.jobs[0].iterations = 0;
    let err = reject(cfg(wl));
    assert!(matches!(err, SchedError::ZeroIterations { job: 0 }), "{err}");

    let mut wl = ok();
    wl.jobs[0].model = "not_a_model".to_string();
    let err = reject(cfg(wl));
    assert!(matches!(err, SchedError::UnknownModel { .. }), "{err}");

    let err =
        reject(cfg(ok()).with_faults(FaultPlan::new().crash_node(9, SimTime::from_secs_f64(1.0))));
    assert!(matches!(err, SchedError::FaultNodeOutOfRange { node: 9, nodes: 2 }), "{err}");
}

/// The availability headline: under identical seeded chaos (same workload,
/// same crash/straggler/NIC-fault plan), AIACC's p99 JCT degrades less than
/// single-stream Horovod's in absolute terms. Reduced-seed version of the
/// `bench_chaos` gate.
#[test]
fn aiacc_tail_degrades_less_under_chaos() {
    let points = aiacc_bench::chaos_points(aiacc_bench::CHAOS_QUICK_SEEDS, 6);
    let aiacc = aiacc_bench::mean_delta_p99(&points, "aiacc");
    let horovod = aiacc_bench::mean_delta_p99(&points, "horovod");
    assert!(
        aiacc < horovod,
        "mean delta-p99 under chaos: aiacc {aiacc:.3}s vs horovod {horovod:.3}s"
    );
    assert!(points.iter().any(|p| p.chaos.crashes_total > 0), "no crash ever hit a gang");
    assert!(points.iter().any(|p| p.chaos.mitigations_total > 0), "no straggler was mitigated");
}
