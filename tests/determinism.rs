//! Reproducibility guarantees: identical seeds give identical simulations,
//! different seeds differ, and results are independent of incidental
//! environment state.

use aiacc::prelude::*;

fn run_once(seed: u64, engine: EngineKind) -> Vec<f64> {
    run_training_sim(
        TrainingSimConfig::new(ClusterSpec::tcp_v100(16), zoo::resnet50(), engine)
            .with_iterations(1, 3)
            .with_seed(seed),
    )
    .iter_secs
}

#[test]
fn identical_seeds_identical_results_for_every_engine() {
    for engine in [
        EngineKind::aiacc_default(),
        EngineKind::Horovod(Default::default()),
        EngineKind::PyTorchDdp(Default::default()),
        EngineKind::BytePs(Default::default()),
        EngineKind::MxnetKvStore(Default::default()),
    ] {
        assert_eq!(run_once(7, engine), run_once(7, engine), "{}", engine.label());
    }
}

#[test]
fn different_seeds_shift_jitter() {
    let a = run_once(1, EngineKind::aiacc_default());
    let b = run_once(2, EngineKind::aiacc_default());
    assert_ne!(a, b, "jitter seeds had no effect");
    // ... but only within the jitter amplitude.
    for (x, y) in a.iter().zip(&b) {
        assert!((x - y).abs() / x < 0.1, "{x} vs {y}");
    }
}

#[test]
fn data_parallel_training_is_bit_reproducible() {
    let mk = || {
        let mut t = DataParallelTrainer::new(DataParallelConfig::new(vec![4, 8, 2], 3, 4));
        t.train(25);
        t.model().params_flat()
    };
    assert_eq!(mk(), mk());
}

#[test]
fn tuner_is_reproducible_given_seed() {
    use aiacc::trainer::tune::tune_aiacc;
    let model = zoo::tiny_cnn();
    let cluster = ClusterSpec::tcp_v100(8);
    let (a, _) = tune_aiacc(&model, &cluster, 12, 99, None);
    let (b, _) = tune_aiacc(&model, &cluster, 12, 99, None);
    assert_eq!(a, b);
}

#[test]
fn parallel_sweeps_are_bit_identical_across_worker_counts() {
    use aiacc::simnet::par;
    // A figure table (many independent sweep points) and a tuning report
    // (batched tuner) must not change by a single byte when the worker
    // count does. Serialize both to their TSV form to compare the exact
    // bytes a user would diff.
    let run = |jobs: usize| {
        par::set_jobs(jobs);
        let table = aiacc_bench::ablation_granularity().to_tsv();
        let (cfg, report) = aiacc::trainer::tune::tune_aiacc(
            &zoo::tiny_cnn(),
            &ClusterSpec::tcp_v100(8),
            9,
            4,
            None,
        );
        par::set_jobs(1);
        (table, cfg, report)
    };
    let serial = run(1);
    for jobs in [2, 8] {
        let parallel = run(jobs);
        assert_eq!(parallel.0, serial.0, "Table TSV differs at --jobs {jobs}");
        assert_eq!(parallel.1, serial.1, "tuned config differs at --jobs {jobs}");
        assert_eq!(
            parallel.2.evaluations, serial.2.evaluations,
            "TuneReport evaluations differ at --jobs {jobs}"
        );
        assert_eq!(parallel.2.usage, serial.2.usage, "bandit usage differs at --jobs {jobs}");
        assert_eq!(parallel.2.best_value.to_bits(), serial.2.best_value.to_bits());
    }
}

#[test]
fn simulator_event_order_is_stable_under_ties() {
    // Schedule many coincident timers and flows; the delivered order must be
    // a pure function of the inputs.
    let order = || {
        let mut sim = Simulator::new();
        let r = sim.net_mut().add_resource("l", 100.0);
        for k in 0..10u32 {
            sim.schedule(SimDuration::from_nanos(50), aiacc::simnet::Token::new(k, 0, 0));
            sim.start_flow(FlowSpec::new(vec![r], 0.5)); // all complete together
        }
        let mut seq = Vec::new();
        while let Some((_, ev)) = sim.next_event() {
            seq.push(format!("{ev:?}"));
        }
        seq
    };
    assert_eq!(order(), order());
}
