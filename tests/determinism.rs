//! Reproducibility guarantees: identical seeds give identical simulations,
//! different seeds differ, and results are independent of incidental
//! environment state.

use aiacc::prelude::*;

fn run_once(seed: u64, engine: EngineKind) -> Vec<f64> {
    run_training_sim(
        TrainingSimConfig::new(ClusterSpec::tcp_v100(16), zoo::resnet50(), engine)
            .with_iterations(1, 3)
            .with_seed(seed),
    )
    .iter_secs
}

#[test]
fn identical_seeds_identical_results_for_every_engine() {
    for engine in [
        EngineKind::aiacc_default(),
        EngineKind::Horovod(Default::default()),
        EngineKind::PyTorchDdp(Default::default()),
        EngineKind::BytePs(Default::default()),
        EngineKind::MxnetKvStore(Default::default()),
    ] {
        assert_eq!(run_once(7, engine), run_once(7, engine), "{}", engine.label());
    }
}

#[test]
fn different_seeds_shift_jitter() {
    let a = run_once(1, EngineKind::aiacc_default());
    let b = run_once(2, EngineKind::aiacc_default());
    assert_ne!(a, b, "jitter seeds had no effect");
    // ... but only within the jitter amplitude.
    for (x, y) in a.iter().zip(&b) {
        assert!((x - y).abs() / x < 0.1, "{x} vs {y}");
    }
}

#[test]
fn data_parallel_training_is_bit_reproducible() {
    let mk = || {
        let mut t = DataParallelTrainer::new(DataParallelConfig::new(vec![4, 8, 2], 3, 4));
        t.train(25);
        t.model().params_flat()
    };
    assert_eq!(mk(), mk());
}

#[test]
fn tuner_is_reproducible_given_seed() {
    use aiacc::trainer::tune::tune_aiacc;
    let model = zoo::tiny_cnn();
    let cluster = ClusterSpec::tcp_v100(8);
    let (a, _) = tune_aiacc(&model, &cluster, 12, 99, None);
    let (b, _) = tune_aiacc(&model, &cluster, 12, 99, None);
    assert_eq!(a, b);
}

#[test]
fn simulator_event_order_is_stable_under_ties() {
    // Schedule many coincident timers and flows; the delivered order must be
    // a pure function of the inputs.
    let order = || {
        let mut sim = Simulator::new();
        let r = sim.net_mut().add_resource("l", 100.0);
        for k in 0..10u32 {
            sim.schedule(SimDuration::from_nanos(50), aiacc::simnet::Token::new(k, 0, 0));
            sim.start_flow(FlowSpec::new(vec![r], 0.5)); // all complete together
        }
        let mut seq = Vec::new();
        while let Some((_, ev)) = sim.next_event() {
            seq.push(format!("{ev:?}"));
        }
        seq
    };
    assert_eq!(order(), order());
}
