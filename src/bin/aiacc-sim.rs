//! `aiacc-sim` — run one simulated distributed-training job from the
//! command line.
//!
//! ```text
//! aiacc-sim [train] [--model NAME] [--gpus N] [--engine aiacc|horovod|ddp|byteps|kvstore]
//!           [--streams N] [--granularity MIB] [--batch N] [--rdma]
//!           [--racks NODES_PER_RACK] [--flat-solver]
//!           [--compress none|fp16|int8|topk:K] [--compression] [--tree]
//!           [--tune BUDGET] [--iters N] [--verbose]
//!           [--faults degrade|flap|straggler|crash] [--trace OUT.json]
//!           [--jobs N]
//!
//! aiacc-sim schedule [--policy packed|spread|topo|all] [--njobs N] [--seed S]
//!           [--gpus N] [--engine E] [--mix comm-heavy|mixed|tiny] [--iters N]
//!           [--rdma] [--compress SCHEME] [--verbose]
//!           [--load FILE.tsv] [--save FILE.tsv] [--trace OUT.json]
//!           [--jobs N]
//! ```
//!
//! `aiacc-sim` simulates one training job; `aiacc-sim schedule` admits a
//! whole seeded *workload* of jobs onto one shared cluster — gang-placed by
//! the chosen policy, their gradient flows contending on the same fabric —
//! and prints per-job completion times plus cluster tail-JCT metrics as
//! deterministic TSV.
//!
//! `--jobs N` (or the `AIACC_JOBS` environment variable) sets how many
//! worker threads the shared persistent pool may use. It accelerates both
//! parallel sweeps — e.g. the `--tune` batch evaluations, or `schedule
//! --policy all`'s per-policy fan-out — and a *single* `train`/`schedule`
//! run, whose fluid solver fans dirty network components across the same
//! pool (sweeps take priority: while a sweep owns the pool, each member's
//! solver runs serially, so the machine is never oversubscribed). Results
//! are bit-identical regardless of the worker count.
//!
//! `--racks N` packs nodes into racks of `N` behind 2:1-oversubscribed ToR
//! uplinks and a shared spine, so cross-rack gradient traffic contends the
//! way it does on a real datacenter fabric (the default is a flat,
//! single-tier network). `--flat-solver` (or the `AIACC_SOLVER` environment
//! variable: `flat`, `full` and `flat-solver` all select the flat solve;
//! `partitioned` is the default) disables the partitioned rack-by-rack
//! fluid solver in favour of the flat whole-network solve — results are
//! bit-identical either way; the flag exists for benchmarking and for the
//! CI equivalence check.
//!
//! `--compress SCHEME` puts a gradient compressor on the wire for the AIACC
//! engine: `fp16` and `int8` quantize every unit, `topk:K` keeps the top
//! 1/K coordinates by magnitude (RedSync-style, with error-feedback
//! residuals), and `none` (the default) sends raw f32. The timing plane
//! charges the exact compressed byte count plus a compress/decompress
//! compute cost; with a lossy scheme the train command also trains a real
//! MLP through the exact data plane twice — uncompressed and compressed —
//! and prints the measured loss delta and per-step wire bytes.
//! `--compression` is kept as an alias for `--compress fp16`.
//!
//! `--verbose` (or setting `AIACC_VERBOSE`) prints solver diagnostics —
//! per-run statistics and the solve/apply/queue wall-time breakdown — to
//! stderr; by default they are suppressed.
//!
//! Examples:
//! `aiacc-sim --model vgg16 --gpus 32 --engine horovod`
//! `aiacc-sim --model bert_large --gpus 64 --rdma --tune 40`
//! `aiacc-sim --model resnet50 --gpus 16 --faults degrade`
//! `aiacc-sim --model vgg16 --gpus 16 --trace trace.json` (open in Perfetto)
//! `aiacc-sim schedule --njobs 8 --policy packed --seed 7`
//! `aiacc-sim schedule --njobs 8 --policy all --jobs 4`

use aiacc::collectives::Algo;
use aiacc::prelude::*;
use aiacc::sched::{JobMix, MultiJobSim};
use aiacc::simnet::FaultPlan;
use aiacc::trainer::tune::tune_aiacc;

struct Args {
    model: String,
    gpus: usize,
    engine: String,
    streams: Option<usize>,
    granularity_mib: Option<f64>,
    batch: Option<usize>,
    rdma: bool,
    racks: Option<usize>,
    flat_solver: bool,
    compress: Scheme,
    tree: bool,
    tune: Option<usize>,
    iters: usize,
    verbose: bool,
    faults: Option<String>,
    trace: Option<String>,
    jobs: Option<usize>,
}

/// `--verbose` or the `AIACC_VERBOSE` environment variable: gates the
/// solver-diagnostics stderr lines.
fn verbose_enabled(flag: bool) -> bool {
    flag || std::env::var_os("AIACC_VERBOSE").is_some_and(|v| !v.is_empty() && v != "0")
}

/// Builds the canned fault scenario selected by `--faults`.
///
/// Each scenario targets logical nodes, so it adapts to any cluster size;
/// the training simulation resolves node targets to that node's NIC
/// resources.
fn fault_scenario(name: &str, nodes: usize) -> Result<FaultPlan, String> {
    let last = nodes.saturating_sub(1) as u32;
    match name {
        // Every NIC loses half its capacity early on and never recovers.
        "degrade" => {
            let mut plan = FaultPlan::new();
            for n in 0..nodes as u32 {
                plan = plan.degrade_node(n, 0.5, SimTime::from_secs_f64(0.1), None);
            }
            Ok(plan)
        }
        // The last node's NIC goes dark for 100 ms mid-iteration.
        "flap" => Ok(FaultPlan::new().with_event(aiacc::simnet::FaultEvent {
            target: aiacc::simnet::FaultTarget::Node(last),
            kind: aiacc::simnet::FaultKind::Flap,
            at: SimTime::from_secs_f64(0.3),
            duration: Some(SimDuration::from_secs_f64(0.1)),
        })),
        // One node computes 1.5× slower for a two-second window.
        "straggler" => Ok(FaultPlan::new().straggle_node(
            last,
            1.5,
            SimTime::from_secs_f64(0.2),
            Some(SimDuration::from_secs_f64(2.0)),
        )),
        // One node dies mid-run; the job pays a checkpoint restart.
        "crash" => Ok(FaultPlan::new().crash_node(last, SimTime::from_secs_f64(1.0))),
        other => Err(format!("unknown fault scenario {other}; use degrade|flap|straggler|crash")),
    }
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        model: "resnet50".to_string(),
        gpus: 32,
        engine: "aiacc".to_string(),
        streams: None,
        granularity_mib: None,
        batch: None,
        rdma: false,
        racks: None,
        flat_solver: false,
        compress: Scheme::None,
        tree: false,
        tune: None,
        iters: 3,
        verbose: false,
        faults: None,
        trace: None,
        jobs: None,
    };
    let mut i = 0;
    let value = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        argv.get(*i).cloned().ok_or_else(|| format!("{} needs a value", argv[*i - 1]))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--model" => args.model = value(&mut i)?,
            "--gpus" => args.gpus = value(&mut i)?.parse().map_err(|e| format!("--gpus: {e}"))?,
            "--engine" => args.engine = value(&mut i)?,
            "--streams" => {
                args.streams = Some(value(&mut i)?.parse().map_err(|e| format!("--streams: {e}"))?)
            }
            "--granularity" => {
                args.granularity_mib =
                    Some(value(&mut i)?.parse().map_err(|e| format!("--granularity: {e}"))?)
            }
            "--batch" => {
                args.batch = Some(value(&mut i)?.parse().map_err(|e| format!("--batch: {e}"))?)
            }
            "--rdma" => args.rdma = true,
            "--racks" => {
                let n: usize = value(&mut i)?.parse().map_err(|e| format!("--racks: {e}"))?;
                if n == 0 {
                    return Err("--racks needs a positive nodes-per-rack count".to_string());
                }
                args.racks = Some(n);
            }
            "--flat-solver" => args.flat_solver = true,
            "--compress" => {
                args.compress = value(&mut i)?.parse().map_err(|e| format!("--compress: {e}"))?
            }
            "--compression" => args.compress = Scheme::Fp16,
            "--tree" => args.tree = true,
            "--tune" => {
                args.tune = Some(value(&mut i)?.parse().map_err(|e| format!("--tune: {e}"))?)
            }
            "--iters" => {
                args.iters = value(&mut i)?.parse().map_err(|e| format!("--iters: {e}"))?
            }
            "--verbose" => args.verbose = true,
            "--faults" => args.faults = Some(value(&mut i)?),
            "--trace" => args.trace = Some(value(&mut i)?),
            "--jobs" => {
                let n: usize = value(&mut i)?.parse().map_err(|e| format!("--jobs: {e}"))?;
                if n == 0 {
                    return Err("--jobs needs a positive integer".to_string());
                }
                args.jobs = Some(n);
            }
            "--help" | "-h" => {
                return Err("usage: aiacc-sim [train] [--model NAME] [--gpus N] [--engine E] \
                            [--streams N] [--granularity MIB] [--batch N] [--rdma] \
                            [--racks NODES_PER_RACK] [--flat-solver] \
                            [--compress none|fp16|int8|topk:K] [--compression] [--tree] \
                            [--tune BUDGET] [--iters N] [--verbose] \
                            [--faults degrade|flap|straggler|crash] [--trace OUT.json] \
                            [--jobs N]\n       aiacc-sim schedule ... \
                            (multi-job scheduler; see `aiacc-sim schedule --help`)\n\
                            --compress puts a gradient compressor on the AIACC wire \
                            (topk:K keeps 1/K coordinates, with error feedback); \
                            --compression is an alias for --compress fp16.\n\
                            --verbose (or AIACC_VERBOSE=1) prints solver diagnostics \
                            to stderr.\n\
                            AIACC_SOLVER selects the fluid solver: \"flat\", \"full\" \
                            or \"flat-solver\" force the flat whole-network solve; \
                            \"partitioned\" (default) solves dirty components only."
                    .to_string())
            }
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
        i += 1;
    }
    Ok(args)
}

struct SchedArgs {
    policy: String,
    njobs: usize,
    seed: u64,
    gpus: usize,
    engine: Option<String>,
    mix: String,
    iters: usize,
    rdma: bool,
    racks: Option<usize>,
    flat_solver: bool,
    compress: Scheme,
    verbose: bool,
    load: Option<String>,
    save: Option<String>,
    trace: Option<String>,
    jobs: Option<usize>,
    chaos: bool,
    chaos_events: usize,
    chaos_horizon_secs: f64,
    recovery: String,
    stream: bool,
    arrivals: String,
    interarrival: Option<f64>,
    arrival_period_secs: f64,
    window: u64,
    nslots: Option<usize>,
    snapshot_every: Option<u64>,
    snapshot: Option<String>,
    resume: Option<String>,
    stop_after_snapshot: bool,
    per_job: bool,
}

fn parse_sched_args(argv: &[String]) -> Result<SchedArgs, String> {
    let mut args = SchedArgs {
        policy: "packed".to_string(),
        njobs: 8,
        seed: 7,
        gpus: 32,
        engine: None,
        mix: "comm-heavy".to_string(),
        iters: 6,
        rdma: false,
        racks: None,
        flat_solver: false,
        compress: Scheme::None,
        verbose: false,
        load: None,
        save: None,
        trace: None,
        jobs: None,
        chaos: false,
        chaos_events: 4,
        chaos_horizon_secs: 40.0,
        recovery: "restart".to_string(),
        stream: false,
        arrivals: "poisson".to_string(),
        interarrival: None,
        arrival_period_secs: 600.0,
        window: 1000,
        nslots: None,
        snapshot_every: None,
        snapshot: None,
        resume: None,
        stop_after_snapshot: false,
        per_job: false,
    };
    let mut i = 0;
    let value = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        argv.get(*i).cloned().ok_or_else(|| format!("{} needs a value", argv[*i - 1]))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--policy" => args.policy = value(&mut i)?,
            "--njobs" => {
                args.njobs = value(&mut i)?.parse().map_err(|e| format!("--njobs: {e}"))?
            }
            "--seed" => args.seed = value(&mut i)?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--gpus" => args.gpus = value(&mut i)?.parse().map_err(|e| format!("--gpus: {e}"))?,
            "--engine" => args.engine = Some(value(&mut i)?),
            "--mix" => args.mix = value(&mut i)?,
            "--iters" => {
                args.iters = value(&mut i)?.parse().map_err(|e| format!("--iters: {e}"))?
            }
            "--rdma" => args.rdma = true,
            "--racks" => {
                let n: usize = value(&mut i)?.parse().map_err(|e| format!("--racks: {e}"))?;
                if n == 0 {
                    return Err("--racks needs a positive nodes-per-rack count".to_string());
                }
                args.racks = Some(n);
            }
            "--flat-solver" => args.flat_solver = true,
            "--compress" => {
                args.compress = value(&mut i)?.parse().map_err(|e| format!("--compress: {e}"))?
            }
            "--verbose" => args.verbose = true,
            "--load" => args.load = Some(value(&mut i)?),
            "--save" => args.save = Some(value(&mut i)?),
            "--trace" => args.trace = Some(value(&mut i)?),
            "--jobs" => {
                let n: usize = value(&mut i)?.parse().map_err(|e| format!("--jobs: {e}"))?;
                if n == 0 {
                    return Err("--jobs needs a positive integer".to_string());
                }
                args.jobs = Some(n);
            }
            "--chaos" => args.chaos = true,
            "--chaos-events" => {
                args.chaos_events =
                    value(&mut i)?.parse().map_err(|e| format!("--chaos-events: {e}"))?
            }
            "--chaos-horizon" => {
                args.chaos_horizon_secs =
                    value(&mut i)?.parse().map_err(|e| format!("--chaos-horizon: {e}"))?
            }
            "--recovery" => args.recovery = value(&mut i)?,
            "--stream" => args.stream = true,
            "--arrivals" => args.arrivals = value(&mut i)?,
            "--interarrival" => {
                args.interarrival =
                    Some(value(&mut i)?.parse().map_err(|e| format!("--interarrival: {e}"))?)
            }
            "--arrival-period" => {
                args.arrival_period_secs =
                    value(&mut i)?.parse().map_err(|e| format!("--arrival-period: {e}"))?
            }
            "--window" => {
                args.window = value(&mut i)?.parse().map_err(|e| format!("--window: {e}"))?
            }
            "--nslots" => {
                args.nslots = Some(value(&mut i)?.parse().map_err(|e| format!("--nslots: {e}"))?)
            }
            "--snapshot-every" => {
                args.snapshot_every =
                    Some(value(&mut i)?.parse().map_err(|e| format!("--snapshot-every: {e}"))?)
            }
            "--snapshot" => args.snapshot = Some(value(&mut i)?),
            "--resume" => args.resume = Some(value(&mut i)?),
            "--stop-after-snapshot" => args.stop_after_snapshot = true,
            "--per-job" => args.per_job = true,
            "--help" | "-h" => {
                return Err("usage: aiacc-sim schedule [--policy packed|spread|topo|all] \
                            [--njobs N] [--seed S] [--gpus N] [--engine E] \
                            [--mix comm-heavy|mixed|tiny] [--iters N] [--rdma] \
                            [--racks NODES_PER_RACK] [--flat-solver] \
                            [--compress none|fp16|int8|topk:K] [--verbose] \
                            [--load FILE.tsv] [--save FILE.tsv] [--trace OUT.json] [--jobs N] \
                            [--chaos] [--chaos-events N] [--chaos-horizon SECS] \
                            [--recovery restart|shrink|fail]\n       \
                            aiacc-sim schedule --stream \
                            [--arrivals poisson|diurnal|bursty|TRACE.tsv] [--njobs N] \
                            [--interarrival SECS] [--arrival-period SECS] [--window N] \
                            [--nslots N] [--snapshot-every N] [--snapshot PATH] \
                            [--resume PATH] [--stop-after-snapshot] [--per-job]"
                    .to_string())
            }
            other => return Err(format!("unknown flag {other} (try schedule --help)")),
        }
        i += 1;
    }
    Ok(args)
}

/// Renders one policy's scenario as deterministic TSV: a per-job block
/// followed by the cluster-metrics block. Fixed 9-digit float precision so
/// equal runs are byte-for-byte equal regardless of `--jobs`.
fn sched_render(report: &aiacc::sched::MultiJobReport) -> String {
    let mut out = String::from(aiacc::sched::JobOutcome::tsv_header());
    out.push('\n');
    for j in &report.jobs {
        out.push_str(&j.tsv_row());
        out.push('\n');
    }
    let m = aiacc::sched::summarize(report);
    out.push_str(aiacc::sched::ClusterMetrics::tsv_header());
    out.push('\n');
    out.push_str(&m.to_tsv_row());
    out.push('\n');
    out
}

/// `schedule --stream`: open-loop arrivals drained through the slot-pool
/// streaming replay. Headers are printed only on a fresh run so that a
/// stopped run's output concatenated with its resumed run's output is
/// byte-identical to the uninterrupted run.
fn cmd_schedule_stream(args: &SchedArgs) -> Result<(), String> {
    use aiacc::sched::stream::{ArrivalCfg, ArrivalProcess, StreamCfg, StreamSim};
    let cluster = sched_cluster(args);
    let policy = PlacePolicy::by_name(&args.policy)
        .ok_or_else(|| format!("unknown policy {}; use packed|spread|topo", args.policy))?;
    let recovery = aiacc::sched::RecoveryPolicy::by_name(&args.recovery).ok_or_else(|| {
        format!("unknown recovery policy {}; use restart|shrink|fail", args.recovery)
    })?;
    let process = match args.arrivals.as_str() {
        "poisson" => ArrivalProcess::Poisson,
        "diurnal" => ArrivalProcess::Diurnal { period_secs: args.arrival_period_secs },
        "bursty" => ArrivalProcess::Bursty,
        path => ArrivalProcess::Trace { path: path.to_string() },
    };
    let mut arrivals = ArrivalCfg::new(process, args.njobs as u64, args.seed);
    arrivals.mix = JobMix::by_name(&args.mix)
        .ok_or_else(|| format!("unknown mix {}; use comm-heavy|mixed|tiny", args.mix))?;
    arrivals.iterations = args.iters;
    if let Some(gap) = args.interarrival {
        arrivals.mean_interarrival_secs = gap;
    }
    if let Some(label) = &args.engine {
        arrivals.engine = Some(aiacc::sched::engine_by_label(label).ok_or_else(|| {
            format!("unknown engine {label}; use aiacc|horovod|pytorch-ddp|byteps|mxnet-kvstore")
        })?);
    }
    if args.compress != Scheme::None {
        if let Some(aiacc::trainer::EngineKind::Aiacc(c)) = &mut arrivals.engine {
            *c = c.with_compress(args.compress);
        }
    }
    // The batch workload field is unused in streaming mode; a one-job
    // placeholder satisfies the constructor.
    let placeholder = Workload::generate(&WorkloadCfg::new(1, 1).with_mix(JobMix::Tiny));
    let mut base = MultiJobCfg::new(cluster.clone(), policy, placeholder).with_recovery(recovery);
    if args.chaos {
        let plan = FaultPlan::chaos(
            args.seed,
            cluster.nodes,
            SimDuration::from_secs_f64(args.chaos_horizon_secs),
            args.chaos_events,
        );
        eprintln!(
            "[aiacc-sim] chaos plan (seed {}): {} event(s), recovery `{}`",
            args.seed,
            plan.events().len(),
            recovery.name()
        );
        base = base.with_faults(plan).with_straggler_mitigation(1.3);
    }
    let mut cfg = StreamCfg::new(base, arrivals)
        .with_window(args.window)
        .with_per_job_rows(args.per_job)
        .with_stop_after_snapshot(args.stop_after_snapshot);
    if let Some(n) = args.nslots {
        cfg = cfg.with_nslots(n);
    }
    if let Some(every) = args.snapshot_every {
        let path = args.snapshot.clone().unwrap_or_else(|| "stream.snap".to_string());
        cfg = cfg.with_snapshots(every, path);
    }
    let sim = match &args.resume {
        Some(path) => StreamSim::resume_from_file(cfg, path).map_err(|e| e.to_string())?,
        None => StreamSim::try_new(cfg).map_err(|e| e.to_string())?,
    };
    let report = sim.run().map_err(|e| e.to_string())?;
    if args.resume.is_none() {
        if args.per_job {
            println!("{}", aiacc::sched::JobOutcome::tsv_header());
        }
        println!("{}", aiacc::sched::window_tsv_header());
    }
    for line in &report.lines {
        println!("{line}");
    }
    if let Some(m) = &report.summary {
        println!("{}", aiacc::sched::ClusterMetrics::tsv_header());
        println!("{}", m.to_tsv_row());
    }
    let st = &report.stats;
    eprintln!(
        "[aiacc-sim] stream: {} emitted / {} completed / {} failed | {} window(s) | \
         {} slot(s), peak {} active, peak backlog {} | {} snapshot(s){} | \
         sketch ≤{} rank error over {} stored",
        st.emitted,
        st.completed,
        st.failed,
        st.windows_emitted,
        st.nslots,
        st.peak_active,
        st.peak_backlog,
        st.snapshots_written,
        if st.stopped_at_snapshot { ", stopped at snapshot" } else { "" },
        st.sketch_max_rank_error,
        st.sketch_stored_items,
    );
    Ok(())
}

/// Builds the cluster selected by the shared `--gpus/--rdma/--racks` flags.
fn sched_cluster(args: &SchedArgs) -> ClusterSpec {
    let mut cluster = if args.rdma {
        ClusterSpec::rdma_v100(args.gpus)
    } else {
        ClusterSpec::tcp_v100(args.gpus)
    };
    if let Some(n) = args.racks {
        let nic = cluster.node.nic;
        cluster = cluster.with_rack_layer(aiacc::cluster::RackSpec::oversubscribed_2to1(n, &nic));
    }
    cluster
}

fn cmd_schedule(argv: &[String]) -> Result<(), String> {
    let args = parse_sched_args(argv)?;
    if let Some(n) = args.jobs {
        aiacc::simnet::par::set_jobs(n);
    }
    if args.flat_solver {
        aiacc::simnet::set_default_solve_mode(aiacc::simnet::SolveMode::Full);
    }
    if args.stream {
        return cmd_schedule_stream(&args);
    }
    let cluster = sched_cluster(&args);
    let recovery = aiacc::sched::RecoveryPolicy::by_name(&args.recovery).ok_or_else(|| {
        format!("unknown recovery policy {}; use restart|shrink|fail", args.recovery)
    })?;
    let mut workload = match &args.load {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            Workload::from_tsv(&text)?
        }
        None => {
            let mix = JobMix::by_name(&args.mix)
                .ok_or_else(|| format!("unknown mix {}; use comm-heavy|mixed|tiny", args.mix))?;
            let mut cfg =
                WorkloadCfg::new(args.njobs, args.seed).with_mix(mix).with_iterations(args.iters);
            if let Some(label) = &args.engine {
                let engine = aiacc::sched::engine_by_label(label).ok_or_else(|| {
                    format!(
                        "unknown engine {label}; use aiacc|horovod|pytorch-ddp|byteps|mxnet-kvstore"
                    )
                })?;
                cfg = cfg.with_engine(engine);
            }
            Workload::generate(&cfg)
        }
    };
    // `--compress` applies to every job that runs the AIACC engine; the
    // baseline engines have no compression knob.
    if args.compress != Scheme::None {
        for j in &mut workload.jobs {
            if let aiacc::trainer::EngineKind::Aiacc(c) = &mut j.engine {
                *c = c.with_compress(args.compress);
            }
        }
    }
    let chaos_plan = if args.chaos {
        let plan = FaultPlan::chaos(
            args.seed,
            cluster.nodes,
            SimDuration::from_secs_f64(args.chaos_horizon_secs),
            args.chaos_events,
        );
        // Crashed collectives can wedge a stream: arm AIACC's stall watchdog
        // with a bounded resubmission budget so retries back off instead of
        // thrashing.
        for j in &mut workload.jobs {
            if let aiacc::trainer::EngineKind::Aiacc(c) = &mut j.engine {
                *c =
                    c.with_stall_timeout(SimDuration::from_secs_f64(0.5)).with_max_resubmissions(4);
            }
        }
        eprintln!(
            "[aiacc-sim] chaos plan (seed {}): {} event(s), recovery `{}`",
            args.seed,
            plan.events().len(),
            recovery.name()
        );
        Some(plan)
    } else {
        None
    };
    if let Some(path) = &args.save {
        std::fs::write(path, workload.to_tsv()).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("[aiacc-sim] workload trace saved to {path}");
    }
    let policies: Vec<PlacePolicy> = if args.policy == "all" {
        PlacePolicy::all().to_vec()
    } else {
        vec![PlacePolicy::by_name(&args.policy)
            .ok_or_else(|| format!("unknown policy {}; use packed|spread|topo|all", args.policy))?]
    };
    // One scenario per policy, fanned out over `--jobs` workers; each
    // scenario's event loop stays single-threaded, so output is
    // bit-identical for any worker count.
    let blocks = aiacc::simnet::par::map(&policies, |&policy| {
        let mut cfg = MultiJobCfg::new(cluster.clone(), policy, workload.clone())
            .with_recovery(recovery)
            .with_trace(args.trace.is_some());
        if let Some(plan) = &chaos_plan {
            // Chaos also arms the straggler detector: jobs 30 % slower than
            // the cluster-median slowdown get the NIC-health mitigation.
            cfg = cfg.with_faults(plan.clone()).with_straggler_mitigation(1.3);
        }
        if args.trace.is_some() {
            let (report, json) = MultiJobSim::new(cfg).run_with_trace();
            (sched_render(&report), report.solver.to_string(), json)
        } else {
            let report = aiacc::sched::run_multijob(cfg);
            (sched_render(&report), report.solver.to_string(), String::new())
        }
    });
    for (policy, (block, solver, json)) in policies.iter().zip(&blocks) {
        println!("# policy {}", policy.name());
        print!("{block}");
        if verbose_enabled(args.verbose) {
            eprintln!("[aiacc-sim] solver ({}): {solver}", policy.name());
        }
        if let Some(path) = &args.trace {
            let out = if policies.len() == 1 {
                path.clone()
            } else {
                format!("{}.{}.json", path.trim_end_matches(".json"), policy.name())
            };
            std::fs::write(&out, json).map_err(|e| format!("cannot write {out}: {e}"))?;
            eprintln!("[aiacc-sim] trace written to {out} (open in https://ui.perfetto.dev)");
        }
    }
    Ok(())
}

fn main() {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("schedule") {
        if let Err(msg) = cmd_schedule(&argv[1..]) {
            eprintln!("{msg}");
            std::process::exit(2);
        }
        return;
    }
    // `train` is the implicit default subcommand; accept it spelled out.
    if argv.first().map(String::as_str) == Some("train") {
        argv.remove(0);
    }
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    if let Some(n) = args.jobs {
        aiacc::simnet::par::set_jobs(n);
    }
    if args.flat_solver {
        aiacc::simnet::set_default_solve_mode(aiacc::simnet::SolveMode::Full);
    }
    let Some(model) = zoo::by_name(&args.model) else {
        eprintln!(
            "unknown model {}; available: vgg16 resnet50 resnet101 transformer bert_large \
             gpt2_xl insightface_r50 ctr_production tiny_cnn",
            args.model
        );
        std::process::exit(2);
    };
    let mut cluster = if args.rdma {
        ClusterSpec::rdma_v100(args.gpus)
    } else {
        ClusterSpec::tcp_v100(args.gpus)
    };
    if let Some(n) = args.racks {
        let nic = cluster.node.nic;
        cluster = cluster.with_rack_layer(aiacc::cluster::RackSpec::oversubscribed_2to1(n, &nic));
    }

    let fault_plan = match args.faults.as_deref() {
        Some(name) => match fault_scenario(name, cluster.nodes) {
            Ok(plan) => Some(plan),
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        },
        None => None,
    };

    let mut aiacc_cfg = AiaccConfig::default();
    if fault_plan.is_some() {
        // Under injected faults, arm the stall watchdog so hung streams are
        // resubmitted instead of wedging the iteration.
        aiacc_cfg = aiacc_cfg.with_stall_timeout(SimDuration::from_secs_f64(0.5));
    }
    if let Some(s) = args.streams {
        aiacc_cfg = aiacc_cfg.with_streams(s);
    }
    if let Some(g) = args.granularity_mib {
        aiacc_cfg = aiacc_cfg.with_granularity(g * 1024.0 * 1024.0);
    }
    if args.compress != Scheme::None {
        aiacc_cfg = aiacc_cfg.with_compress(args.compress);
    }
    if args.tree {
        aiacc_cfg = aiacc_cfg.with_algo(Algo::Tree);
    }
    if let Some(budget) = args.tune {
        eprintln!("[aiacc-sim] auto-tuning ({budget} warm-up iterations)...");
        let (tuned, report) = tune_aiacc(&model, &cluster, budget, 7, None);
        eprintln!(
            "[aiacc-sim] tuned: {} streams / {:.0} MiB / {:?} ({:.4}s per iteration)",
            tuned.streams,
            tuned.granularity / (1024.0 * 1024.0),
            tuned.algo,
            report.best_value
        );
        aiacc_cfg = tuned;
        if args.compress != Scheme::None {
            aiacc_cfg = aiacc_cfg.with_compress(args.compress);
        }
    }

    let engine = match args.engine.as_str() {
        "aiacc" => EngineKind::Aiacc(aiacc_cfg),
        "horovod" => EngineKind::Horovod(Default::default()),
        "ddp" | "pytorch-ddp" => EngineKind::PyTorchDdp(Default::default()),
        "byteps" => EngineKind::BytePs(Default::default()),
        "kvstore" | "mxnet-kvstore" => EngineKind::MxnetKvStore(Default::default()),
        other => {
            eprintln!("unknown engine {other}; use aiacc|horovod|ddp|byteps|kvstore");
            std::process::exit(2);
        }
    };

    let mut cfg = TrainingSimConfig::new(cluster, model, engine)
        .with_iterations(1, args.iters)
        .with_trace(args.trace.is_some());
    if let Some(b) = args.batch {
        cfg = cfg.with_batch(b);
    }
    if let Some(plan) = &fault_plan {
        eprintln!(
            "[aiacc-sim] fault scenario `{}`: {} event(s)",
            args.faults.as_deref().unwrap(),
            plan.events().len()
        );
        cfg = cfg.with_faults(plan.clone());
    }
    let mut sim = TrainingSim::new(cfg);
    let _ = sim.run_iteration(); // warm-up
    let detail = sim.run_iteration_detailed();
    let report = sim.run();
    println!("{report}");
    if args.compress.is_lossy() && args.engine == "aiacc" {
        // Measure what the lossy wire actually costs: train a real MLP
        // through the exact data plane twice — uncompressed and compressed
        // (with error feedback) — and report the loss delta alongside the
        // measured per-step wire bytes. Serial and fully seeded, so the
        // lines are byte-identical for any `--jobs` count.
        let make = |scheme: Scheme| {
            let mut c = DataParallelConfig::new(vec![4, 16, 3], 4, 8);
            c.compress = scheme;
            DataParallelTrainer::new(c)
        };
        let (mut exact, mut lossy) = (make(Scheme::None), make(args.compress));
        let loss_exact = exact.train(120).losses.last().copied().unwrap_or(f64::NAN);
        let loss_lossy = lossy.train(120).losses.last().copied().unwrap_or(f64::NAN);
        let test = Dataset::gaussian_blobs(1000, 4, 3, 12345);
        let (wire_exact, wire_lossy) = (exact.last_step_wire_bytes(), lossy.last_step_wire_bytes());
        println!(
            "compressed data plane ({}): wire {} B/step vs {} B/step f32 ({:.1}x smaller) | \
             final loss {:.4} vs {:.4} exact (delta {:+.4}) | accuracy {:.3} vs {:.3} exact",
            args.compress,
            wire_lossy,
            wire_exact,
            wire_exact as f64 / wire_lossy as f64,
            loss_lossy,
            loss_exact,
            loss_lossy - loss_exact,
            lossy.accuracy(&test),
            exact.accuracy(&test),
        );
    }
    if verbose_enabled(args.verbose) {
        let bd = sim.solve_breakdown();
        eprintln!(
            "[aiacc-sim] solver: {} | {:.3}s solve / {:.3}s apply / {:.3}s queue",
            sim.solver_stats(),
            bd.solve_s,
            bd.apply_s,
            bd.queue_s,
        );
    }
    println!(
        "iteration breakdown: backward ends {:.1} ms | comm done {:.1} ms | tail {:.1} ms",
        detail.backward_end_secs * 1e3,
        detail.comm_done_secs * 1e3,
        detail.comm_tail_secs() * 1e3,
    );
    if detail.fault_impacted() {
        println!(
            "fault impact: {} capacity event(s) | {} crash(es) | {:.2} s recovering",
            detail.fault_events, detail.crashes, detail.recovery_secs,
        );
    }
    if let Some(path) = &args.trace {
        let json = sim.trace().to_chrome_json();
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("failed to write trace {path}: {e}");
            std::process::exit(1);
        }
        let s = sim.trace().summary();
        println!(
            "trace: {} events -> {path} (open in chrome://tracing or https://ui.perfetto.dev)",
            sim.trace().events().len()
        );
        println!(
            "trace summary: {} stream lane(s) | overlap {:.0}% | max queue depth {} | \
             {} resubmission(s)",
            s.stream_lanes,
            s.overlap_fraction * 100.0,
            s.max_queue_depth,
            s.resubmissions,
        );
    }
}
