//! `aiacc-sim` — run one simulated distributed-training job from the
//! command line.
//!
//! ```text
//! aiacc-sim [--model NAME] [--gpus N] [--engine aiacc|horovod|ddp|byteps|kvstore]
//!           [--streams N] [--granularity MIB] [--batch N] [--rdma]
//!           [--compression] [--tree] [--tune BUDGET] [--iters N]
//!           [--faults degrade|flap|straggler|crash] [--trace OUT.json]
//!           [--jobs N]
//! ```
//!
//! `--jobs N` (or the `AIACC_JOBS` environment variable) sets how many
//! worker threads parallel sweeps — e.g. the `--tune` batch evaluations —
//! may use. Results are bit-identical regardless of the worker count.
//!
//! Examples:
//! `aiacc-sim --model vgg16 --gpus 32 --engine horovod`
//! `aiacc-sim --model bert_large --gpus 64 --rdma --tune 40`
//! `aiacc-sim --model resnet50 --gpus 16 --faults degrade`
//! `aiacc-sim --model vgg16 --gpus 16 --trace trace.json` (open in Perfetto)

use aiacc::collectives::Algo;
use aiacc::prelude::*;
use aiacc::simnet::FaultPlan;
use aiacc::trainer::tune::tune_aiacc;

struct Args {
    model: String,
    gpus: usize,
    engine: String,
    streams: Option<usize>,
    granularity_mib: Option<f64>,
    batch: Option<usize>,
    rdma: bool,
    compression: bool,
    tree: bool,
    tune: Option<usize>,
    iters: usize,
    faults: Option<String>,
    trace: Option<String>,
    jobs: Option<usize>,
}

/// Builds the canned fault scenario selected by `--faults`.
///
/// Each scenario targets logical nodes, so it adapts to any cluster size;
/// the training simulation resolves node targets to that node's NIC
/// resources.
fn fault_scenario(name: &str, nodes: usize) -> Result<FaultPlan, String> {
    let last = nodes.saturating_sub(1) as u32;
    match name {
        // Every NIC loses half its capacity early on and never recovers.
        "degrade" => {
            let mut plan = FaultPlan::new();
            for n in 0..nodes as u32 {
                plan = plan.degrade_node(n, 0.5, SimTime::from_secs_f64(0.1), None);
            }
            Ok(plan)
        }
        // The last node's NIC goes dark for 100 ms mid-iteration.
        "flap" => Ok(FaultPlan::new().with_event(aiacc::simnet::FaultEvent {
            target: aiacc::simnet::FaultTarget::Node(last),
            kind: aiacc::simnet::FaultKind::Flap,
            at: SimTime::from_secs_f64(0.3),
            duration: Some(SimDuration::from_secs_f64(0.1)),
        })),
        // One node computes 1.5× slower for a two-second window.
        "straggler" => Ok(FaultPlan::new().straggle_node(
            last,
            1.5,
            SimTime::from_secs_f64(0.2),
            Some(SimDuration::from_secs_f64(2.0)),
        )),
        // One node dies mid-run; the job pays a checkpoint restart.
        "crash" => Ok(FaultPlan::new().crash_node(last, SimTime::from_secs_f64(1.0))),
        other => Err(format!("unknown fault scenario {other}; use degrade|flap|straggler|crash")),
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        model: "resnet50".to_string(),
        gpus: 32,
        engine: "aiacc".to_string(),
        streams: None,
        granularity_mib: None,
        batch: None,
        rdma: false,
        compression: false,
        tree: false,
        tune: None,
        iters: 3,
        faults: None,
        trace: None,
        jobs: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        argv.get(*i).cloned().ok_or_else(|| format!("{} needs a value", argv[*i - 1]))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--model" => args.model = value(&mut i)?,
            "--gpus" => args.gpus = value(&mut i)?.parse().map_err(|e| format!("--gpus: {e}"))?,
            "--engine" => args.engine = value(&mut i)?,
            "--streams" => {
                args.streams = Some(value(&mut i)?.parse().map_err(|e| format!("--streams: {e}"))?)
            }
            "--granularity" => {
                args.granularity_mib =
                    Some(value(&mut i)?.parse().map_err(|e| format!("--granularity: {e}"))?)
            }
            "--batch" => {
                args.batch = Some(value(&mut i)?.parse().map_err(|e| format!("--batch: {e}"))?)
            }
            "--rdma" => args.rdma = true,
            "--compression" => args.compression = true,
            "--tree" => args.tree = true,
            "--tune" => {
                args.tune = Some(value(&mut i)?.parse().map_err(|e| format!("--tune: {e}"))?)
            }
            "--iters" => {
                args.iters = value(&mut i)?.parse().map_err(|e| format!("--iters: {e}"))?
            }
            "--faults" => args.faults = Some(value(&mut i)?),
            "--trace" => args.trace = Some(value(&mut i)?),
            "--jobs" => {
                let n: usize = value(&mut i)?.parse().map_err(|e| format!("--jobs: {e}"))?;
                if n == 0 {
                    return Err("--jobs needs a positive integer".to_string());
                }
                args.jobs = Some(n);
            }
            "--help" | "-h" => {
                return Err("usage: aiacc-sim [--model NAME] [--gpus N] [--engine E] \
                            [--streams N] [--granularity MIB] [--batch N] [--rdma] \
                            [--compression] [--tree] [--tune BUDGET] [--iters N] \
                            [--faults degrade|flap|straggler|crash] [--trace OUT.json] \
                            [--jobs N]"
                    .to_string())
            }
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
        i += 1;
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    if let Some(n) = args.jobs {
        aiacc::simnet::par::set_jobs(n);
    }
    let Some(model) = zoo::by_name(&args.model) else {
        eprintln!(
            "unknown model {}; available: vgg16 resnet50 resnet101 transformer bert_large \
             gpt2_xl insightface_r50 ctr_production tiny_cnn",
            args.model
        );
        std::process::exit(2);
    };
    let cluster = if args.rdma {
        ClusterSpec::rdma_v100(args.gpus)
    } else {
        ClusterSpec::tcp_v100(args.gpus)
    };

    let fault_plan = match args.faults.as_deref() {
        Some(name) => match fault_scenario(name, cluster.nodes) {
            Ok(plan) => Some(plan),
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        },
        None => None,
    };

    let mut aiacc_cfg = AiaccConfig::default();
    if fault_plan.is_some() {
        // Under injected faults, arm the stall watchdog so hung streams are
        // resubmitted instead of wedging the iteration.
        aiacc_cfg = aiacc_cfg.with_stall_timeout(SimDuration::from_secs_f64(0.5));
    }
    if let Some(s) = args.streams {
        aiacc_cfg = aiacc_cfg.with_streams(s);
    }
    if let Some(g) = args.granularity_mib {
        aiacc_cfg = aiacc_cfg.with_granularity(g * 1024.0 * 1024.0);
    }
    if args.compression {
        aiacc_cfg = aiacc_cfg.with_compression(true);
    }
    if args.tree {
        aiacc_cfg = aiacc_cfg.with_algo(Algo::Tree);
    }
    if let Some(budget) = args.tune {
        eprintln!("[aiacc-sim] auto-tuning ({budget} warm-up iterations)...");
        let (tuned, report) = tune_aiacc(&model, &cluster, budget, 7, None);
        eprintln!(
            "[aiacc-sim] tuned: {} streams / {:.0} MiB / {:?} ({:.4}s per iteration)",
            tuned.streams,
            tuned.granularity / (1024.0 * 1024.0),
            tuned.algo,
            report.best_value
        );
        aiacc_cfg = tuned;
    }

    let engine = match args.engine.as_str() {
        "aiacc" => EngineKind::Aiacc(aiacc_cfg),
        "horovod" => EngineKind::Horovod(Default::default()),
        "ddp" | "pytorch-ddp" => EngineKind::PyTorchDdp(Default::default()),
        "byteps" => EngineKind::BytePs(Default::default()),
        "kvstore" | "mxnet-kvstore" => EngineKind::MxnetKvStore(Default::default()),
        other => {
            eprintln!("unknown engine {other}; use aiacc|horovod|ddp|byteps|kvstore");
            std::process::exit(2);
        }
    };

    let mut cfg = TrainingSimConfig::new(cluster, model, engine)
        .with_iterations(1, args.iters)
        .with_trace(args.trace.is_some());
    if let Some(b) = args.batch {
        cfg = cfg.with_batch(b);
    }
    if let Some(plan) = &fault_plan {
        eprintln!(
            "[aiacc-sim] fault scenario `{}`: {} event(s)",
            args.faults.as_deref().unwrap(),
            plan.events().len()
        );
        cfg = cfg.with_faults(plan.clone());
    }
    let mut sim = TrainingSim::new(cfg);
    let _ = sim.run_iteration(); // warm-up
    let detail = sim.run_iteration_detailed();
    let report = sim.run();
    println!("{report}");
    println!(
        "iteration breakdown: backward ends {:.1} ms | comm done {:.1} ms | tail {:.1} ms",
        detail.backward_end_secs * 1e3,
        detail.comm_done_secs * 1e3,
        detail.comm_tail_secs() * 1e3,
    );
    if detail.fault_impacted() {
        println!(
            "fault impact: {} capacity event(s) | {} crash(es) | {:.2} s recovering",
            detail.fault_events, detail.crashes, detail.recovery_secs,
        );
    }
    if let Some(path) = &args.trace {
        let json = sim.trace().to_chrome_json();
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("failed to write trace {path}: {e}");
            std::process::exit(1);
        }
        let s = sim.trace().summary();
        println!(
            "trace: {} events -> {path} (open in chrome://tracing or https://ui.perfetto.dev)",
            sim.trace().events().len()
        );
        println!(
            "trace summary: {} stream lane(s) | overlap {:.0}% | max queue depth {} | \
             {} resubmission(s)",
            s.stream_lanes,
            s.overlap_fraction * 100.0,
            s.max_queue_depth,
            s.resubmissions,
        );
    }
}
