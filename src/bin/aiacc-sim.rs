//! `aiacc-sim` — run one simulated distributed-training job from the
//! command line.
//!
//! ```text
//! aiacc-sim [--model NAME] [--gpus N] [--engine aiacc|horovod|ddp|byteps|kvstore]
//!           [--streams N] [--granularity MIB] [--batch N] [--rdma]
//!           [--compression] [--tree] [--tune BUDGET] [--iters N]
//! ```
//!
//! Examples:
//! `aiacc-sim --model vgg16 --gpus 32 --engine horovod`
//! `aiacc-sim --model bert_large --gpus 64 --rdma --tune 40`

use aiacc::collectives::Algo;
use aiacc::prelude::*;
use aiacc::trainer::tune::tune_aiacc;

struct Args {
    model: String,
    gpus: usize,
    engine: String,
    streams: Option<usize>,
    granularity_mib: Option<f64>,
    batch: Option<usize>,
    rdma: bool,
    compression: bool,
    tree: bool,
    tune: Option<usize>,
    iters: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        model: "resnet50".to_string(),
        gpus: 32,
        engine: "aiacc".to_string(),
        streams: None,
        granularity_mib: None,
        batch: None,
        rdma: false,
        compression: false,
        tree: false,
        tune: None,
        iters: 3,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let mut value = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        argv.get(*i).cloned().ok_or_else(|| format!("{} needs a value", argv[*i - 1]))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--model" => args.model = value(&mut i)?,
            "--gpus" => args.gpus = value(&mut i)?.parse().map_err(|e| format!("--gpus: {e}"))?,
            "--engine" => args.engine = value(&mut i)?,
            "--streams" => {
                args.streams = Some(value(&mut i)?.parse().map_err(|e| format!("--streams: {e}"))?)
            }
            "--granularity" => {
                args.granularity_mib =
                    Some(value(&mut i)?.parse().map_err(|e| format!("--granularity: {e}"))?)
            }
            "--batch" => {
                args.batch = Some(value(&mut i)?.parse().map_err(|e| format!("--batch: {e}"))?)
            }
            "--rdma" => args.rdma = true,
            "--compression" => args.compression = true,
            "--tree" => args.tree = true,
            "--tune" => {
                args.tune = Some(value(&mut i)?.parse().map_err(|e| format!("--tune: {e}"))?)
            }
            "--iters" => args.iters = value(&mut i)?.parse().map_err(|e| format!("--iters: {e}"))?,
            "--help" | "-h" => {
                return Err("usage: aiacc-sim [--model NAME] [--gpus N] [--engine E] \
                            [--streams N] [--granularity MIB] [--batch N] [--rdma] \
                            [--compression] [--tree] [--tune BUDGET] [--iters N]"
                    .to_string())
            }
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
        i += 1;
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let Some(model) = zoo::by_name(&args.model) else {
        eprintln!(
            "unknown model {}; available: vgg16 resnet50 resnet101 transformer bert_large \
             gpt2_xl insightface_r50 ctr_production tiny_cnn",
            args.model
        );
        std::process::exit(2);
    };
    let cluster = if args.rdma {
        ClusterSpec::rdma_v100(args.gpus)
    } else {
        ClusterSpec::tcp_v100(args.gpus)
    };

    let mut aiacc_cfg = AiaccConfig::default();
    if let Some(s) = args.streams {
        aiacc_cfg = aiacc_cfg.with_streams(s);
    }
    if let Some(g) = args.granularity_mib {
        aiacc_cfg = aiacc_cfg.with_granularity(g * 1024.0 * 1024.0);
    }
    if args.compression {
        aiacc_cfg = aiacc_cfg.with_compression(true);
    }
    if args.tree {
        aiacc_cfg = aiacc_cfg.with_algo(Algo::Tree);
    }
    if let Some(budget) = args.tune {
        eprintln!("[aiacc-sim] auto-tuning ({budget} warm-up iterations)...");
        let (tuned, report) = tune_aiacc(&model, &cluster, budget, 7, None);
        eprintln!(
            "[aiacc-sim] tuned: {} streams / {:.0} MiB / {:?} ({:.4}s per iteration)",
            tuned.streams,
            tuned.granularity / (1024.0 * 1024.0),
            tuned.algo,
            report.best_value
        );
        aiacc_cfg = tuned;
    }

    let engine = match args.engine.as_str() {
        "aiacc" => EngineKind::Aiacc(aiacc_cfg),
        "horovod" => EngineKind::Horovod(Default::default()),
        "ddp" | "pytorch-ddp" => EngineKind::PyTorchDdp(Default::default()),
        "byteps" => EngineKind::BytePs(Default::default()),
        "kvstore" | "mxnet-kvstore" => EngineKind::MxnetKvStore(Default::default()),
        other => {
            eprintln!("unknown engine {other}; use aiacc|horovod|ddp|byteps|kvstore");
            std::process::exit(2);
        }
    };

    let mut cfg = TrainingSimConfig::new(cluster, model, engine).with_iterations(1, args.iters);
    if let Some(b) = args.batch {
        cfg = cfg.with_batch(b);
    }
    let mut sim = TrainingSim::new(cfg);
    let _ = sim.run_iteration(); // warm-up
    let detail = sim.run_iteration_detailed();
    let report = sim.run();
    println!("{report}");
    println!(
        "iteration breakdown: backward ends {:.1} ms | comm done {:.1} ms | tail {:.1} ms",
        detail.backward_end_secs * 1e3,
        detail.comm_done_secs * 1e3,
        detail.comm_tail_secs() * 1e3,
    );
}
