//! # aiacc — AIACC-Training reproduced in Rust
//!
//! A full reproduction of **"AIACC-Training: Optimizing Distributed Deep
//! Learning Training through Multi-streamed and Concurrent Gradient
//! Communications"** (ICDCS 2022): the multi-streamed concurrent all-reduce
//! engine, its decentralized bit-vector gradient synchronization, the
//! multi-armed-bandit auto-tuner, the baseline frameworks it is compared
//! against (Horovod, PyTorch-DDP, BytePS, MXNet-KVStore), and the simulated
//! GPU-cloud substrate everything runs on (see `DESIGN.md` for the
//! substitution map — no GPUs or NCCL are required).
//!
//! This facade crate re-exports the workspace members under stable module
//! names and offers a [`prelude`].
//!
//! ## Quick start
//!
//! ```
//! use aiacc::prelude::*;
//!
//! // Simulate ResNet-50 data-parallel training on 2 nodes × 8 V100s over
//! // 30 Gbps TCP, with AIACC's multi-streamed communication:
//! let report = run_training_sim(
//!     TrainingSimConfig::new(
//!         ClusterSpec::tcp_v100(16),
//!         zoo::resnet50(),
//!         EngineKind::aiacc_default(),
//!     )
//!     .with_iterations(1, 2),
//! );
//! assert!(report.samples_per_sec > 1000.0);
//! ```
//!
//! ## Layout
//!
//! | module | contents |
//! |---|---|
//! | [`simnet`] | deterministic discrete-event + fluid-flow network simulator |
//! | [`dnn`] | tensors, fp16, the Table I model zoo, a real MLP, datasets |
//! | [`cluster`] | GPU/node/cluster specs, topology, compute timing |
//! | [`collectives`] | exact + timed ring/tree all-reduce |
//! | [`optim`] | SGD, Adam, the Adam/SGD hybrid, LR decay, fp16 compression |
//! | [`compress`] | gradient compressors: top-k + error feedback, fp16, int8, exact wire accounting |
//! | [`core`] | **the paper's contribution**: sync vectors, packing, the multi-streamed engine, Perseus |
//! | [`baselines`] | Horovod, PyTorch-DDP, BytePS, MXNet-KVStore |
//! | [`autotune`] | MAB meta-solver over grid/PBT/Bayesian/Hyperband |
//! | [`trainer`] | the training-loop simulation + real data-parallel training |
//! | [`sched`] | multi-job cluster scheduler: workloads, gang placement, shared-fabric contention, tail-JCT metrics |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use aiacc_autotune as autotune;
pub use aiacc_baselines as baselines;
pub use aiacc_cluster as cluster;
pub use aiacc_collectives as collectives;
pub use aiacc_compress as compress;
pub use aiacc_core as core;
pub use aiacc_dnn as dnn;
pub use aiacc_optim as optim;
pub use aiacc_sched as sched;
pub use aiacc_simnet as simnet;
pub use aiacc_trainer as trainer;

/// The most commonly used items, in one import.
pub mod prelude {
    pub use aiacc_autotune::{Tuner, TuningConfig, TuningSpace};
    pub use aiacc_cluster::{ClusterNet, ClusterSpec, ComputeModel};
    pub use aiacc_collectives::dataplane::{ring_allreduce, tree_allreduce, ReduceOp};
    pub use aiacc_collectives::{Algo, CollectiveEngine, CollectiveSpec, RingMode};
    pub use aiacc_compress::{Compressor, ErrorFeedback, Scheme};
    pub use aiacc_core::{
        AiaccConfig, AiaccEngine, GradientRegistry, Perseus, PerseusConfig, SyncVector,
    };
    pub use aiacc_dnn::{data::Dataset, zoo, DType, Mlp, MlpConfig, ModelProfile, Tensor};
    pub use aiacc_optim::{Adam, AdamSgd, Optimizer, Sgd};
    pub use aiacc_sched::{
        run_multijob, summarize, ClusterMetrics, MultiJobCfg, MultiJobReport, PlacePolicy,
        Workload, WorkloadCfg,
    };
    pub use aiacc_simnet::{
        Event, FaultEvent, FaultKind, FaultPlan, FaultTarget, FlowSpec, SimDuration, SimTime,
        Simulator, TraceSink, TraceSummary,
    };
    pub use aiacc_trainer::{
        run_training_sim, scaling_efficiency, speedup, DataParallelConfig, DataParallelTrainer,
        EngineKind, Framework, ThroughputReport, TrainingSim, TrainingSimConfig,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_compiles_and_exposes_key_types() {
        use crate::prelude::*;
        let _ = ClusterSpec::tcp_v100(8);
        let _ = AiaccConfig::default();
        let _ = zoo::resnet50();
    }
}
