//! Typed configuration errors for the multi-job scheduler.
//!
//! [`crate::MultiJobSim::try_new`] validates a scenario up front and returns
//! a [`SchedError`] instead of panicking, so sweep harnesses and the CLI can
//! reject a bad workload or fault plan gracefully.

use std::fmt;

/// Why a [`crate::MultiJobCfg`] cannot be turned into a runnable scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedError {
    /// The workload has no jobs.
    EmptyWorkload,
    /// Job ids must be `0..n` in order; `jobs[index].id` was `id`.
    NonDenseJobIds {
        /// Position in the workload vector.
        index: usize,
        /// The id found there.
        id: usize,
    },
    /// A job requests an impossible gang size.
    BadGangSize {
        /// The offending job id.
        job: usize,
        /// Requested GPUs.
        gpus: usize,
        /// Total GPUs in the cluster.
        capacity: usize,
    },
    /// A job has zero iterations.
    ZeroIterations {
        /// The offending job id.
        job: usize,
    },
    /// A job names a model the zoo does not know.
    UnknownModel {
        /// The offending job id.
        job: usize,
        /// The unknown model name.
        model: String,
    },
    /// The fault plan targets a node outside the cluster.
    FaultNodeOutOfRange {
        /// The out-of-range node index.
        node: u32,
        /// Number of nodes in the cluster.
        nodes: usize,
    },
    /// A streaming-replay error: bad arrival config, malformed trace line,
    /// snapshot I/O failure, or a snapshot that does not match the run
    /// configuration.
    Stream {
        /// Human-readable description.
        msg: String,
    },
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::EmptyWorkload => write!(f, "workload has no jobs"),
            SchedError::NonDenseJobIds { index, id } => {
                write!(f, "workload job ids must be dense and ordered: jobs[{index}].id = {id}")
            }
            SchedError::BadGangSize { job, gpus, capacity } => {
                write!(f, "job {job} requests {gpus} of {capacity} GPUs")
            }
            SchedError::ZeroIterations { job } => write!(f, "job {job} has no iterations"),
            SchedError::UnknownModel { job, model } => {
                write!(f, "job {job}: unknown model {model:?}")
            }
            SchedError::FaultNodeOutOfRange { node, nodes } => {
                write!(f, "fault plan targets node {node}, cluster has {nodes} nodes")
            }
            SchedError::Stream { msg } => write!(f, "streaming replay: {msg}"),
        }
    }
}

impl std::error::Error for SchedError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let e = SchedError::BadGangSize { job: 3, gpus: 64, capacity: 32 };
        assert_eq!(e.to_string(), "job 3 requests 64 of 32 GPUs");
        let e = SchedError::FaultNodeOutOfRange { node: 9, nodes: 4 };
        assert!(e.to_string().contains("node 9"));
        // It is a real std error.
        let _: &dyn std::error::Error = &e;
    }
}
