//! # aiacc-sched — multi-job cluster scheduling over a shared fabric
//!
//! The AIACC-Training paper evaluates engines one job at a time, but its
//! motivating deployment is a *shared* GPU cloud: many DDL jobs arriving
//! over time, gang-scheduled onto the same nodes, their gradient flows
//! contending for the same NICs. This crate closes that gap:
//!
//! - [`workload`]: seeded job generation (Poisson-style arrivals over
//!   model-zoo presets) and TSV trace load/save.
//! - [`placement`]: gang placement policies — [`PlacePolicy::Packed`],
//!   [`PlacePolicy::Spread`], [`PlacePolicy::TopologyAware`] — over a
//!   [`aiacc_cluster::GpuFreeList`], always producing *regular* gang shapes
//!   that every collective builder already understands.
//! - [`multijob`]: the [`MultiJobSim`] driver, which multiplexes one
//!   [`aiacc_core::ddl::DdlEngine`] per running job over a single shared
//!   [`aiacc_simnet::Simulator`] event loop, so cross-job fabric contention
//!   emerges from the max-min flow allocation rather than from an analytic
//!   slowdown model.
//! - [`metrics`]: tail-JCT percentiles, queueing delay, makespan, fabric
//!   utilization, and Jain fairness per scenario.
//!
//! Everything is deterministic: a scenario is a pure function of
//! `(cluster, workload, policy)`, a single-job scenario is bit-identical to
//! the single-job [`aiacc_trainer::TrainingSim`], and sweep parallelism
//! (via [`aiacc_simnet::par`]) never touches the event loop.
//!
//! ```
//! use aiacc_cluster::ClusterSpec;
//! use aiacc_sched::{run_multijob, summarize, MultiJobCfg, PlacePolicy, Workload, WorkloadCfg};
//!
//! let wl = Workload::generate(&WorkloadCfg::new(3, 7).with_mix(aiacc_sched::JobMix::Tiny));
//! let cfg = MultiJobCfg::new(ClusterSpec::tcp_v100(16), PlacePolicy::Packed, wl);
//! let report = run_multijob(cfg);
//! let m = summarize(&report);
//! assert_eq!(m.njobs, 3);
//! assert!(m.jct_p99_secs >= m.jct_p50_secs);
//! ```

pub mod error;
pub mod metrics;
pub mod multijob;
pub mod placement;
pub mod stream;
pub mod workload;

pub use error::SchedError;
pub use metrics::{jain_fairness, summarize, ClusterMetrics};
pub use multijob::{
    run_multijob, JobOutcome, MultiJobCfg, MultiJobReport, MultiJobSim, RecoveryPolicy,
};
pub use placement::{try_place, PlacePolicy, Placement};
pub use stream::{
    run_stream, window_tsv_header, ArrivalCfg, ArrivalProcess, StreamCfg, StreamReport, StreamSim,
    StreamStats,
};
pub use workload::{engine_by_label, JobMix, JobSpec, Workload, WorkloadCfg};
