//! The multi-job driver: every job's engine multiplexed over one shared
//! `Simulator`/`FlowNet`.
//!
//! Each running job is a faithful copy of the single-job
//! [`aiacc_trainer::TrainingSim`] iteration state machine — same compute
//! schedule (via [`aiacc_trainer::schedule_worker_compute`]), same stream
//! limits, same iteration-boundary drain semantics — but its collectives run
//! on a [`aiacc_cluster::ClusterNet::subnet`] view of the shared physical
//! fabric, so concurrent jobs' flows contend inside one max-min allocation.
//! With a single job the event sequence degenerates to exactly the
//! single-job path, which is what makes the N=1 bit-identity guarantee hold.
//!
//! # Failure model
//!
//! Node crashes from the fault plan are first-class events. When a node
//! crashes, its GPUs are quarantined in the [`GpuFreeList`] until the repair
//! event (if any) returns them, and every gang with a member on the node is
//! torn down: in-flight collectives cancelled, then the configured
//! [`RecoveryPolicy`] decides the job's fate — [`RecoveryPolicy::Restart`]
//! (checkpoint restart, re-place on healthy nodes),
//! [`RecoveryPolicy::Shrink`] (elastic continue on the surviving gang
//! members), or [`RecoveryPolicy::Fail`] (account the job as killed). Every
//! recovery pause is priced by the replayed timelines of
//! [`aiacc_trainer::recovery`], so multi-job crash accounting reconciles
//! with the single-job closed forms.
//!
//! Determinism argument for the shared event loop: the simulator delivers
//! events in `(time, schedule-order)` order; every event is routed to its
//! owning job either by the scope stamped into its token's high bits
//! ([`aiacc_simnet::Simulator::set_token_scope`]) or by probing
//! `CollectiveEngine::owns_flow` in ascending job order. Scopes carry a
//! per-job *epoch* that is bumped on every crash recovery, so events from an
//! aborted attempt can never leak into the resumed one. No routing decision
//! depends on wall-clock, hashing, or thread interleaving, so a scenario is
//! a pure function of (cluster, workload, policy, faults).

use crate::error::SchedError;
use crate::placement::{try_place, PlacePolicy, Placement};
use crate::stream::StreamState;
use crate::workload::{JobSpec, Workload};
use aiacc_cluster::{ClusterNet, ClusterSpec, ComputeModel, GpuFreeList, IterationTiming};
use aiacc_collectives::CollectiveEngine;
use aiacc_core::ddl::{DdlCtx, DdlEngine, ENGINE_TIMER_KIND};
use aiacc_dnn::{zoo, DType, GradId, ModelProfile};
use aiacc_simnet::trace::track;
use aiacc_simnet::{
    Event, FaultPhase, FaultPlan, FaultRecord, FaultTarget, FlowId, SimDuration, SimTime,
    Simulator, SolverStats, Token,
};
use aiacc_trainer::recovery::{replay_elastic_join, replay_failure_recovery, RecoveryConfig};
use aiacc_trainer::{
    comm_stream_limits, schedule_worker_compute, ComputeAttempt, Framework, BWD_KIND, GRAD_KIND,
};

/// Unscoped timer kind announcing a job arrival (`a` = job id).
pub(crate) const ARRIVAL_KIND: u32 = 10;
/// Scoped timer kind marking a job's iteration boundary (`b` = iteration).
const BOUNDARY_KIND: u32 = 11;
/// Unscoped timer kind for a node crash (`a` = node).
pub(crate) const CRASH_KIND: u32 = 12;
/// Unscoped timer kind for a node repair (`a` = node).
pub(crate) const REPAIR_KIND: u32 = 13;
/// Unscoped timer kind re-queueing a restarted job after its checkpoint
/// restore completes (`a` = job id).
pub(crate) const REQUEUE_KIND: u32 = 14;
/// Scoped timer kind resuming a shrunken gang after its elastic-join pause.
const RESUME_KIND: u32 = 15;

/// EWMA weight of the newest iteration sample in the straggler detector.
const EWMA_ALPHA: f64 = 0.5;
/// Floor on the synthetic NIC-health capacity ratio a mitigation reports —
/// the stream pool never collapses below a quarter of its configured size.
const MITIGATION_FLOOR: f64 = 0.25;

/// What to do with a job whose gang lost a node to a crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecoveryPolicy {
    /// Checkpoint restart: pay a replayed
    /// [`aiacc_trainer::recovery::replay_failure_recovery`] pause, then
    /// re-place the full gang on healthy nodes and retry the interrupted
    /// iteration (completed iterations are checkpointed).
    Restart,
    /// Elastic continue: the surviving gang members keep their GPUs, pay a
    /// replayed [`aiacc_trainer::recovery::replay_elastic_join`]
    /// membership-change pause (the rebuild cost is symmetric in join and
    /// leave), and resume on a ring rebuilt over the shrunken subnet. A gang
    /// with no survivors falls back to [`RecoveryPolicy::Restart`].
    Shrink,
    /// Kill the job and account it as failed in the cluster metrics.
    Fail,
}

impl RecoveryPolicy {
    /// The policy's CLI/report name.
    pub fn name(self) -> &'static str {
        match self {
            RecoveryPolicy::Restart => "restart",
            RecoveryPolicy::Shrink => "shrink",
            RecoveryPolicy::Fail => "fail",
        }
    }

    /// Looks a policy up by name.
    pub fn by_name(name: &str) -> Option<RecoveryPolicy> {
        match name {
            "restart" => Some(RecoveryPolicy::Restart),
            "shrink" => Some(RecoveryPolicy::Shrink),
            "fail" => Some(RecoveryPolicy::Fail),
            _ => None,
        }
    }
}

/// Configuration of one multi-job scenario.
#[derive(Debug, Clone)]
pub struct MultiJobCfg {
    /// The shared physical cluster.
    pub cluster: ClusterSpec,
    /// Gang placement policy.
    pub policy: PlacePolicy,
    /// The jobs to run.
    pub workload: Workload,
    /// Framework adapter applied to every job.
    pub framework: Framework,
    /// Compute jitter amplitude (fraction).
    pub jitter_frac: f64,
    /// Fault plan on the *physical* cluster: node-targeted link faults
    /// resolve to that node's NIC, straggler windows slow the node's
    /// compute, and crashes take the node (and every gang on it) down until
    /// the repair event.
    pub faults: FaultPlan,
    /// What happens to a gang that loses a node.
    pub recovery: RecoveryPolicy,
    /// When `Some(threshold)`, the straggler detector flags a running job
    /// whose iteration-time slowdown (EWMA over its own fastest iteration)
    /// exceeds `threshold ×` the cluster-median slowdown, and feeds a
    /// synthetic NIC-health record to that job's engine so AIACC's stream
    /// pool scales down on the degraded gang.
    pub straggler_threshold: Option<f64>,
    /// Records a structured trace (one lane per job).
    pub trace: bool,
}

impl MultiJobCfg {
    /// A scenario with TrainingSim-matching defaults (PyTorch, 2 % jitter,
    /// no faults, restart recovery, no straggler mitigation, no trace).
    pub fn new(cluster: ClusterSpec, policy: PlacePolicy, workload: Workload) -> Self {
        MultiJobCfg {
            cluster,
            policy,
            workload,
            framework: Framework::PyTorch,
            jitter_frac: 0.02,
            faults: FaultPlan::new(),
            recovery: RecoveryPolicy::Restart,
            straggler_threshold: None,
            trace: false,
        }
    }

    /// Installs a fault plan (link faults, straggler windows, crashes).
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Selects the crash-recovery policy.
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// Enables the straggler detector with the given relative threshold
    /// (e.g. `1.25` flags jobs running 25 % slower than the cluster median
    /// slowdown).
    ///
    /// # Panics
    /// Panics if `threshold < 1.0`.
    pub fn with_straggler_mitigation(mut self, threshold: f64) -> Self {
        assert!(threshold >= 1.0, "straggler threshold must be >= 1: {threshold}");
        self.straggler_threshold = Some(threshold);
        self
    }

    /// Enables structured tracing.
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }
}

/// What happened to one job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// Job id.
    pub id: usize,
    /// Model name.
    pub model: String,
    /// Gang size in GPUs.
    pub gpus: usize,
    /// Engine label.
    pub engine: String,
    /// Arrival time, seconds.
    pub arrival_secs: f64,
    /// When the gang was placed and the first iteration began, seconds.
    pub start_secs: f64,
    /// When the last iteration's boundary passed (or the job was killed),
    /// seconds.
    pub finish_secs: f64,
    /// Physical nodes the gang occupied (its last placement).
    pub nodes_used: usize,
    /// Per-iteration durations, seconds. A crashed-and-retried iteration's
    /// duration includes the lost attempt and the recovery pause, exactly as
    /// in the single-job `TrainingSim`.
    pub iter_secs: Vec<f64>,
    /// Bytes this job's flows actually moved on the fabric (all epochs).
    pub comm_bytes_delivered: f64,
    /// Bytes this job's flows were launched to move (all epochs).
    pub comm_bytes_launched: f64,
    /// Node crashes that hit this job's gang.
    pub crashes: u32,
    /// Checkpoint restarts the job paid.
    pub restarts: u32,
    /// Elastic shrink operations the job paid.
    pub shrinks: u32,
    /// Total wall-clock spent in recovery pauses, seconds.
    pub recovery_secs: f64,
    /// Straggler mitigations applied to this job.
    pub mitigations: u32,
    /// Whether the job was killed (crash under [`RecoveryPolicy::Fail`], or
    /// no possible placement left after permanent capacity loss).
    pub failed: bool,
}

impl JobOutcome {
    /// Job completion time: finish − arrival.
    pub fn jct_secs(&self) -> f64 {
        self.finish_secs - self.arrival_secs
    }

    /// Time spent waiting in the queue: start − arrival (clamped at zero —
    /// the simulator snaps arrival timestamps to its nanosecond grid, which
    /// can land a hair before the requested float instant).
    pub fn queue_delay_secs(&self) -> f64 {
        (self.start_secs - self.arrival_secs).max(0.0)
    }

    /// Mean iteration duration, seconds (0 for a job killed before its
    /// first iteration boundary).
    pub fn mean_iter_secs(&self) -> f64 {
        if self.iter_secs.is_empty() {
            return 0.0;
        }
        self.iter_secs.iter().sum::<f64>() / self.iter_secs.len() as f64
    }

    /// The TSV header matching [`JobOutcome::tsv_row`].
    pub fn tsv_header() -> &'static str {
        "id\tmodel\tgpus\tengine\tarrival_s\tstart_s\tfinish_s\tjct_s\tqueue_s\tnodes\tmean_iter_s\
         \tcrashes\trestarts\tshrinks\trecovery_s\tmitigations\tfailed"
    }

    /// One deterministic TSV row (fixed 9-digit float precision, no trailing
    /// newline) — shared by the batch `schedule` renderer and the streaming
    /// per-job output, so the two paths are directly diffable.
    pub fn tsv_row(&self) -> String {
        format!(
            "{}\t{}\t{}\t{}\t{:.9}\t{:.9}\t{:.9}\t{:.9}\t{:.9}\t{}\t{:.9}\t{}\t{}\t{}\t{:.9}\t{}\t{}",
            self.id,
            self.model,
            self.gpus,
            self.engine,
            self.arrival_secs,
            self.start_secs,
            self.finish_secs,
            self.jct_secs(),
            self.queue_delay_secs(),
            self.nodes_used,
            self.mean_iter_secs(),
            self.crashes,
            self.restarts,
            self.shrinks,
            self.recovery_secs,
            self.mitigations,
            self.failed as u8,
        )
    }
}

/// Result of one multi-job scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiJobReport {
    /// The placement policy that ran.
    pub policy: PlacePolicy,
    /// Per-job outcomes, by job id.
    pub jobs: Vec<JobOutcome>,
    /// Last finish minus first arrival, seconds.
    pub makespan_secs: f64,
    /// Mean NIC transmit utilization over the makespan across all nodes.
    pub fabric_utilization: f64,
    /// Cumulative fluid-solver counters for the whole scenario. Diagnostic
    /// only — not part of any TSV rendering, and the `par_*` fields vary
    /// with the solver worker count.
    pub solver: SolverStats,
}

/// One running job's iteration state (the fields `TrainingSim` keeps between
/// events, per job).
pub(crate) struct RunningJob {
    placement: Placement,
    cluster: ClusterNet,
    coll: CollectiveEngine,
    engine: Box<dyn DdlEngine>,
    timing: IterationTiming,
    streams_busy: usize,
    streams_idle: usize,
    iter: u64,
    busy_workers: usize,
    last_bwd: SimTime,
    draining: bool,
    iter_start: SimTime,
    started_at: SimTime,
    iter_secs: Vec<f64>,
}

/// Iteration progress preserved while a crashed job waits to be re-placed.
pub(crate) struct SavedProgress {
    iter: u64,
    iter_secs: Vec<f64>,
    started_at: SimTime,
    iter_start: SimTime,
}

pub(crate) enum JobState {
    /// Streaming only: the slot holds no job (its `spec`/`model` are
    /// placeholders). Batch scenarios never enter this state.
    Vacant,
    /// Not yet arrived, or arrived and waiting in the queue.
    Pending,
    Running(Box<RunningJob>),
    /// Crashed under [`RecoveryPolicy::Restart`]: gang released, restoring
    /// its checkpoint until the re-queue timer fires.
    Suspended(SavedProgress),
    Done,
}

pub(crate) struct JobRun {
    /// The job currently occupying this entry. In batch mode the entry index
    /// *is* the job id; in streaming mode entries are slots that successive
    /// jobs move through and `spec.id` carries the global id.
    pub(crate) spec: JobSpec,
    pub(crate) model: ModelProfile,
    pub(crate) state: JobState,
    pub(crate) outcome: Option<JobOutcome>,
    /// Bumped on every crash recovery (and, in streaming mode, on every slot
    /// reuse); events stamped with a stale epoch are dropped on delivery.
    pub(crate) epoch: u32,
    /// Every token scope this job has used (one per epoch), for byte
    /// accounting across restarts.
    pub(crate) scopes: Vec<u32>,
    pub(crate) crashes: u32,
    pub(crate) restarts: u32,
    pub(crate) shrinks: u32,
    pub(crate) recovery_secs: f64,
    pub(crate) mitigations: u32,
    /// EWMA of iteration seconds (straggler detector).
    pub(crate) ewma_iter: Option<f64>,
    /// Fastest iteration seen so far (the job's own healthy baseline).
    pub(crate) best_iter: Option<f64>,
    /// Whether a synthetic NIC-health mitigation is currently applied.
    pub(crate) mitigated: bool,
    /// Capacity the active mitigation advertised (for the restore record).
    pub(crate) mitigation_cap: f64,
}

impl JobRun {
    fn new(model: ModelProfile, spec: JobSpec) -> Self {
        JobRun {
            spec,
            model,
            state: JobState::Pending,
            outcome: None,
            epoch: 0,
            scopes: Vec::new(),
            crashes: 0,
            restarts: 0,
            shrinks: 0,
            recovery_secs: 0.0,
            mitigations: 0,
            ewma_iter: None,
            best_iter: None,
            mitigated: false,
            mitigation_cap: 0.0,
        }
    }

    /// An empty streaming slot (placeholder spec/model, never read while
    /// vacant).
    pub(crate) fn vacant() -> Self {
        let spec = JobSpec {
            id: 0,
            arrival_secs: 0.0,
            model: "tiny_cnn".to_string(),
            gpus: 1,
            engine: aiacc_trainer::EngineKind::aiacc_default(),
            iterations: 1,
            seed: 0,
        };
        let model = zoo::by_name("tiny_cnn").expect("tiny_cnn in zoo");
        let mut run = JobRun::new(model, spec);
        run.state = JobState::Vacant;
        run
    }

    /// Re-arms a vacant streaming slot for its next tenant: installs the
    /// spec/model, clears all per-job accounting, and keeps `epoch` (the
    /// slot's generation counter, bumped when the previous tenant left).
    pub(crate) fn install(&mut self, model: ModelProfile, spec: JobSpec) {
        debug_assert!(matches!(self.state, JobState::Vacant), "installing into occupied slot");
        self.spec = spec;
        self.model = model;
        self.state = JobState::Pending;
        self.outcome = None;
        self.scopes.clear();
        self.crashes = 0;
        self.restarts = 0;
        self.shrinks = 0;
        self.recovery_secs = 0.0;
        self.mitigations = 0;
        self.ewma_iter = None;
        self.best_iter = None;
        self.mitigated = false;
        self.mitigation_cap = 0.0;
    }
}

/// The multi-job scheduler/simulator.
pub struct MultiJobSim {
    pub(crate) cfg: MultiJobCfg,
    pub(crate) sim: Simulator,
    pub(crate) physical: ClusterNet,
    pub(crate) free: GpuFreeList,
    pub(crate) faults: FaultPlan,
    pub(crate) jobs: Vec<JobRun>,
    /// FIFO queue of arrived-but-unplaced job ids (batch mode; streaming
    /// keeps its own queue of slots and not-yet-admitted specs).
    pub(crate) queue: Vec<usize>,
    /// Repair events still scheduled to fire; while any remain, an
    /// unplaceable job keeps waiting instead of being declared impossible.
    pub(crate) pending_repairs: usize,
    /// `Some` puts the driver in streaming mode: `jobs` become recycled
    /// slots, arrivals come from an open-loop source, and finished jobs fold
    /// into windowed metrics instead of accumulating outcomes.
    pub(crate) stream: Option<Box<StreamState>>,
}

impl MultiJobSim {
    /// Builds the scenario — physical resources, fault plan (link faults,
    /// crash/repair timers), arrival timers — after validating the config.
    pub fn try_new(cfg: MultiJobCfg) -> Result<Self, SchedError> {
        if cfg.workload.jobs.is_empty() {
            return Err(SchedError::EmptyWorkload);
        }
        let total = cfg.cluster.world_size();
        let nodes = cfg.cluster.nodes;
        for (i, j) in cfg.workload.jobs.iter().enumerate() {
            if j.id != i {
                return Err(SchedError::NonDenseJobIds { index: i, id: j.id });
            }
            if j.gpus == 0 || j.gpus > total {
                return Err(SchedError::BadGangSize { job: i, gpus: j.gpus, capacity: total });
            }
            if j.iterations == 0 {
                return Err(SchedError::ZeroIterations { job: i });
            }
            if zoo::by_name(&j.model).is_none() {
                return Err(SchedError::UnknownModel { job: i, model: j.model.clone() });
            }
        }
        for ev in cfg.faults.events() {
            if let FaultTarget::Node(n) = ev.target {
                if n as usize >= nodes {
                    return Err(SchedError::FaultNodeOutOfRange { node: n, nodes });
                }
            }
        }

        let mut sim = Simulator::new();
        if cfg.trace {
            sim.enable_tracing();
        }
        let physical = ClusterNet::build(&cfg.cluster, sim.net_mut());
        let free = GpuFreeList::new(&cfg.cluster);
        let faults = cfg.faults.resolve_links(|n| {
            vec![physical.node_tx_resource(n as usize), physical.node_rx_resource(n as usize)]
        });
        sim.install_faults(&faults);
        let mut jobs = Vec::with_capacity(cfg.workload.jobs.len());
        for (i, j) in cfg.workload.jobs.iter().enumerate() {
            let model = zoo::by_name(&j.model).expect("validated above");
            sim.schedule_at(
                SimTime::from_secs_f64(j.arrival_secs),
                Token::new(ARRIVAL_KIND, i as u32, 0),
            );
            jobs.push(JobRun::new(model, j.clone()));
        }
        let mut pending_repairs = 0;
        for (node, at, repair) in faults.crash_spans() {
            sim.schedule_at(at, Token::new(CRASH_KIND, node, 0));
            if let Some(up_at) = repair {
                sim.schedule_at(up_at, Token::new(REPAIR_KIND, node, 0));
                pending_repairs += 1;
            }
        }
        Ok(MultiJobSim {
            cfg,
            sim,
            physical,
            free,
            faults,
            jobs,
            queue: Vec::new(),
            pending_repairs,
            stream: None,
        })
    }

    /// Builds the scenario, panicking on an invalid config (the fallible
    /// variant is [`MultiJobSim::try_new`]).
    ///
    /// # Panics
    /// Panics if [`MultiJobSim::try_new`] would return an error.
    pub fn new(cfg: MultiJobCfg) -> Self {
        MultiJobSim::try_new(cfg).unwrap_or_else(|e| panic!("invalid multi-job scenario: {e}"))
    }

    /// The scope stamped on job `id`'s tokens and flows in its current
    /// epoch: `1 + id + epoch·njobs`. Epoch 0 reduces to `id + 1` (scope 0
    /// stays reserved for scheduler-level events), so fault-free scenarios
    /// produce exactly the pre-crash-support event stream.
    ///
    /// Streaming mode reuses the 16-bit scope space forever by folding the
    /// slot's generation counter modulo [`StreamState::gen_mod`]:
    /// `1 + slot + (epoch mod gen_mod)·nslots`. Stale events from an old
    /// generation are dropped on delivery by the same epoch comparison, and
    /// per-tag byte accounting is re-zeroed on reuse (see
    /// [`MultiJobSim::record_scope`]).
    pub(crate) fn scope(&self, id: usize) -> u32 {
        let njobs = self.jobs.len();
        let epoch = self.jobs[id].epoch as usize;
        if let Some(st) = &self.stream {
            return (1 + id + (epoch % st.gen_mod as usize) * njobs) as u32;
        }
        let s = 1 + id + epoch * njobs;
        assert!(
            s <= 0xFFFF,
            "job {id} epoch {} overflows the token scope space",
            self.jobs[id].epoch
        );
        s as u32
    }

    /// Inverts [`MultiJobSim::scope`]: `(job id, epoch mod gen_mod)` — in
    /// batch mode `gen_mod` is effectively infinite and the second component
    /// is the epoch itself.
    pub(crate) fn decode_scope(&self, scope: u32) -> (usize, u32) {
        let v = scope as usize - 1;
        (v % self.jobs.len(), (v / self.jobs.len()) as u32)
    }

    /// Whether an event stamped with `scope_epoch` (the epoch component of a
    /// decoded scope) belongs to job `id`'s *current* epoch.
    pub(crate) fn epoch_live(&self, id: usize, scope_epoch: u32) -> bool {
        match &self.stream {
            Some(st) => scope_epoch == self.jobs[id].epoch % st.gen_mod,
            None => scope_epoch == self.jobs[id].epoch,
        }
    }

    /// Records the job's current scope for byte accounting. In streaming
    /// mode the tag's fabric accumulators are re-zeroed first, so a recycled
    /// tag starts counting from exactly `0.0` for its new owner (this also
    /// makes snapshot-resumed runs — whose fresh network starts all tags at
    /// zero — bit-identical to uninterrupted ones).
    fn record_scope(&mut self, id: usize) {
        let s = self.scope(id);
        if !self.jobs[id].scopes.contains(&s) {
            if self.stream.is_some() {
                self.sim.net_mut().reset_bytes_by_tag(s);
            }
            self.jobs[id].scopes.push(s);
        }
    }

    fn all_done(&self) -> bool {
        self.jobs.iter().all(|j| matches!(j.state, JobState::Done))
    }

    /// Total GPUs on nodes that are currently up (free or occupied).
    pub(crate) fn up_capacity(&self) -> usize {
        (0..self.cfg.cluster.nodes)
            .filter(|&n| !self.free.node_is_down(n))
            .map(|n| self.cfg.cluster.gpus_on_node(n))
            .sum()
    }

    /// Tries to place job `id` right now; on success starts (or resumes) its
    /// first pending iteration.
    pub(crate) fn try_start(&mut self, id: usize) -> bool {
        let gpus = self.jobs[id].spec.gpus;
        let Some(placement) = try_place(self.cfg.policy, gpus, &self.free) else {
            return false;
        };
        placement.commit(&mut self.free);
        let model = self.jobs[id].model.clone();
        let engine = self.jobs[id].spec.engine.build(&model, placement.spec.world_size());
        let compute = ComputeModel::new(placement.spec.node.gpu.clone());
        let batch = model.default_batch_per_gpu();
        let timing = compute.iteration_timing(&model, batch, DType::F32);
        let (streams_busy, streams_idle) = comm_stream_limits(&compute, &placement.spec, &model);
        let cluster = self.physical.subnet(placement.spec.clone(), &placement.ranks);
        let now = self.sim.now();
        let saved = match std::mem::replace(&mut self.jobs[id].state, JobState::Pending) {
            JobState::Suspended(s) => Some(s),
            JobState::Pending => None,
            _ => unreachable!("placing a job that is running or done"),
        };
        if self.sim.tracing_enabled() {
            let name =
                if saved.is_some() { format!("job{id} restart") } else { format!("job{id} start") };
            self.sim.trace_instant(track::TRAINER, id as u64, &name, "sched", None);
        }
        let (iter, iter_secs, started_at, iter_start) = match saved {
            Some(s) => (s.iter, s.iter_secs, s.started_at, s.iter_start),
            None => (0, Vec::new(), now, now),
        };
        // A rebuilt engine starts with a clean NIC-health map.
        self.jobs[id].mitigated = false;
        self.jobs[id].state = JobState::Running(Box::new(RunningJob {
            placement,
            cluster,
            coll: CollectiveEngine::new(),
            engine,
            timing,
            streams_busy,
            streams_idle,
            iter,
            busy_workers: 0,
            last_bwd: now,
            draining: false,
            iter_start,
            started_at,
            iter_secs,
        }));
        self.record_scope(id);
        self.begin_iteration(id);
        true
    }

    /// Mirrors the top of `TrainingSim::run_iteration_detailed`: engine
    /// reset, then the per-worker compute schedule — all under the job's
    /// token scope so every timer and flow is stamped with its owner.
    fn begin_iteration(&mut self, id: usize) {
        let scope = self.scope(id);
        let seed = self.jobs[id].spec.seed;
        let job = &mut self.jobs[id];
        let JobState::Running(r) = &mut job.state else { unreachable!("job not running") };
        let now = self.sim.now();
        let world = r.placement.spec.world_size();
        self.sim.set_token_scope(scope);
        {
            let mut cx = DdlCtx {
                sim: &mut self.sim,
                coll: &mut r.coll,
                cluster: &r.cluster,
                max_streams_now: r.streams_busy,
            };
            r.engine.begin_iteration(&mut cx, r.iter);
        }
        let attempt = ComputeAttempt {
            world,
            seed,
            jitter_frac: self.cfg.jitter_frac,
            framework: self.cfg.framework,
            timing: &r.timing,
            iter: r.iter,
        };
        let phys_spec = &self.cfg.cluster;
        let faults = &self.faults;
        let ranks = &r.placement.ranks;
        let last_bwd = schedule_worker_compute(&mut self.sim, &attempt, |w| {
            faults.compute_factor(phys_spec.node_of(ranks[w]) as u32, now)
        });
        self.sim.set_token_scope(0);
        r.busy_workers = world;
        r.last_bwd = last_bwd;
        r.draining = false;
        if self.sim.tracing_enabled() {
            let name = format!("job{id} iter {}", r.iter);
            self.sim.trace_span_begin(track::TRAINER, id as u64, &name, "iteration");
        }
    }

    /// Mirrors `TrainingSim`'s post-event check: once every worker finished
    /// backward and the engine reports communication done, the iteration
    /// ends at `max(comm_done, last_bwd) + update` and the job drains until
    /// that boundary.
    fn check_comm_done(&mut self, id: usize, t: SimTime) {
        let scope = self.scope(id);
        let job = &mut self.jobs[id];
        let JobState::Running(r) = &mut job.state else { return };
        if r.draining || r.busy_workers > 0 || !r.engine.comm_done() {
            return;
        }
        let end = t.max(r.last_bwd) + r.timing.update;
        r.draining = true;
        self.sim.set_token_scope(scope);
        self.sim.schedule_at(end, Token::new(BOUNDARY_KIND, id as u32, r.iter));
        self.sim.set_token_scope(0);
    }

    /// Handles a job's iteration boundary: record the duration, then either
    /// start the next iteration or complete the job and re-dispatch the
    /// queue.
    fn on_boundary(&mut self, id: usize, t: SimTime) {
        let iterations = self.jobs[id].spec.iterations;
        let job = &mut self.jobs[id];
        let JobState::Running(r) = &mut job.state else { return };
        let last = (t - r.iter_start).as_secs_f64();
        r.iter_secs.push(last);
        job.best_iter = Some(job.best_iter.map_or(last, |b| b.min(last)));
        job.ewma_iter =
            Some(job.ewma_iter.map_or(last, |e| (1.0 - EWMA_ALPHA) * e + EWMA_ALPHA * last));
        if self.sim.tracing_enabled() {
            let name = format!("job{id} iter {}", r.iter);
            self.sim.trace_span_end(track::TRAINER, id as u64, &name, "iteration");
        }
        r.iter += 1;
        if (r.iter as usize) < iterations {
            r.iter_start = t;
            self.begin_iteration(id);
            self.run_straggler_detector();
            return;
        }
        // Job complete: tear down lingering flows so the fabric is clean for
        // the tenants that remain, free the gang, record the outcome.
        r.coll.cancel_all(&mut self.sim);
        r.placement.release(&mut self.free);
        let start = r.started_at.as_secs_f64();
        let nodes_used = r.placement.node_count();
        let iter_secs = std::mem::take(&mut r.iter_secs);
        job.state = JobState::Done;
        let out = self.make_outcome(id, start, t.as_secs_f64(), nodes_used, iter_secs, false);
        self.finish_job(id, out);
        if self.sim.tracing_enabled() {
            let name = format!("job{id} done");
            self.sim.trace_instant(track::TRAINER, id as u64, &name, "sched", None);
        }
        self.dispatch_queue();
    }

    /// Terminal accounting for a finished (completed or failed) job. Batch
    /// mode stores the outcome for the final report; streaming mode folds it
    /// into the windowed metrics and recycles the slot.
    fn finish_job(&mut self, id: usize, out: JobOutcome) {
        if self.stream.is_some() {
            crate::stream::fold_finished(self, id, out);
        } else {
            self.jobs[id].outcome = Some(out);
        }
    }

    /// Assembles a job's outcome, summing fabric bytes over every scope
    /// (epoch) the job ran under.
    pub(crate) fn make_outcome(
        &self,
        id: usize,
        start_secs: f64,
        finish_secs: f64,
        nodes_used: usize,
        iter_secs: Vec<f64>,
        failed: bool,
    ) -> JobOutcome {
        let j = &self.jobs[id];
        let spec = &j.spec;
        let (delivered, launched) = j.scopes.iter().fold((0.0, 0.0), |(d, l), &s| {
            (
                d + self.sim.net().delivered_bytes_by_tag(s),
                l + self.sim.net().launched_bytes_by_tag(s),
            )
        });
        JobOutcome {
            id: spec.id,
            model: spec.model.clone(),
            gpus: spec.gpus,
            engine: spec.engine.label().to_string(),
            arrival_secs: spec.arrival_secs,
            start_secs,
            finish_secs,
            nodes_used,
            iter_secs,
            comm_bytes_delivered: delivered,
            comm_bytes_launched: launched,
            crashes: j.crashes,
            restarts: j.restarts,
            shrinks: j.shrinks,
            recovery_secs: j.recovery_secs,
            mitigations: j.mitigations,
            failed,
        }
    }

    /// FIFO dispatch with backfill: jobs are tried in arrival order, and a
    /// blocked head does not starve smaller jobs behind it. A queued job
    /// that can never fit again — its gang exceeds the up-node capacity and
    /// no repairs are pending — is failed deterministically instead of
    /// stalling the scenario forever.
    fn dispatch_queue(&mut self) {
        if self.stream.is_some() {
            return crate::stream::dispatch(self);
        }
        let mut i = 0;
        while i < self.queue.len() {
            let id = self.queue[i];
            if self.try_start(id) {
                self.queue.remove(i);
            } else if self.pending_repairs == 0 && self.jobs[id].spec.gpus > self.up_capacity() {
                self.queue.remove(i);
                self.fail_unplaced(id);
            } else {
                i += 1;
            }
        }
    }

    /// Fails a job that is waiting in the queue with no possible placement
    /// left (permanent capacity loss).
    pub(crate) fn fail_unplaced(&mut self, id: usize) {
        let t = self.sim.now().as_secs_f64();
        let state = std::mem::replace(&mut self.jobs[id].state, JobState::Done);
        let (start, iter_secs) = match state {
            JobState::Suspended(s) => (s.started_at.as_secs_f64(), s.iter_secs),
            JobState::Pending => (t, Vec::new()),
            _ => unreachable!("queued job neither pending nor suspended"),
        };
        let out = self.make_outcome(id, start, t, 0, iter_secs, true);
        self.finish_job(id, out);
        if self.sim.tracing_enabled() {
            let name = format!("job{id} failed");
            self.sim.trace_instant(track::TRAINER, id as u64, &name, "sched", None);
        }
    }

    /// Handles a node crash: quarantine the node's GPUs, then tear down and
    /// recover (or fail) every gang with a member on it, in job-id order.
    pub(crate) fn on_crash(&mut self, node: usize, t: SimTime) {
        self.free.set_node_down(node);
        if self.sim.tracing_enabled() {
            let name = format!("crash n{node}");
            self.sim.trace_instant(track::TRAINER, u64::MAX, &name, "fault", None);
        }
        for id in 0..self.jobs.len() {
            let hit = match &self.jobs[id].state {
                JobState::Running(r) => {
                    r.placement.ranks.iter().any(|&g| self.cfg.cluster.node_of(g) == node)
                }
                _ => false,
            };
            if !hit {
                continue;
            }
            self.jobs[id].crashes += 1;
            let JobState::Running(mut r) =
                std::mem::replace(&mut self.jobs[id].state, JobState::Pending)
            else {
                unreachable!()
            };
            r.coll.cancel_all(&mut self.sim);
            if self.sim.tracing_enabled() {
                // Close the open iteration span so traces stay balanced; the
                // retry re-opens it under the same name.
                let name = format!("job{id} iter {}", r.iter);
                self.sim.trace_span_end(track::TRAINER, id as u64, &name, "iteration");
            }
            match self.cfg.recovery {
                RecoveryPolicy::Fail => self.fail_running(id, r, t),
                RecoveryPolicy::Restart => self.restart_job(id, r, t),
                RecoveryPolicy::Shrink => self.shrink_job(id, r, node, t),
            }
        }
        // Capacity released by restarted/failed gangs can admit queued jobs.
        self.dispatch_queue();
    }

    /// Kills a running job at the crash instant ([`RecoveryPolicy::Fail`]).
    fn fail_running(&mut self, id: usize, r: Box<RunningJob>, t: SimTime) {
        r.placement.release(&mut self.free);
        self.jobs[id].state = JobState::Done;
        let out = self.make_outcome(
            id,
            r.started_at.as_secs_f64(),
            t.as_secs_f64(),
            r.placement.node_count(),
            r.iter_secs,
            true,
        );
        self.finish_job(id, out);
        if self.sim.tracing_enabled() {
            let name = format!("job{id} failed");
            self.sim.trace_instant(track::TRAINER, id as u64, &name, "sched", None);
        }
    }

    /// Checkpoint restart ([`RecoveryPolicy::Restart`]): release the whole
    /// gang, pay the replayed restore pause, re-queue at the interrupted
    /// iteration. The crashed iteration's eventual duration spans the lost
    /// attempt, the pause and the re-run — the same accounting as the
    /// single-job `TrainingSim`.
    fn restart_job(&mut self, id: usize, mut r: Box<RunningJob>, t: SimTime) {
        r.placement.release(&mut self.free);
        let pause = replay_failure_recovery(
            &r.placement.spec,
            &self.jobs[id].model,
            RecoveryConfig::default(),
        )
        .total_secs;
        self.jobs[id].recovery_secs += pause;
        self.jobs[id].restarts += 1;
        self.jobs[id].epoch += 1;
        self.jobs[id].state = JobState::Suspended(SavedProgress {
            iter: r.iter,
            iter_secs: std::mem::take(&mut r.iter_secs),
            started_at: r.started_at,
            iter_start: r.iter_start,
        });
        // Streaming stamps the slot's (bumped) generation into the token so
        // a re-queue meant for this tenant cannot resume a later tenant that
        // happens to be suspended in the same slot when it fires. Batch job
        // ids are never reused, so the guard stays trivially 0 there.
        let gen = match &self.stream {
            Some(st) => self.jobs[id].epoch % st.gen_mod,
            None => 0,
        };
        self.sim.schedule_at(
            t + SimDuration::from_secs_f64(pause),
            Token::new(REQUEUE_KIND, id as u32, gen as u64),
        );
        if self.sim.tracing_enabled() {
            let name = format!("job{id} checkpoint restore");
            self.sim.trace_instant(track::TRAINER, id as u64, &name, "recovery", Some(pause));
        }
    }

    /// Elastic shrink ([`RecoveryPolicy::Shrink`]): survivors keep their
    /// GPUs, the dead node's ranks are parked, the ring is rebuilt over the
    /// shrunken subnet after a replayed membership-change pause. Falls back
    /// to a full restart when the gang has no survivors.
    fn shrink_job(&mut self, id: usize, mut r: Box<RunningJob>, node: usize, t: SimTime) {
        let (dead, alive): (Vec<usize>, Vec<usize>) =
            r.placement.ranks.iter().partition(|&&g| self.cfg.cluster.node_of(g) == node);
        if alive.is_empty() {
            self.restart_job(id, r, t);
            return;
        }
        self.free.release(&dead);
        // Removing one physical node from a regular gang leaves a regular
        // gang: the per-logical-node counts stay `c, …, c, tail`.
        let old = &r.placement.spec;
        let counts: Vec<usize> = (0..old.nodes)
            .filter(|&ln| {
                self.cfg.cluster.node_of(r.placement.ranks[logical_base(old, ln)]) != node
            })
            .map(|ln| old.gpus_on_node(ln))
            .collect();
        let mut nodecfg = old.node.clone();
        let survivor_spec = if counts.len() == 1 {
            nodecfg.gpus_per_node = counts[0];
            ClusterSpec::new(1, nodecfg)
        } else {
            let c = counts[0];
            let tail = *counts.last().expect("non-empty");
            nodecfg.gpus_per_node = c;
            ClusterSpec::with_tail(counts.len(), nodecfg, if tail == c { 0 } else { tail })
        };
        debug_assert_eq!(survivor_spec.world_size(), alive.len());
        let pause =
            replay_elastic_join(&survivor_spec, &self.jobs[id].model, 1, RecoveryConfig::default())
                .total_secs;
        self.jobs[id].recovery_secs += pause;
        self.jobs[id].shrinks += 1;
        self.jobs[id].epoch += 1;
        self.jobs[id].mitigated = false;
        let model = self.jobs[id].model.clone();
        let engine = self.jobs[id].spec.engine.build(&model, survivor_spec.world_size());
        let compute = ComputeModel::new(survivor_spec.node.gpu.clone());
        let timing = compute.iteration_timing(&model, model.default_batch_per_gpu(), DType::F32);
        let (streams_busy, streams_idle) = comm_stream_limits(&compute, &survivor_spec, &model);
        let cluster = self.physical.subnet(survivor_spec.clone(), &alive);
        self.jobs[id].state = JobState::Running(Box::new(RunningJob {
            placement: Placement { spec: survivor_spec, ranks: alive },
            cluster,
            coll: CollectiveEngine::new(),
            engine,
            timing,
            streams_busy,
            streams_idle,
            iter: r.iter,
            busy_workers: 0,
            last_bwd: t,
            draining: true,
            iter_start: r.iter_start,
            started_at: r.started_at,
            iter_secs: std::mem::take(&mut r.iter_secs),
        }));
        self.record_scope(id);
        let scope = self.scope(id);
        self.sim.set_token_scope(scope);
        self.sim.schedule_at(
            t + SimDuration::from_secs_f64(pause),
            Token::new(RESUME_KIND, id as u32, 0),
        );
        self.sim.set_token_scope(0);
        if self.sim.tracing_enabled() {
            let name = format!("job{id} elastic shrink");
            self.sim.trace_instant(track::TRAINER, id as u64, &name, "recovery", Some(pause));
        }
    }

    /// Handles a node repair: the node's parked GPUs return to the pool and
    /// the queue gets another chance.
    pub(crate) fn on_repair(&mut self, node: usize, t: SimTime) {
        let _ = t;
        self.free.set_node_up(node);
        self.pending_repairs -= 1;
        if self.sim.tracing_enabled() {
            let name = format!("repair n{node}");
            self.sim.trace_instant(track::TRAINER, u64::MAX, &name, "fault", None);
        }
        self.dispatch_queue();
    }

    /// The straggler detector: compare each running job's iteration-time
    /// slowdown (EWMA over its own fastest iteration) to the cluster median
    /// slowdown; flagged jobs get a synthetic NIC-health record so AIACC's
    /// stream-pool scaling kicks in, lifted again once the job recovers.
    fn run_straggler_detector(&mut self) {
        let Some(threshold) = self.cfg.straggler_threshold else { return };
        let mut slowdowns: Vec<(usize, f64)> = Vec::new();
        for (id, j) in self.jobs.iter().enumerate() {
            if !matches!(j.state, JobState::Running(_)) {
                continue;
            }
            if let (Some(ewma), Some(best)) = (j.ewma_iter, j.best_iter) {
                if best > 0.0 {
                    slowdowns.push((id, ewma / best));
                }
            }
        }
        if slowdowns.len() < 2 {
            return; // a lone job has no cluster to be slower than
        }
        let mut vals: Vec<f64> = slowdowns.iter().map(|&(_, s)| s).collect();
        vals.sort_by(f64::total_cmp);
        let median = vals[vals.len() / 2];
        for (id, slowdown) in slowdowns {
            let flagged = slowdown > threshold * median;
            if flagged && !self.jobs[id].mitigated {
                self.apply_mitigation(id, slowdown / median);
            } else if !flagged && self.jobs[id].mitigated {
                self.lift_mitigation(id);
            }
        }
    }

    /// Feeds a synthetic NIC-degradation record to job `id`'s engine: the
    /// advertised capacity ratio is the inverse relative slowdown, floored
    /// at [`MITIGATION_FLOOR`]. Only the engine's *belief* changes — the
    /// physical fabric is untouched — which is exactly the NIC-health signal
    /// AIACC's stream-pool scaling consumes.
    fn apply_mitigation(&mut self, id: usize, rel_slowdown: f64) {
        let scope = self.scope(id);
        let base = self.cfg.cluster.node.nic.bytes_per_sec();
        let scaled = base * (1.0 / rel_slowdown).clamp(MITIGATION_FLOOR, 1.0);
        self.jobs[id].mitigated = true;
        self.jobs[id].mitigations += 1;
        self.jobs[id].mitigation_cap = scaled;
        let job = &mut self.jobs[id];
        let JobState::Running(r) = &mut job.state else { return };
        let node = self.cfg.cluster.node_of(r.placement.ranks[0]);
        let rec = FaultRecord {
            resource: self.physical.node_tx_resource(node),
            phase: FaultPhase::Applied,
            capacity_before: base,
            capacity_after: scaled,
        };
        if self.sim.tracing_enabled() {
            let name = format!("job{id} straggler mitigation");
            self.sim.trace_instant(track::TRAINER, id as u64, &name, "sched", Some(scaled / base));
        }
        self.sim.set_token_scope(scope);
        let mut cx = DdlCtx {
            sim: &mut self.sim,
            coll: &mut r.coll,
            cluster: &r.cluster,
            max_streams_now: if r.busy_workers > 0 { r.streams_busy } else { r.streams_idle },
        };
        r.engine.on_fault(&mut cx, &rec);
        self.sim.set_token_scope(0);
    }

    /// Restores the synthetic NIC health once the job's slowdown is back
    /// under the threshold.
    fn lift_mitigation(&mut self, id: usize) {
        let scope = self.scope(id);
        let base = self.cfg.cluster.node.nic.bytes_per_sec();
        let scaled = self.jobs[id].mitigation_cap;
        self.jobs[id].mitigated = false;
        let job = &mut self.jobs[id];
        let JobState::Running(r) = &mut job.state else { return };
        let node = self.cfg.cluster.node_of(r.placement.ranks[0]);
        let rec = FaultRecord {
            resource: self.physical.node_tx_resource(node),
            phase: FaultPhase::Restored,
            capacity_before: scaled,
            capacity_after: base,
        };
        if self.sim.tracing_enabled() {
            let name = format!("job{id} mitigation lifted");
            self.sim.trace_instant(track::TRAINER, id as u64, &name, "sched", None);
        }
        self.sim.set_token_scope(scope);
        let mut cx = DdlCtx {
            sim: &mut self.sim,
            coll: &mut r.coll,
            cluster: &r.cluster,
            max_streams_now: if r.busy_workers > 0 { r.streams_busy } else { r.streams_idle },
        };
        r.engine.on_fault(&mut cx, &rec);
        self.sim.set_token_scope(0);
    }

    /// Routes a scoped timer to its job, honoring the drain window exactly
    /// like `TrainingSim::drain_to` (stale events are dropped).
    pub(crate) fn on_job_timer(&mut self, id: usize, tok: Token, t: SimTime) {
        match tok.base_kind() {
            BOUNDARY_KIND => {
                self.on_boundary(id, t);
                return;
            }
            RESUME_KIND => {
                // The elastic-join pause is over: restart the interrupted
                // iteration on the shrunken gang.
                if self.sim.tracing_enabled() {
                    let name = format!("job{id} resume");
                    self.sim.trace_instant(track::TRAINER, id as u64, &name, "sched", None);
                }
                self.begin_iteration(id);
                return;
            }
            _ => {}
        }
        let scope = self.scope(id);
        let job = &mut self.jobs[id];
        let JobState::Running(r) = &mut job.state else { return };
        if r.draining {
            return;
        }
        self.sim.set_token_scope(scope);
        match tok.base_kind() {
            GRAD_KIND => {
                let mut cx = DdlCtx {
                    sim: &mut self.sim,
                    coll: &mut r.coll,
                    cluster: &r.cluster,
                    max_streams_now: if r.busy_workers > 0 {
                        r.streams_busy
                    } else {
                        r.streams_idle
                    },
                };
                r.engine.on_grad_ready(&mut cx, tok.a as usize, GradId(tok.b as u32));
            }
            BWD_KIND => {
                r.busy_workers -= 1;
                let mut cx = DdlCtx {
                    sim: &mut self.sim,
                    coll: &mut r.coll,
                    cluster: &r.cluster,
                    max_streams_now: if r.busy_workers > 0 {
                        r.streams_busy
                    } else {
                        r.streams_idle
                    },
                };
                r.engine.on_backward_done(&mut cx, tok.a as usize);
            }
            ENGINE_TIMER_KIND => {
                let mut cx = DdlCtx {
                    sim: &mut self.sim,
                    coll: &mut r.coll,
                    cluster: &r.cluster,
                    max_streams_now: if r.busy_workers > 0 {
                        r.streams_busy
                    } else {
                        r.streams_idle
                    },
                };
                r.engine.on_timer(&mut cx, tok.a, tok.b);
            }
            _ => {}
        }
        self.sim.set_token_scope(0);
        self.check_comm_done(id, t);
    }

    /// Routes a flow completion to the (unique) job whose collective engine
    /// owns it. Completions inside a drain window are dropped, as in the
    /// single-job path.
    pub(crate) fn on_flow(&mut self, f: FlowId, t: SimTime) {
        let mut owner = None;
        for (id, job) in self.jobs.iter().enumerate() {
            if let JobState::Running(r) = &job.state {
                if r.coll.owns_flow(f) {
                    assert!(owner.is_none(), "flow {f} owned by jobs {owner:?} and {id}");
                    owner = Some(id);
                }
            }
        }
        let Some(id) = owner else { return };
        let scope = self.scope(id);
        let job = &mut self.jobs[id];
        let JobState::Running(r) = &mut job.state else { unreachable!() };
        if r.draining {
            return;
        }
        self.sim.set_token_scope(scope);
        if let Some(op) = r.coll.on_flow_completed(&mut self.sim, f) {
            let mut cx = DdlCtx {
                sim: &mut self.sim,
                coll: &mut r.coll,
                cluster: &r.cluster,
                max_streams_now: if r.busy_workers > 0 { r.streams_busy } else { r.streams_idle },
            };
            r.engine.on_collective_done(&mut cx, op);
        }
        self.sim.set_token_scope(0);
        self.check_comm_done(id, t);
    }

    /// Broadcasts a fault record to every running job (link capacities have
    /// already changed inside the shared net).
    pub(crate) fn on_fault(&mut self, rec: &FaultRecord, t: SimTime) {
        for id in 0..self.jobs.len() {
            let scope = self.scope(id);
            let job = &mut self.jobs[id];
            let JobState::Running(r) = &mut job.state else { continue };
            self.sim.set_token_scope(scope);
            let mut cx = DdlCtx {
                sim: &mut self.sim,
                coll: &mut r.coll,
                cluster: &r.cluster,
                max_streams_now: if r.busy_workers > 0 { r.streams_busy } else { r.streams_idle },
            };
            r.engine.on_fault(&mut cx, rec);
            self.sim.set_token_scope(0);
            self.check_comm_done(id, t);
        }
    }

    /// Drives the shared event loop until every job is done.
    ///
    /// # Panics
    /// Panics if the event queue drains while jobs are still pending — a
    /// scheduler bug, since a finished job always re-dispatches the queue
    /// and an impossible placement fails the job deterministically.
    fn run_loop(&mut self) {
        while !self.all_done() {
            let Some((t, ev)) = self.sim.next_event() else {
                panic!("event queue drained with jobs unfinished (queue: {:?})", self.queue);
            };
            match ev {
                Event::Timer(tok) if tok.scope() == 0 => match tok.kind {
                    ARRIVAL_KIND => {
                        let id = tok.a as usize;
                        if !self.try_start(id) {
                            self.queue.push(id);
                            self.dispatch_queue();
                        }
                    }
                    CRASH_KIND => self.on_crash(tok.a as usize, t),
                    REPAIR_KIND => self.on_repair(tok.a as usize, t),
                    REQUEUE_KIND => {
                        let id = tok.a as usize;
                        if matches!(self.jobs[id].state, JobState::Suspended(_)) {
                            self.queue.push(id);
                            self.dispatch_queue();
                        }
                    }
                    _ => {}
                },
                Event::Timer(tok) => {
                    let (id, epoch) = self.decode_scope(tok.scope());
                    // Events from an aborted epoch (pre-crash timers) die here.
                    if self.epoch_live(id, epoch) {
                        self.on_job_timer(id, tok, t);
                    }
                }
                Event::FlowCompleted(f) => self.on_flow(f, t),
                Event::Fault(rec) => self.on_fault(&rec, t),
            }
        }
    }

    /// Runs the scenario to completion and reports per-job and cluster
    /// metrics.
    pub fn run(mut self) -> MultiJobReport {
        self.run_loop();
        self.into_report()
    }

    /// Runs the scenario, returning the report together with the Chrome
    /// trace JSON (empty unless the config enabled tracing).
    pub fn run_with_trace(mut self) -> (MultiJobReport, String) {
        self.run_loop();
        let json = self.sim.trace().to_chrome_json();
        (self.into_report(), json)
    }

    fn into_report(mut self) -> MultiJobReport {
        let jobs: Vec<JobOutcome> =
            self.jobs.iter_mut().map(|j| j.outcome.take().expect("job finished")).collect();
        let first_arrival = jobs.iter().map(|j| j.arrival_secs).fold(f64::INFINITY, f64::min);
        let last_finish = jobs.iter().map(|j| j.finish_secs).fold(0.0, f64::max);
        let makespan = last_finish - first_arrival;
        let nic_rate = self.cfg.cluster.node.nic.bytes_per_sec();
        let carried: f64 = (0..self.cfg.cluster.nodes)
            .map(|n| self.sim.net().carried_bytes(self.physical.node_tx_resource(n)))
            .sum();
        let fabric_utilization = if makespan > 0.0 {
            carried / (nic_rate * self.cfg.cluster.nodes as f64 * makespan)
        } else {
            0.0
        };
        MultiJobReport {
            policy: self.cfg.policy,
            jobs,
            makespan_secs: makespan,
            fabric_utilization,
            solver: self.sim.net().solver_stats(),
        }
    }
}

/// First logical rank hosted by logical node `ln` of `spec`.
fn logical_base(spec: &ClusterSpec, ln: usize) -> usize {
    (0..ln).map(|j| spec.gpus_on_node(j)).sum()
}

/// One-shot convenience: build and run a multi-job scenario.
pub fn run_multijob(cfg: MultiJobCfg) -> MultiJobReport {
    MultiJobSim::new(cfg).run()
}
