//! The multi-job driver: every job's engine multiplexed over one shared
//! `Simulator`/`FlowNet`.
//!
//! Each running job is a faithful copy of the single-job
//! [`aiacc_trainer::TrainingSim`] iteration state machine — same compute
//! schedule (via [`aiacc_trainer::schedule_worker_compute`]), same stream
//! limits, same iteration-boundary drain semantics — but its collectives run
//! on a [`aiacc_cluster::ClusterNet::subnet`] view of the shared physical
//! fabric, so concurrent jobs' flows contend inside one max-min allocation.
//! With a single job the event sequence degenerates to exactly the
//! single-job path, which is what makes the N=1 bit-identity guarantee hold.
//!
//! Determinism argument for the shared event loop: the simulator delivers
//! events in `(time, schedule-order)` order; every event is routed to its
//! owning job either by the scope stamped into its token's high bits
//! ([`aiacc_simnet::Simulator::set_token_scope`]) or by probing
//! `CollectiveEngine::owns_flow` in ascending job order. No routing decision
//! depends on wall-clock, hashing, or thread interleaving, so a scenario is
//! a pure function of (cluster, workload, policy).

use crate::placement::{try_place, PlacePolicy, Placement};
use crate::workload::Workload;
use aiacc_cluster::{ClusterNet, ClusterSpec, ComputeModel, GpuFreeList, IterationTiming};
use aiacc_collectives::CollectiveEngine;
use aiacc_core::ddl::{DdlCtx, DdlEngine, ENGINE_TIMER_KIND};
use aiacc_dnn::{zoo, DType, GradId, ModelProfile};
use aiacc_simnet::trace::track;
use aiacc_simnet::{Event, FaultPlan, FaultRecord, FlowId, SimTime, Simulator, Token};
use aiacc_trainer::{
    comm_stream_limits, schedule_worker_compute, ComputeAttempt, Framework, BWD_KIND, GRAD_KIND,
};

/// Unscoped timer kind announcing a job arrival (`a` = job id).
const ARRIVAL_KIND: u32 = 10;
/// Scoped timer kind marking a job's iteration boundary (`b` = iteration).
const BOUNDARY_KIND: u32 = 11;

/// Configuration of one multi-job scenario.
#[derive(Debug, Clone)]
pub struct MultiJobCfg {
    /// The shared physical cluster.
    pub cluster: ClusterSpec,
    /// Gang placement policy.
    pub policy: PlacePolicy,
    /// The jobs to run.
    pub workload: Workload,
    /// Framework adapter applied to every job.
    pub framework: Framework,
    /// Compute jitter amplitude (fraction).
    pub jitter_frac: f64,
    /// Link-degradation fault plan on the *physical* cluster (node targets
    /// resolve to that node's NIC). Crash faults are not supported here.
    pub faults: FaultPlan,
    /// Records a structured trace (one lane per job).
    pub trace: bool,
}

impl MultiJobCfg {
    /// A scenario with TrainingSim-matching defaults (PyTorch, 2 % jitter,
    /// no faults, no trace).
    pub fn new(cluster: ClusterSpec, policy: PlacePolicy, workload: Workload) -> Self {
        MultiJobCfg {
            cluster,
            policy,
            workload,
            framework: Framework::PyTorch,
            jitter_frac: 0.02,
            faults: FaultPlan::new(),
            trace: false,
        }
    }

    /// Installs a link-fault plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Enables structured tracing.
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }
}

/// What happened to one job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// Job id.
    pub id: usize,
    /// Model name.
    pub model: String,
    /// Gang size in GPUs.
    pub gpus: usize,
    /// Engine label.
    pub engine: String,
    /// Arrival time, seconds.
    pub arrival_secs: f64,
    /// When the gang was placed and the first iteration began, seconds.
    pub start_secs: f64,
    /// When the last iteration's boundary passed, seconds.
    pub finish_secs: f64,
    /// Physical nodes the gang occupied.
    pub nodes_used: usize,
    /// Per-iteration durations, seconds.
    pub iter_secs: Vec<f64>,
    /// Bytes this job's flows actually moved on the fabric.
    pub comm_bytes_delivered: f64,
    /// Bytes this job's flows were launched to move.
    pub comm_bytes_launched: f64,
}

impl JobOutcome {
    /// Job completion time: finish − arrival.
    pub fn jct_secs(&self) -> f64 {
        self.finish_secs - self.arrival_secs
    }

    /// Time spent waiting in the queue: start − arrival (clamped at zero —
    /// the simulator snaps arrival timestamps to its nanosecond grid, which
    /// can land a hair before the requested float instant).
    pub fn queue_delay_secs(&self) -> f64 {
        (self.start_secs - self.arrival_secs).max(0.0)
    }

    /// Mean iteration duration, seconds.
    pub fn mean_iter_secs(&self) -> f64 {
        self.iter_secs.iter().sum::<f64>() / self.iter_secs.len() as f64
    }
}

/// Result of one multi-job scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiJobReport {
    /// The placement policy that ran.
    pub policy: PlacePolicy,
    /// Per-job outcomes, by job id.
    pub jobs: Vec<JobOutcome>,
    /// Last finish minus first arrival, seconds.
    pub makespan_secs: f64,
    /// Mean NIC transmit utilization over the makespan across all nodes.
    pub fabric_utilization: f64,
}

/// One running job's iteration state (the fields `TrainingSim` keeps between
/// events, per job).
struct RunningJob {
    placement: Placement,
    cluster: ClusterNet,
    coll: CollectiveEngine,
    engine: Box<dyn DdlEngine>,
    timing: IterationTiming,
    streams_busy: usize,
    streams_idle: usize,
    iter: u64,
    busy_workers: usize,
    last_bwd: SimTime,
    draining: bool,
    iter_start: SimTime,
    started_at: SimTime,
    iter_secs: Vec<f64>,
}

enum JobState {
    /// Not yet arrived, or arrived and waiting in the queue.
    Pending,
    Running(Box<RunningJob>),
    Done,
}

struct JobRun {
    model: ModelProfile,
    state: JobState,
    outcome: Option<JobOutcome>,
}

/// The multi-job scheduler/simulator.
pub struct MultiJobSim {
    cfg: MultiJobCfg,
    sim: Simulator,
    physical: ClusterNet,
    free: GpuFreeList,
    faults: FaultPlan,
    jobs: Vec<JobRun>,
    /// FIFO queue of arrived-but-unplaced job ids.
    queue: Vec<usize>,
}

impl MultiJobSim {
    /// Builds the scenario: physical resources, fault plan, arrival timers.
    ///
    /// # Panics
    /// Panics if the workload is empty, a job requests more GPUs than the
    /// cluster has, a model name is unknown, or the fault plan contains
    /// crash faults (not supported in multi-job runs).
    pub fn new(cfg: MultiJobCfg) -> Self {
        assert!(!cfg.workload.jobs.is_empty(), "empty workload");
        let mut sim = Simulator::new();
        if cfg.trace {
            sim.enable_tracing();
        }
        let physical = ClusterNet::build(&cfg.cluster, sim.net_mut());
        let free = GpuFreeList::new(&cfg.cluster);
        let nodes = cfg.cluster.nodes;
        let faults = cfg.faults.resolve_links(|n| {
            assert!((n as usize) < nodes, "fault targets node {n}, cluster has {nodes}");
            vec![physical.node_tx_resource(n as usize), physical.node_rx_resource(n as usize)]
        });
        assert!(
            faults.crash_times().is_empty(),
            "crash faults are not supported in multi-job runs (use link faults)"
        );
        sim.install_faults(&faults);
        let total = cfg.cluster.world_size();
        let mut jobs = Vec::with_capacity(cfg.workload.jobs.len());
        for (i, j) in cfg.workload.jobs.iter().enumerate() {
            assert_eq!(j.id, i, "workload job ids must be dense and ordered");
            assert!(j.gpus > 0 && j.gpus <= total, "job {i} requests {} of {total} GPUs", j.gpus);
            assert!(j.iterations > 0, "job {i} has no iterations");
            let model = zoo::by_name(&j.model)
                .unwrap_or_else(|| panic!("job {i}: unknown model {:?}", j.model));
            sim.schedule_at(
                SimTime::from_secs_f64(j.arrival_secs),
                Token::new(ARRIVAL_KIND, i as u32, 0),
            );
            jobs.push(JobRun { model, state: JobState::Pending, outcome: None });
        }
        MultiJobSim { cfg, sim, physical, free, faults, jobs, queue: Vec::new() }
    }

    /// The scope stamped on job `id`'s tokens and flows (`id + 1`; scope 0
    /// stays reserved for scheduler-level events).
    fn scope(id: usize) -> u32 {
        id as u32 + 1
    }

    fn all_done(&self) -> bool {
        self.jobs.iter().all(|j| matches!(j.state, JobState::Done))
    }

    /// Tries to place job `id` right now; on success starts its first
    /// iteration.
    fn try_start(&mut self, id: usize) -> bool {
        let spec = &self.cfg.workload.jobs[id];
        let Some(placement) = try_place(self.cfg.policy, spec.gpus, &self.free) else {
            return false;
        };
        placement.commit(&mut self.free);
        let model = self.jobs[id].model.clone();
        let engine = spec.engine.build(&model, placement.spec.world_size());
        let compute = ComputeModel::new(placement.spec.node.gpu.clone());
        let batch = model.default_batch_per_gpu();
        let timing = compute.iteration_timing(&model, batch, DType::F32);
        let (streams_busy, streams_idle) = comm_stream_limits(&compute, &placement.spec, &model);
        let cluster = self.physical.subnet(placement.spec.clone(), &placement.ranks);
        let now = self.sim.now();
        if self.sim.tracing_enabled() {
            let name = format!("job{id} start");
            self.sim.trace_instant(track::TRAINER, id as u64, &name, "sched", None);
        }
        self.jobs[id].state = JobState::Running(Box::new(RunningJob {
            placement,
            cluster,
            coll: CollectiveEngine::new(),
            engine,
            timing,
            streams_busy,
            streams_idle,
            iter: 0,
            busy_workers: 0,
            last_bwd: now,
            draining: false,
            iter_start: now,
            started_at: now,
            iter_secs: Vec::new(),
        }));
        self.begin_iteration(id);
        true
    }

    /// Mirrors the top of `TrainingSim::run_iteration_detailed`: engine
    /// reset, then the per-worker compute schedule — all under the job's
    /// token scope so every timer and flow is stamped with its owner.
    fn begin_iteration(&mut self, id: usize) {
        let spec = &self.cfg.workload.jobs[id];
        let job = &mut self.jobs[id];
        let JobState::Running(r) = &mut job.state else { unreachable!("job not running") };
        let now = self.sim.now();
        let world = r.placement.spec.world_size();
        self.sim.set_token_scope(Self::scope(id));
        {
            let mut cx = DdlCtx {
                sim: &mut self.sim,
                coll: &mut r.coll,
                cluster: &r.cluster,
                max_streams_now: r.streams_busy,
            };
            r.engine.begin_iteration(&mut cx, r.iter);
        }
        let attempt = ComputeAttempt {
            world,
            seed: spec.seed,
            jitter_frac: self.cfg.jitter_frac,
            framework: self.cfg.framework,
            timing: &r.timing,
            iter: r.iter,
        };
        let phys_spec = &self.cfg.cluster;
        let faults = &self.faults;
        let ranks = &r.placement.ranks;
        let last_bwd = schedule_worker_compute(&mut self.sim, &attempt, |w| {
            faults.compute_factor(phys_spec.node_of(ranks[w]) as u32, now)
        });
        self.sim.set_token_scope(0);
        r.busy_workers = world;
        r.last_bwd = last_bwd;
        r.draining = false;
        r.iter_start = now;
        if self.sim.tracing_enabled() {
            let name = format!("job{id} iter {}", r.iter);
            self.sim.trace_span_begin(track::TRAINER, id as u64, &name, "iteration");
        }
    }

    /// Mirrors `TrainingSim`'s post-event check: once every worker finished
    /// backward and the engine reports communication done, the iteration
    /// ends at `max(comm_done, last_bwd) + update` and the job drains until
    /// that boundary.
    fn check_comm_done(&mut self, id: usize, t: SimTime) {
        let job = &mut self.jobs[id];
        let JobState::Running(r) = &mut job.state else { return };
        if r.draining || r.busy_workers > 0 || !r.engine.comm_done() {
            return;
        }
        let end = t.max(r.last_bwd) + r.timing.update;
        r.draining = true;
        self.sim.set_token_scope(Self::scope(id));
        self.sim.schedule_at(end, Token::new(BOUNDARY_KIND, id as u32, r.iter));
        self.sim.set_token_scope(0);
    }

    /// Handles a job's iteration boundary: record the duration, then either
    /// start the next iteration or complete the job and re-dispatch the
    /// queue.
    fn on_boundary(&mut self, id: usize, t: SimTime) {
        let iterations = self.cfg.workload.jobs[id].iterations;
        let job = &mut self.jobs[id];
        let JobState::Running(r) = &mut job.state else { return };
        r.iter_secs.push((t - r.iter_start).as_secs_f64());
        if self.sim.tracing_enabled() {
            let name = format!("job{id} iter {}", r.iter);
            self.sim.trace_span_end(track::TRAINER, id as u64, &name, "iteration");
        }
        r.iter += 1;
        if (r.iter as usize) < iterations {
            self.begin_iteration(id);
            return;
        }
        // Job complete: tear down lingering flows so the fabric is clean for
        // the tenants that remain, free the gang, record the outcome.
        r.coll.cancel_all(&mut self.sim);
        r.placement.release(&mut self.free);
        let spec = &self.cfg.workload.jobs[id];
        let tag = Self::scope(id);
        job.outcome = Some(JobOutcome {
            id,
            model: spec.model.clone(),
            gpus: spec.gpus,
            engine: spec.engine.label().to_string(),
            arrival_secs: spec.arrival_secs,
            start_secs: r.started_at.as_secs_f64(),
            finish_secs: t.as_secs_f64(),
            nodes_used: r.placement.node_count(),
            iter_secs: std::mem::take(&mut r.iter_secs),
            comm_bytes_delivered: self.sim.net().delivered_bytes_by_tag(tag),
            comm_bytes_launched: self.sim.net().launched_bytes_by_tag(tag),
        });
        job.state = JobState::Done;
        if self.sim.tracing_enabled() {
            let name = format!("job{id} done");
            self.sim.trace_instant(track::TRAINER, id as u64, &name, "sched", None);
        }
        self.dispatch_queue();
    }

    /// FIFO dispatch with backfill: jobs are tried in arrival order, and a
    /// blocked head does not starve smaller jobs behind it.
    fn dispatch_queue(&mut self) {
        let mut i = 0;
        while i < self.queue.len() {
            let id = self.queue[i];
            if self.try_start(id) {
                self.queue.remove(i);
            } else {
                i += 1;
            }
        }
    }

    /// Routes a scoped timer to its job, honoring the drain window exactly
    /// like `TrainingSim::drain_to` (stale events are dropped).
    fn on_job_timer(&mut self, id: usize, tok: Token, t: SimTime) {
        if tok.base_kind() == BOUNDARY_KIND {
            self.on_boundary(id, t);
            return;
        }
        let job = &mut self.jobs[id];
        let JobState::Running(r) = &mut job.state else { return };
        if r.draining {
            return;
        }
        self.sim.set_token_scope(Self::scope(id));
        match tok.base_kind() {
            GRAD_KIND => {
                let mut cx = DdlCtx {
                    sim: &mut self.sim,
                    coll: &mut r.coll,
                    cluster: &r.cluster,
                    max_streams_now: if r.busy_workers > 0 {
                        r.streams_busy
                    } else {
                        r.streams_idle
                    },
                };
                r.engine.on_grad_ready(&mut cx, tok.a as usize, GradId(tok.b as u32));
            }
            BWD_KIND => {
                r.busy_workers -= 1;
                let mut cx = DdlCtx {
                    sim: &mut self.sim,
                    coll: &mut r.coll,
                    cluster: &r.cluster,
                    max_streams_now: if r.busy_workers > 0 {
                        r.streams_busy
                    } else {
                        r.streams_idle
                    },
                };
                r.engine.on_backward_done(&mut cx, tok.a as usize);
            }
            ENGINE_TIMER_KIND => {
                let mut cx = DdlCtx {
                    sim: &mut self.sim,
                    coll: &mut r.coll,
                    cluster: &r.cluster,
                    max_streams_now: if r.busy_workers > 0 {
                        r.streams_busy
                    } else {
                        r.streams_idle
                    },
                };
                r.engine.on_timer(&mut cx, tok.a, tok.b);
            }
            _ => {}
        }
        self.sim.set_token_scope(0);
        self.check_comm_done(id, t);
    }

    /// Routes a flow completion to the (unique) job whose collective engine
    /// owns it. Completions inside a drain window are dropped, as in the
    /// single-job path.
    fn on_flow(&mut self, f: FlowId, t: SimTime) {
        let mut owner = None;
        for (id, job) in self.jobs.iter().enumerate() {
            if let JobState::Running(r) = &job.state {
                if r.coll.owns_flow(f) {
                    assert!(owner.is_none(), "flow {f} owned by jobs {owner:?} and {id}");
                    owner = Some(id);
                }
            }
        }
        let Some(id) = owner else { return };
        let job = &mut self.jobs[id];
        let JobState::Running(r) = &mut job.state else { unreachable!() };
        if r.draining {
            return;
        }
        self.sim.set_token_scope(Self::scope(id));
        if let Some(op) = r.coll.on_flow_completed(&mut self.sim, f) {
            let mut cx = DdlCtx {
                sim: &mut self.sim,
                coll: &mut r.coll,
                cluster: &r.cluster,
                max_streams_now: if r.busy_workers > 0 { r.streams_busy } else { r.streams_idle },
            };
            r.engine.on_collective_done(&mut cx, op);
        }
        self.sim.set_token_scope(0);
        self.check_comm_done(id, t);
    }

    /// Broadcasts a fault record to every running job (link capacities have
    /// already changed inside the shared net).
    fn on_fault(&mut self, rec: &FaultRecord, t: SimTime) {
        for id in 0..self.jobs.len() {
            let job = &mut self.jobs[id];
            let JobState::Running(r) = &mut job.state else { continue };
            self.sim.set_token_scope(Self::scope(id));
            let mut cx = DdlCtx {
                sim: &mut self.sim,
                coll: &mut r.coll,
                cluster: &r.cluster,
                max_streams_now: if r.busy_workers > 0 { r.streams_busy } else { r.streams_idle },
            };
            r.engine.on_fault(&mut cx, rec);
            self.sim.set_token_scope(0);
            self.check_comm_done(id, t);
        }
    }

    /// Drives the shared event loop until every job is done.
    ///
    /// # Panics
    /// Panics if the event queue drains while jobs are still pending — a
    /// scheduler bug, since a finished job always re-dispatches the queue.
    fn run_loop(&mut self) {
        while !self.all_done() {
            let Some((t, ev)) = self.sim.next_event() else {
                panic!("event queue drained with jobs unfinished (queue: {:?})", self.queue);
            };
            match ev {
                Event::Timer(tok) if tok.scope() == 0 && tok.kind == ARRIVAL_KIND => {
                    let id = tok.a as usize;
                    if !self.try_start(id) {
                        self.queue.push(id);
                    }
                }
                Event::Timer(tok) if tok.scope() > 0 => {
                    self.on_job_timer(tok.scope() as usize - 1, tok, t);
                }
                Event::Timer(_) => {}
                Event::FlowCompleted(f) => self.on_flow(f, t),
                Event::Fault(rec) => self.on_fault(&rec, t),
            }
        }
    }

    /// Runs the scenario to completion and reports per-job and cluster
    /// metrics.
    pub fn run(mut self) -> MultiJobReport {
        self.run_loop();
        self.into_report()
    }

    /// Runs the scenario, returning the report together with the Chrome
    /// trace JSON (empty unless the config enabled tracing).
    pub fn run_with_trace(mut self) -> (MultiJobReport, String) {
        self.run_loop();
        let json = self.sim.trace().to_chrome_json();
        (self.into_report(), json)
    }

    fn into_report(mut self) -> MultiJobReport {
        let jobs: Vec<JobOutcome> =
            self.jobs.iter_mut().map(|j| j.outcome.take().expect("job finished")).collect();
        let first_arrival = jobs.iter().map(|j| j.arrival_secs).fold(f64::INFINITY, f64::min);
        let last_finish = jobs.iter().map(|j| j.finish_secs).fold(0.0, f64::max);
        let makespan = last_finish - first_arrival;
        let nic_rate = self.cfg.cluster.node.nic.bytes_per_sec();
        let carried: f64 = (0..self.cfg.cluster.nodes)
            .map(|n| self.sim.net().carried_bytes(self.physical.node_tx_resource(n)))
            .sum();
        let fabric_utilization = if makespan > 0.0 {
            carried / (nic_rate * self.cfg.cluster.nodes as f64 * makespan)
        } else {
            0.0
        };
        MultiJobReport {
            policy: self.cfg.policy,
            jobs,
            makespan_secs: makespan,
            fabric_utilization,
        }
    }
}

/// One-shot convenience: build and run a multi-job scenario.
pub fn run_multijob(cfg: MultiJobCfg) -> MultiJobReport {
    MultiJobSim::new(cfg).run()
}
