//! Cluster-level scheduling metrics: tail JCT, queueing delay, makespan,
//! fabric utilization, and Jain fairness.
//!
//! Percentiles use the nearest-rank helpers from
//! [`aiacc_trainer::metrics`], so `schedule` reports and single-job
//! benchmark tables agree on the definition.
//!
//! Under chaos, failed jobs (killed by [`crate::RecoveryPolicy::Fail`] or by
//! permanent capacity loss) are *excluded* from the JCT/queue-delay/fairness
//! statistics — their truncated timelines are not completion times — and
//! reported separately via [`ClusterMetrics::njobs_failed`], alongside the
//! crash/restart/shrink/mitigation totals and the total recovery wall-clock.

use crate::multijob::MultiJobReport;
use aiacc_trainer::metrics::{p50, p95, p99};
use serde::Serialize;

/// Summary metrics of one multi-job scenario.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ClusterMetrics {
    /// Placement policy name.
    pub policy: String,
    /// Number of jobs in the scenario.
    pub njobs: usize,
    /// Median job completion time, seconds.
    pub jct_p50_secs: f64,
    /// 95th-percentile job completion time, seconds.
    pub jct_p95_secs: f64,
    /// 99th-percentile job completion time, seconds.
    pub jct_p99_secs: f64,
    /// Mean job completion time, seconds.
    pub jct_mean_secs: f64,
    /// Mean time jobs spent queued before placement, seconds.
    pub queue_delay_mean_secs: f64,
    /// Last finish minus first arrival, seconds.
    pub makespan_secs: f64,
    /// Mean NIC transmit utilization across nodes over the makespan.
    pub fabric_utilization: f64,
    /// Jain fairness index over per-job completion times (1 = all equal).
    pub jain_fairness: f64,
    /// Jobs that never completed (killed by the recovery policy or left
    /// without a feasible placement).
    pub njobs_failed: usize,
    /// Node crashes that hit running gangs, summed over jobs.
    pub crashes_total: u32,
    /// Checkpoint restarts paid, summed over jobs.
    pub restarts_total: u32,
    /// Elastic shrink operations paid, summed over jobs.
    pub shrinks_total: u32,
    /// Straggler mitigations applied, summed over jobs.
    pub mitigations_total: u32,
    /// Wall-clock spent in recovery pauses, summed over jobs, seconds.
    pub recovery_total_secs: f64,
}

/// Jain's fairness index `(Σx)² / (n · Σx²)` over `xs`; 1.0 when all values
/// are equal, approaching `1/n` when one value dominates. Returns 1.0 for an
/// empty or all-zero slice.
pub fn jain_fairness(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n == 0 {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sumsq: f64 = xs.iter().map(|x| x * x).sum();
    if sumsq == 0.0 {
        return 1.0;
    }
    sum * sum / (n as f64 * sumsq)
}

/// Reduces a [`MultiJobReport`] to its headline cluster metrics. JCT and
/// queue-delay statistics cover completed jobs only; failures are counted in
/// [`ClusterMetrics::njobs_failed`].
pub fn summarize(report: &MultiJobReport) -> ClusterMetrics {
    let completed: Vec<_> = report.jobs.iter().filter(|j| !j.failed).collect();
    let jcts: Vec<f64> = completed.iter().map(|j| j.jct_secs()).collect();
    let delays: Vec<f64> = completed.iter().map(|j| j.queue_delay_secs()).collect();
    let nc = completed.len();
    let mean = |xs: &[f64]| if xs.is_empty() { 0.0 } else { xs.iter().sum::<f64>() / nc as f64 };
    ClusterMetrics {
        policy: report.policy.name().to_string(),
        njobs: report.jobs.len(),
        jct_p50_secs: p50(&jcts).unwrap_or(0.0),
        jct_p95_secs: p95(&jcts).unwrap_or(0.0),
        jct_p99_secs: p99(&jcts).unwrap_or(0.0),
        jct_mean_secs: mean(&jcts),
        queue_delay_mean_secs: mean(&delays),
        makespan_secs: report.makespan_secs,
        fabric_utilization: report.fabric_utilization,
        jain_fairness: jain_fairness(&jcts),
        njobs_failed: report.jobs.len() - nc,
        crashes_total: report.jobs.iter().map(|j| j.crashes).sum(),
        restarts_total: report.jobs.iter().map(|j| j.restarts).sum(),
        shrinks_total: report.jobs.iter().map(|j| j.shrinks).sum(),
        mitigations_total: report.jobs.iter().map(|j| j.mitigations).sum(),
        recovery_total_secs: report.jobs.iter().map(|j| j.recovery_secs).sum(),
    }
}

impl ClusterMetrics {
    /// The TSV header matching [`ClusterMetrics::to_tsv_row`].
    pub fn tsv_header() -> &'static str {
        "policy\tnjobs\tjct_p50_s\tjct_p95_s\tjct_p99_s\tjct_mean_s\tqueue_delay_mean_s\tmakespan_s\tfabric_util\tjain\tfailed\tcrashes\trestarts\tshrinks\tmitigations\trecovery_s"
    }

    /// One deterministic TSV row (fixed 9-digit precision, so equal runs are
    /// byte-for-byte equal).
    pub fn to_tsv_row(&self) -> String {
        format!(
            "{}\t{}\t{:.9}\t{:.9}\t{:.9}\t{:.9}\t{:.9}\t{:.9}\t{:.9}\t{:.9}\t{}\t{}\t{}\t{}\t{}\t{:.9}",
            self.policy,
            self.njobs,
            self.jct_p50_secs,
            self.jct_p95_secs,
            self.jct_p99_secs,
            self.jct_mean_secs,
            self.queue_delay_mean_secs,
            self.makespan_secs,
            self.fabric_utilization,
            self.jain_fairness,
            self.njobs_failed,
            self.crashes_total,
            self.restarts_total,
            self.shrinks_total,
            self.mitigations_total,
            self.recovery_total_secs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_extremes() {
        assert_eq!(jain_fairness(&[]), 1.0);
        assert_eq!(jain_fairness(&[0.0, 0.0]), 1.0);
        assert!((jain_fairness(&[3.0, 3.0, 3.0]) - 1.0).abs() < 1e-12);
        // One job hogging: index tends to 1/n.
        let j = jain_fairness(&[10.0, 0.0, 0.0, 0.0]);
        assert!((j - 0.25).abs() < 1e-12, "{j}");
    }

    #[test]
    fn jain_is_scale_invariant() {
        let a = jain_fairness(&[1.0, 2.0, 3.0]);
        let b = jain_fairness(&[10.0, 20.0, 30.0]);
        assert!((a - b).abs() < 1e-12);
    }
}
