//! Trace-driven streaming replay: an open-loop arrival source feeding the
//! multi-job driver through a bounded pool of recycled job slots, so
//! horizons of a million jobs and more run in O(window) memory.
//!
//! # Design
//!
//! Batch mode materializes every [`JobSpec`] and [`crate::JobOutcome`] up
//! front; memory grows with the horizon. Streaming mode replaces both ends:
//!
//! - **Arrivals** come from an [`ArrivalSource`] — a seeded open-loop
//!   generator ([`ArrivalProcess::Poisson`], [`ArrivalProcess::Diurnal`],
//!   [`ArrivalProcess::Bursty`]) or a saved workload TSV replayed line by
//!   line ([`ArrivalProcess::Trace`]). Exactly one future arrival is staged
//!   at a time; the source never materializes the horizon.
//! - **Outcomes** fold into an [`Acc`]: cumulative counters, running
//!   `Σjct`/`Σjct²` (mean and Jain fairness in O(1) memory), and a mergeable
//!   [`QuantileSketch`] for tail percentiles, plus a per-window copy that is
//!   flushed as one TSV row every `window` completions.
//! - **Slots**: `jobs[i]` becomes a recycled slot. A finishing tenant bumps
//!   the slot's generation (`epoch`), so token scopes — folded modulo
//!   [`StreamState::gen_mod`] into the 16-bit scope space — from a previous
//!   tenant are dropped on delivery, exactly like pre-crash events in batch
//!   mode. Per-tag fabric byte accumulators are re-zeroed on slot reuse.
//!
//! # Snapshots
//!
//! Long horizons are resumable through *regeneration-point* snapshots: once
//! at least `snapshot_every` jobs have completed **and** the system is
//! quiescent (every slot vacant, queue empty, no flows in flight, no fault
//! or crash/repair events pending, next arrival staged), the entire sim
//! state is O(1): the accumulator, the arrival source cursor, slot
//! generations, down nodes and per-node carried-byte counters. The snapshot
//! stores exactly that, as text with shortest-round-trip float formatting,
//! so a resumed run re-schedules the staged arrival into a fresh simulator
//! and continues **byte-identically**: concatenating the output of a run
//! stopped at a snapshot with the output of its resumption reproduces the
//! uninterrupted run's output exactly. (Stale timers from evicted epochs
//! that the uninterrupted run still delivers are no-ops and only shift
//! absolute event sequence numbers, never the relative order of live
//! events; carried-byte accumulators are *seeded* with the saved values
//! rather than re-added, so float non-associativity cannot split the runs.)

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::fs::File;
use std::io::{BufRead, BufReader, Seek, SeekFrom};

use aiacc_cluster::{ClusterNet, GpuFreeList};
use aiacc_dnn::zoo;
use aiacc_simnet::{Event, FaultTarget, SimTime, Simulator, Token};
use aiacc_trainer::{EngineKind, QuantileSketch};

use crate::error::SchedError;
use crate::metrics::ClusterMetrics;
use crate::multijob::{
    JobOutcome, JobRun, JobState, MultiJobCfg, MultiJobSim, ARRIVAL_KIND, CRASH_KIND, REPAIR_KIND,
    REQUEUE_KIND,
};
use crate::workload::{engine_by_label, JobMix, JobSpec, SplitMix64};

/// First line of every snapshot file; bumped on incompatible format changes.
const SNAPSHOT_MAGIC: &str = "aiacc-stream-snapshot v1";

fn serr(msg: impl Into<String>) -> SchedError {
    SchedError::Stream { msg: msg.into() }
}

/// How the open-loop source spaces and shapes arrivals.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalProcess {
    /// Homogeneous Poisson arrivals (exponential inter-arrival gaps).
    Poisson,
    /// Poisson arrivals whose instantaneous rate swings sinusoidally over
    /// `period_secs` between 0.25× and 1.75× the base rate — a day/night
    /// load curve.
    Diurnal {
        /// Length of one full rate oscillation, seconds.
        period_secs: f64,
    },
    /// Two-phase burst/calm modulation (MMPP-style): bursts arrive 6× as
    /// fast, calm phases 1.5× as slow, with geometric phase dwells.
    Bursty,
    /// Replay a saved [`crate::Workload::to_tsv`] trace file, streamed line
    /// by line (arbitrary length, never fully loaded).
    Trace {
        /// Path to the TSV trace.
        path: String,
    },
}

impl ArrivalProcess {
    /// Parses a CLI spelling: `poisson`, `diurnal`, `bursty`, or a path
    /// (anything containing `/` or `.`) which selects trace replay.
    pub fn by_name(s: &str) -> Option<ArrivalProcess> {
        match s {
            "poisson" => Some(ArrivalProcess::Poisson),
            "diurnal" => Some(ArrivalProcess::Diurnal { period_secs: 600.0 }),
            "bursty" => Some(ArrivalProcess::Bursty),
            _ if s.contains('/') || s.contains('.') => {
                Some(ArrivalProcess::Trace { path: s.to_string() })
            }
            _ => None,
        }
    }
}

/// Configuration of the open-loop arrival source.
#[derive(Debug, Clone)]
pub struct ArrivalCfg {
    /// Arrival process preset or trace replay.
    pub process: ArrivalProcess,
    /// Jobs to emit before the source runs dry. `0` means unlimited, which
    /// is only legal for traces (they end at EOF).
    pub total_jobs: u64,
    /// Seed for inter-arrival gaps and job sampling (generated processes).
    pub seed: u64,
    /// Mean inter-arrival gap at the base rate, seconds.
    pub mean_interarrival_secs: f64,
    /// Model/gang-size mix sampled per job (generated processes).
    pub mix: JobMix,
    /// Engine for every job; `None` alternates AIACC/Horovod by job parity.
    pub engine: Option<EngineKind>,
    /// Iterations per generated job.
    pub iterations: usize,
}

impl ArrivalCfg {
    /// A source with generator defaults matching [`crate::WorkloadCfg`]:
    /// tiny mix, 6 iterations, 5 s mean gap, alternating engines.
    pub fn new(process: ArrivalProcess, total_jobs: u64, seed: u64) -> ArrivalCfg {
        ArrivalCfg {
            process,
            total_jobs,
            seed,
            mean_interarrival_secs: 5.0,
            mix: JobMix::Tiny,
            engine: None,
            iterations: 6,
        }
    }
}

/// Streaming cursor over a saved workload TSV.
struct TraceReader {
    path: String,
    reader: BufReader<File>,
    /// Byte offset of the next unread line — the snapshot cursor.
    offset: u64,
}

impl TraceReader {
    fn open(path: &str, offset: u64) -> Result<TraceReader, SchedError> {
        let mut f = File::open(path).map_err(|e| serr(format!("cannot open trace {path}: {e}")))?;
        if offset > 0 {
            f.seek(SeekFrom::Start(offset))
                .map_err(|e| serr(format!("cannot seek trace {path} to {offset}: {e}")))?;
        }
        Ok(TraceReader { path: path.to_string(), reader: BufReader::new(f), offset })
    }

    fn next_line(&mut self) -> Result<Option<String>, SchedError> {
        let mut line = String::new();
        let n = self
            .reader
            .read_line(&mut line)
            .map_err(|e| serr(format!("cannot read trace {}: {e}", self.path)))?;
        if n == 0 {
            return Ok(None);
        }
        self.offset += n as u64;
        Ok(Some(line))
    }
}

/// The saved numeric state of an [`ArrivalSource`] (one snapshot line).
struct SourceSave {
    emitted: u64,
    rng: u64,
    clock: f64,
    burst: bool,
    burst_left: u32,
    trace_offset: u64,
}

/// Open-loop arrival generator/replayer. Emits one [`JobSpec`] per call and
/// carries O(1) state, so its cursor fits in a snapshot line.
pub(crate) struct ArrivalSource {
    cfg: ArrivalCfg,
    rng: SplitMix64,
    /// Arrival clock, seconds: the last emitted job's arrival time.
    clock: f64,
    /// Jobs emitted so far; doubles as the next generated job id.
    emitted: u64,
    /// Bursty-process phase (true while inside a burst).
    burst: bool,
    /// Arrivals left before the bursty process flips phase.
    burst_left: u32,
    trace: Option<TraceReader>,
}

impl ArrivalSource {
    fn new(cfg: ArrivalCfg) -> Result<ArrivalSource, SchedError> {
        let trace = match &cfg.process {
            ArrivalProcess::Trace { path } => Some(TraceReader::open(path, 0)?),
            _ => {
                if cfg.total_jobs == 0 {
                    return Err(serr("generated arrivals need total_jobs > 0"));
                }
                if !(cfg.mean_interarrival_secs.is_finite() && cfg.mean_interarrival_secs > 0.0) {
                    return Err(serr(format!(
                        "mean inter-arrival must be positive and finite, got {}",
                        cfg.mean_interarrival_secs
                    )));
                }
                if cfg.iterations == 0 {
                    return Err(serr("generated jobs need iterations > 0"));
                }
                if let ArrivalProcess::Diurnal { period_secs } = cfg.process {
                    if !(period_secs.is_finite() && period_secs > 0.0) {
                        return Err(serr(format!(
                            "diurnal period must be positive and finite, got {period_secs}"
                        )));
                    }
                }
                None
            }
        };
        // Distinct from the batch generator's constant so the same seed
        // produces an independent stream.
        let rng = SplitMix64(cfg.seed ^ 0xA1AC_C5C4_ED00_0002);
        Ok(ArrivalSource { cfg, rng, clock: 0.0, emitted: 0, burst: false, burst_left: 0, trace })
    }

    /// Inverse rate multiplier applied to the mean gap for the next draw.
    fn gap_multiplier(&mut self) -> f64 {
        match &self.cfg.process {
            ArrivalProcess::Poisson | ArrivalProcess::Trace { .. } => 1.0,
            ArrivalProcess::Diurnal { period_secs } => {
                1.0 / (1.0 + 0.75 * (std::f64::consts::TAU * self.clock / period_secs).sin())
            }
            ArrivalProcess::Bursty => {
                if self.burst_left == 0 {
                    self.burst = !self.burst;
                    self.burst_left = 1 + (self.rng.next_u64() % 32) as u32;
                }
                self.burst_left -= 1;
                if self.burst {
                    1.0 / 6.0
                } else {
                    1.5
                }
            }
        }
    }

    /// Emits the next job, or `None` when the source is exhausted.
    fn next(&mut self) -> Result<Option<JobSpec>, SchedError> {
        if self.cfg.total_jobs > 0 && self.emitted >= self.cfg.total_jobs {
            return Ok(None);
        }
        if let Some(tr) = &mut self.trace {
            loop {
                let Some(line) = tr.next_line()? else { return Ok(None) };
                let t = line.trim();
                if t.is_empty() || t.starts_with('#') || t.starts_with("id\t") {
                    continue;
                }
                let spec = JobSpec::parse_tsv_row(t)
                    .map_err(|e| serr(format!("trace {}: {e}", tr.path)))?;
                self.emitted += 1;
                return Ok(Some(spec));
            }
        }
        let id = self.emitted;
        if id > 0 {
            let mult = self.gap_multiplier();
            self.clock += self.rng.next_exp(self.cfg.mean_interarrival_secs * mult);
        }
        self.emitted += 1;
        let choices = self.cfg.mix.choices();
        let (model, gpus) = choices[(self.rng.next_u64() % choices.len() as u64) as usize];
        let engine = match &self.cfg.engine {
            Some(e) => *e,
            None if id.is_multiple_of(2) => EngineKind::aiacc_default(),
            None => engine_by_label("horovod").expect("horovod engine registered"),
        };
        Ok(Some(JobSpec {
            id: id as usize,
            arrival_secs: self.clock,
            model: model.to_string(),
            gpus,
            engine,
            iterations: self.cfg.iterations,
            seed: self.cfg.seed.wrapping_add(1 + id),
        }))
    }

    /// One snapshot line capturing the full cursor (floats print with
    /// shortest-round-trip formatting, so restore is exact).
    fn save_line(&self) -> String {
        format!(
            "source\t{} {} {} {} {} {}",
            self.emitted,
            self.rng.0,
            self.clock,
            self.burst as u8,
            self.burst_left,
            self.trace.as_ref().map_or(0, |t| t.offset),
        )
    }

    fn restore(&mut self, s: &SourceSave) -> Result<(), SchedError> {
        self.emitted = s.emitted;
        self.rng = SplitMix64(s.rng);
        self.clock = s.clock;
        self.burst = s.burst;
        self.burst_left = s.burst_left;
        match &self.trace {
            Some(tr) => {
                let path = tr.path.clone();
                self.trace = Some(TraceReader::open(&path, s.trace_offset)?);
            }
            None if s.trace_offset != 0 => {
                return Err(serr("snapshot has a trace cursor but the run has no trace source"));
            }
            None => {}
        }
        Ok(())
    }
}

/// Configuration of a streaming replay run.
#[derive(Debug, Clone)]
pub struct StreamCfg {
    /// Cluster/policy/fault/recovery config. `base.workload` and
    /// `base.trace` are ignored — arrivals come from [`StreamCfg::arrivals`]
    /// and structured tracing is unbounded-memory by construction.
    pub base: MultiJobCfg,
    /// The open-loop arrival source.
    pub arrivals: ArrivalCfg,
    /// Concurrent job slots; `None` defaults to `2 × world_size`, clamped to
    /// `[16, 1024]` (suspended tenants hold a slot without holding GPUs, so
    /// the pool is sized above the GPU-limited concurrency).
    pub nslots: Option<usize>,
    /// Completions per windowed-metrics row.
    pub window: u64,
    /// Write a resumable snapshot after every this many completions (at the
    /// next quiescent point).
    pub snapshot_every: Option<u64>,
    /// Snapshot file path (default `stream.snap`).
    pub snapshot_path: Option<String>,
    /// Stop the run right after the first snapshot is written (for testing
    /// resume bit-identity and for chunked long runs).
    pub stop_after_snapshot: bool,
    /// Emit one TSV row per finished job (diffable against batch mode).
    pub per_job_rows: bool,
}

impl StreamCfg {
    /// Streaming defaults: 1000-completion windows, no snapshots, no
    /// per-job rows, auto-sized slot pool.
    pub fn new(base: MultiJobCfg, arrivals: ArrivalCfg) -> StreamCfg {
        StreamCfg {
            base,
            arrivals,
            nslots: None,
            window: 1000,
            snapshot_every: None,
            snapshot_path: None,
            stop_after_snapshot: false,
            per_job_rows: false,
        }
    }

    /// Sets the windowed-metrics flush interval (completions).
    pub fn with_window(mut self, window: u64) -> StreamCfg {
        self.window = window;
        self
    }

    /// Overrides the slot-pool size.
    pub fn with_nslots(mut self, nslots: usize) -> StreamCfg {
        self.nslots = Some(nslots);
        self
    }

    /// Enables periodic snapshots.
    pub fn with_snapshots(mut self, every: u64, path: impl Into<String>) -> StreamCfg {
        self.snapshot_every = Some(every);
        self.snapshot_path = Some(path.into());
        self
    }

    /// Stops right after the first snapshot (chunked runs, resume tests).
    pub fn with_stop_after_snapshot(mut self, stop: bool) -> StreamCfg {
        self.stop_after_snapshot = stop;
        self
    }

    /// Emits one TSV row per finished job.
    pub fn with_per_job_rows(mut self, on: bool) -> StreamCfg {
        self.per_job_rows = on;
        self
    }
}

/// FIFO backlog entry: a suspended slot awaiting re-placement, or an arrived
/// job not yet admitted to a slot.
enum QueueEntry {
    Slot(usize),
    Spec(JobSpec),
}

/// O(1)-memory accumulator over finished jobs: cumulative totals plus the
/// currently-filling window.
struct Acc {
    emitted: u64,
    completed: u64,
    failed: u64,
    jct_sketch: QuantileSketch,
    jct_sum: f64,
    jct_sumsq: f64,
    delay_sum: f64,
    first_arrival_secs: f64,
    last_finish_secs: f64,
    crashes: u64,
    restarts: u64,
    shrinks: u64,
    mitigations: u64,
    recovery_secs: f64,
    windows_emitted: u64,
    win_sketch: QuantileSketch,
    win_count: u64,
    win_failed: u64,
    win_jct_sum: f64,
    win_delay_sum: f64,
    win_start_secs: f64,
    peak_backlog: usize,
    peak_active: usize,
}

impl Acc {
    fn new() -> Acc {
        Acc {
            emitted: 0,
            completed: 0,
            failed: 0,
            jct_sketch: QuantileSketch::new_default(),
            jct_sum: 0.0,
            jct_sumsq: 0.0,
            delay_sum: 0.0,
            first_arrival_secs: f64::INFINITY,
            last_finish_secs: 0.0,
            crashes: 0,
            restarts: 0,
            shrinks: 0,
            mitigations: 0,
            recovery_secs: 0.0,
            windows_emitted: 0,
            win_sketch: QuantileSketch::new_default(),
            win_count: 0,
            win_failed: 0,
            win_jct_sum: 0.0,
            win_delay_sum: 0.0,
            win_start_secs: 0.0,
            peak_backlog: 0,
            peak_active: 0,
        }
    }

    fn save_line(&self) -> String {
        format!(
            "acc\t{} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {}",
            self.emitted,
            self.completed,
            self.failed,
            self.jct_sum,
            self.jct_sumsq,
            self.delay_sum,
            self.first_arrival_secs,
            self.last_finish_secs,
            self.crashes,
            self.restarts,
            self.shrinks,
            self.mitigations,
            self.recovery_secs,
            self.windows_emitted,
            self.win_count,
            self.win_failed,
            self.win_jct_sum,
            self.win_delay_sum,
            self.win_start_secs,
            self.peak_backlog,
            self.peak_active,
        )
    }

    /// Inverse of [`Acc::save_line`]; sketches are restored separately.
    fn restore(fields: &[&str]) -> Result<Acc, SchedError> {
        if fields.len() != 21 {
            return Err(serr(format!("snapshot acc line has {} fields, want 21", fields.len())));
        }
        let mut a = Acc::new();
        a.emitted = pf(fields[0], "acc emitted")?;
        a.completed = pf(fields[1], "acc completed")?;
        a.failed = pf(fields[2], "acc failed")?;
        a.jct_sum = pf(fields[3], "acc jct_sum")?;
        a.jct_sumsq = pf(fields[4], "acc jct_sumsq")?;
        a.delay_sum = pf(fields[5], "acc delay_sum")?;
        a.first_arrival_secs = pf(fields[6], "acc first_arrival")?;
        a.last_finish_secs = pf(fields[7], "acc last_finish")?;
        a.crashes = pf(fields[8], "acc crashes")?;
        a.restarts = pf(fields[9], "acc restarts")?;
        a.shrinks = pf(fields[10], "acc shrinks")?;
        a.mitigations = pf(fields[11], "acc mitigations")?;
        a.recovery_secs = pf(fields[12], "acc recovery_secs")?;
        a.windows_emitted = pf(fields[13], "acc windows_emitted")?;
        a.win_count = pf(fields[14], "acc win_count")?;
        a.win_failed = pf(fields[15], "acc win_failed")?;
        a.win_jct_sum = pf(fields[16], "acc win_jct_sum")?;
        a.win_delay_sum = pf(fields[17], "acc win_delay_sum")?;
        a.win_start_secs = pf(fields[18], "acc win_start_secs")?;
        a.peak_backlog = pf(fields[19], "acc peak_backlog")?;
        a.peak_active = pf(fields[20], "acc peak_active")?;
        Ok(a)
    }
}

fn pf<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, SchedError>
where
    T::Err: std::fmt::Display,
{
    s.parse::<T>().map_err(|e| serr(format!("snapshot: bad {what} {s:?}: {e}")))
}

/// Everything the streaming driver adds to [`MultiJobSim`].
pub(crate) struct StreamState {
    /// Modulus folding slot generations into the 16-bit scope space:
    /// `0xFFFF / nslots`. Read by [`MultiJobSim`]'s scope/epoch routing.
    pub(crate) gen_mod: u32,
    source: ArrivalSource,
    /// The one future arrival whose timer is in the event queue.
    staged: Option<JobSpec>,
    source_done: bool,
    /// FIFO backlog in arrival order (mirrors the batch queue semantics).
    queue: VecDeque<QueueEntry>,
    /// Vacant slot indices; min-heap so admission fills the lowest slot.
    free_slots: BinaryHeap<Reverse<usize>>,
    acc: Acc,
    /// Chronological output rows (window rows, optionally per-job rows).
    lines: Vec<String>,
    per_job_rows: bool,
    window: u64,
    snapshot_every: Option<u64>,
    snapshot_path: Option<String>,
    stop_after_snapshot: bool,
    /// Completion count that arms the next snapshot.
    next_snapshot_at: u64,
    /// Armed: write at the next quiescent point.
    snapshot_due: bool,
    stop_requested: bool,
    snapshots_written: u32,
    /// Crash timers still in the event queue (quiescence gate).
    pending_crashes: usize,
    /// Conservative lower bound on the smallest gang size in `queue`
    /// (only lowered on push, reset when the queue empties): the backfill
    /// walk is skipped whenever fewer GPUs than this are free.
    min_queued_gpus: usize,
    /// Conservative upper bound on the largest gang size in `queue` (only
    /// raised on push, reset when the queue empties): rules out hopeless
    /// entries without a walk.
    max_queued_gpus: usize,
    /// FNV-1a digest of the canonical run configuration; a snapshot resumes
    /// only into the exact configuration that wrote it.
    digest: u64,
}

/// Flush the (finished or partial) window as one `window\t…` TSV row and
/// reset the per-window accumulators.
fn emit_window_row(st: &mut StreamState, backlog: usize, active: usize, end_secs: f64) {
    let a = &mut st.acc;
    let ok = a.win_count - a.win_failed;
    let span = end_secs - a.win_start_secs;
    let throughput = if span > 0.0 { a.win_count as f64 / span } else { 0.0 };
    let q = |s: &QuantileSketch, p: f64| s.quantile(p).unwrap_or(0.0);
    let jct_mean = if ok > 0 { a.win_jct_sum / ok as f64 } else { 0.0 };
    let delay_mean = if ok > 0 { a.win_delay_sum / ok as f64 } else { 0.0 };
    let line = format!(
        "window\t{}\t{}\t{:.9}\t{:.9}\t{:.9}\t{:.9}\t{:.9}\t{:.9}\t{:.9}\t{}\t{}\t{}",
        a.windows_emitted,
        a.win_count,
        end_secs,
        throughput,
        q(&a.win_sketch, 50.0),
        q(&a.win_sketch, 95.0),
        q(&a.win_sketch, 99.0),
        jct_mean,
        delay_mean,
        backlog,
        active,
        a.win_failed,
    );
    a.windows_emitted += 1;
    a.win_sketch = QuantileSketch::new_default();
    a.win_count = 0;
    a.win_failed = 0;
    a.win_jct_sum = 0.0;
    a.win_delay_sum = 0.0;
    a.win_start_secs = end_secs;
    st.lines.push(line);
}

/// Header matching the `window\t…` rows (tab-separated, 13 columns).
pub fn window_tsv_header() -> &'static str {
    "window\tidx\tjobs\tend_s\tthroughput_jobs_per_s\tjct_p50_s\tjct_p95_s\tjct_p99_s\
     \tjct_mean_s\tqueue_mean_s\tbacklog\tactive\tfailed"
}

/// Folds one outcome into the accumulator (failed jobs are excluded from
/// JCT/delay statistics but counted everywhere else, mirroring
/// [`crate::metrics::summarize`]).
fn fold_outcome(st: &mut StreamState, nslots: usize, out: &JobOutcome) {
    let backlog = st.queue.len();
    let active = nslots - st.free_slots.len();
    let a = &mut st.acc;
    a.completed += 1;
    a.first_arrival_secs = a.first_arrival_secs.min(out.arrival_secs);
    a.last_finish_secs = a.last_finish_secs.max(out.finish_secs);
    a.crashes += out.crashes as u64;
    a.restarts += out.restarts as u64;
    a.shrinks += out.shrinks as u64;
    a.mitigations += out.mitigations as u64;
    a.recovery_secs += out.recovery_secs;
    if out.failed {
        a.failed += 1;
        a.win_failed += 1;
    } else {
        let jct = out.jct_secs();
        let delay = out.queue_delay_secs();
        a.jct_sketch.insert(jct);
        a.win_sketch.insert(jct);
        a.jct_sum += jct;
        a.jct_sumsq += jct * jct;
        a.delay_sum += delay;
        a.win_jct_sum += jct;
        a.win_delay_sum += delay;
    }
    a.win_count += 1;
    if st.per_job_rows {
        st.lines.push(out.tsv_row());
    }
    if st.acc.win_count == st.window {
        emit_window_row(st, backlog, active, out.finish_secs);
    }
    if st.snapshot_every.is_some() && st.acc.completed >= st.next_snapshot_at {
        st.snapshot_due = true;
    }
}

/// Terminal accounting for a streamed job: recycle the slot (bump its
/// generation so lingering events die) and fold the outcome. Called from
/// [`MultiJobSim`]'s `finish_job`.
pub(crate) fn fold_finished(sim: &mut MultiJobSim, id: usize, out: JobOutcome) {
    {
        let job = &mut sim.jobs[id];
        job.epoch = job.epoch.wrapping_add(1);
        job.state = JobState::Vacant;
        job.outcome = None;
        job.scopes.clear();
    }
    let nslots = sim.jobs.len();
    let st = sim.stream.as_mut().expect("fold_finished outside streaming mode");
    st.free_slots.push(Reverse(id));
    fold_outcome(st, nslots, &out);
}

/// Pops the lowest vacant slot, installs the spec and tries to place it.
/// Restores the slot on placement failure.
fn try_admit(sim: &mut MultiJobSim, spec: &JobSpec) -> bool {
    let slot = {
        let st = sim.stream.as_mut().expect("stream mode");
        match st.free_slots.pop() {
            Some(Reverse(s)) => s,
            None => return false,
        }
    };
    let model = zoo::by_name(&spec.model).expect("spec validated at emission");
    sim.jobs[slot].install(model, spec.clone());
    if sim.try_start(slot) {
        let active = sim.jobs.len() - sim.stream.as_ref().expect("stream mode").free_slots.len();
        let st = sim.stream.as_mut().expect("stream mode");
        st.acc.peak_active = st.acc.peak_active.max(active);
        true
    } else {
        sim.jobs[slot].state = JobState::Vacant;
        sim.stream.as_mut().expect("stream mode").free_slots.push(Reverse(slot));
        false
    }
}

/// Fails an arrived-but-never-admitted spec (permanent capacity loss), the
/// slotless analogue of `fail_unplaced` on a `Pending` job.
fn fail_spec(sim: &mut MultiJobSim, spec: &JobSpec) {
    let t = sim.sim.now().as_secs_f64();
    let out = JobOutcome {
        id: spec.id,
        model: spec.model.clone(),
        gpus: spec.gpus,
        engine: spec.engine.label().to_string(),
        arrival_secs: spec.arrival_secs,
        start_secs: t,
        finish_secs: t,
        nodes_used: 0,
        iter_secs: Vec::new(),
        comm_bytes_delivered: 0.0,
        comm_bytes_launched: 0.0,
        crashes: 0,
        restarts: 0,
        shrinks: 0,
        recovery_secs: 0.0,
        mitigations: 0,
        failed: true,
    };
    let nslots = sim.jobs.len();
    let st = sim.stream.as_mut().expect("stream mode");
    fold_outcome(st, nslots, &out);
}

/// Streaming FIFO dispatch with backfill, mirroring the batch
/// `dispatch_queue`: suspended slots are re-placed, waiting specs are
/// admitted, and entries that can never fit again fail deterministically.
pub(crate) fn dispatch(sim: &mut MultiJobSim) {
    let mut i = 0;
    // Refreshed after every successful start; placement cannot succeed for a
    // gang larger than the free-GPU total, and a spec cannot be admitted
    // with no vacant slot, so such entries are skipped with an integer
    // compare instead of a placement attempt — this keeps the backfill walk
    // cheap when a deep backlog queues behind a saturated cluster.
    let mut free_gpus = sim.free.total_free();
    // Nothing can be hopeless when every queued gang fits the up capacity
    // (or repairs are pending), and nothing can start once fewer GPUs than
    // the smallest queued gang are free — together these end the walk early
    // instead of touching every backlogged entry. The bounds are
    // conservative, so cutting the walk short is always sound.
    let no_hopeless = {
        let st = sim.stream.as_ref().expect("stream mode");
        sim.pending_repairs > 0 || st.max_queued_gpus <= sim.up_capacity()
    };
    // Placement is a pure function of (policy, gang size, free list), and the
    // free list only changes on a successful start — so once a gang size has
    // failed to place, every later entry of the same size must fail too until
    // something starts. Caching those sizes turns the pathological fragmented
    // regime (a few GPUs free that no queued shape fits) from one placement
    // attempt per backlogged entry into one per distinct gang size.
    let mut failed_sizes: Vec<usize> = Vec::new();
    loop {
        {
            let st = sim.stream.as_ref().expect("stream mode");
            if no_hopeless && st.min_queued_gpus > free_gpus {
                break;
            }
        }
        let (slot, gpus) = {
            let st = sim.stream.as_mut().expect("stream mode");
            if i >= st.queue.len() {
                if st.queue.is_empty() {
                    st.min_queued_gpus = usize::MAX;
                    st.max_queued_gpus = 0;
                }
                break;
            }
            match &st.queue[i] {
                QueueEntry::Slot(s) => (Some(*s), sim.jobs[*s].spec.gpus),
                QueueEntry::Spec(spec) => (None, spec.gpus),
            }
        };
        let slots_free =
            slot.is_some() || !sim.stream.as_ref().expect("stream mode").free_slots.is_empty();
        if gpus > free_gpus || !slots_free {
            // Cannot start right now; still fail deterministically the
            // entries that can never fit again (as the batch walk does).
            if sim.pending_repairs == 0 && gpus > sim.up_capacity() {
                let entry = sim
                    .stream
                    .as_mut()
                    .expect("stream mode")
                    .queue
                    .remove(i)
                    .expect("index checked");
                match entry {
                    QueueEntry::Slot(s) => sim.fail_unplaced(s),
                    QueueEntry::Spec(spec) => fail_spec(sim, &spec),
                }
            } else {
                i += 1;
            }
            continue;
        }
        // A cached size cannot be hopeless (its gpus fit the free total,
        // which never exceeds the up capacity), so skipping is exactly the
        // attempt-and-requeue path minus the provably-futile attempt.
        if failed_sizes.contains(&gpus) {
            i += 1;
            continue;
        }
        match slot {
            Some(slot) => {
                if sim.try_start(slot) {
                    sim.stream.as_mut().expect("stream mode").queue.remove(i);
                    free_gpus = sim.free.total_free();
                    failed_sizes.clear();
                } else if sim.pending_repairs == 0 && sim.jobs[slot].spec.gpus > sim.up_capacity() {
                    sim.stream.as_mut().expect("stream mode").queue.remove(i);
                    sim.fail_unplaced(slot);
                } else {
                    failed_sizes.push(gpus);
                    i += 1;
                }
            }
            None => {
                let entry = sim
                    .stream
                    .as_mut()
                    .expect("stream mode")
                    .queue
                    .remove(i)
                    .expect("index checked");
                let QueueEntry::Spec(spec) = entry else { unreachable!("kind checked") };
                if try_admit(sim, &spec) {
                    free_gpus = sim.free.total_free();
                    failed_sizes.clear();
                } else if sim.pending_repairs == 0 && spec.gpus > sim.up_capacity() {
                    fail_spec(sim, &spec);
                } else {
                    failed_sizes.push(gpus);
                    let st = sim.stream.as_mut().expect("stream mode");
                    st.queue.insert(i, QueueEntry::Spec(spec));
                    i += 1;
                }
            }
        }
    }
}

/// Checks a spec against the cluster the way batch `try_new` validates a
/// workload.
fn validate_spec(spec: &JobSpec, capacity: usize) -> Result<(), SchedError> {
    if spec.gpus == 0 || spec.gpus > capacity {
        return Err(SchedError::BadGangSize { job: spec.id, gpus: spec.gpus, capacity });
    }
    if spec.iterations == 0 {
        return Err(SchedError::ZeroIterations { job: spec.id });
    }
    if zoo::by_name(&spec.model).is_none() {
        return Err(SchedError::UnknownModel { job: spec.id, model: spec.model.clone() });
    }
    Ok(())
}

/// Handles a streamed ARRIVAL event: stage and schedule the *successor*
/// first (so its timer's sequence number precedes everything the current
/// admission schedules, matching the batch driver which schedules every
/// arrival up front), then admit or enqueue the current spec.
fn on_arrival(sim: &mut MultiJobSim) -> Result<(), SchedError> {
    let spec = sim
        .stream
        .as_mut()
        .expect("stream mode")
        .staged
        .take()
        .expect("ARRIVAL event with no staged spec");
    let next = {
        let st = sim.stream.as_mut().expect("stream mode");
        if st.source_done {
            None
        } else {
            st.source.next()?
        }
    };
    match next {
        Some(n) => {
            validate_spec(&n, sim.cfg.cluster.world_size())?;
            if n.arrival_secs < spec.arrival_secs {
                return Err(serr(format!(
                    "arrivals must be non-decreasing: job {} at {} after {}",
                    n.id, n.arrival_secs, spec.arrival_secs
                )));
            }
            sim.sim.schedule_at(
                SimTime::from_secs_f64(n.arrival_secs),
                Token::new(ARRIVAL_KIND, n.id as u32, 0),
            );
            sim.stream.as_mut().expect("stream mode").staged = Some(n);
        }
        None => sim.stream.as_mut().expect("stream mode").source_done = true,
    }
    sim.stream.as_mut().expect("stream mode").acc.emitted += 1;
    if !try_admit(sim, &spec) {
        let st = sim.stream.as_mut().expect("stream mode");
        st.min_queued_gpus = st.min_queued_gpus.min(spec.gpus);
        st.max_queued_gpus = st.max_queued_gpus.max(spec.gpus);
        st.queue.push_back(QueueEntry::Spec(spec));
        let backlog = st.queue.len();
        st.acc.peak_backlog = st.acc.peak_backlog.max(backlog);
        dispatch(sim);
    }
    Ok(())
}

/// The run is over: source dry, nothing staged, backlog empty, every slot
/// vacant.
fn finished(sim: &MultiJobSim) -> bool {
    let st = sim.stream.as_ref().expect("stream mode");
    st.source_done
        && st.staged.is_none()
        && st.queue.is_empty()
        && st.free_slots.len() == sim.jobs.len()
}

/// A regeneration point: the only live state is the accumulator and the
/// staged arrival, so a snapshot is O(1). All checks are O(1) — this runs
/// after every event while a snapshot is armed.
fn quiescent(sim: &MultiJobSim) -> bool {
    let st = sim.stream.as_ref().expect("stream mode");
    st.staged.is_some()
        && st.queue.is_empty()
        && st.free_slots.len() == sim.jobs.len()
        && st.pending_crashes == 0
        && sim.pending_repairs == 0
        && sim.sim.net().flow_count() == 0
        && !sim.sim.faults_pending()
}

/// Serializes the full resumable state at a quiescent point.
fn serialize_snapshot(sim: &MultiJobSim) -> String {
    let st = sim.stream.as_ref().expect("stream mode");
    let mut out = String::new();
    out.push_str(SNAPSHOT_MAGIC);
    out.push('\n');
    out.push_str(&format!("digest\t{}\n", st.digest));
    out.push_str(&format!("nslots\t{}\n", sim.jobs.len()));
    let gens: Vec<String> = sim.jobs.iter().map(|j| j.epoch.to_string()).collect();
    out.push_str(&format!("gens\t{}\n", gens.join(" ")));
    let down: Vec<String> = (0..sim.cfg.cluster.nodes)
        .filter(|&n| sim.free.node_is_down(n))
        .map(|n| n.to_string())
        .collect();
    out.push_str(&format!("down\t{}\n", down.join(" ")));
    let carried: Vec<String> = (0..sim.cfg.cluster.nodes)
        .map(|n| format!("{}", sim.sim.net().carried_bytes(sim.physical.node_tx_resource(n))))
        .collect();
    out.push_str(&format!("carried\t{}\n", carried.join(" ")));
    out.push_str(&st.source.save_line());
    out.push('\n');
    let staged = st.staged.as_ref().expect("quiescent point has a staged arrival");
    out.push_str(&format!("staged\t{}\n", staged.to_tsv_row()));
    out.push_str(&st.acc.save_line());
    out.push('\n');
    out.push_str(&format!("sched\t{} {}\n", st.next_snapshot_at, st.snapshots_written));
    out.push_str(&format!("sketch\t{}\n", st.acc.jct_sketch.to_text()));
    out.push_str(&format!("winsketch\t{}\n", st.acc.win_sketch.to_text()));
    out.push_str("end\n");
    out
}

/// Parsed form of [`serialize_snapshot`].
struct Snapshot {
    digest: u64,
    nslots: usize,
    gens: Vec<u32>,
    down: Vec<usize>,
    carried: Vec<f64>,
    source: SourceSave,
    staged: JobSpec,
    acc: Acc,
    next_snapshot_at: u64,
    snapshots_written: u32,
}

fn parse_snapshot(text: &str) -> Result<Snapshot, SchedError> {
    let mut lines = text.lines();
    let magic = lines.next().ok_or_else(|| serr("empty snapshot"))?;
    if magic != SNAPSHOT_MAGIC {
        return Err(serr(format!("unsupported snapshot header {magic:?}")));
    }
    let mut field = |tag: &str| -> Result<&str, SchedError> {
        let line =
            lines.next().ok_or_else(|| serr(format!("snapshot truncated before {tag:?}")))?;
        line.strip_prefix(tag)
            .and_then(|r| r.strip_prefix('\t'))
            .ok_or_else(|| serr(format!("snapshot: expected {tag:?} line, got {line:?}")))
    };
    let digest = pf(field("digest")?, "digest")?;
    let nslots = pf(field("nslots")?, "nslots")?;
    let gens = field("gens")?
        .split_whitespace()
        .map(|s| pf::<u32>(s, "slot generation"))
        .collect::<Result<Vec<u32>, SchedError>>()?;
    let down = field("down")?
        .split_whitespace()
        .map(|s| pf::<usize>(s, "down node"))
        .collect::<Result<Vec<usize>, SchedError>>()?;
    let carried = field("carried")?
        .split_whitespace()
        .map(|s| pf::<f64>(s, "carried bytes"))
        .collect::<Result<Vec<f64>, SchedError>>()?;
    let src: Vec<&str> = field("source")?.split_whitespace().collect();
    if src.len() != 6 {
        return Err(serr(format!("snapshot source line has {} fields, want 6", src.len())));
    }
    let source = SourceSave {
        emitted: pf(src[0], "source emitted")?,
        rng: pf(src[1], "source rng")?,
        clock: pf(src[2], "source clock")?,
        burst: pf::<u8>(src[3], "source burst")? != 0,
        burst_left: pf(src[4], "source burst_left")?,
        trace_offset: pf(src[5], "source trace offset")?,
    };
    let staged =
        JobSpec::parse_tsv_row(field("staged")?).map_err(|e| serr(format!("staged spec: {e}")))?;
    let acc_fields: Vec<&str> = field("acc")?.split_whitespace().collect();
    let mut acc = Acc::restore(&acc_fields)?;
    let sched: Vec<&str> = field("sched")?.split_whitespace().collect();
    if sched.len() != 2 {
        return Err(serr(format!("snapshot sched line has {} fields, want 2", sched.len())));
    }
    let next_snapshot_at = pf(sched[0], "next_snapshot_at")?;
    let snapshots_written = pf(sched[1], "snapshots_written")?;
    acc.jct_sketch =
        QuantileSketch::from_text(field("sketch")?).map_err(|e| serr(format!("sketch: {e}")))?;
    acc.win_sketch = QuantileSketch::from_text(field("winsketch")?)
        .map_err(|e| serr(format!("winsketch: {e}")))?;
    // "end" has no payload after the tag; it is a bare line.
    match lines.next() {
        Some("end") => {}
        other => return Err(serr(format!("snapshot truncated before end marker (got {other:?})"))),
    }
    Ok(Snapshot {
        digest,
        nslots,
        gens,
        down,
        carried,
        source,
        staged,
        acc,
        next_snapshot_at,
        snapshots_written,
    })
}

/// Writes the armed snapshot. Schedule state advances *before* serializing,
/// so the file records the post-write values and the resumed run continues
/// with exactly the state the uninterrupted run has after writing.
fn write_snapshot(sim: &mut MultiJobSim) -> Result<(), SchedError> {
    let path = {
        let st = sim.stream.as_mut().expect("stream mode");
        st.snapshot_due = false;
        st.next_snapshot_at =
            st.acc.completed + st.snapshot_every.expect("snapshot armed without interval");
        st.snapshots_written += 1;
        st.snapshot_path.clone().unwrap_or_else(|| "stream.snap".to_string())
    };
    let text = serialize_snapshot(sim);
    std::fs::write(&path, text).map_err(|e| serr(format!("cannot write snapshot {path}: {e}")))?;
    let st = sim.stream.as_mut().expect("stream mode");
    if st.stop_after_snapshot {
        st.stop_requested = true;
    }
    Ok(())
}

fn maybe_snapshot(sim: &mut MultiJobSim) -> Result<(), SchedError> {
    if !sim.stream.as_ref().expect("stream mode").snapshot_due || !quiescent(sim) {
        return Ok(());
    }
    write_snapshot(sim)
}

/// The streaming event loop: the batch loop's routing plus arrival staging,
/// generation-guarded re-queues and armed-snapshot checks.
fn run_stream_loop(sim: &mut MultiJobSim) -> Result<(), SchedError> {
    loop {
        if sim.stream.as_ref().expect("stream mode").stop_requested || finished(sim) {
            return Ok(());
        }
        let Some((t, ev)) = sim.sim.next_event() else {
            let st = sim.stream.as_ref().expect("stream mode");
            return Err(serr(format!(
                "event queue drained with work left (staged={}, backlog={}, active={})",
                st.staged.is_some(),
                st.queue.len(),
                sim.jobs.len() - st.free_slots.len(),
            )));
        };
        match ev {
            Event::Timer(tok) if tok.scope() == 0 => match tok.kind {
                ARRIVAL_KIND => on_arrival(sim)?,
                CRASH_KIND => {
                    let st = sim.stream.as_mut().expect("stream mode");
                    st.pending_crashes = st.pending_crashes.saturating_sub(1);
                    sim.on_crash(tok.a as usize, t);
                }
                REPAIR_KIND => sim.on_repair(tok.a as usize, t),
                REQUEUE_KIND => {
                    let slot = tok.a as usize;
                    // The token carries the generation it was scheduled for:
                    // a re-queue must not resume a *later* tenant that is
                    // suspended in the same recycled slot.
                    let gen_live = {
                        let st = sim.stream.as_ref().expect("stream mode");
                        tok.b == (sim.jobs[slot].epoch % st.gen_mod) as u64
                    };
                    if gen_live && matches!(sim.jobs[slot].state, JobState::Suspended(_)) {
                        let gpus = sim.jobs[slot].spec.gpus;
                        let st = sim.stream.as_mut().expect("stream mode");
                        st.min_queued_gpus = st.min_queued_gpus.min(gpus);
                        st.max_queued_gpus = st.max_queued_gpus.max(gpus);
                        st.queue.push_back(QueueEntry::Slot(slot));
                        let backlog = st.queue.len();
                        st.acc.peak_backlog = st.acc.peak_backlog.max(backlog);
                        dispatch(sim);
                    }
                }
                _ => {}
            },
            Event::Timer(tok) => {
                let (slot, epoch) = sim.decode_scope(tok.scope());
                if sim.epoch_live(slot, epoch) {
                    sim.on_job_timer(slot, tok, t);
                }
            }
            Event::FlowCompleted(f) => sim.on_flow(f, t),
            Event::Fault(rec) => sim.on_fault(&rec, t),
        }
        maybe_snapshot(sim)?;
    }
}

/// End-of-run cluster summary from the O(1) accumulator (percentiles come
/// from the sketch; mean/fairness from the running sums).
fn make_summary(sim: &MultiJobSim) -> ClusterMetrics {
    let st = sim.stream.as_ref().expect("stream mode");
    let a = &st.acc;
    let ok = a.completed - a.failed;
    let makespan = if a.completed > 0 { a.last_finish_secs - a.first_arrival_secs } else { 0.0 };
    let nodes = sim.cfg.cluster.nodes;
    let nic_rate = sim.cfg.cluster.node.nic.bytes_per_sec();
    let carried: f64 =
        (0..nodes).map(|n| sim.sim.net().carried_bytes(sim.physical.node_tx_resource(n))).sum();
    let fabric_utilization =
        if makespan > 0.0 { carried / (nic_rate * nodes as f64 * makespan) } else { 0.0 };
    let q = |p: f64| a.jct_sketch.quantile(p).unwrap_or(0.0);
    let jain_fairness = if ok == 0 || a.jct_sumsq == 0.0 {
        1.0
    } else {
        (a.jct_sum * a.jct_sum) / (ok as f64 * a.jct_sumsq)
    };
    ClusterMetrics {
        policy: sim.cfg.policy.name().to_string(),
        njobs: a.emitted as usize,
        jct_p50_secs: q(50.0),
        jct_p95_secs: q(95.0),
        jct_p99_secs: q(99.0),
        jct_mean_secs: if ok > 0 { a.jct_sum / ok as f64 } else { 0.0 },
        queue_delay_mean_secs: if ok > 0 { a.delay_sum / ok as f64 } else { 0.0 },
        makespan_secs: makespan,
        fabric_utilization,
        jain_fairness,
        njobs_failed: a.failed as usize,
        crashes_total: a.crashes.min(u32::MAX as u64) as u32,
        restarts_total: a.restarts.min(u32::MAX as u64) as u32,
        shrinks_total: a.shrinks.min(u32::MAX as u64) as u32,
        mitigations_total: a.mitigations.min(u32::MAX as u64) as u32,
        recovery_total_secs: a.recovery_secs,
    }
}

/// FNV-1a over the canonical configuration string.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn config_digest(cfg: &StreamCfg, nslots: usize) -> u64 {
    let b = &cfg.base;
    let canon = format!(
        "{:?}|{}|{:?}|{}|{:?}|{:?}|{:?}|{:?}|{}|{}|{:?}|{}",
        b.cluster,
        b.policy.name(),
        b.framework,
        b.jitter_frac,
        b.faults,
        b.recovery,
        b.straggler_threshold,
        cfg.arrivals,
        cfg.window,
        nslots,
        cfg.snapshot_every,
        cfg.per_job_rows,
    );
    fnv1a(canon.as_bytes())
}

/// Aggregate statistics of a streaming run (beyond the cluster summary).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamStats {
    /// Jobs emitted by the source.
    pub emitted: u64,
    /// Jobs finished (completed or failed).
    pub completed: u64,
    /// Jobs that failed.
    pub failed: u64,
    /// Windowed-metrics rows flushed.
    pub windows_emitted: u64,
    /// Slot-pool size (the concurrency bound).
    pub nslots: usize,
    /// Peak backlog length observed.
    pub peak_backlog: usize,
    /// Peak concurrently-admitted jobs observed.
    pub peak_active: usize,
    /// Snapshots written this run.
    pub snapshots_written: u32,
    /// The run stopped at a snapshot instead of draining the source.
    pub stopped_at_snapshot: bool,
    /// The cumulative JCT sketch's worst-case rank error.
    pub sketch_max_rank_error: u64,
    /// Items the cumulative JCT sketch holds (memory bound witness).
    pub sketch_stored_items: usize,
}

/// Result of a streaming run.
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// Chronological output rows: `window\t…` rows and (when enabled)
    /// per-job rows in completion order.
    pub lines: Vec<String>,
    /// Cluster summary — `None` when the run stopped at a snapshot (the
    /// resumed run owns the horizon's summary).
    pub summary: Option<ClusterMetrics>,
    /// Run statistics.
    pub stats: StreamStats,
}

/// A streaming replay run: [`MultiJobSim`] in slot mode plus the arrival
/// source, windowed accumulator and snapshot machinery.
pub struct StreamSim {
    sim: MultiJobSim,
}

impl StreamSim {
    /// Builds a fresh streaming run.
    pub fn try_new(cfg: StreamCfg) -> Result<StreamSim, SchedError> {
        StreamSim::build(cfg, None)
    }

    /// Resumes from snapshot text written by a run with the *same*
    /// configuration (digest-checked).
    pub fn try_resume(cfg: StreamCfg, snapshot_text: &str) -> Result<StreamSim, SchedError> {
        StreamSim::build(cfg, Some(snapshot_text))
    }

    /// Resumes from a snapshot file.
    pub fn resume_from_file(cfg: StreamCfg, path: &str) -> Result<StreamSim, SchedError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| serr(format!("cannot read snapshot {path}: {e}")))?;
        StreamSim::build(cfg, Some(&text))
    }

    fn build(cfg: StreamCfg, snap: Option<&str>) -> Result<StreamSim, SchedError> {
        let base = cfg.base.clone();
        let nodes = base.cluster.nodes;
        let world = base.cluster.world_size();
        for ev in base.faults.events() {
            if let FaultTarget::Node(n) = ev.target {
                if n as usize >= nodes {
                    return Err(SchedError::FaultNodeOutOfRange { node: n, nodes });
                }
            }
        }
        if cfg.window == 0 {
            return Err(serr("window must be positive"));
        }
        if let Some(every) = cfg.snapshot_every {
            if every == 0 {
                return Err(serr("snapshot interval must be positive"));
            }
        }
        let nslots = cfg.nslots.unwrap_or_else(|| (2 * world).clamp(16, 1024));
        if nslots == 0 {
            return Err(serr("slot pool must be positive"));
        }
        let gen_mod = 0xFFFFusize / nslots;
        if gen_mod < 2 {
            return Err(serr(format!(
                "{nslots} slots leave no generation space in the 16-bit scope (max 32767)"
            )));
        }
        let digest = config_digest(&cfg, nslots);

        let mut source = ArrivalSource::new(cfg.arrivals.clone())?;
        let mut sim = Simulator::new();
        let physical = ClusterNet::build(&base.cluster, sim.net_mut());
        let mut free = GpuFreeList::new(&base.cluster);
        let faults = base.faults.resolve_links(|n| {
            vec![physical.node_tx_resource(n as usize), physical.node_rx_resource(n as usize)]
        });

        let mut jobs: Vec<JobRun> = (0..nslots).map(|_| JobRun::vacant()).collect();
        let mut pending_repairs = 0usize;
        let mut pending_crashes = 0usize;
        let mut acc = Acc::new();
        let mut next_snapshot_at = cfg.snapshot_every.unwrap_or(0);
        let mut snapshots_written = 0u32;
        let staged;

        match snap {
            None => {
                sim.install_faults(&faults);
                let first =
                    source.next()?.ok_or_else(|| serr("arrival source produced no jobs"))?;
                validate_spec(&first, world)?;
                sim.schedule_at(
                    SimTime::from_secs_f64(first.arrival_secs),
                    Token::new(ARRIVAL_KIND, first.id as u32, 0),
                );
                staged = Some(first);
                for (node, at, repair) in faults.crash_spans() {
                    sim.schedule_at(at, Token::new(CRASH_KIND, node, 0));
                    pending_crashes += 1;
                    if let Some(up_at) = repair {
                        sim.schedule_at(up_at, Token::new(REPAIR_KIND, node, 0));
                        pending_repairs += 1;
                    }
                }
            }
            Some(text) => {
                let s = parse_snapshot(text)?;
                if s.digest != digest {
                    return Err(serr(
                        "snapshot was written by a different configuration (digest mismatch)",
                    ));
                }
                if s.nslots != nslots {
                    return Err(serr(format!(
                        "snapshot has {} slots, run is configured for {nslots}",
                        s.nslots
                    )));
                }
                if s.gens.len() != nslots {
                    return Err(serr(format!(
                        "snapshot has {} slot generations, want {nslots}",
                        s.gens.len()
                    )));
                }
                if s.carried.len() != nodes {
                    return Err(serr(format!(
                        "snapshot has {} carried-byte counters, cluster has {nodes} nodes",
                        s.carried.len()
                    )));
                }
                for (j, g) in jobs.iter_mut().zip(&s.gens) {
                    j.epoch = *g;
                }
                for &n in &s.down {
                    if n >= nodes {
                        return Err(serr(format!(
                            "snapshot marks node {n} down, cluster has {nodes} nodes"
                        )));
                    }
                    free.set_node_down(n);
                }
                // Seed (not add) the saved accumulators: float addition is
                // not associative, so only exact seeding keeps every later
                // partial sum bitwise identical to the uninterrupted run.
                for (n, &bytes) in s.carried.iter().enumerate() {
                    sim.net_mut().seed_carried_bytes(physical.node_tx_resource(n), bytes);
                }
                source.restore(&s.source)?;
                validate_spec(&s.staged, world)?;
                sim.schedule_at(
                    SimTime::from_secs_f64(s.staged.arrival_secs),
                    Token::new(ARRIVAL_KIND, s.staged.id as u32, 0),
                );
                staged = Some(s.staged);
                acc = s.acc;
                next_snapshot_at = s.next_snapshot_at;
                snapshots_written = s.snapshots_written;
                // Quiescence at write time implies the fault horizon was
                // exhausted, so no faults or crash/repair timers are
                // re-installed; the resolved plan stays available because
                // `compute_factor` is a pure function of (plan, node, time).
            }
        }

        let st = StreamState {
            gen_mod: gen_mod as u32,
            source,
            staged,
            source_done: false,
            queue: VecDeque::new(),
            free_slots: (0..nslots).map(Reverse).collect(),
            acc,
            lines: Vec::new(),
            per_job_rows: cfg.per_job_rows,
            window: cfg.window,
            snapshot_every: cfg.snapshot_every,
            snapshot_path: cfg.snapshot_path.clone(),
            stop_after_snapshot: cfg.stop_after_snapshot,
            next_snapshot_at,
            snapshot_due: false,
            stop_requested: false,
            snapshots_written,
            pending_crashes,
            min_queued_gpus: usize::MAX,
            max_queued_gpus: 0,
            digest,
        };
        Ok(StreamSim {
            sim: MultiJobSim {
                cfg: base,
                sim,
                physical,
                free,
                faults,
                jobs,
                queue: Vec::new(),
                pending_repairs,
                stream: Some(Box::new(st)),
            },
        })
    }

    /// Runs until the source drains (or the first snapshot, with
    /// [`StreamCfg::stop_after_snapshot`]).
    pub fn run(mut self) -> Result<StreamReport, SchedError> {
        run_stream_loop(&mut self.sim)?;
        let stopped = self.sim.stream.as_ref().expect("stream mode").stop_requested;
        if !stopped {
            let st = self.sim.stream.as_mut().expect("stream mode");
            if st.acc.win_count > 0 {
                let end = st.acc.last_finish_secs;
                emit_window_row(st, 0, 0, end);
            }
        }
        let summary = if stopped { None } else { Some(make_summary(&self.sim)) };
        let nslots = self.sim.jobs.len();
        let st = self.sim.stream.take().expect("stream mode");
        let a = st.acc;
        Ok(StreamReport {
            lines: st.lines,
            summary,
            stats: StreamStats {
                emitted: a.emitted,
                completed: a.completed,
                failed: a.failed,
                windows_emitted: a.windows_emitted,
                nslots,
                peak_backlog: a.peak_backlog,
                peak_active: a.peak_active,
                snapshots_written: st.snapshots_written,
                stopped_at_snapshot: stopped,
                sketch_max_rank_error: a.jct_sketch.max_rank_error(),
                sketch_stored_items: a.jct_sketch.stored_items(),
            },
        })
    }
}

/// One-shot convenience: build and run a streaming scenario.
pub fn run_stream(cfg: StreamCfg) -> Result<StreamReport, SchedError> {
    StreamSim::try_new(cfg)?.run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(process: ArrivalProcess, n: u64) -> ArrivalCfg {
        ArrivalCfg::new(process, n, 42)
    }

    #[test]
    fn process_by_name_round_trips() {
        assert_eq!(ArrivalProcess::by_name("poisson"), Some(ArrivalProcess::Poisson));
        assert!(matches!(ArrivalProcess::by_name("diurnal"), Some(ArrivalProcess::Diurnal { .. })));
        assert_eq!(ArrivalProcess::by_name("bursty"), Some(ArrivalProcess::Bursty));
        assert_eq!(
            ArrivalProcess::by_name("traces/wl.tsv"),
            Some(ArrivalProcess::Trace { path: "traces/wl.tsv".to_string() })
        );
        assert_eq!(ArrivalProcess::by_name("nope"), None);
    }

    #[test]
    fn source_is_deterministic_and_monotone() {
        let mut a = ArrivalSource::new(cfg(ArrivalProcess::Poisson, 50)).unwrap();
        let mut b = ArrivalSource::new(cfg(ArrivalProcess::Poisson, 50)).unwrap();
        let mut last = 0.0;
        for _ in 0..50 {
            let ja = a.next().unwrap().unwrap();
            let jb = b.next().unwrap().unwrap();
            assert_eq!(ja, jb);
            assert!(ja.arrival_secs >= last);
            last = ja.arrival_secs;
        }
        assert!(a.next().unwrap().is_none());
    }

    #[test]
    fn diurnal_and_bursty_stay_monotone() {
        for p in [ArrivalProcess::Diurnal { period_secs: 120.0 }, ArrivalProcess::Bursty] {
            let mut s = ArrivalSource::new(cfg(p, 200)).unwrap();
            let mut last = 0.0;
            while let Some(j) = s.next().unwrap() {
                assert!(j.arrival_secs >= last, "arrivals must be non-decreasing");
                last = j.arrival_secs;
            }
        }
    }

    #[test]
    fn source_cursor_save_restore_is_exact() {
        let mut s = ArrivalSource::new(cfg(ArrivalProcess::Bursty, 100)).unwrap();
        for _ in 0..37 {
            s.next().unwrap().unwrap();
        }
        let line = s.save_line();
        let fields: Vec<&str> = line.strip_prefix("source\t").unwrap().split_whitespace().collect();
        let save = SourceSave {
            emitted: fields[0].parse().unwrap(),
            rng: fields[1].parse().unwrap(),
            clock: fields[2].parse().unwrap(),
            burst: fields[3].parse::<u8>().unwrap() != 0,
            burst_left: fields[4].parse().unwrap(),
            trace_offset: fields[5].parse().unwrap(),
        };
        let mut r = ArrivalSource::new(cfg(ArrivalProcess::Bursty, 100)).unwrap();
        r.restore(&save).unwrap();
        loop {
            let x = s.next().unwrap();
            let y = r.next().unwrap();
            assert_eq!(x, y);
            if x.is_none() {
                break;
            }
        }
    }

    #[test]
    fn generated_source_rejects_bad_config() {
        assert!(ArrivalSource::new(cfg(ArrivalProcess::Poisson, 0)).is_err());
        let mut c = cfg(ArrivalProcess::Poisson, 5);
        c.mean_interarrival_secs = 0.0;
        assert!(ArrivalSource::new(c).is_err());
        let mut c = cfg(ArrivalProcess::Poisson, 5);
        c.iterations = 0;
        assert!(ArrivalSource::new(c).is_err());
    }

    #[test]
    fn acc_save_line_round_trips() {
        let mut a = Acc::new();
        a.emitted = 9;
        a.completed = 7;
        a.failed = 1;
        a.jct_sum = 0.1 + 0.2; // a value that needs shortest-round-trip
        a.first_arrival_secs = 0.5;
        a.last_finish_secs = 123.456;
        a.peak_backlog = 3;
        let line = a.save_line();
        let fields: Vec<&str> = line.strip_prefix("acc\t").unwrap().split_whitespace().collect();
        let b = Acc::restore(&fields).unwrap();
        assert_eq!(a.emitted, b.emitted);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.jct_sum.to_bits(), b.jct_sum.to_bits());
        assert_eq!(a.first_arrival_secs.to_bits(), b.first_arrival_secs.to_bits());
        assert_eq!(a.peak_backlog, b.peak_backlog);
        // Infinity (the empty-accumulator first-arrival) round-trips too.
        let fresh = Acc::new();
        let line = fresh.save_line();
        let fields: Vec<&str> = line.strip_prefix("acc\t").unwrap().split_whitespace().collect();
        let back = Acc::restore(&fields).unwrap();
        assert!(back.first_arrival_secs.is_infinite());
    }

    #[test]
    fn digest_tracks_configuration() {
        use crate::placement::PlacePolicy;
        use crate::workload::{Workload, WorkloadCfg};
        use aiacc_cluster::ClusterSpec;
        let wl = Workload::generate(&WorkloadCfg::new(1, 1));
        let base = MultiJobCfg::new(ClusterSpec::tcp_v100(16), PlacePolicy::Packed, wl);
        let a = StreamCfg::new(base.clone(), ArrivalCfg::new(ArrivalProcess::Poisson, 10, 1));
        let b = a.clone().with_window(77);
        assert_ne!(config_digest(&a, 16), config_digest(&b, 16));
        assert_eq!(config_digest(&a, 16), config_digest(&a.clone(), 16));
    }
}
