//! Seeded workload generation and TSV trace load/save.
//!
//! A workload is a list of DDL jobs with Poisson-style arrivals, each
//! naming a model from [`aiacc_dnn::zoo`], a GPU count, an engine, and an
//! iteration budget. Generation is a pure function of the seed (the same
//! SplitMix64 scheme as [`aiacc_cluster::jitter_factor`]), so a workload can
//! be regenerated anywhere — or frozen to a TSV trace and reloaded
//! byte-for-byte.

use aiacc_baselines::{BytePsConfig, DdpConfig, HorovodConfig, KvStoreConfig};
use aiacc_dnn::zoo;
use aiacc_trainer::EngineKind;

/// One job of a multi-job workload.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Stable job id (index into the workload).
    pub id: usize,
    /// Arrival time in seconds since the scenario start.
    pub arrival_secs: f64,
    /// Model name resolvable by [`zoo::by_name`].
    pub model: String,
    /// Requested gang size in GPUs.
    pub gpus: usize,
    /// Communication engine the job trains with.
    pub engine: EngineKind,
    /// Training iterations the job runs before completing.
    pub iterations: usize,
    /// Compute-jitter seed for the job's workers.
    pub seed: u64,
}

/// Job-mix presets for the generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobMix {
    /// Communication-heavy models (VGG-16/BERT-Large): the regime where
    /// fabric contention dominates and the paper's multi-stream advantage
    /// shows up in the JCT tail.
    CommHeavy,
    /// A production-style mix across Table 1 models and gang sizes.
    Mixed,
    /// Tiny CNNs — fast smoke-test scenarios for CI.
    Tiny,
}

impl JobMix {
    /// The `(model, gpus)` choices this mix samples from.
    pub(crate) fn choices(self) -> &'static [(&'static str, usize)] {
        match self {
            JobMix::CommHeavy => &[("vgg16", 8), ("vgg16", 8), ("bert_large", 8), ("vgg16", 12)],
            JobMix::Mixed => &[
                ("resnet50", 8),
                ("vgg16", 8),
                ("bert_large", 16),
                ("transformer", 4),
                ("resnet50", 12),
            ],
            JobMix::Tiny => &[("tiny_cnn", 4), ("tiny_cnn", 8), ("tiny_cnn", 12)],
        }
    }

    /// The preset's name (round-trips through [`JobMix::by_name`]).
    pub fn name(self) -> &'static str {
        match self {
            JobMix::CommHeavy => "comm-heavy",
            JobMix::Mixed => "mixed",
            JobMix::Tiny => "tiny",
        }
    }

    /// Looks a preset up by name.
    pub fn by_name(name: &str) -> Option<JobMix> {
        match name {
            "comm-heavy" => Some(JobMix::CommHeavy),
            "mixed" => Some(JobMix::Mixed),
            "tiny" => Some(JobMix::Tiny),
            _ => None,
        }
    }
}

/// Generator parameters for [`Workload::generate`].
#[derive(Debug, Clone)]
pub struct WorkloadCfg {
    /// Number of jobs.
    pub njobs: usize,
    /// Seed driving arrivals and the model/size draw.
    pub seed: u64,
    /// Mean inter-arrival gap in seconds (exponential).
    pub mean_interarrival_secs: f64,
    /// Which models/sizes to draw.
    pub mix: JobMix,
    /// Engine override: `Some` pins every job to one engine (how the
    /// AIACC-vs-Horovod tail comparison is run); `None` alternates
    /// AIACC/Horovod per job for mixed tenancy.
    pub engine: Option<EngineKind>,
    /// Iterations per job.
    pub iterations: usize,
}

impl WorkloadCfg {
    /// A comm-heavy scenario of `njobs` jobs: 3 s mean inter-arrival,
    /// 6 iterations per job, mixed AIACC/Horovod tenancy.
    pub fn new(njobs: usize, seed: u64) -> Self {
        WorkloadCfg {
            njobs,
            seed,
            mean_interarrival_secs: 3.0,
            mix: JobMix::CommHeavy,
            engine: None,
            iterations: 6,
        }
    }

    /// Pins every job to `engine`.
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = Some(engine);
        self
    }

    /// Selects the job mix.
    pub fn with_mix(mut self, mix: JobMix) -> Self {
        self.mix = mix;
        self
    }

    /// Sets the per-job iteration budget.
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations;
        self
    }

    /// Sets the mean inter-arrival gap.
    pub fn with_interarrival(mut self, secs: f64) -> Self {
        self.mean_interarrival_secs = secs;
        self
    }
}

/// A fully-specified multi-job scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// The jobs, ordered by id (and non-decreasing arrival time).
    pub jobs: Vec<JobSpec>,
}

/// Minimal deterministic RNG (SplitMix64 — the same finalizer the compute
/// jitter uses, so no external `rand` machinery is needed). The full `u64`
/// state is exposed crate-internally so the streaming arrival source can
/// freeze and restore it across snapshots.
pub(crate) struct SplitMix64(pub(crate) u64);

impl SplitMix64 {
    pub(crate) fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = self.0;
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        x
    }

    /// Uniform in `[0, 1)` with 53-bit resolution.
    pub(crate) fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Exponential with the given mean (inverse-CDF).
    pub(crate) fn next_exp(&mut self, mean: f64) -> f64 {
        -mean * (1.0 - self.next_f64()).ln()
    }
}

impl Workload {
    /// Generates a workload deterministically from `cfg`.
    ///
    /// # Panics
    /// Panics if `cfg.njobs` or `cfg.iterations` is zero, or the mean
    /// inter-arrival gap is negative or not finite.
    pub fn generate(cfg: &WorkloadCfg) -> Workload {
        assert!(cfg.njobs > 0, "workload needs at least one job");
        assert!(cfg.iterations > 0, "jobs need at least one iteration");
        assert!(
            cfg.mean_interarrival_secs.is_finite() && cfg.mean_interarrival_secs >= 0.0,
            "invalid mean inter-arrival"
        );
        let mut rng = SplitMix64(cfg.seed ^ 0xA1AC_C5C4_ED00_0001);
        let choices = cfg.mix.choices();
        let mut at = 0.0f64;
        let jobs = (0..cfg.njobs)
            .map(|id| {
                if id > 0 {
                    at += rng.next_exp(cfg.mean_interarrival_secs);
                }
                let (model, gpus) = choices[(rng.next_u64() % choices.len() as u64) as usize];
                let engine = cfg.engine.unwrap_or_else(|| {
                    if id % 2 == 0 {
                        EngineKind::aiacc_default()
                    } else {
                        EngineKind::Horovod(HorovodConfig::default())
                    }
                });
                JobSpec {
                    id,
                    arrival_secs: at,
                    model: model.to_string(),
                    gpus,
                    engine,
                    iterations: cfg.iterations,
                    seed: cfg.seed.wrapping_add(1 + id as u64),
                }
            })
            .collect();
        Workload { jobs }
    }

    /// Serializes the workload to the TSV trace format (header + one row
    /// per job, `\n`-terminated) accepted by [`Workload::from_tsv`].
    pub fn to_tsv(&self) -> String {
        let mut out = String::from("id\tarrival_secs\tmodel\tgpus\tengine\titerations\tseed\n");
        for j in &self.jobs {
            out.push_str(&j.to_tsv_row());
            out.push('\n');
        }
        out
    }

    /// Parses a TSV trace produced by [`Workload::to_tsv`].
    ///
    /// # Errors
    /// Returns a description of the first malformed line (wrong column
    /// count, unparsable number, unknown model or engine).
    pub fn from_tsv(text: &str) -> Result<Workload, String> {
        let mut jobs = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            if lineno == 0 || line.trim().is_empty() {
                continue; // header
            }
            jobs.push(
                JobSpec::parse_tsv_row(line).map_err(|e| format!("line {}: {e}", lineno + 1))?,
            );
        }
        if jobs.is_empty() {
            return Err("trace has no jobs".to_string());
        }
        Ok(Workload { jobs })
    }
}

impl JobSpec {
    /// Parses one data row of the [`Workload::to_tsv`] trace format. The
    /// streaming replayer uses this to consume traces of arbitrary length
    /// line by line without materializing the whole workload.
    ///
    /// # Errors
    /// Returns a description of the defect (wrong column count, unparsable
    /// number, unknown model or engine).
    pub fn parse_tsv_row(line: &str) -> Result<JobSpec, String> {
        let cols: Vec<&str> = line.split('\t').collect();
        if cols.len() != 7 {
            return Err(format!("expected 7 columns, got {}", cols.len()));
        }
        let parse = |what: &str, s: &str| -> Result<f64, String> {
            s.parse::<f64>().map_err(|_| format!("bad {what}: {s:?}"))
        };
        let model = cols[2].to_string();
        if zoo::by_name(&model).is_none() {
            return Err(format!("unknown model {model:?}"));
        }
        let engine =
            engine_by_label(cols[4]).ok_or_else(|| format!("unknown engine {:?}", cols[4]))?;
        Ok(JobSpec {
            id: parse("id", cols[0])? as usize,
            arrival_secs: parse("arrival", cols[1])?,
            model,
            gpus: parse("gpus", cols[3])? as usize,
            engine,
            iterations: parse("iterations", cols[5])? as usize,
            seed: parse("seed", cols[6])? as u64,
        })
    }

    /// Serializes this spec as one [`Workload::to_tsv`] data row (no
    /// trailing newline), the exact inverse of [`JobSpec::parse_tsv_row`].
    pub fn to_tsv_row(&self) -> String {
        format!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}",
            self.id,
            self.arrival_secs,
            self.model,
            self.gpus,
            self.engine.label(),
            self.iterations,
            self.seed
        )
    }
}

/// Resolves an engine from its [`EngineKind::label`] (default
/// configuration).
pub fn engine_by_label(label: &str) -> Option<EngineKind> {
    match label {
        "aiacc" => Some(EngineKind::aiacc_default()),
        "horovod" => Some(EngineKind::Horovod(HorovodConfig::default())),
        "pytorch-ddp" => Some(EngineKind::PyTorchDdp(DdpConfig::default())),
        "byteps" => Some(EngineKind::BytePs(BytePsConfig::default())),
        "mxnet-kvstore" => Some(EngineKind::MxnetKvStore(KvStoreConfig::default())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = WorkloadCfg::new(8, 7);
        assert_eq!(Workload::generate(&cfg), Workload::generate(&cfg));
    }

    #[test]
    fn seeds_change_the_draw() {
        let a = Workload::generate(&WorkloadCfg::new(8, 7));
        let b = Workload::generate(&WorkloadCfg::new(8, 8));
        assert_ne!(a, b);
    }

    #[test]
    fn arrivals_are_nondecreasing_and_first_is_zero() {
        let w = Workload::generate(&WorkloadCfg::new(16, 3));
        assert_eq!(w.jobs[0].arrival_secs, 0.0);
        for pair in w.jobs.windows(2) {
            assert!(pair[1].arrival_secs >= pair[0].arrival_secs);
        }
    }

    #[test]
    fn tsv_round_trips() {
        let w = Workload::generate(&WorkloadCfg::new(8, 42));
        let text = w.to_tsv();
        let back = Workload::from_tsv(&text).expect("round trip");
        assert_eq!(w, back);
        assert_eq!(back.to_tsv(), text);
    }

    #[test]
    fn tsv_rejects_unknown_model() {
        let bad = "id\tarrival_secs\tmodel\tgpus\tengine\titerations\tseed\n\
                   0\t0.0\tnope\t8\taiacc\t5\t1\n";
        assert!(Workload::from_tsv(bad).unwrap_err().contains("unknown model"));
    }

    #[test]
    fn engine_labels_round_trip() {
        for label in ["aiacc", "horovod", "pytorch-ddp", "byteps", "mxnet-kvstore"] {
            assert_eq!(engine_by_label(label).expect("known").label(), label);
        }
        assert!(engine_by_label("gloo").is_none());
    }

    #[test]
    fn every_mix_resolves_in_the_zoo() {
        for mix in [JobMix::CommHeavy, JobMix::Mixed, JobMix::Tiny] {
            for &(model, gpus) in mix.choices() {
                assert!(zoo::by_name(model).is_some(), "{model} missing from zoo");
                assert!(gpus > 0);
            }
            assert_eq!(JobMix::by_name(mix.name()), Some(mix));
        }
    }
}
