//! Gang placement policies over a [`GpuFreeList`].
//!
//! A gang is always placed in a *regular* shape — `m − 1` nodes contributing
//! `c` GPUs each plus one node contributing `r ≤ c` — because that is
//! exactly what a [`ClusterSpec`] with a partial tail node expresses, which
//! in turn keeps every existing collective builder (ring, tree, parameter
//! servers) working unchanged on the gang's
//! [`aiacc_cluster::ClusterNet::subnet`] view.
//!
//! All policies are pure functions of the free list, so placement order —
//! and with it the whole scheduler — is deterministic.

use aiacc_cluster::{ClusterSpec, GpuFreeList};
use serde::{Deserialize, Serialize};

/// Gang placement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlacePolicy {
    /// Fewest nodes, preferring already-fragmented (fullest) nodes: best for
    /// NVLink locality and low fragmentation, worst for NIC sharing.
    Packed,
    /// Most nodes, preferring the emptiest: spreads each job thin so every
    /// job's flows touch many NICs — the high-contention regime.
    Spread,
    /// Single-node NVLink placement when the gang fits on one node;
    /// otherwise fewest nodes like [`PlacePolicy::Packed`] but preferring
    /// the *emptiest* nodes, to avoid co-locating with other jobs' NIC
    /// traffic.
    TopologyAware,
}

impl PlacePolicy {
    /// The policy's CLI/report name.
    pub fn name(self) -> &'static str {
        match self {
            PlacePolicy::Packed => "packed",
            PlacePolicy::Spread => "spread",
            PlacePolicy::TopologyAware => "topo",
        }
    }

    /// Looks a policy up by name.
    pub fn by_name(name: &str) -> Option<PlacePolicy> {
        match name {
            "packed" => Some(PlacePolicy::Packed),
            "spread" => Some(PlacePolicy::Spread),
            "topo" | "topology-aware" => Some(PlacePolicy::TopologyAware),
            _ => None,
        }
    }

    /// All policies, in report order.
    pub fn all() -> [PlacePolicy; 3] {
        [PlacePolicy::Packed, PlacePolicy::Spread, PlacePolicy::TopologyAware]
    }
}

/// A concrete gang: the logical cluster the job's engine sees, plus the
/// physical global rank backing each logical rank (logical order).
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// The gang's logical cluster (regular shape, possibly a partial tail).
    pub spec: ClusterSpec,
    /// Physical global ranks, `ranks[i]` backing logical rank `i`.
    pub ranks: Vec<usize>,
}

/// Per-node GPU counts of a regular `req`-GPU gang over `m` nodes:
/// `m − 1` nodes of `ceil(req / m)` plus a tail of the remainder. Returns
/// `None` when `m` nodes cannot form a regular shape (tail would be empty —
/// fewer nodes suffice — or the per-node count exceeds the node size).
fn regular_counts(req: usize, m: usize, gpn: usize) -> Option<Vec<usize>> {
    let c = req.div_ceil(m);
    if c > gpn {
        return None;
    }
    let full = m - 1;
    let tail = req.checked_sub(full * c).filter(|&r| r > 0)?;
    let mut counts = vec![c; full];
    counts.push(tail);
    Some(counts)
}

/// Tries to place a `req`-GPU gang under `policy` without mutating the free
/// list. Returns `None` when the gang does not fit right now (the caller
/// queues the job).
///
/// # Panics
/// Panics if `req` is zero or exceeds the cluster's total GPU count.
pub fn try_place(policy: PlacePolicy, req: usize, free: &GpuFreeList) -> Option<Placement> {
    let spec = free.spec();
    let total: usize = (0..spec.nodes).map(|n| spec.gpus_on_node(n)).sum();
    assert!(req > 0, "gang needs at least one GPU");
    assert!(req <= total, "gang of {req} GPUs exceeds cluster capacity {total}");
    let gpn = spec.node.gpus_per_node;

    let single = |best_fit: bool| -> Option<Placement> {
        // Smallest (best-fit) or largest (worst-fit) feasible node; ties go
        // to the lowest index.
        let mut pick: Option<(usize, usize)> = None;
        for n in 0..spec.nodes {
            let f = free.free_on_node(n);
            if f < req {
                continue;
            }
            let better = match pick {
                None => true,
                Some((_, pf)) => {
                    if best_fit {
                        f < pf
                    } else {
                        f > pf
                    }
                }
            };
            if better {
                pick = Some((n, f));
            }
        }
        let (node, _) = pick?;
        Some(assemble(free, &[(node, req)]))
    };

    // Candidate nodes in policy preference order.
    let ordered = |emptiest_first: bool| -> Vec<(usize, usize)> {
        let mut nodes: Vec<(usize, usize)> =
            (0..spec.nodes).map(|n| (n, free.free_on_node(n))).filter(|&(_, f)| f > 0).collect();
        nodes.sort_by_key(|&(n, f)| (if emptiest_first { total - f } else { f }, n));
        nodes
    };

    // Greedily assigns the (descending) per-node counts of a regular shape
    // to the ordered candidates.
    let multi = |m: usize, emptiest_first: bool| -> Option<Placement> {
        let counts = regular_counts(req, m, gpn)?;
        let candidates = ordered(emptiest_first);
        let mut chosen: Vec<(usize, usize)> = Vec::with_capacity(m);
        let mut used = vec![false; spec.nodes];
        for &count in &counts {
            let slot =
                candidates.iter().find(|&&(n, f)| !used[n] && f >= count).map(|&(n, _)| n)?;
            used[slot] = true;
            chosen.push((slot, count));
        }
        Some(assemble(free, &chosen))
    };

    let m_min = req.div_ceil(gpn);
    let m_max = req.min(spec.nodes);
    match policy {
        PlacePolicy::Packed => {
            if req <= gpn {
                if let Some(p) = single(true) {
                    return Some(p);
                }
            }
            (m_min.max(2)..=m_max).find_map(|m| multi(m, false))
        }
        PlacePolicy::Spread => {
            if m_max >= 2 {
                if let Some(p) = (m_min.max(2)..=m_max).rev().find_map(|m| multi(m, true)) {
                    return Some(p);
                }
            }
            single(false)
        }
        PlacePolicy::TopologyAware => {
            if req <= gpn {
                if let Some(p) = single(true) {
                    return Some(p);
                }
            }
            (m_min.max(2)..=m_max).find_map(|m| multi(m, true))
        }
    }
}

/// Materializes a chosen `(node, count)` assignment into a [`Placement`]
/// with a regular logical spec. Does not touch the free list — the caller
/// commits the ranks with [`GpuFreeList::take`] if it accepts the gang.
fn assemble(free: &GpuFreeList, chosen: &[(usize, usize)]) -> Placement {
    let phys = free.spec();
    let mut probe = free.clone();
    let mut ranks = Vec::new();
    for &(node, count) in chosen {
        ranks.extend(probe.take(node, count));
    }
    let mut node = phys.node.clone();
    let spec = if chosen.len() == 1 {
        node.gpus_per_node = chosen[0].1;
        ClusterSpec::new(1, node)
    } else {
        let c = chosen[0].1;
        let tail = chosen[chosen.len() - 1].1;
        node.gpus_per_node = c;
        ClusterSpec::with_tail(chosen.len(), node, if tail == c { 0 } else { tail })
    };
    debug_assert_eq!(spec.world_size(), ranks.len());
    Placement { spec, ranks }
}

impl Placement {
    /// Commits this placement, removing its ranks from the free list.
    pub fn commit(&self, free: &mut GpuFreeList) {
        let phys = free.spec().clone();
        let mut i = 0;
        for n in 0..self.spec.nodes {
            let count = self.spec.gpus_on_node(n);
            let node = phys.node_of(self.ranks[i]);
            let got = free.take(node, count);
            assert_eq!(got[..], self.ranks[i..i + count], "free list changed since placement");
            i += count;
        }
    }

    /// Returns this placement's ranks to the free list.
    pub fn release(&self, free: &mut GpuFreeList) {
        free.release(&self.ranks);
    }

    /// Number of distinct physical nodes the gang touches.
    pub fn node_count(&self) -> usize {
        self.spec.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aiacc_cluster::ClusterSpec;

    fn free32() -> GpuFreeList {
        GpuFreeList::new(&ClusterSpec::tcp_v100(32))
    }

    #[test]
    fn packed_prefers_single_fullest_node() {
        let mut free = free32();
        let _ = free.take(2, 5); // node 2 has 3 left
        let p = try_place(PlacePolicy::Packed, 3, &free).expect("fits");
        // Best fit: node 2's remaining 3 GPUs, not a fresh node.
        assert_eq!(p.ranks, vec![21, 22, 23]);
        assert_eq!(p.spec.nodes, 1);
    }

    #[test]
    fn spread_uses_many_nodes() {
        let free = free32();
        let p = try_place(PlacePolicy::Spread, 8, &free).expect("fits");
        assert_eq!(p.node_count(), 4);
        assert_eq!(p.spec.node.gpus_per_node, 2);
        assert_eq!(p.spec.tail_gpus, 0);
        assert_eq!(p.ranks, vec![0, 1, 8, 9, 16, 17, 24, 25]);
    }

    #[test]
    fn packed_splits_when_no_node_fits() {
        let free = free32();
        let p = try_place(PlacePolicy::Packed, 12, &free).expect("fits");
        // 12 > 8, so two nodes in the balanced regular shape 6 + 6.
        assert_eq!(p.node_count(), 2);
        assert_eq!(p.spec.node.gpus_per_node, 6);
        assert_eq!(p.spec.tail_gpus, 0);
        assert_eq!(p.spec.world_size(), 12);
    }

    #[test]
    fn topo_prefers_empty_nodes_when_splitting() {
        let mut free = free32();
        let _ = free.take(0, 4); // node 0 half full
        let p = try_place(PlacePolicy::TopologyAware, 16, &free).expect("fits");
        // Needs 2 full nodes; the emptiest are 1, 2, 3 — not node 0.
        assert_eq!(p.node_count(), 2);
        assert!(p.ranks.iter().all(|&r| r >= 8), "ranks {:?}", p.ranks);
    }

    #[test]
    fn placement_fails_when_fragmented() {
        let mut free = free32();
        for n in 0..4 {
            let _ = free.take(n, 7); // 1 GPU free per node
        }
        assert_eq!(free.total_free(), 4);
        assert!(try_place(PlacePolicy::Packed, 8, &free).is_none());
        // But 4 single GPUs spread across nodes still fit.
        let p = try_place(PlacePolicy::Spread, 4, &free).expect("fits");
        assert_eq!(p.node_count(), 4);
    }

    #[test]
    fn commit_and_release_round_trip() {
        let mut free = free32();
        let p = try_place(PlacePolicy::Spread, 8, &free).expect("fits");
        p.commit(&mut free);
        assert_eq!(free.total_free(), 24);
        let q = try_place(PlacePolicy::Spread, 8, &free).expect("fits");
        assert!(p.ranks.iter().all(|r| !q.ranks.contains(r)), "gangs overlap");
        p.release(&mut free);
        assert_eq!(free.total_free(), 32);
    }

    #[test]
    fn regular_counts_shapes() {
        assert_eq!(regular_counts(8, 2, 8), Some(vec![4, 4]));
        assert_eq!(regular_counts(9, 2, 8), Some(vec![5, 4]));
        assert_eq!(regular_counts(12, 2, 8), Some(vec![6, 6]));
        // 8 over 4 nodes of size 8: 2 each.
        assert_eq!(regular_counts(8, 4, 8), Some(vec![2, 2, 2, 2]));
        // 9 over 4: ceil = 3, tail 0 → fewer nodes suffice.
        assert_eq!(regular_counts(9, 4, 8), None);
        assert_eq!(regular_counts(20, 2, 8), None); // 10 > node size
    }
}
