//! Model profiles: what the communication layers need to know about a DNN.

use crate::layer::{LayerKind, LayerSpec};
use crate::tensor::DType;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of one gradient tensor within a model, assigned during
/// gradient registration (AIACC-Training §V-A1: parameters are sorted and
/// given a unique index in the gradient synchronization vector).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GradId(pub u32);

impl GradId {
    /// The raw index.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for GradId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "grad#{}", self.0)
    }
}

/// What one training sample means for throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SampleUnit {
    /// Images (CV models; throughput in images/s).
    Images,
    /// Token sequences (NLP models; throughput in sequences/s).
    Sequences,
    /// Click/log records (recommendation models).
    Records,
}

impl fmt::Display for SampleUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SampleUnit::Images => write!(f, "images"),
            SampleUnit::Sequences => write!(f, "sequences"),
            SampleUnit::Records => write!(f, "records"),
        }
    }
}

/// Static description of one gradient to be communicated.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GradientSpec {
    /// Registration index (also the synchronization-vector slot).
    pub id: GradId,
    /// Index of the producing layer in [`ModelProfile::layers`].
    pub layer_idx: usize,
    /// `"<layer>.<param>"`.
    pub name: String,
    /// Element count.
    pub elems: usize,
    /// Bytes on the wire at the chosen dtype.
    pub bytes: f64,
    /// Fraction of backward-pass time elapsed when this gradient is ready
    /// (0 = immediately, 1 = at the very end of backward).
    pub ready_frac: f64,
}

/// A layer-accurate description of a DNN training workload.
///
/// The profile carries everything the simulated communication stack needs:
/// gradient sizes and production order/timing, compute cost, and a coarse
/// occupancy estimate controlling how many concurrent communication CUDA
/// streams the GPU can sustain during backward (§VIII-A).
///
/// # Example
/// ```
/// use aiacc_dnn::{DType, ModelProfile, LayerSpec, LayerKind, ParamSpec};
/// let model = ModelProfile::new(
///     "tiny",
///     vec![LayerSpec::new(
///         "fc",
///         LayerKind::Dense,
///         vec![ParamSpec::new("w", vec![4, 2]), ParamSpec::new("b", vec![4])],
///         16.0,
///     )],
///     aiacc_dnn::SampleUnit::Images,
///     0.5,
///     32,
/// );
/// assert_eq!(model.num_params(), 12);
/// assert_eq!(model.gradients(DType::F32).len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelProfile {
    name: String,
    layers: Vec<LayerSpec>,
    sample_unit: SampleUnit,
    compute_occupancy: f64,
    default_batch_per_gpu: usize,
}

impl ModelProfile {
    /// Creates a profile.
    ///
    /// `compute_occupancy` is the fraction of GPU execution resources (SMs)
    /// the backward pass keeps busy; the remainder is available for
    /// communication kernels. `default_batch_per_gpu` matches the evaluation
    /// setting of the paper (§VII-D follows BytePS's large-batch setting).
    ///
    /// # Panics
    /// Panics if the model has no parameters, occupancy is outside `(0, 1]`,
    /// or the batch size is zero.
    pub fn new(
        name: impl Into<String>,
        layers: Vec<LayerSpec>,
        sample_unit: SampleUnit,
        compute_occupancy: f64,
        default_batch_per_gpu: usize,
    ) -> Self {
        let p = ModelProfile {
            name: name.into(),
            layers,
            sample_unit,
            compute_occupancy,
            default_batch_per_gpu,
        };
        assert!(p.num_params() > 0, "model {} has no parameters", p.name);
        assert!(
            p.compute_occupancy > 0.0 && p.compute_occupancy <= 1.0,
            "occupancy must be in (0,1]"
        );
        assert!(p.default_batch_per_gpu > 0, "batch size must be positive");
        p
    }

    /// Model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The layers, input to output.
    pub fn layers(&self) -> &[LayerSpec] {
        &self.layers
    }

    /// Throughput unit for reporting.
    pub fn sample_unit(&self) -> SampleUnit {
        self.sample_unit
    }

    /// Fraction of GPU compute resources busy during backward.
    pub fn compute_occupancy(&self) -> f64 {
        self.compute_occupancy
    }

    /// The per-GPU batch size used by the paper-style evaluation.
    pub fn default_batch_per_gpu(&self) -> usize {
        self.default_batch_per_gpu
    }

    /// Total trainable parameters.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(LayerSpec::param_elems).sum()
    }

    /// Number of gradient tensors produced per backward pass (one per
    /// parameter tensor).
    pub fn num_gradients(&self) -> usize {
        self.layers.iter().map(|l| l.params.len()).sum()
    }

    /// Total gradient volume on the wire per iteration.
    pub fn grad_bytes(&self, dtype: DType) -> f64 {
        (self.num_params() * dtype.bytes_per_elem()) as f64
    }

    /// Forward-pass FLOPs per training sample.
    pub fn fwd_flops_per_sample(&self) -> f64 {
        self.layers.iter().map(|l| l.fwd_flops_per_sample).sum()
    }

    /// Backward-pass FLOPs per sample (standard 2× forward estimate).
    pub fn bwd_flops_per_sample(&self) -> f64 {
        2.0 * self.fwd_flops_per_sample()
    }

    /// Rescales every layer's FLOPs so the model total matches
    /// `target_fwd_flops` (used to pin zoo models to Table I's published
    /// numbers while keeping the structural per-layer distribution).
    ///
    /// # Panics
    /// Panics if the model currently reports zero FLOPs.
    pub fn normalized_to_flops(mut self, target_fwd_flops: f64) -> Self {
        let total = self.fwd_flops_per_sample();
        assert!(total > 0.0, "cannot normalize a zero-FLOP model");
        let k = target_fwd_flops / total;
        for l in &mut self.layers {
            l.fwd_flops_per_sample *= k;
        }
        self
    }

    /// The gradients in **production order** (reverse layer order, as emitted
    /// during backward propagation — §II-A), with ready-time fractions.
    ///
    /// A gradient's `ready_frac` is the fraction of backward-pass time that
    /// has elapsed when it is pushed to the gradient queue: backward walks
    /// layers from output to input, and each layer's cost is proportional to
    /// its FLOPs.
    pub fn gradients(&self, dtype: DType) -> Vec<GradientSpec> {
        // Registration ids are assigned in forward (registration) order:
        // parameters sorted by layer then param index (§V-A1). Production
        // order is the reverse.
        let mut next_id = 0u32;
        let mut ids: Vec<Vec<GradId>> = Vec::with_capacity(self.layers.len());
        for l in &self.layers {
            let mut v = Vec::with_capacity(l.params.len());
            for _ in &l.params {
                v.push(GradId(next_id));
                next_id += 1;
            }
            ids.push(v);
        }

        let total_bwd: f64 = self.layers.iter().map(|l| l.fwd_flops_per_sample).sum();
        let mut out = Vec::with_capacity(self.num_gradients());
        let mut cum = 0.0;
        for (layer_idx, l) in self.layers.iter().enumerate().rev() {
            cum += l.fwd_flops_per_sample;
            let frac = if total_bwd > 0.0 { cum / total_bwd } else { 1.0 };
            // Params within a layer are produced in reverse order too.
            for (pi, p) in l.params.iter().enumerate().rev() {
                out.push(GradientSpec {
                    id: ids[layer_idx][pi],
                    layer_idx,
                    name: format!("{}.{}", l.name, p.name),
                    elems: p.elems(),
                    bytes: (p.elems() * dtype.bytes_per_elem()) as f64,
                    ready_frac: frac.min(1.0),
                });
            }
        }
        out
    }

    /// Count of layers of each kind — the node-label histogram used by the
    /// auto-tuner's computation-graph signature.
    pub fn kind_histogram(&self) -> Vec<(LayerKind, usize)> {
        let kinds = [
            LayerKind::Conv2d,
            LayerKind::Dense,
            LayerKind::Norm,
            LayerKind::Embedding,
            LayerKind::Attention,
            LayerKind::Stateless,
        ];
        kinds
            .iter()
            .map(|&k| (k, self.layers.iter().filter(|l| l.kind == k).count()))
            .filter(|&(_, n)| n > 0)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::ParamSpec;

    fn toy() -> ModelProfile {
        ModelProfile::new(
            "toy",
            vec![
                LayerSpec::new(
                    "a",
                    LayerKind::Conv2d,
                    vec![ParamSpec::new("w", vec![8]), ParamSpec::new("b", vec![2])],
                    30.0,
                ),
                LayerSpec::new("relu", LayerKind::Stateless, vec![], 0.0),
                LayerSpec::new("b", LayerKind::Dense, vec![ParamSpec::new("w", vec![10])], 70.0),
            ],
            SampleUnit::Images,
            0.5,
            8,
        )
    }

    #[test]
    fn counts() {
        let m = toy();
        assert_eq!(m.num_params(), 20);
        assert_eq!(m.num_gradients(), 3);
        assert_eq!(m.grad_bytes(DType::F32), 80.0);
        assert_eq!(m.grad_bytes(DType::F16), 40.0);
        assert_eq!(m.fwd_flops_per_sample(), 100.0);
        assert_eq!(m.bwd_flops_per_sample(), 200.0);
    }

    #[test]
    fn production_order_is_reverse_registration() {
        let m = toy();
        let grads = m.gradients(DType::F32);
        // Production: layer "b" first (id 2), then layer "a" params reversed
        // (bias id 1, weight id 0).
        let order: Vec<u32> = grads.iter().map(|g| g.id.0).collect();
        assert_eq!(order, vec![2, 1, 0]);
        assert_eq!(grads[0].name, "b.w");
        assert_eq!(grads[1].name, "a.b");
    }

    #[test]
    fn ready_fracs_monotone_and_bounded() {
        let m = toy();
        let grads = m.gradients(DType::F32);
        // Layer b: 70 of 100 flops done when its grads emerge.
        assert!((grads[0].ready_frac - 0.7).abs() < 1e-12);
        // Layer a grads at the end of backward.
        assert!((grads[1].ready_frac - 1.0).abs() < 1e-12);
        let mut prev = 0.0;
        for g in &grads {
            assert!(g.ready_frac >= prev);
            prev = g.ready_frac;
        }
    }

    #[test]
    fn normalization_preserves_shape() {
        let m = toy().normalized_to_flops(1000.0);
        assert!((m.fwd_flops_per_sample() - 1000.0).abs() < 1e-9);
        // Layer ratios preserved: 30/70 split.
        assert!((m.layers()[0].fwd_flops_per_sample - 300.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_counts_kinds() {
        let h = toy().kind_histogram();
        assert!(h.contains(&(LayerKind::Conv2d, 1)));
        assert!(h.contains(&(LayerKind::Stateless, 1)));
    }

    #[test]
    #[should_panic(expected = "no parameters")]
    fn empty_model_rejected() {
        let _ = ModelProfile::new(
            "bad",
            vec![LayerSpec::new("x", LayerKind::Stateless, vec![], 1.0)],
            SampleUnit::Images,
            0.5,
            1,
        );
    }
}
