//! Seeded synthetic datasets with per-worker sharding.
//!
//! Data parallelism partitions training samples across workers (§II-B); this
//! module provides the deterministic synthetic classification data used by
//! the real-MLP tests and examples, plus the strided sharding scheme.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// An in-memory labelled dataset (row-major features).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// `len × dim` features, row-major.
    pub features: Vec<f32>,
    /// One class label per sample.
    pub labels: Vec<usize>,
    /// Feature dimensionality.
    pub dim: usize,
}

impl Dataset {
    /// Generates `n_samples` points from `n_classes` Gaussian blobs in
    /// `dim`-dimensional space. Identical seeds give identical datasets.
    ///
    /// Class `c`'s centre is `2.5` along axis `c % dim` (alternating sign),
    /// with unit-variance noise — linearly separable enough for a small MLP
    /// to reach high accuracy quickly, which keeps convergence tests fast.
    ///
    /// # Panics
    /// Panics if any argument is zero.
    pub fn gaussian_blobs(n_samples: usize, dim: usize, n_classes: usize, seed: u64) -> Self {
        assert!(n_samples > 0 && dim > 0 && n_classes > 0, "empty dataset requested");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut features = Vec::with_capacity(n_samples * dim);
        let mut labels = Vec::with_capacity(n_samples);
        for i in 0..n_samples {
            let class = i % n_classes;
            let axis = class % dim;
            let sign = if (class / dim).is_multiple_of(2) { 1.0 } else { -1.0 };
            for d in 0..dim {
                let centre = if d == axis { 2.5 * sign } else { 0.0 };
                features.push(centre + gaussian(&mut rng) as f32);
            }
            labels.push(class);
        }
        Dataset { features, labels, dim }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` when the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Features of sample `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    pub fn sample(&self, i: usize) -> (&[f32], usize) {
        (&self.features[i * self.dim..(i + 1) * self.dim], self.labels[i])
    }

    /// The strided shard for `worker` of `world` workers: samples
    /// `worker, worker+world, worker+2·world, …` — every sample belongs to
    /// exactly one shard and shard sizes differ by at most one.
    ///
    /// # Panics
    /// Panics if `world == 0` or `worker >= world`.
    pub fn shard(&self, worker: usize, world: usize) -> Dataset {
        assert!(world > 0, "world must be positive");
        assert!(worker < world, "worker {worker} out of range for world {world}");
        let mut features = Vec::new();
        let mut labels = Vec::new();
        let mut i = worker;
        while i < self.len() {
            let (f, l) = self.sample(i);
            features.extend_from_slice(f);
            labels.push(l);
            i += world;
        }
        Dataset { features, labels, dim: self.dim }
    }

    /// Iterates over minibatches of up to `batch` samples, in order.
    ///
    /// # Panics
    /// Panics if `batch == 0`.
    pub fn batches(&self, batch: usize) -> Batches<'_> {
        assert!(batch > 0, "batch must be positive");
        Batches { data: self, batch, pos: 0 }
    }
}

/// Iterator over `(features, labels)` minibatches; see [`Dataset::batches`].
#[derive(Debug, Clone)]
pub struct Batches<'a> {
    data: &'a Dataset,
    batch: usize,
    pos: usize,
}

impl<'a> Iterator for Batches<'a> {
    type Item = (&'a [f32], &'a [usize]);

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos >= self.data.len() {
            return None;
        }
        let end = (self.pos + self.batch).min(self.data.len());
        let f = &self.data.features[self.pos * self.data.dim..end * self.data.dim];
        let l = &self.data.labels[self.pos..end];
        self.pos = end;
        Some((f, l))
    }
}

/// One standard-normal sample via Box–Muller.
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let a = Dataset::gaussian_blobs(64, 4, 3, 1);
        let b = Dataset::gaussian_blobs(64, 4, 3, 1);
        assert_eq!(a, b);
        let c = Dataset::gaussian_blobs(64, 4, 3, 2);
        assert_ne!(a, c);
    }

    #[test]
    fn shards_partition_dataset() {
        let d = Dataset::gaussian_blobs(10, 2, 2, 3);
        let s0 = d.shard(0, 3);
        let s1 = d.shard(1, 3);
        let s2 = d.shard(2, 3);
        assert_eq!(s0.len() + s1.len() + s2.len(), d.len());
        assert_eq!(s0.len(), 4);
        assert_eq!(s1.len(), 3);
        // Sample 4 of the original is sample 1 of shard 1.
        assert_eq!(s1.sample(1), d.sample(4));
    }

    #[test]
    fn batches_cover_everything_once() {
        let d = Dataset::gaussian_blobs(10, 3, 2, 5);
        let sizes: Vec<usize> = d.batches(4).map(|(_, l)| l.len()).collect();
        assert_eq!(sizes, vec![4, 4, 2]);
    }

    #[test]
    fn labels_cycle_through_classes() {
        let d = Dataset::gaussian_blobs(9, 2, 3, 7);
        assert_eq!(d.labels, vec![0, 1, 2, 0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn blobs_are_roughly_centred() {
        let d = Dataset::gaussian_blobs(3000, 2, 2, 11);
        // Mean of class-0 samples along axis 0 should approach 2.5.
        let mut sum = 0.0;
        let mut n = 0;
        for i in 0..d.len() {
            let (f, l) = d.sample(i);
            if l == 0 {
                sum += f[0] as f64;
                n += 1;
            }
        }
        let mean = sum / n as f64;
        assert!((mean - 2.5).abs() < 0.2, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_shard_rejected() {
        let d = Dataset::gaussian_blobs(4, 2, 2, 1);
        let _ = d.shard(3, 3);
    }
}
