//! A real multi-layer perceptron with manual backpropagation.
//!
//! The AIACC-Training reproduction uses this network wherever *numerical*
//! correctness of the distributed machinery must be demonstrated: the
//! data-plane collectives carry its real gradients, and tests assert that
//! data-parallel training equals single-worker large-batch training.

use crate::layer::{LayerKind, LayerSpec, ParamSpec};
use crate::profile::{ModelProfile, SampleUnit};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of an [`Mlp`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MlpConfig {
    /// Layer widths from input to output, e.g. `[16, 32, 4]` = one hidden
    /// layer of 32 units and 4 output classes.
    pub layer_sizes: Vec<usize>,
    /// Seed for weight initialization (identical seeds give identical nets).
    pub seed: u64,
}

impl MlpConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    /// Panics if fewer than two layer sizes are given or any size is zero.
    pub fn new(layer_sizes: Vec<usize>, seed: u64) -> Self {
        assert!(layer_sizes.len() >= 2, "need at least input and output sizes");
        assert!(layer_sizes.iter().all(|&s| s > 0), "zero-width layer");
        MlpConfig { layer_sizes, seed }
    }
}

/// A dense network with ReLU hidden activations and a softmax cross-entropy
/// head, trained on integer class labels.
///
/// Weight `l` is stored row-major as `[out × in]`; parameter tensors are laid
/// out (and registered for communication) as `w0, b0, w1, b1, …`.
///
/// # Example
/// ```
/// use aiacc_dnn::{Mlp, MlpConfig};
/// let mlp = Mlp::new(&MlpConfig::new(vec![4, 8, 3], 42));
/// let x = vec![0.1; 8]; // batch of 2 samples, dim 4
/// let logits = mlp.forward(&x, 2);
/// assert_eq!(logits.len(), 6);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    sizes: Vec<usize>,
    weights: Vec<Vec<f32>>,
    biases: Vec<Vec<f32>>,
}

impl Mlp {
    /// Builds a network with Xavier-uniform initial weights.
    pub fn new(config: &MlpConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut weights = Vec::new();
        let mut biases = Vec::new();
        for w in config.layer_sizes.windows(2) {
            let (fan_in, fan_out) = (w[0], w[1]);
            let bound = (6.0 / (fan_in + fan_out) as f64).sqrt() as f32;
            weights.push((0..fan_in * fan_out).map(|_| rng.random_range(-bound..bound)).collect());
            biases.push(vec![0.0; fan_out]);
        }
        Mlp { sizes: config.layer_sizes.clone(), weights, biases }
    }

    /// Number of dense layers.
    pub fn num_layers(&self) -> usize {
        self.weights.len()
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.sizes[0]
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        *self.sizes.last().expect("nonempty")
    }

    /// Total trainable scalars.
    pub fn num_params(&self) -> usize {
        self.weights.iter().map(Vec::len).sum::<usize>()
            + self.biases.iter().map(Vec::len).sum::<usize>()
    }

    /// `(name, len)` for each parameter tensor in registration order
    /// `w0, b0, w1, b1, …`.
    pub fn param_layout(&self) -> Vec<(String, usize)> {
        let mut out = Vec::new();
        for l in 0..self.num_layers() {
            out.push((format!("fc{l}.weight"), self.weights[l].len()));
            out.push((format!("fc{l}.bias"), self.biases[l].len()));
        }
        out
    }

    /// All parameters flattened in registration order.
    pub fn params_flat(&self) -> Vec<f32> {
        let mut v = Vec::with_capacity(self.num_params());
        for l in 0..self.num_layers() {
            v.extend_from_slice(&self.weights[l]);
            v.extend_from_slice(&self.biases[l]);
        }
        v
    }

    /// Overwrites all parameters from a flat slice in registration order.
    ///
    /// # Panics
    /// Panics if `flat.len() != self.num_params()`.
    pub fn set_params_flat(&mut self, flat: &[f32]) {
        assert_eq!(flat.len(), self.num_params(), "parameter length mismatch");
        let mut off = 0;
        for l in 0..self.weights.len() {
            let wl = self.weights[l].len();
            self.weights[l].copy_from_slice(&flat[off..off + wl]);
            off += wl;
            let bl = self.biases[l].len();
            self.biases[l].copy_from_slice(&flat[off..off + bl]);
            off += bl;
        }
    }

    /// Forward pass over a row-major batch (`batch × input_dim`), returning
    /// logits (`batch × num_classes`).
    ///
    /// # Panics
    /// Panics if `x.len() != batch * input_dim`.
    pub fn forward(&self, x: &[f32], batch: usize) -> Vec<f32> {
        assert_eq!(x.len(), batch * self.input_dim(), "bad input shape");
        let (acts, _) = self.forward_full(x, batch);
        acts.last().expect("at least one layer").clone()
    }

    /// Forward keeping all activations (`acts[0]` = input) and pre-activations.
    fn forward_full(&self, x: &[f32], batch: usize) -> (Vec<Vec<f32>>, Vec<Vec<f32>>) {
        let mut acts: Vec<Vec<f32>> = vec![x.to_vec()];
        let mut pre: Vec<Vec<f32>> = Vec::new();
        for l in 0..self.num_layers() {
            let (din, dout) = (self.sizes[l], self.sizes[l + 1]);
            let a_in = &acts[l];
            let mut z = vec![0.0f32; batch * dout];
            for s in 0..batch {
                let xrow = &a_in[s * din..(s + 1) * din];
                let zrow = &mut z[s * dout..(s + 1) * dout];
                for (o, zo) in zrow.iter_mut().enumerate() {
                    let wrow = &self.weights[l][o * din..(o + 1) * din];
                    let mut acc = self.biases[l][o];
                    for (w, xv) in wrow.iter().zip(xrow) {
                        acc += w * xv;
                    }
                    *zo = acc;
                }
            }
            pre.push(z.clone());
            if l + 1 < self.num_layers() {
                for v in z.iter_mut() {
                    *v = v.max(0.0); // ReLU
                }
            }
            acts.push(z);
        }
        (acts, pre)
    }

    /// Mean cross-entropy loss and gradients for a labelled batch.
    ///
    /// Gradients come back as one `Vec<f32>` per parameter tensor in
    /// registration order (`w0, b0, w1, b1, …`), averaged over the batch —
    /// ready to feed through the collectives' data plane.
    ///
    /// # Panics
    /// Panics on shape mismatch or a label out of range.
    pub fn loss_and_grads(&self, x: &[f32], labels: &[usize]) -> (f64, Vec<Vec<f32>>) {
        let batch = labels.len();
        assert_eq!(x.len(), batch * self.input_dim(), "bad input shape");
        assert!(batch > 0, "empty batch");
        let nc = self.num_classes();
        let (acts, pre) = self.forward_full(x, batch);
        let logits = acts.last().expect("layers");

        // Softmax + cross entropy.
        let mut delta = vec![0.0f32; batch * nc]; // dL/dlogits
        let mut loss = 0.0f64;
        for s in 0..batch {
            let row = &logits[s * nc..(s + 1) * nc];
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let exps: Vec<f32> = row.iter().map(|&v| (v - max).exp()).collect();
            let sum: f32 = exps.iter().sum();
            let label = labels[s];
            assert!(label < nc, "label {label} out of range");
            loss -= ((exps[label] / sum).max(1e-30) as f64).ln();
            for c in 0..nc {
                let p = exps[c] / sum;
                delta[s * nc + c] = p - if c == label { 1.0 } else { 0.0 };
            }
        }
        loss /= batch as f64;

        let scale = 1.0 / batch as f32;
        let mut grads: Vec<Vec<f32>> = Vec::with_capacity(2 * self.num_layers());
        for l in 0..self.num_layers() {
            grads.push(vec![0.0; self.weights[l].len()]);
            grads.push(vec![0.0; self.biases[l].len()]);
        }

        // Backward through layers.
        let mut dz = delta;
        for l in (0..self.num_layers()).rev() {
            let (din, dout) = (self.sizes[l], self.sizes[l + 1]);
            let a_in = &acts[l];
            // Parameter gradients.
            for s in 0..batch {
                let dzrow = &dz[s * dout..(s + 1) * dout];
                let xrow = &a_in[s * din..(s + 1) * din];
                let gw = &mut grads[2 * l];
                for (o, &d) in dzrow.iter().enumerate() {
                    let grow = &mut gw[o * din..(o + 1) * din];
                    for (g, xv) in grow.iter_mut().zip(xrow) {
                        *g += d * xv * scale;
                    }
                }
                let gb = &mut grads[2 * l + 1];
                for (g, &d) in gb.iter_mut().zip(dzrow) {
                    *g += d * scale;
                }
            }
            if l == 0 {
                break;
            }
            // Propagate to previous layer: da = W^T dz; dz_prev = da ⊙ relu'.
            let mut dprev = vec![0.0f32; batch * din];
            for s in 0..batch {
                let dzrow = &dz[s * dout..(s + 1) * dout];
                let dprow = &mut dprev[s * din..(s + 1) * din];
                for (o, &d) in dzrow.iter().enumerate() {
                    let wrow = &self.weights[l][o * din..(o + 1) * din];
                    for (dp, w) in dprow.iter_mut().zip(wrow) {
                        *dp += d * w;
                    }
                }
                let zrow = &pre[l - 1][s * din..(s + 1) * din];
                for (dp, &z) in dprow.iter_mut().zip(zrow) {
                    if z <= 0.0 {
                        *dp = 0.0;
                    }
                }
            }
            dz = dprev;
        }
        (loss, grads)
    }

    /// Applies a flat gradient with plain SGD: `p -= lr * g` (convenience for
    /// examples; the real optimizers live in `aiacc-optim`).
    ///
    /// # Panics
    /// Panics if `flat_grads.len() != self.num_params()`.
    pub fn apply_sgd(&mut self, flat_grads: &[f32], lr: f32) {
        assert_eq!(flat_grads.len(), self.num_params());
        let mut p = self.params_flat();
        for (pv, g) in p.iter_mut().zip(flat_grads) {
            *pv -= lr * g;
        }
        self.set_params_flat(&p);
    }

    /// Fraction of samples classified correctly.
    pub fn accuracy(&self, x: &[f32], labels: &[usize]) -> f64 {
        let batch = labels.len();
        let nc = self.num_classes();
        let logits = self.forward(x, batch);
        let mut correct = 0;
        for (s, &label) in labels.iter().enumerate() {
            let row = &logits[s * nc..(s + 1) * nc];
            let argmax = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .expect("nonempty row");
            if argmax == label {
                correct += 1;
            }
        }
        correct as f64 / batch as f64
    }

    /// A [`ModelProfile`] describing this network, so the real MLP can drive
    /// the same registration/communication machinery as the zoo models.
    pub fn profile(&self) -> ModelProfile {
        let mut layers = Vec::new();
        for l in 0..self.num_layers() {
            let (din, dout) = (self.sizes[l], self.sizes[l + 1]);
            layers.push(LayerSpec::new(
                format!("fc{l}"),
                LayerKind::Dense,
                vec![ParamSpec::new("weight", vec![dout, din]), ParamSpec::new("bias", vec![dout])],
                2.0 * (din * dout) as f64,
            ));
        }
        ModelProfile::new("mlp", layers, SampleUnit::Records, 0.4, 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Mlp {
        Mlp::new(&MlpConfig::new(vec![3, 5, 2], 7))
    }

    #[test]
    fn deterministic_init() {
        assert_eq!(tiny().params_flat(), tiny().params_flat());
        let other = Mlp::new(&MlpConfig::new(vec![3, 5, 2], 8));
        assert_ne!(tiny().params_flat(), other.params_flat());
    }

    #[test]
    fn param_roundtrip() {
        let mut m = tiny();
        let mut p = m.params_flat();
        p[0] = 123.0;
        m.set_params_flat(&p);
        assert_eq!(m.params_flat(), p);
    }

    #[test]
    fn layout_sums_to_num_params() {
        let m = tiny();
        let total: usize = m.param_layout().iter().map(|(_, n)| n).sum();
        assert_eq!(total, m.num_params());
        assert_eq!(m.num_params(), 3 * 5 + 5 + 5 * 2 + 2);
    }

    #[test]
    fn forward_shape() {
        let m = tiny();
        let out = m.forward(&[0.5; 6], 2);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn loss_decreases_under_sgd() {
        let mut m = Mlp::new(&MlpConfig::new(vec![2, 16, 2], 3));
        // XOR-ish separable data.
        let x = vec![0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0, 0.0];
        let y = vec![0, 0, 1, 1];
        let (l0, _) = m.loss_and_grads(&x, &y);
        for _ in 0..300 {
            let (_, grads) = m.loss_and_grads(&x, &y);
            let flat: Vec<f32> = grads.into_iter().flatten().collect();
            m.apply_sgd(&flat, 0.5);
        }
        let (l1, _) = m.loss_and_grads(&x, &y);
        assert!(l1 < l0 * 0.2, "loss {l0} -> {l1}");
        assert_eq!(m.accuracy(&x, &y), 1.0);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let m = Mlp::new(&MlpConfig::new(vec![2, 4, 3], 11));
        let x = vec![0.3, -0.7, 0.9, 0.1];
        let y = vec![2, 0];
        let (_, grads) = m.loss_and_grads(&x, &y);
        let flat_g: Vec<f32> = grads.into_iter().flatten().collect();
        let p0 = m.params_flat();
        let eps = 1e-3f32;
        // Spot-check a spread of parameters.
        for idx in (0..m.num_params()).step_by(5) {
            let mut mp = m.clone();
            let mut p = p0.clone();
            p[idx] += eps;
            mp.set_params_flat(&p);
            let (lp, _) = mp.loss_and_grads(&x, &y);
            p[idx] -= 2.0 * eps;
            mp.set_params_flat(&p);
            let (lm, _) = mp.loss_and_grads(&x, &y);
            let numeric = ((lp - lm) / (2.0 * eps as f64)) as f32;
            assert!(
                (numeric - flat_g[idx]).abs() < 2e-2,
                "param {idx}: numeric {numeric} vs analytic {}",
                flat_g[idx]
            );
        }
    }

    #[test]
    fn grad_of_sum_equals_sum_of_grads() {
        // Cross-entropy averaged over a batch is the mean of per-sample
        // losses, so batch gradients must equal the average of per-sample
        // gradients — the invariant data parallelism relies on.
        let m = tiny();
        let x = vec![0.2, 0.4, -0.1, 0.9, -0.5, 0.3];
        let y = vec![1, 0];
        let (_, g_batch) = m.loss_and_grads(&x, &y);
        let (_, g0) = m.loss_and_grads(&x[0..3], &y[0..1]);
        let (_, g1) = m.loss_and_grads(&x[3..6], &y[1..2]);
        for ((b, a0), a1) in g_batch.iter().zip(&g0).zip(&g1) {
            for ((bv, v0), v1) in b.iter().zip(a0).zip(a1) {
                assert!((bv - 0.5 * (v0 + v1)).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn profile_matches_network() {
        let m = tiny();
        let p = m.profile();
        assert_eq!(p.num_params(), m.num_params());
        assert_eq!(p.num_gradients(), m.param_layout().len());
    }

    #[test]
    #[should_panic(expected = "label")]
    fn out_of_range_label_panics() {
        let m = tiny();
        let _ = m.loss_and_grads(&[0.0; 3], &[9]);
    }
}
