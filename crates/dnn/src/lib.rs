//! DNN workload models for the AIACC-Training reproduction.
//!
//! This crate supplies everything the communication layers need to know about
//! a deep-learning training job, plus a small *real* neural network for
//! end-to-end numerical tests:
//!
//! * [`Tensor`] / [`DType`] — gradient payloads. Dense tensors carry real
//!   `f32` data (used by correctness tests and the MLP trainer); synthetic
//!   tensors carry only a length (used by large-scale timing simulations where
//!   materializing BERT-sized gradients for 256 workers would be absurd).
//! * [`mod@f16`] — IEEE-754 half-precision conversion used by the gradient
//!   compression path (AIACC-Training uses half precision on the wire, §X).
//! * [`ModelProfile`] and the [`zoo`] — layer-accurate descriptions of the
//!   paper's evaluation models (Table I): VGG-16, ResNet-50/101, Transformer,
//!   BERT-Large, plus GPT-2 XL, the InsightFace face-recognition variant and a
//!   synthetic production CTR model.
//! * [`Mlp`] — a real multi-layer perceptron with manual backprop, so the
//!   distributed machinery can be validated against actual gradient math.
//! * [`data`] — seeded synthetic datasets with per-worker sharding.
//!
//! # Example
//!
//! ```
//! use aiacc_dnn::{zoo, DType};
//! let model = zoo::resnet50();
//! // Table I: ResNet-50 has ~25.6M parameters.
//! assert!((model.num_params() as f64 - 25.6e6).abs() / 25.6e6 < 0.03);
//! let grads = model.gradients(DType::F32);
//! assert_eq!(grads.len(), model.num_gradients());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod data;
pub mod f16;
mod layer;
mod mlp;
mod profile;
mod tensor;
pub mod zoo;

pub use layer::{LayerKind, LayerSpec, ParamSpec};
pub use mlp::{Mlp, MlpConfig};
pub use profile::{GradId, GradientSpec, ModelProfile, SampleUnit};
pub use tensor::{DType, Tensor};
