//! Model zoo: the DNN workloads evaluated in the paper.
//!
//! Table I of AIACC-Training lists five public models (VGG-16, ResNet-50,
//! ResNet-101, Transformer, BERT-Large); §VIII-C/D add GPT-2 XL, a
//! hand-tuned InsightFace ResNet-50 variant and a production CTR
//! recommendation system (structure undisclosed — we synthesize a
//! wide-embedding model with the same *communication-relevant* traits: a very
//! large number of gradient tensors and a low compute/communication ratio).
//!
//! Parameter shapes follow the real architectures. FLOP counts are structural
//! (2 FLOPs per multiply-accumulate), so they differ from Table I for models
//! where the paper counted MACs; the Table I reproduction prints both.
//!
//! Known deviations from Table I, kept deliberately and reported by the
//! `table1` experiment:
//!
//! * ResNet-101 — the real architecture has 44.5M parameters; Table I lists
//!   29.4M. We implement the real network.
//! * BERT-Large — Table I's 302.2M matches the 24-layer encoder stack
//!   *without* the (sparsely updated) embedding tables; we therefore exclude
//!   embeddings from the communicated parameter set, which reproduces the
//!   paper's number exactly.

use crate::layer::{LayerKind, LayerSpec, ParamSpec};
use crate::profile::{ModelProfile, SampleUnit};

/// 2-D convolution layer: `cout×cin×k×k` weights + bias, FLOPs for an
/// `out_hw × out_hw` output map.
fn conv(name: &str, cin: usize, cout: usize, k: usize, out_hw: usize) -> LayerSpec {
    let flops = 2.0 * (k * k * cin * cout * out_hw * out_hw) as f64;
    LayerSpec::new(
        name,
        LayerKind::Conv2d,
        vec![ParamSpec::new("weight", vec![cout, cin, k, k]), ParamSpec::new("bias", vec![cout])],
        flops,
    )
}

/// Batch-norm layer (scale + shift).
fn bn(name: &str, c: usize, out_hw: usize) -> LayerSpec {
    LayerSpec::new(
        name,
        LayerKind::Norm,
        vec![ParamSpec::new("weight", vec![c]), ParamSpec::new("bias", vec![c])],
        (10 * c * out_hw * out_hw) as f64,
    )
}

/// Fully connected layer with bias.
fn dense(name: &str, din: usize, dout: usize) -> LayerSpec {
    LayerSpec::new(
        name,
        LayerKind::Dense,
        vec![ParamSpec::new("weight", vec![dout, din]), ParamSpec::new("bias", vec![dout])],
        2.0 * (din * dout) as f64,
    )
}

/// Layer norm (scale + shift) over `d` features for a length-`seq` sequence.
fn layer_norm(name: &str, d: usize, seq: usize) -> LayerSpec {
    LayerSpec::new(
        name,
        LayerKind::Norm,
        vec![ParamSpec::new("weight", vec![d]), ParamSpec::new("bias", vec![d])],
        (10 * d * seq) as f64,
    )
}

/// Multi-head self-attention block (fused QKV + output projection).
fn attention(name: &str, d: usize, seq: usize) -> LayerSpec {
    let proj_flops = 2.0 * (4 * d * d * seq) as f64; // Q,K,V,O projections
    let attn_flops = 2.0 * (2 * seq * seq * d) as f64; // QK^T and AV
    LayerSpec::new(
        name,
        LayerKind::Attention,
        vec![
            ParamSpec::new("qkv_weight", vec![3 * d, d]),
            ParamSpec::new("qkv_bias", vec![3 * d]),
            ParamSpec::new("out_weight", vec![d, d]),
            ParamSpec::new("out_bias", vec![d]),
        ],
        proj_flops + attn_flops,
    )
}

/// Position-wise feed-forward block of a transformer layer.
fn ffn(name: &str, d: usize, ff: usize, seq: usize) -> LayerSpec {
    LayerSpec::new(
        name,
        LayerKind::Dense,
        vec![
            ParamSpec::new("fc1_weight", vec![ff, d]),
            ParamSpec::new("fc1_bias", vec![ff]),
            ParamSpec::new("fc2_weight", vec![d, ff]),
            ParamSpec::new("fc2_bias", vec![d]),
        ],
        2.0 * (2 * d * ff * seq) as f64,
    )
}

/// Embedding table (lookup; negligible FLOPs).
fn embedding(name: &str, vocab: usize, dim: usize) -> LayerSpec {
    LayerSpec::new(
        name,
        LayerKind::Embedding,
        vec![ParamSpec::new("weight", vec![vocab, dim])],
        0.0,
    )
}

/// One transformer encoder layer: attention + FFN + two layer norms.
fn encoder_layer(prefix: &str, d: usize, ff: usize, seq: usize, out: &mut Vec<LayerSpec>) {
    out.push(attention(&format!("{prefix}.attn"), d, seq));
    out.push(layer_norm(&format!("{prefix}.ln1"), d, seq));
    out.push(ffn(&format!("{prefix}.ffn"), d, ff, seq));
    out.push(layer_norm(&format!("{prefix}.ln2"), d, seq));
}

/// VGG-16 (configuration D), 138.4M parameters — Table I row 1.
pub fn vgg16() -> ModelProfile {
    let cfg: &[(usize, usize, usize)] = &[
        // (cin, cout, output H=W)
        (3, 64, 224),
        (64, 64, 224),
        (64, 128, 112),
        (128, 128, 112),
        (128, 256, 56),
        (256, 256, 56),
        (256, 256, 56),
        (256, 512, 28),
        (512, 512, 28),
        (512, 512, 28),
        (512, 512, 14),
        (512, 512, 14),
        (512, 512, 14),
    ];
    let mut layers = Vec::new();
    for (i, &(cin, cout, hw)) in cfg.iter().enumerate() {
        layers.push(conv(&format!("conv{}", i + 1), cin, cout, 3, hw));
    }
    layers.push(dense("fc6", 512 * 7 * 7, 4096));
    layers.push(dense("fc7", 4096, 4096));
    layers.push(dense("fc8", 4096, 1000));
    ModelProfile::new("vgg16", layers, SampleUnit::Images, 0.70, 32)
}

/// A ResNet bottleneck stage: `blocks` blocks of (1×1, 3×3, 1×1) convs with
/// batch norms; the first block carries a 1×1 projection shortcut.
fn resnet_stage(
    name: &str,
    blocks: usize,
    cin: usize,
    width: usize,
    cout: usize,
    hw: usize,
    layers: &mut Vec<LayerSpec>,
) {
    let mut in_c = cin;
    for b in 0..blocks {
        let p = format!("{name}.{b}");
        layers.push(conv(&format!("{p}.conv1"), in_c, width, 1, hw));
        layers.push(bn(&format!("{p}.bn1"), width, hw));
        layers.push(conv(&format!("{p}.conv2"), width, width, 3, hw));
        layers.push(bn(&format!("{p}.bn2"), width, hw));
        layers.push(conv(&format!("{p}.conv3"), width, cout, 1, hw));
        layers.push(bn(&format!("{p}.bn3"), cout, hw));
        if b == 0 {
            layers.push(conv(&format!("{p}.downsample"), in_c, cout, 1, hw));
            layers.push(bn(&format!("{p}.downsample_bn"), cout, hw));
        }
        in_c = cout;
    }
}

fn resnet(name: &str, stage_blocks: [usize; 4], batch: usize) -> ModelProfile {
    let mut layers = Vec::new();
    layers.push(conv("conv1", 3, 64, 7, 112));
    layers.push(bn("bn1", 64, 112));
    let widths = [64, 128, 256, 512];
    let couts = [256, 512, 1024, 2048];
    let hws = [56, 28, 14, 7];
    let mut cin = 64;
    for s in 0..4 {
        resnet_stage(
            &format!("layer{}", s + 1),
            stage_blocks[s],
            cin,
            widths[s],
            couts[s],
            hws[s],
            &mut layers,
        );
        cin = couts[s];
    }
    layers.push(dense("fc", 2048, 1000));
    ModelProfile::new(name, layers, SampleUnit::Images, 0.60, batch)
}

/// ResNet-50, 25.6M parameters — Table I row 3. The default batch follows
/// the BytePS evaluation setting the paper adopts (§VII-D).
pub fn resnet50() -> ModelProfile {
    resnet("resnet50", [3, 4, 6, 3], 64)
}

/// ResNet-101 (real architecture: 44.5M parameters; Table I lists 29.4M —
/// see the module docs).
pub fn resnet101() -> ModelProfile {
    resnet("resnet101", [3, 4, 23, 3], 48)
}

/// ResNet-152 (60.2M parameters) — not in Table I; provided for users
/// sweeping model depth.
pub fn resnet152() -> ModelProfile {
    resnet("resnet152", [3, 8, 36, 3], 32)
}

/// VGG-19 (configuration E, ~143.7M parameters) — the deeper VGG variant.
pub fn vgg19() -> ModelProfile {
    let cfg: &[(usize, usize, usize)] = &[
        (3, 64, 224),
        (64, 64, 224),
        (64, 128, 112),
        (128, 128, 112),
        (128, 256, 56),
        (256, 256, 56),
        (256, 256, 56),
        (256, 256, 56),
        (256, 512, 28),
        (512, 512, 28),
        (512, 512, 28),
        (512, 512, 28),
        (512, 512, 14),
        (512, 512, 14),
        (512, 512, 14),
        (512, 512, 14),
    ];
    let mut layers = Vec::new();
    for (i, &(cin, cout, hw)) in cfg.iter().enumerate() {
        layers.push(conv(&format!("conv{}", i + 1), cin, cout, 3, hw));
    }
    layers.push(dense("fc6", 512 * 7 * 7, 4096));
    layers.push(dense("fc7", 4096, 4096));
    layers.push(dense("fc8", 4096, 1000));
    ModelProfile::new("vgg19", layers, SampleUnit::Images, 0.70, 32)
}

/// Transformer (base encoder-decoder, d=512, ff=2048), ~66M parameters —
/// Table I row 4. Sequence length 512.
pub fn transformer() -> ModelProfile {
    let (d, ff, seq, vocab) = (512, 2048, 512, 37000);
    let mut layers = Vec::new();
    // Source/target embeddings and the generator share one weight matrix
    // (the standard tied-embedding configuration of the base model).
    layers.push(embedding("shared_embed", vocab, d));
    for i in 0..6 {
        encoder_layer(&format!("enc{i}"), d, ff, seq, &mut layers);
    }
    for i in 0..6 {
        // Decoder layer = self-attention + cross-attention + FFN.
        layers.push(attention(&format!("dec{i}.self_attn"), d, seq));
        layers.push(layer_norm(&format!("dec{i}.ln1"), d, seq));
        layers.push(attention(&format!("dec{i}.cross_attn"), d, seq));
        layers.push(layer_norm(&format!("dec{i}.ln2"), d, seq));
        layers.push(ffn(&format!("dec{i}.ffn"), d, ff, seq));
        layers.push(layer_norm(&format!("dec{i}.ln3"), d, seq));
    }
    // Tied generator: projects onto the shared embedding, so it adds FLOPs
    // but no new parameters.
    layers.push(LayerSpec::new(
        "generator(tied)",
        LayerKind::Stateless,
        vec![],
        2.0 * (d * vocab * seq) as f64,
    ));
    ModelProfile::new("transformer", layers, SampleUnit::Sequences, 0.80, 24)
}

/// BERT-Large encoder stack (24 layers, d=1024, ff=4096), 302M communicated
/// parameters — Table I row 5. Sequence length 512; embeddings excluded from
/// the communicated set (see module docs).
pub fn bert_large() -> ModelProfile {
    let (d, ff, seq) = (1024, 4096, 512);
    let mut layers = Vec::new();
    for i in 0..24 {
        encoder_layer(&format!("layer{i}"), d, ff, seq, &mut layers);
    }
    layers.push(dense("pooler", d, d));
    ModelProfile::new("bert_large", layers, SampleUnit::Sequences, 0.88, 8)
}

/// GPT-2 XL (48 layers, d=1600, ff=6400), ~1.56B parameters — §VIII-D's RDMA
/// experiment. Sequence length 1024.
pub fn gpt2_xl() -> ModelProfile {
    let (d, ff, seq) = (1600, 6400, 1024);
    let mut layers = Vec::new();
    layers.push(embedding("wte", 50257, d));
    layers.push(embedding("wpe", seq, d));
    for i in 0..48 {
        encoder_layer(&format!("h{i}"), d, ff, seq, &mut layers);
    }
    layers.push(layer_norm("ln_f", d, seq));
    ModelProfile::new("gpt2_xl", layers, SampleUnit::Sequences, 0.92, 2)
}

/// InsightFace-style hand-tuned ResNet-50 for face recognition (§VIII-C):
/// ResNet-50 backbone plus a 512-d embedding head and a ~93k-class margin
/// classifier, tripling the communicated volume versus plain ResNet-50.
pub fn insightface_r50() -> ModelProfile {
    let base = resnet("insightface_r50_backbone", [3, 4, 6, 3], 128);
    let mut layers: Vec<LayerSpec> =
        base.layers().iter().filter(|l| l.name != "fc").cloned().collect();
    layers.push(dense("embedding_fc", 2048, 512));
    layers.push(dense("margin_fc", 512, 93431));
    ModelProfile::new("insightface_r50", layers, SampleUnit::Images, 0.60, 128)
}

/// Synthetic stand-in for the production click-through-rate (CTR) model
/// (§VIII-C). The real structure is undisclosed; what matters for
/// communication is (a) a very large number of gradient tensors — which is
/// what collapses Horovod's master-based negotiation — and (b) a low
/// compute-to-communication ratio. We use 600 embedding-projection tables
/// (the *touched-row* dense-equivalent volume per iteration) plus tower MLPs.
pub fn ctr_production() -> ModelProfile {
    let mut layers = Vec::new();
    for i in 0..3600 {
        // Effective communicated (touched) rows per table per iteration.
        let dim = [4, 8, 16, 32][i % 4];
        layers.push(LayerSpec::new(
            format!("emb{i}"),
            LayerKind::Embedding,
            vec![ParamSpec::new("rows", vec![256, dim])],
            2.0 * (256 * dim) as f64,
        ));
    }
    let tower = [1024, 512, 256, 128, 64, 1];
    for w in tower.windows(2) {
        layers.push(dense(&format!("tower_fc_{}x{}", w[0], w[1]), w[0], w[1]));
    }
    ModelProfile::new("ctr_production", layers, SampleUnit::Records, 0.30, 4096)
}

/// A tiny CNN used by fast tests and the quickstart example.
pub fn tiny_cnn() -> ModelProfile {
    let layers = vec![
        conv("conv1", 3, 16, 3, 32),
        bn("bn1", 16, 32),
        conv("conv2", 16, 32, 3, 16),
        bn("bn2", 32, 16),
        dense("fc", 32 * 8 * 8, 10),
    ];
    ModelProfile::new("tiny_cnn", layers, SampleUnit::Images, 0.5, 32)
}

/// Looks a model up by name.
///
/// # Example
/// ```
/// assert!(aiacc_dnn::zoo::by_name("resnet50").is_some());
/// assert!(aiacc_dnn::zoo::by_name("alexnet").is_none());
/// ```
pub fn by_name(name: &str) -> Option<ModelProfile> {
    match name {
        "vgg16" => Some(vgg16()),
        "vgg19" => Some(vgg19()),
        "resnet50" => Some(resnet50()),
        "resnet101" => Some(resnet101()),
        "resnet152" => Some(resnet152()),
        "transformer" => Some(transformer()),
        "bert_large" => Some(bert_large()),
        "gpt2_xl" => Some(gpt2_xl()),
        "insightface_r50" => Some(insightface_r50()),
        "ctr_production" => Some(ctr_production()),
        "tiny_cnn" => Some(tiny_cnn()),
        _ => None,
    }
}

/// The five Table I models in paper order.
pub fn table1_models() -> Vec<ModelProfile> {
    vec![vgg16(), resnet50(), resnet101(), transformer(), bert_large()]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mparams(m: &ModelProfile) -> f64 {
        m.num_params() as f64 / 1e6
    }

    #[test]
    fn vgg16_matches_table1() {
        let m = vgg16();
        assert!((mparams(&m) - 138.3).abs() < 2.0, "got {}M", mparams(&m));
        // Structural FLOPs ≈ 31G (2 FLOPs/MAC), matching Table I.
        let g = m.fwd_flops_per_sample() / 1e9;
        assert!((g - 31.0).abs() < 2.0, "got {g}G");
    }

    #[test]
    fn resnet50_matches_table1_params() {
        let m = resnet50();
        assert!((mparams(&m) - 25.6).abs() < 1.0, "got {}M", mparams(&m));
        // ~8.2G structural FLOPs (Table I lists 4G = MACs).
        let g = m.fwd_flops_per_sample() / 1e9;
        assert!((g - 8.2).abs() < 1.0, "got {g}G");
    }

    #[test]
    fn depth_variants_scale_parameters() {
        assert!((mparams(&vgg19()) - 143.7).abs() < 2.0, "vgg19 {}M", mparams(&vgg19()));
        assert!((mparams(&resnet152()) - 60.2).abs() < 3.0, "r152 {}M", mparams(&resnet152()));
        assert!(resnet152().num_gradients() > resnet101().num_gradients());
    }

    #[test]
    fn resnet101_is_real_architecture() {
        let m = resnet101();
        assert!((mparams(&m) - 44.5).abs() < 2.0, "got {}M", mparams(&m));
        assert!(m.num_gradients() > resnet50().num_gradients());
    }

    #[test]
    fn transformer_near_table1() {
        let m = transformer();
        assert!((mparams(&m) - 66.5).abs() < 4.0, "got {}M", mparams(&m));
    }

    #[test]
    fn bert_large_matches_table1_exactly_enough() {
        let m = bert_large();
        assert!((mparams(&m) - 302.2).abs() < 4.0, "got {}M", mparams(&m));
    }

    #[test]
    fn gpt2_xl_parameter_count() {
        let m = gpt2_xl();
        assert!((mparams(&m) / 1000.0 - 1.558).abs() < 0.05, "got {}M", mparams(&m));
    }

    #[test]
    fn ctr_has_many_gradients() {
        let m = ctr_production();
        assert!(m.num_gradients() > 600, "got {}", m.num_gradients());
        // Compute-light relative to its communication volume.
        assert!(m.compute_occupancy() < 0.5);
    }

    #[test]
    fn insightface_heavier_than_resnet50() {
        assert!(insightface_r50().num_params() > 2 * resnet50().num_params());
    }

    #[test]
    fn registry_round_trips_every_model() {
        for name in [
            "vgg16",
            "vgg19",
            "resnet50",
            "resnet152",
            "resnet101",
            "transformer",
            "bert_large",
            "gpt2_xl",
            "insightface_r50",
            "ctr_production",
            "tiny_cnn",
        ] {
            let m = by_name(name).unwrap();
            assert_eq!(m.name(), name);
            assert!(m.num_params() > 0);
            assert!(m.fwd_flops_per_sample() > 0.0);
        }
    }

    #[test]
    fn gradient_sizes_sum_to_param_count() {
        for m in table1_models() {
            let total: usize = m.gradients(crate::DType::F32).iter().map(|g| g.elems).sum();
            assert_eq!(total, m.num_params(), "model {}", m.name());
        }
    }

    #[test]
    fn ready_fracs_in_unit_interval_for_all_models() {
        for m in table1_models() {
            for g in m.gradients(crate::DType::F32) {
                assert!(g.ready_frac > 0.0 && g.ready_frac <= 1.0, "{} {}", m.name(), g.name);
            }
        }
    }
}
