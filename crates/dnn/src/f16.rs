//! IEEE-754 binary16 (half precision) conversion.
//!
//! AIACC-Training compresses gradients to half precision on the wire (§X).
//! Rust has no stable `f16` primitive, so this module implements bit-exact
//! conversions: `f32 → f16` with round-to-nearest-even, and the exact
//! `f16 → f32` widening.
//!
//! # Example
//! ```
//! use aiacc_dnn::f16::{f16_to_f32, f32_to_f16};
//! let h = f32_to_f16(1.0);
//! assert_eq!(h, 0x3C00);
//! assert_eq!(f16_to_f32(h), 1.0);
//! ```

/// Converts an `f32` to half-precision bits with round-to-nearest-even.
///
/// Values above the half range become ±infinity; tiny magnitudes become
/// subnormal halves or ±0; NaN payloads collapse to a quiet NaN.
pub fn f32_to_f16(value: f32) -> u16 {
    let bits = value.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let mant = bits & 0x007F_FFFF;

    if exp == 0xFF {
        // Inf or NaN.
        return if mant == 0 { sign | 0x7C00 } else { sign | 0x7E00 };
    }
    if exp == 0 {
        // f32 subnormals are far below the half subnormal range.
        return sign;
    }

    // Rebias from 127 to 15.
    let half_exp = exp - 127 + 15;

    if half_exp >= 0x1F {
        return sign | 0x7C00; // overflow to infinity
    }

    if half_exp <= 0 {
        // Result is a half subnormal (or rounds to zero).
        if half_exp < -10 {
            return sign; // far below the subnormal range
        }
        let m = mant | 0x0080_0000; // restore the implicit leading 1
        let total_shift = (13 + (1 - half_exp)) as u32;
        let half_mant = m >> total_shift;
        let rem = m & ((1u32 << total_shift) - 1);
        let halfway = 1u32 << (total_shift - 1);
        let mut h = half_mant as u16;
        if rem > halfway || (rem == halfway && (h & 1) == 1) {
            h += 1; // may carry into the smallest normal — that is correct
        }
        return sign | h;
    }

    // Normal result: keep the top 10 mantissa bits, round-to-nearest-even on
    // the 13 dropped bits. A mantissa carry correctly bumps the exponent and
    // can legitimately overflow to infinity.
    let mut half = sign | ((half_exp as u16) << 10) | ((mant >> 13) as u16);
    let round_bits = mant & 0x1FFF;
    if round_bits > 0x1000 || (round_bits == 0x1000 && (half & 1) == 1) {
        half += 1;
    }
    half
}

/// Widens half-precision bits to an `f32` (exact).
pub fn f16_to_f32(bits: u16) -> f32 {
    let sign = ((bits & 0x8000) as u32) << 16;
    let exp = ((bits >> 10) & 0x1F) as u32;
    let mant = (bits & 0x03FF) as u32;

    let out = if exp == 0 {
        if mant == 0 {
            sign // signed zero
        } else {
            // Subnormal half: normalize into an f32 normal.
            let mut m = mant;
            let mut e: i32 = 0;
            while m & 0x0400 == 0 {
                m <<= 1;
                e -= 1;
            }
            m &= 0x03FF;
            let f32_exp = (127 - 15 + 1 + e) as u32;
            sign | (f32_exp << 23) | (m << 13)
        }
    } else if exp == 0x1F {
        sign | 0x7F80_0000 | (mant << 13) // Inf / NaN
    } else {
        sign | ((exp + 127 - 15) << 23) | (mant << 13)
    };
    f32::from_bits(out)
}

/// Compresses a slice to half-precision bits.
pub fn compress(values: &[f32]) -> Vec<u16> {
    values.iter().map(|&v| f32_to_f16(v)).collect()
}

/// Decompresses half-precision bits back to `f32`.
pub fn decompress(bits: &[u16]) -> Vec<f32> {
    bits.iter().map(|&b| f16_to_f32(b)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_constants() {
        assert_eq!(f32_to_f16(0.0), 0x0000);
        assert_eq!(f32_to_f16(-0.0), 0x8000);
        assert_eq!(f32_to_f16(1.0), 0x3C00);
        assert_eq!(f32_to_f16(-2.0), 0xC000);
        assert_eq!(f32_to_f16(65504.0), 0x7BFF); // max finite half
        assert_eq!(f32_to_f16(f32::INFINITY), 0x7C00);
        assert_eq!(f32_to_f16(f32::NEG_INFINITY), 0xFC00);
    }

    #[test]
    fn overflow_to_infinity() {
        assert_eq!(f32_to_f16(70000.0), 0x7C00);
        assert_eq!(f32_to_f16(-1e10), 0xFC00);
        // 65520 is exactly halfway between 65504 and the (unrepresentable)
        // next value: ties to even rounds UP to infinity per IEEE.
        assert_eq!(f32_to_f16(65520.0), 0x7C00);
    }

    #[test]
    fn nan_collapses_to_quiet_nan() {
        let h = f32_to_f16(f32::NAN);
        assert_eq!(h & 0x7C00, 0x7C00);
        assert_ne!(h & 0x03FF, 0);
        assert!(f16_to_f32(h).is_nan());
    }

    #[test]
    fn subnormal_range() {
        // Smallest half subnormal = 2^-24.
        let tiny = 2.0f32.powi(-24);
        assert_eq!(f32_to_f16(tiny), 0x0001);
        assert_eq!(f16_to_f32(0x0001), tiny);
        // Largest subnormal.
        let max_sub = f16_to_f32(0x03FF);
        assert_eq!(f32_to_f16(max_sub), 0x03FF);
        // Below half the smallest subnormal rounds to zero.
        assert_eq!(f32_to_f16(2.0f32.powi(-26)), 0x0000);
    }

    #[test]
    fn round_to_nearest_even() {
        // 1.0 + 2^-11 is exactly halfway between 0x3C00 and 0x3C01 → even.
        let halfway = 1.0 + 2.0f32.powi(-11);
        assert_eq!(f32_to_f16(halfway), 0x3C00);
        // 1.0 + 3*2^-11 is halfway between 0x3C01 and 0x3C02 → even (0x3C02).
        let halfway2 = 1.0 + 3.0 * 2.0f32.powi(-11);
        assert_eq!(f32_to_f16(halfway2), 0x3C02);
        // Just above halfway rounds up.
        assert_eq!(f32_to_f16(halfway + 2.0f32.powi(-20)), 0x3C01);
    }

    #[test]
    fn roundtrip_is_exact_for_all_finite_halves() {
        for bits in 0u16..=0xFFFF {
            let exp = (bits >> 10) & 0x1F;
            if exp == 0x1F {
                continue; // Inf/NaN handled elsewhere
            }
            let f = f16_to_f32(bits);
            let back = f32_to_f16(f);
            assert_eq!(back, bits, "roundtrip failed for {bits:#06x} (value {f})");
        }
    }

    #[test]
    fn compress_decompress_slice() {
        let vals = vec![0.5, -1.25, 1e-4, 3000.0];
        let rt = decompress(&compress(&vals));
        for (a, b) in vals.iter().zip(&rt) {
            let rel = ((a - b) / a).abs();
            assert!(rel < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn relative_error_bounded_for_normals() {
        // Half has 11 significand bits → relative error ≤ 2^-11 for values in
        // the normal range.
        let mut v = 6.1e-5f32; // just above the smallest normal half
        while v < 6.0e4 {
            let rt = f16_to_f32(f32_to_f16(v));
            let rel = ((v - rt) / v).abs();
            assert!(rel <= 2.0f32.powi(-11), "value {v} error {rel}");
            v *= 1.37;
        }
    }
}
