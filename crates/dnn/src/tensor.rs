//! Gradient payload tensors: dense (real data) or synthetic (size only).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Element type used on the wire for gradient communication.
///
/// AIACC-Training supports half-precision gradient compression; the wire dtype
/// affects transfer size but not the logical element count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum DType {
    /// 32-bit IEEE float (4 bytes/element).
    #[default]
    F32,
    /// 16-bit IEEE half float (2 bytes/element).
    F16,
}

impl DType {
    /// Bytes occupied by one element.
    pub const fn bytes_per_elem(self) -> usize {
        match self {
            DType::F32 => 4,
            DType::F16 => 2,
        }
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DType::F32 => write!(f, "f32"),
            DType::F16 => write!(f, "f16"),
        }
    }
}

/// A gradient tensor, flattened to one dimension.
///
/// `Dense` tensors carry real values and support arithmetic — used by the
/// data-plane collectives and the real MLP trainer. `Synthetic` tensors carry
/// only a logical length — used by timing simulations of models with hundreds
/// of millions of parameters, where the byte count matters but the values do
/// not.
///
/// Arithmetic between a dense and a synthetic tensor is a logic error and
/// panics: a simulation must consistently pick one plane.
///
/// # Example
/// ```
/// use aiacc_dnn::Tensor;
/// let mut a = Tensor::from_vec(vec![1.0, 2.0]);
/// let b = Tensor::from_vec(vec![10.0, 20.0]);
/// a.add_assign(&b);
/// assert_eq!(a.as_slice().unwrap(), &[11.0, 22.0]);
/// assert_eq!(Tensor::synthetic(1024).len(), 1024);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Tensor {
    /// Real values.
    Dense(Vec<f32>),
    /// Size-only placeholder carrying a logical element count.
    Synthetic(usize),
}

impl Tensor {
    /// A dense tensor of `len` zeros.
    pub fn zeros(len: usize) -> Self {
        Tensor::Dense(vec![0.0; len])
    }

    /// Wraps an owned vector of values.
    pub fn from_vec(values: Vec<f32>) -> Self {
        Tensor::Dense(values)
    }

    /// A synthetic tensor with `len` logical elements.
    pub fn synthetic(len: usize) -> Self {
        Tensor::Synthetic(len)
    }

    /// Logical element count.
    pub fn len(&self) -> usize {
        match self {
            Tensor::Dense(v) => v.len(),
            Tensor::Synthetic(n) => *n,
        }
    }

    /// `true` when the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` for size-only tensors.
    pub fn is_synthetic(&self) -> bool {
        matches!(self, Tensor::Synthetic(_))
    }

    /// Bytes this tensor occupies on the wire at the given dtype.
    pub fn wire_bytes(&self, dtype: DType) -> f64 {
        (self.len() * dtype.bytes_per_elem()) as f64
    }

    /// Borrow the dense values, or `None` for synthetic tensors.
    pub fn as_slice(&self) -> Option<&[f32]> {
        match self {
            Tensor::Dense(v) => Some(v),
            Tensor::Synthetic(_) => None,
        }
    }

    /// Mutably borrow the dense values, or `None` for synthetic tensors.
    pub fn as_mut_slice(&mut self) -> Option<&mut [f32]> {
        match self {
            Tensor::Dense(v) => Some(v),
            Tensor::Synthetic(_) => None,
        }
    }

    /// Element-wise `self += other`.
    ///
    /// # Panics
    /// Panics on length mismatch or when mixing dense and synthetic tensors.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.len(), other.len(), "tensor length mismatch");
        match (self, other) {
            (Tensor::Dense(a), Tensor::Dense(b)) => {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += *y;
                }
            }
            (Tensor::Synthetic(_), Tensor::Synthetic(_)) => {}
            _ => panic!("cannot mix dense and synthetic tensors"),
        }
    }

    /// Element-wise `self *= factor` (no-op on synthetic tensors).
    pub fn scale(&mut self, factor: f32) {
        if let Tensor::Dense(v) = self {
            for x in v.iter_mut() {
                *x *= factor;
            }
        }
    }

    /// Splits the tensor into chunks of at most `chunk_len` elements,
    /// preserving the dense/synthetic plane.
    ///
    /// # Panics
    /// Panics if `chunk_len` is zero.
    pub fn split_chunks(&self, chunk_len: usize) -> Vec<Tensor> {
        assert!(chunk_len > 0, "chunk_len must be positive");
        match self {
            Tensor::Dense(v) => v.chunks(chunk_len).map(|c| Tensor::Dense(c.to_vec())).collect(),
            Tensor::Synthetic(n) => {
                let mut out = Vec::new();
                let mut left = *n;
                while left > 0 {
                    let take = left.min(chunk_len);
                    out.push(Tensor::Synthetic(take));
                    left -= take;
                }
                if out.is_empty() {
                    out.push(Tensor::Synthetic(0));
                }
                out
            }
        }
    }

    /// Concatenates tensors; all inputs must live on the same plane.
    ///
    /// # Panics
    /// Panics when mixing dense and synthetic tensors.
    pub fn concat(parts: &[Tensor]) -> Tensor {
        if parts.iter().any(Tensor::is_synthetic) {
            assert!(
                parts.iter().all(Tensor::is_synthetic),
                "cannot mix dense and synthetic tensors"
            );
            Tensor::Synthetic(parts.iter().map(Tensor::len).sum())
        } else {
            let mut v = Vec::with_capacity(parts.iter().map(Tensor::len).sum());
            for p in parts {
                v.extend_from_slice(p.as_slice().expect("dense"));
            }
            Tensor::Dense(v)
        }
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::Dense(Vec::new())
    }
}

impl FromIterator<f32> for Tensor {
    fn from_iter<I: IntoIterator<Item = f32>>(iter: I) -> Self {
        Tensor::Dense(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtype_sizes() {
        assert_eq!(DType::F32.bytes_per_elem(), 4);
        assert_eq!(DType::F16.bytes_per_elem(), 2);
    }

    #[test]
    fn wire_bytes_depends_on_dtype() {
        let t = Tensor::synthetic(100);
        assert_eq!(t.wire_bytes(DType::F32), 400.0);
        assert_eq!(t.wire_bytes(DType::F16), 200.0);
    }

    #[test]
    fn add_assign_dense() {
        let mut a = Tensor::from_vec(vec![1.0, -1.0]);
        a.add_assign(&Tensor::from_vec(vec![2.0, 2.0]));
        assert_eq!(a.as_slice().unwrap(), &[3.0, 1.0]);
    }

    #[test]
    fn add_assign_synthetic_is_noop() {
        let mut a = Tensor::synthetic(5);
        a.add_assign(&Tensor::synthetic(5));
        assert_eq!(a.len(), 5);
    }

    #[test]
    #[should_panic(expected = "cannot mix")]
    fn add_assign_mixed_panics() {
        let mut a = Tensor::synthetic(2);
        a.add_assign(&Tensor::zeros(2));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn add_assign_length_mismatch_panics() {
        let mut a = Tensor::zeros(2);
        a.add_assign(&Tensor::zeros(3));
    }

    #[test]
    fn scale_dense() {
        let mut a = Tensor::from_vec(vec![2.0, 4.0]);
        a.scale(0.5);
        assert_eq!(a.as_slice().unwrap(), &[1.0, 2.0]);
    }

    #[test]
    fn split_and_concat_roundtrip_dense() {
        let t = Tensor::from_vec((0..10).map(|i| i as f32).collect());
        let parts = t.split_chunks(3);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts[3].len(), 1);
        assert_eq!(Tensor::concat(&parts), t);
    }

    #[test]
    fn split_and_concat_roundtrip_synthetic() {
        let t = Tensor::synthetic(10);
        let parts = t.split_chunks(4);
        assert_eq!(parts.iter().map(Tensor::len).collect::<Vec<_>>(), vec![4, 4, 2]);
        assert_eq!(Tensor::concat(&parts), t);
    }

    #[test]
    fn empty_synthetic_split_keeps_one_part() {
        let parts = Tensor::synthetic(0).split_chunks(4);
        assert_eq!(parts.len(), 1);
        assert!(parts[0].is_empty());
    }

    #[test]
    fn collect_from_iterator() {
        let t: Tensor = (0..3).map(|i| i as f32).collect();
        assert_eq!(t.as_slice().unwrap(), &[0.0, 1.0, 2.0]);
    }
}
