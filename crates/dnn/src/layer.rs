//! Layer and parameter specifications for model profiles.

use serde::{Deserialize, Serialize};

/// Coarse layer family; used for workload characterization and the
/// graph-similarity signature consumed by the auto-tuner warm-start cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerKind {
    /// 2-D convolution.
    Conv2d,
    /// Fully connected / linear layer.
    Dense,
    /// Normalization (batch / layer norm).
    Norm,
    /// Embedding lookup table.
    Embedding,
    /// Multi-head attention block.
    Attention,
    /// Parameter-free activation / pooling / reshape.
    Stateless,
}

/// One trainable parameter of a layer (weight, bias, …).
///
/// Each `ParamSpec` produces exactly one gradient tensor during backward
/// propagation — the unit of registration and communication in
/// AIACC-Training (§V-A).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParamSpec {
    /// Parameter name, unique within its layer (e.g. `"weight"`).
    pub name: String,
    /// Tensor shape.
    pub shape: Vec<usize>,
}

impl ParamSpec {
    /// Creates a parameter with the given shape.
    pub fn new(name: impl Into<String>, shape: Vec<usize>) -> Self {
        ParamSpec { name: name.into(), shape }
    }

    /// Total number of elements.
    pub fn elems(&self) -> usize {
        self.shape.iter().product()
    }
}

/// One layer of a model profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerSpec {
    /// Layer name, unique within the model (e.g. `"conv3_2"`).
    pub name: String,
    /// Layer family.
    pub kind: LayerKind,
    /// Trainable parameters, in registration order.
    pub params: Vec<ParamSpec>,
    /// Forward-pass floating point operations per training sample.
    pub fwd_flops_per_sample: f64,
}

impl LayerSpec {
    /// Creates a layer.
    ///
    /// # Panics
    /// Panics if `fwd_flops_per_sample` is negative or not finite.
    pub fn new(
        name: impl Into<String>,
        kind: LayerKind,
        params: Vec<ParamSpec>,
        fwd_flops_per_sample: f64,
    ) -> Self {
        assert!(fwd_flops_per_sample.is_finite() && fwd_flops_per_sample >= 0.0, "invalid flops");
        LayerSpec { name: name.into(), kind, params, fwd_flops_per_sample }
    }

    /// Total trainable elements in this layer.
    pub fn param_elems(&self) -> usize {
        self.params.iter().map(ParamSpec::elems).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_elems_is_shape_product() {
        let p = ParamSpec::new("weight", vec![64, 3, 7, 7]);
        assert_eq!(p.elems(), 64 * 3 * 7 * 7);
    }

    #[test]
    fn scalarless_shape_is_one() {
        // An empty shape denotes a scalar parameter.
        assert_eq!(ParamSpec::new("s", vec![]).elems(), 1);
    }

    #[test]
    fn layer_sums_params() {
        let l = LayerSpec::new(
            "fc",
            LayerKind::Dense,
            vec![ParamSpec::new("w", vec![10, 4]), ParamSpec::new("b", vec![10])],
            800.0,
        );
        assert_eq!(l.param_elems(), 50);
    }

    #[test]
    #[should_panic(expected = "invalid flops")]
    fn negative_flops_rejected() {
        let _ = LayerSpec::new("x", LayerKind::Stateless, vec![], -1.0);
    }
}
