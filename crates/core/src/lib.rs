//! The AIACC-Training core: decentralized gradient synchronization, gradient
//! packing, and the multi-streamed concurrent all-reduce engine.
//!
//! This crate implements the paper's primary contribution (§V–§VI interface):
//!
//! * [`GradientRegistry`] — gradient registration: parameters are sorted and
//!   assigned a unique index in the gradient synchronization vector (§V-A1).
//! * [`SyncVector`] — the per-worker readiness bit vector; agreement is a
//!   **min/AND all-reduce** among MPI processes, fully decentralized — no
//!   Horovod-style master (§V-A2).
//! * [`packing`] — splitting/merging gradient tensors into all-reduce units
//!   of the tuned communication granularity (§V-B), and the tracker that
//!   regroups reduced units back into whole gradients.
//! * [`AiaccEngine`] — the multi-streamed communication engine: a pool of
//!   communication streams, each running its own concurrent ring (or
//!   hierarchical) all-reduce over the same physical network (Fig. 7b,
//!   Algorithm 1).
//! * [`Perseus`] — the data-plane API (named after the paper's unified API):
//!   lock-step gradient submission for real multi-worker training with exact
//!   numerical results.
//! * [`ddl`] — the engine trait and context shared with the baseline
//!   implementations so every framework runs on the same simulated substrate.
//!
//! # Example
//!
//! ```
//! use aiacc_core::{AiaccConfig, GradientRegistry};
//! use aiacc_dnn::{zoo, DType};
//!
//! let registry = GradientRegistry::from_profile(&zoo::resnet50(), DType::F32);
//! assert_eq!(registry.len(), zoo::resnet50().num_gradients());
//! let cfg = AiaccConfig::default().with_streams(8);
//! assert_eq!(cfg.streams, 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ddl;
mod engine;
pub mod packing;
mod perseus;
mod perseus_mt;
mod queue;
mod registry;
mod syncvec;
pub mod translate;
pub mod wire;

pub use engine::{AiaccConfig, AiaccEngine, AiaccStats};
pub use perseus::{Perseus, PerseusConfig};
pub use perseus_mt::{perseus_world, PerseusHandle};
pub use queue::{Bucket, GradientQueue};
pub use registry::{GradientInfo, GradientRegistry};
pub use syncvec::SyncVector;
