//! The source-to-source porting tool (§IV "Programming interface").
//!
//! AIACC-Training ships a compiler-based translator so that users never
//! refactor code by hand:
//!
//! * **Horovod programs** port by swapping the import — "changing one line
//!   of the code by replacing the import package from Horovod to Perseus".
//! * **Sequential (single-GPU) programs** are converted to distributed
//!   training automatically: the translator injects initialization, wraps
//!   the optimizer in the distributed optimizer, pins the device to the
//!   local rank, and scales the data loader by the world size.
//!
//! This module implements that translator for PyTorch-style training
//! scripts as a line-oriented rewriter. It is intentionally conservative:
//! anything it does not recognize passes through untouched, and the report
//! lists every edit so users can audit the result.

use serde::{Deserialize, Serialize};

/// What kind of input script the translator detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScriptKind {
    /// Already a Horovod program: only the import swap is needed.
    Horovod,
    /// A sequential single-GPU program: distributed scaffolding is injected.
    Sequential,
    /// Already a Perseus program: nothing to do.
    Perseus,
}

/// One edit the translator performed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Edit {
    /// 1-based line in the *input* where the edit anchors.
    pub line: usize,
    /// Human-readable description.
    pub what: String,
}

/// The translation outcome.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Translation {
    /// The rewritten source.
    pub source: String,
    /// Detected input kind.
    pub kind: ScriptKind,
    /// Every edit made, in input order.
    pub edits: Vec<Edit>,
}

/// Ports a PyTorch-style training script to the Perseus API.
///
/// # Example
/// ```
/// use aiacc_core::translate::{translate_pytorch, ScriptKind};
/// let horovod_prog = "import horovod.torch as hvd\nhvd.init()\n";
/// let t = translate_pytorch(horovod_prog);
/// assert_eq!(t.kind, ScriptKind::Horovod);
/// assert!(t.source.contains("import perseus.torch as hvd"));
/// ```
pub fn translate_pytorch(source: &str) -> Translation {
    let kind = detect(source);
    match kind {
        ScriptKind::Perseus => Translation { source: source.to_string(), kind, edits: Vec::new() },
        ScriptKind::Horovod => swap_horovod_import(source),
        ScriptKind::Sequential => inject_distributed(source),
    }
}

fn detect(source: &str) -> ScriptKind {
    if source.contains("import perseus") {
        ScriptKind::Perseus
    } else if source.contains("import horovod") {
        ScriptKind::Horovod
    } else {
        ScriptKind::Sequential
    }
}

/// The one-line port: Horovod → Perseus (API-compatible, §IV).
fn swap_horovod_import(source: &str) -> Translation {
    let mut edits = Vec::new();
    let mut out = Vec::new();
    for (i, line) in source.lines().enumerate() {
        if let Some(rest) = line.trim_start().strip_prefix("import horovod.") {
            let indent = &line[..line.len() - line.trim_start().len()];
            out.push(format!("{indent}import perseus.{rest}"));
            edits.push(Edit {
                line: i + 1,
                what: format!(
                    "swapped import: horovod.{} → perseus.{}",
                    first_word(rest),
                    first_word(rest)
                ),
            });
        } else if line.trim_start().starts_with("import horovod") {
            let indent = &line[..line.len() - line.trim_start().len()];
            out.push(format!("{indent}import perseus as hvd"));
            edits.push(Edit { line: i + 1, what: "swapped import: horovod → perseus".into() });
        } else {
            out.push(line.to_string());
        }
    }
    Translation { source: join_lines(&out, source), kind: ScriptKind::Horovod, edits }
}

/// Full conversion of a sequential script (§IV: "automatically convert a
/// sequential DNN code running on a single GPU to an optimized DDL
/// program with zero user involvement").
fn inject_distributed(source: &str) -> Translation {
    let mut edits = Vec::new();
    let mut out: Vec<String> = Vec::new();
    let mut injected_init = false;

    for (i, line) in source.lines().enumerate() {
        let trimmed = line.trim_start();
        let indent = &line[..line.len() - trimmed.len()];

        out.push(line.to_string());

        // After the torch import: bring in Perseus and initialize.
        if !injected_init
            && (trimmed.starts_with("import torch") || trimmed.starts_with("from torch"))
        {
            out.push(format!("{indent}import perseus.torch as perseus"));
            out.push(format!("{indent}perseus.init()"));
            out.push(format!("{indent}torch.cuda.set_device(perseus.local_rank())"));
            edits.push(Edit {
                line: i + 1,
                what: "injected perseus import, init() and device pinning".into(),
            });
            injected_init = true;
        }

        // Wrap the optimizer.
        if trimmed.contains("optim.") && trimmed.contains('=') && !trimmed.starts_with('#') {
            if let Some(var) = trimmed.split('=').next().map(str::trim) {
                if !var.is_empty() && var.chars().all(|c| c.is_alphanumeric() || c == '_') {
                    out.push(format!("{indent}{var} = perseus.DistributedOptimizer({var})"));
                    out.push(format!(
                        "{indent}perseus.broadcast_parameters(model.state_dict(), root_rank=0)"
                    ));
                    edits.push(Edit {
                        line: i + 1,
                        what: format!("wrapped optimizer `{var}` and broadcast initial parameters"),
                    });
                }
            }
        }

        // Shard the data loader.
        if trimmed.contains("DataLoader(") && !trimmed.starts_with('#') {
            out.push(format!(
                "{indent}# perseus: sampler shards the dataset across perseus.size() workers"
            ));
            edits.push(Edit {
                line: i + 1,
                what: "noted data sharding across workers (DistributedSampler)".into(),
            });
        }
    }

    if !injected_init {
        // No torch import found: prepend the scaffolding.
        out.insert(0, "import perseus.torch as perseus".to_string());
        out.insert(1, "perseus.init()".to_string());
        edits.insert(0, Edit { line: 1, what: "prepended perseus import and init()".into() });
    }

    Translation { source: join_lines(&out, source), kind: ScriptKind::Sequential, edits }
}

fn first_word(s: &str) -> &str {
    s.split(|c: char| !c.is_alphanumeric() && c != '_').next().unwrap_or(s)
}

fn join_lines(lines: &[String], original: &str) -> String {
    let mut s = lines.join("\n");
    if original.ends_with('\n') {
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn horovod_port_is_one_line() {
        let prog = "\
import torch
import horovod.torch as hvd

hvd.init()
torch.cuda.set_device(hvd.local_rank())
optimizer = hvd.DistributedOptimizer(optimizer)
";
        let t = translate_pytorch(prog);
        assert_eq!(t.kind, ScriptKind::Horovod);
        assert_eq!(t.edits.len(), 1, "exactly the one-line import swap");
        assert!(t.source.contains("import perseus.torch as hvd"));
        // Everything else untouched — hvd.* calls keep working (Horovod-
        // compatible API).
        assert!(t.source.contains("hvd.init()"));
        assert!(t.source.contains("hvd.DistributedOptimizer"));
        assert!(!t.source.contains("import horovod"));
    }

    #[test]
    fn bare_horovod_import_swapped() {
        let t = translate_pytorch("import horovod\n");
        assert!(t.source.contains("import perseus as hvd"));
    }

    #[test]
    fn sequential_script_gets_full_scaffolding() {
        let prog = "\
import torch
model = Net()
optimizer = torch.optim.SGD(model.parameters(), lr=0.1)
loader = DataLoader(dataset, batch_size=32)
";
        let t = translate_pytorch(prog);
        assert_eq!(t.kind, ScriptKind::Sequential);
        assert!(t.source.contains("perseus.init()"));
        assert!(t.source.contains("torch.cuda.set_device(perseus.local_rank())"));
        assert!(t.source.contains("optimizer = perseus.DistributedOptimizer(optimizer)"));
        assert!(t.source.contains("broadcast_parameters"));
        assert!(t.edits.len() >= 3, "edits: {:?}", t.edits);
        // Original lines survive.
        assert!(t.source.contains("model = Net()"));
    }

    #[test]
    fn perseus_script_is_left_alone() {
        let prog = "import perseus.torch as perseus\nperseus.init()\n";
        let t = translate_pytorch(prog);
        assert_eq!(t.kind, ScriptKind::Perseus);
        assert_eq!(t.source, prog);
        assert!(t.edits.is_empty());
    }

    #[test]
    fn indentation_is_preserved() {
        let prog = "def main():\n    import horovod.torch as hvd\n";
        let t = translate_pytorch(prog);
        assert!(t.source.contains("    import perseus.torch as hvd"));
    }

    #[test]
    fn edits_reference_input_lines() {
        let prog = "x = 1\nimport horovod.torch as hvd\n";
        let t = translate_pytorch(prog);
        assert_eq!(t.edits[0].line, 2);
    }

    #[test]
    fn trailing_newline_behaviour_is_stable() {
        let with_nl = translate_pytorch("import horovod\n");
        assert!(with_nl.source.ends_with('\n'));
        let without = translate_pytorch("import horovod");
        assert!(!without.source.ends_with('\n'));
    }
}
