//! Perseus — the data-plane gradient aggregation API.
//!
//! Named after AIACC-Training's unified communication API (§IV). This is the
//! *numerical* counterpart of the timing engine: real `f32` gradients from
//! real training workers are packed into all-reduce units, pushed through
//! the exact chunk-level ring (or hierarchical) all-reduce, optionally
//! compressed to fp16 for the wire, averaged, and unpacked — with the
//! guarantee that every worker receives **bit-identical** aggregated
//! gradients.
//!
//! The API is lock-step: one call aggregates one iteration's gradients for
//! all workers, mirroring how the simulation's workers are modelled in a
//! single process.

use crate::packing::pack_units;
use crate::registry::GradientRegistry;
use aiacc_collectives::dataplane::{ring_allreduce, tree_allreduce, ReduceOp};
use aiacc_compress::{ErrorFeedback, Scheme};
use aiacc_dnn::DType;
use serde::{Deserialize, Serialize};
use std::cell::{Cell, RefCell};

/// Configuration of a [`Perseus`] data-plane session.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerseusConfig {
    /// Number of training workers.
    pub world: usize,
    /// Packing granularity in bytes (f32 elements on the data plane).
    pub granularity: f64,
    /// Use the hierarchical algorithm with this node size (`None` = flat
    /// ring).
    pub gpus_per_node: Option<usize>,
    /// Divide the aggregate by the world size (gradient *averaging*).
    pub average: bool,
    /// Gradient compression scheme: each worker's unit payload goes
    /// through compress → decompress before reduction, exactly as the wire
    /// would deliver it (§X / RedSync), with per-worker error-feedback
    /// residuals for the lossy schemes.
    #[serde(default)]
    pub compress: Scheme,
}

impl PerseusConfig {
    /// A flat-ring averaging session for `world` workers.
    ///
    /// # Panics
    /// Panics if `world` is zero.
    pub fn new(world: usize) -> Self {
        assert!(world > 0, "world must be positive");
        PerseusConfig {
            world,
            granularity: 4.0 * 1024.0 * 1024.0,
            gpus_per_node: None,
            average: true,
            compress: Scheme::None,
        }
    }

    /// Sets the packing granularity in bytes.
    ///
    /// # Panics
    /// Panics if non-positive.
    pub fn with_granularity(mut self, bytes: f64) -> Self {
        assert!(bytes > 0.0 && bytes.is_finite(), "invalid granularity");
        self.granularity = bytes;
        self
    }

    /// Switches to the hierarchical (tree) algorithm.
    ///
    /// # Panics
    /// Panics if `gpus_per_node` is zero or does not divide the world size.
    pub fn with_tree(mut self, gpus_per_node: usize) -> Self {
        assert!(gpus_per_node > 0, "gpus_per_node must be positive");
        assert_eq!(self.world % gpus_per_node, 0, "world not a multiple of node size");
        self.gpus_per_node = Some(gpus_per_node);
        self
    }

    /// Enables fp16 wire emulation — legacy shorthand for
    /// [`PerseusConfig::with_compress`] with [`Scheme::Fp16`].
    pub fn with_compression(mut self, on: bool) -> Self {
        self.compress = if on { Scheme::Fp16 } else { Scheme::None };
        self
    }

    /// Selects the gradient compression scheme.
    pub fn with_compress(mut self, scheme: Scheme) -> Self {
        self.compress = scheme;
        self
    }

    /// Disables averaging (plain sum).
    pub fn with_sum(mut self) -> Self {
        self.average = false;
        self
    }
}

/// A lock-step multi-worker gradient aggregation session.
///
/// # Example
/// ```
/// use aiacc_core::{Perseus, PerseusConfig};
/// let layout = vec![("fc.weight".to_string(), 2usize)];
/// let p = Perseus::new(&layout, PerseusConfig::new(2));
/// let out = p.allreduce_step(vec![
///     vec![vec![1.0, 2.0]],
///     vec![vec![3.0, 4.0]],
/// ]);
/// assert_eq!(out[0], vec![2.0, 3.0]); // averaged
/// ```
#[derive(Debug, Clone)]
pub struct Perseus {
    cfg: PerseusConfig,
    registry: GradientRegistry,
    /// Error-feedback state, `[worker][unit]`, lazily grown on first use.
    /// Interior mutability keeps the lock-step `&self` API: the session is
    /// single-threaded by construction (one call aggregates everyone).
    ef: RefCell<Vec<Vec<ErrorFeedback>>>,
    /// Exact compressed bytes each worker put on the wire last step.
    last_wire_bytes: Cell<u64>,
}

impl Perseus {
    /// Opens a session for gradient tensors described by `layout`
    /// (`(name, element_count)` in registration order).
    pub fn new(layout: &[(String, usize)], cfg: PerseusConfig) -> Self {
        let registry = GradientRegistry::from_layout(layout, DType::F32);
        let ef = RefCell::new(vec![Vec::new(); cfg.world]);
        Perseus { cfg, registry, ef, last_wire_bytes: Cell::new(0) }
    }

    /// Exact bytes one worker's compressed payloads occupied on the wire in
    /// the most recent [`Perseus::allreduce_step`] (every worker sends the
    /// same amount — the wire size is a closed form over element counts).
    pub fn last_step_wire_bytes(&self) -> u64 {
        self.last_wire_bytes.get()
    }

    /// Number of workers in the session.
    pub fn world_size(&self) -> usize {
        self.cfg.world
    }

    /// The registered gradient set.
    pub fn registry(&self) -> &GradientRegistry {
        &self.registry
    }

    /// Aggregates one iteration's gradients.
    ///
    /// `grads_per_worker[w][t]` is worker `w`'s gradient for registered
    /// tensor `t`. Returns the aggregated (averaged, unless configured as a
    /// sum) gradients — identical for every worker, so a single copy is
    /// returned.
    ///
    /// # Panics
    /// Panics if the outer length differs from the world size or any tensor
    /// shape disagrees with the registry.
    pub fn allreduce_step(&self, grads_per_worker: Vec<Vec<Vec<f32>>>) -> Vec<Vec<f32>> {
        let w = self.cfg.world;
        assert_eq!(grads_per_worker.len(), w, "expected one gradient set per worker");
        for (wi, set) in grads_per_worker.iter().enumerate() {
            assert_eq!(set.len(), self.registry.len(), "worker {wi}: wrong tensor count");
            for (ti, t) in set.iter().enumerate() {
                assert_eq!(
                    t.len(),
                    self.registry.get(aiacc_dnn::GradId(ti as u32)).elems,
                    "worker {wi} tensor {ti}: wrong length"
                );
            }
        }

        // Pack every registered gradient into units (§V-B): the packing is a
        // pure function of the registry and granularity, so all workers agree.
        let all_ids = self.registry.iter().map(|g| g.id);
        let (mut units, partial) = pack_units(&self.registry, all_ids, self.cfg.granularity);
        units.extend(partial);

        let mut out: Vec<Vec<f32>> = self.registry.iter().map(|g| vec![0.0; g.elems]).collect();
        let mut ef = self.ef.borrow_mut();
        let mut step_wire: u64 = 0;

        for (ui, unit) in units.iter().enumerate() {
            // Gather each worker's unit payload.
            let mut bufs: Vec<Vec<f32>> = (0..w)
                .map(|wi| {
                    let mut buf = Vec::with_capacity(unit.elems());
                    for seg in &unit.segments {
                        let t = &grads_per_worker[wi][seg.grad.as_usize()];
                        buf.extend_from_slice(&t[seg.offset..seg.offset + seg.elems]);
                    }
                    if self.cfg.compress.is_lossy() {
                        // Compensated compression: the reduction consumes
                        // exactly what the wire would deliver; what the
                        // codec drops lands in this worker's residual and
                        // rides along next iteration.
                        while ef[wi].len() <= ui {
                            ef[wi].push(ErrorFeedback::new());
                        }
                        let (delivered, wire) = ef[wi][ui].compress_step(self.cfg.compress, &buf);
                        if wi == 0 {
                            step_wire += wire;
                        }
                        buf = delivered;
                    } else if wi == 0 {
                        step_wire += 4 * unit.elems() as u64;
                    }
                    buf
                })
                .collect();

            match self.cfg.gpus_per_node {
                Some(g) => tree_allreduce(&mut bufs, g, ReduceOp::Sum),
                None => ring_allreduce(&mut bufs, ReduceOp::Sum),
            }
            debug_assert!(bufs.windows(2).all(|p| p[0] == p[1]), "workers diverged");

            // Unpack (Algorithm 1, l. 13) from worker 0's — identical — copy.
            let reduced = &bufs[0];
            let mut off = 0;
            for seg in &unit.segments {
                let dst = &mut out[seg.grad.as_usize()][seg.offset..seg.offset + seg.elems];
                dst.copy_from_slice(&reduced[off..off + seg.elems]);
                off += seg.elems;
            }
        }

        self.last_wire_bytes.set(step_wire);
        if self.cfg.average {
            let inv = 1.0 / w as f32;
            for t in &mut out {
                for v in t.iter_mut() {
                    *v *= inv;
                }
            }
        }
        out
    }

    /// Broadcasts `params` from the root to all workers — used when an
    /// elastic deployment adds a node and must seed it with the current
    /// model state (§IV "elastic deployment").
    pub fn broadcast_parameters(&self, params: &[f32]) -> Vec<Vec<f32>> {
        (0..self.cfg.world).map(|_| params.to_vec()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout(sizes: &[usize]) -> Vec<(String, usize)> {
        sizes.iter().enumerate().map(|(i, &s)| (format!("t{i}"), s)).collect()
    }

    #[test]
    fn averages_across_workers() {
        let p = Perseus::new(&layout(&[3]), PerseusConfig::new(4));
        let grads = (0..4).map(|w| vec![vec![w as f32; 3]]).collect();
        let out = p.allreduce_step(grads);
        assert_eq!(out[0], vec![1.5; 3]); // (0+1+2+3)/4
    }

    #[test]
    fn sum_mode_skips_averaging() {
        let p = Perseus::new(&layout(&[2]), PerseusConfig::new(3).with_sum());
        let grads = (0..3).map(|_| vec![vec![1.0, 2.0]]).collect();
        let out = p.allreduce_step(grads);
        assert_eq!(out[0], vec![3.0, 6.0]);
    }

    #[test]
    fn packing_granularity_does_not_change_results() {
        let sizes = [100usize, 7, 64, 3];
        let mk = |gran: f64| {
            let p = Perseus::new(&layout(&sizes), PerseusConfig::new(3).with_granularity(gran));
            let grads: Vec<Vec<Vec<f32>>> = (0..3)
                .map(|w| {
                    sizes
                        .iter()
                        .map(|&s| (0..s).map(|i| (w * 31 + i) as f32 * 0.01).collect())
                        .collect()
                })
                .collect();
            p.allreduce_step(grads)
        };
        let fine = mk(16.0); // 4 elements per unit
        let coarse = mk(1e9);
        for (a, b) in fine.iter().zip(&coarse) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-5, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn tree_matches_ring_numerically() {
        let sizes = [50usize, 13];
        let grads: Vec<Vec<Vec<f32>>> = (0..8)
            .map(|w| {
                sizes
                    .iter()
                    .map(|&s| (0..s).map(|i| ((w + 1) * (i + 1)) as f32 * 1e-3).collect())
                    .collect()
            })
            .collect();
        let ring = Perseus::new(&layout(&sizes), PerseusConfig::new(8));
        let tree = Perseus::new(&layout(&sizes), PerseusConfig::new(8).with_tree(4));
        let a = ring.allreduce_step(grads.clone());
        let b = tree.allreduce_step(grads);
        for (x, y) in a.iter().zip(&b) {
            for (u, v) in x.iter().zip(y) {
                assert!((u - v).abs() < 1e-4, "{u} vs {v}");
            }
        }
    }

    #[test]
    fn compression_introduces_bounded_error() {
        let p = Perseus::new(&layout(&[100]), PerseusConfig::new(2));
        let pc = Perseus::new(&layout(&[100]), PerseusConfig::new(2).with_compression(true));
        let grads: Vec<Vec<Vec<f32>>> = (0..2)
            .map(|w| vec![(0..100).map(|i| (i as f32 - 50.0) * 1e-3 * (w + 1) as f32).collect()])
            .collect();
        let exact = p.allreduce_step(grads.clone());
        let lossy = pc.allreduce_step(grads);
        let mut max_rel: f32 = 0.0;
        for (a, b) in exact[0].iter().zip(&lossy[0]) {
            if a.abs() > 1e-6 {
                max_rel = max_rel.max((a - b).abs() / a.abs());
            }
        }
        assert!(max_rel > 0.0, "compression had no effect at all");
        assert!(max_rel < 1e-2, "compression error too large: {max_rel}");
    }

    #[test]
    fn broadcast_replicates_parameters() {
        let p = Perseus::new(&layout(&[4]), PerseusConfig::new(3));
        let replicas = p.broadcast_parameters(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(replicas.len(), 3);
        assert!(replicas.iter().all(|r| r == &vec![1.0, 2.0, 3.0, 4.0]));
    }

    #[test]
    #[should_panic(expected = "wrong tensor count")]
    fn wrong_tensor_count_rejected() {
        let p = Perseus::new(&layout(&[2, 2]), PerseusConfig::new(2));
        let _ = p.allreduce_step(vec![vec![vec![0.0; 2]], vec![vec![0.0; 2]]]);
    }
}
