//! The gradient synchronization bit vector (§V-A).
//!
//! Each worker keeps an *n*-element bit vector, one bit per registered
//! gradient: 1 = the local gradient value has been computed and is ready to
//! be reduced. Agreement across workers is a **min** reduction — on bits, a
//! bitwise AND — performed by a decentralized ring all-reduce among the MPI
//! processes (Fig. 8b), so a gradient counts as globally ready only when
//! *every* worker has produced it.

use aiacc_dnn::GradId;
use serde::{Deserialize, Serialize};

/// A fixed-length readiness bit vector.
///
/// # Example
/// ```
/// use aiacc_core::SyncVector;
/// use aiacc_dnn::GradId;
/// let mut v = SyncVector::new(100);
/// v.set(GradId(3));
/// assert!(v.get(GradId(3)));
/// assert_eq!(v.count_ready(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyncVector {
    words: Vec<u64>,
    len: usize,
}

impl SyncVector {
    /// A vector for `len` gradients, all bits cleared (the state at the start
    /// of every backward stage).
    pub fn new(len: usize) -> Self {
        SyncVector { words: vec![0; len.div_ceil(64)], len }
    }

    /// Number of gradient slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the vector has no slots.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Marks gradient `id` locally ready.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn set(&mut self, id: GradId) {
        let i = id.as_usize();
        assert!(i < self.len, "gradient {id} out of range (len {})", self.len);
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Reads a bit.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn get(&self, id: GradId) -> bool {
        let i = id.as_usize();
        assert!(i < self.len, "gradient {id} out of range (len {})", self.len);
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Clears every bit (run before each backward stage, §V-A1).
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// In-place minimum: `self &= other`. This is the reduction the paper's
    /// decentralized synchronization applies (§V-A2).
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn and_assign(&mut self, other: &SyncVector) {
        assert_eq!(self.len, other.len, "sync vector length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
        }
    }

    /// The intersection of many workers' vectors — the globally ready set.
    ///
    /// # Panics
    /// Panics if `vectors` is empty or lengths differ.
    pub fn intersect_all<'a>(vectors: impl IntoIterator<Item = &'a SyncVector>) -> SyncVector {
        let mut it = vectors.into_iter();
        let first = it.next().expect("at least one worker");
        let mut acc = first.clone();
        for v in it {
            acc.and_assign(v);
        }
        acc
    }

    /// Number of set bits.
    pub fn count_ready(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` when every gradient is ready.
    pub fn all_ready(&self) -> bool {
        self.count_ready() == self.len
    }

    /// Iterates set bits in id order.
    pub fn iter_ready(&self) -> impl Iterator<Item = GradId> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &w)| {
            let base = wi * 64;
            let len = self.len;
            (0..64).filter_map(move |b| {
                let i = base + b;
                (w & (1 << b) != 0 && i < len).then_some(GradId(i as u32))
            })
        })
    }

    /// Bytes this vector occupies on the wire during a sync round.
    pub fn wire_bytes(&self) -> f64 {
        (self.words.len() * 8) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut v = SyncVector::new(130);
        v.set(GradId(0));
        v.set(GradId(64));
        v.set(GradId(129));
        assert!(v.get(GradId(0)) && v.get(GradId(64)) && v.get(GradId(129)));
        assert!(!v.get(GradId(1)));
        assert_eq!(v.count_ready(), 3);
        v.clear();
        assert_eq!(v.count_ready(), 0);
    }

    #[test]
    fn and_is_min_vote() {
        let mut a = SyncVector::new(10);
        let mut b = SyncVector::new(10);
        a.set(GradId(1));
        a.set(GradId(2));
        b.set(GradId(2));
        b.set(GradId(3));
        a.and_assign(&b);
        assert!(!a.get(GradId(1)));
        assert!(a.get(GradId(2)));
        assert!(!a.get(GradId(3)));
    }

    #[test]
    fn intersect_all_matches_pairwise() {
        let mut vs: Vec<SyncVector> = (0..4).map(|_| SyncVector::new(70)).collect();
        for (w, v) in vs.iter_mut().enumerate() {
            for i in 0..70 {
                if i % (w + 2) == 0 {
                    v.set(GradId(i as u32));
                }
            }
        }
        let inter = SyncVector::intersect_all(&vs);
        for i in 0..70u32 {
            let want = vs.iter().all(|v| v.get(GradId(i)));
            assert_eq!(inter.get(GradId(i)), want, "bit {i}");
        }
    }

    #[test]
    fn iter_ready_in_order() {
        let mut v = SyncVector::new(200);
        for i in [5u32, 63, 64, 65, 199] {
            v.set(GradId(i));
        }
        let got: Vec<u32> = v.iter_ready().map(|g| g.0).collect();
        assert_eq!(got, vec![5, 63, 64, 65, 199]);
    }

    #[test]
    fn all_ready_detects_completion() {
        let mut v = SyncVector::new(65);
        for i in 0..65 {
            assert!(!v.all_ready());
            v.set(GradId(i));
        }
        assert!(v.all_ready());
    }

    #[test]
    fn wire_bytes_small() {
        // 161 gradients (ResNet-50-scale) fit in 24 bytes — negligible
        // network cost for a sync round, as §V-A2 argues.
        assert_eq!(SyncVector::new(161).wire_bytes(), 24.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_set_panics() {
        SyncVector::new(3).set(GradId(3));
    }
}
