//! Wire format for communication buckets.
//!
//! When a bucket leaves the gradient queue for the network, the
//! communication process serializes it into a framed message: a fixed
//! header, the segment table (which slices of which gradients the frame
//! carries — the receiver needs it to unpack, Algorithm 1 l. 13), and the
//! payload in the wire dtype (fp32, or fp16 when compression is on, §X).
//!
//! The format is explicit and versioned so heterogeneous builds can refuse
//! frames they do not understand instead of corrupting gradients.

use crate::packing::Segment;
use aiacc_dnn::{f16, DType, GradId};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

const MAGIC: &[u8; 4] = b"AIAC";
const VERSION: u8 = 1;

/// A decoded frame: the segment table plus the payload as f32.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Which gradient slices the payload covers, in payload order.
    pub segments: Vec<Segment>,
    /// Payload values (widened to f32 if the wire carried fp16).
    pub values: Vec<f32>,
    /// The dtype that was on the wire.
    pub wire_dtype: DType,
}

/// Frame decoding failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeWireError {
    /// The magic bytes did not match — not an AIACC frame.
    BadMagic,
    /// Unknown format version.
    UnsupportedVersion(u8),
    /// Unknown dtype tag.
    BadDtype(u8),
    /// The buffer ended before the declared contents.
    Truncated,
    /// Segment lengths disagree with the payload size.
    LengthMismatch {
        /// Elements promised by the segment table.
        declared: usize,
        /// Elements present in the payload.
        actual: usize,
    },
}

impl fmt::Display for DecodeWireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeWireError::BadMagic => write!(f, "not an AIACC frame (bad magic)"),
            DecodeWireError::UnsupportedVersion(v) => write!(f, "unsupported frame version {v}"),
            DecodeWireError::BadDtype(d) => write!(f, "unknown dtype tag {d}"),
            DecodeWireError::Truncated => write!(f, "frame truncated"),
            DecodeWireError::LengthMismatch { declared, actual } => {
                write!(f, "segment table declares {declared} elements, payload has {actual}")
            }
        }
    }
}

impl std::error::Error for DecodeWireError {}

/// Encodes a bucket into a framed wire message.
///
/// `values` is the concatenated payload in segment order; with
/// `DType::F16` it is quantized on the way out.
///
/// # Panics
/// Panics if `values.len()` disagrees with the segment table.
pub fn encode_frame(segments: &[Segment], values: &[f32], wire_dtype: DType) -> Bytes {
    let declared: usize = segments.iter().map(|s| s.elems).sum();
    assert_eq!(declared, values.len(), "segment table/payload mismatch");
    let mut buf = BytesMut::with_capacity(
        4 + 1 + 1 + 2 + 4 + segments.len() * 20 + values.len() * wire_dtype.bytes_per_elem(),
    );
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u8(match wire_dtype {
        DType::F32 => 0,
        DType::F16 => 1,
    });
    buf.put_u16(0); // reserved
    buf.put_u32(u32::try_from(segments.len()).expect("too many segments"));
    for s in segments {
        buf.put_u32(s.grad.0);
        buf.put_u64(s.offset as u64);
        buf.put_u64(s.elems as u64);
    }
    match wire_dtype {
        DType::F32 => {
            for &v in values {
                buf.put_f32_le(v);
            }
        }
        DType::F16 => {
            for &v in values {
                buf.put_u16_le(f16::f32_to_f16(v));
            }
        }
    }
    buf.freeze()
}

/// Decodes a framed wire message.
///
/// # Errors
/// Returns a [`DecodeWireError`] for anything other than a well-formed
/// frame; no partial data is ever returned.
pub fn decode_frame(mut buf: &[u8]) -> Result<Frame, DecodeWireError> {
    if buf.remaining() < 12 {
        return Err(DecodeWireError::Truncated);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(DecodeWireError::BadMagic);
    }
    let version = buf.get_u8();
    if version != VERSION {
        return Err(DecodeWireError::UnsupportedVersion(version));
    }
    let dtype = match buf.get_u8() {
        0 => DType::F32,
        1 => DType::F16,
        d => return Err(DecodeWireError::BadDtype(d)),
    };
    let _reserved = buf.get_u16();
    let n_segments = buf.get_u32() as usize;
    if buf.remaining() < n_segments * 20 {
        return Err(DecodeWireError::Truncated);
    }
    let mut segments = Vec::with_capacity(n_segments);
    let mut declared = 0usize;
    for _ in 0..n_segments {
        let grad = GradId(buf.get_u32());
        let offset = buf.get_u64() as usize;
        let elems = buf.get_u64() as usize;
        declared += elems;
        segments.push(Segment { grad, offset, elems });
    }
    let elem_bytes = dtype.bytes_per_elem();
    let actual = buf.remaining() / elem_bytes;
    if !buf.remaining().is_multiple_of(elem_bytes) || actual < declared {
        return Err(DecodeWireError::Truncated);
    }
    if actual != declared {
        return Err(DecodeWireError::LengthMismatch { declared, actual });
    }
    let mut values = Vec::with_capacity(declared);
    match dtype {
        DType::F32 => {
            for _ in 0..declared {
                values.push(buf.get_f32_le());
            }
        }
        DType::F16 => {
            for _ in 0..declared {
                values.push(f16::f16_to_f32(buf.get_u16_le()));
            }
        }
    }
    Ok(Frame { segments, values, wire_dtype: dtype })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn segments() -> Vec<Segment> {
        vec![
            Segment { grad: GradId(3), offset: 0, elems: 4 },
            Segment { grad: GradId(7), offset: 128, elems: 2 },
        ]
    }

    #[test]
    fn f32_roundtrip_is_exact() {
        let vals = vec![1.0, -2.5, 3.25, 0.0, 1e-8, 6.0e4];
        let frame = encode_frame(&segments(), &vals, DType::F32);
        let decoded = decode_frame(&frame).unwrap();
        assert_eq!(decoded.values, vals);
        assert_eq!(decoded.segments, segments());
        assert_eq!(decoded.wire_dtype, DType::F32);
    }

    #[test]
    fn f16_roundtrip_bounded_error_and_half_size() {
        let vals = vec![0.5, -0.25, 2.0, 100.0, 3.0e-3, 0.0];
        let full = encode_frame(&segments(), &vals, DType::F32);
        let half = encode_frame(&segments(), &vals, DType::F16);
        assert!(half.len() < full.len());
        let decoded = decode_frame(&half).unwrap();
        for (a, b) in vals.iter().zip(&decoded.values) {
            let tol = a.abs() * 1e-3 + 1e-6;
            assert!((a - b).abs() <= tol, "{a} vs {b}");
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let mut frame = encode_frame(&segments(), &[0.0; 6], DType::F32).to_vec();
        frame[0] = b'X';
        assert_eq!(decode_frame(&frame), Err(DecodeWireError::BadMagic));
    }

    #[test]
    fn unsupported_version_rejected() {
        let mut frame = encode_frame(&segments(), &[0.0; 6], DType::F32).to_vec();
        frame[4] = 99;
        assert_eq!(decode_frame(&frame), Err(DecodeWireError::UnsupportedVersion(99)));
    }

    #[test]
    fn truncation_detected_everywhere() {
        let frame = encode_frame(&segments(), &[1.0; 6], DType::F32);
        for cut in [0usize, 5, 11, 12, 30, frame.len() - 1] {
            let r = decode_frame(&frame[..cut]);
            assert!(r.is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn extra_payload_is_a_length_mismatch() {
        let mut frame = encode_frame(&segments(), &[1.0; 6], DType::F32).to_vec();
        frame.extend_from_slice(&[0u8; 8]); // two extra f32
        assert_eq!(
            decode_frame(&frame),
            Err(DecodeWireError::LengthMismatch { declared: 6, actual: 8 })
        );
    }

    #[test]
    fn empty_bucket_frame_roundtrips() {
        let frame = encode_frame(&[], &[], DType::F32);
        let decoded = decode_frame(&frame).unwrap();
        assert!(decoded.segments.is_empty());
        assert!(decoded.values.is_empty());
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn encode_validates_lengths() {
        let _ = encode_frame(&segments(), &[0.0; 5], DType::F32);
    }

    #[test]
    fn error_messages_are_informative() {
        let e = DecodeWireError::LengthMismatch { declared: 6, actual: 8 };
        assert!(format!("{e}").contains("6"));
        let boxed: Box<dyn std::error::Error> = Box::new(e);
        assert!(boxed.to_string().contains("payload"));
    }
}
