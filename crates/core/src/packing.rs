//! Gradient packing: forming all-reduce units of the tuned granularity
//! (§V "Gradient packing", §V-B).
//!
//! Because gradient tensors vary wildly in size and the optimal communication
//! granularity depends on the network, AIACC-Training merges small tensors
//! and splits large ones into *all-reduce units*. Units are formed strictly
//! in gradient-id order, so all workers implicitly agree on the packing
//! without extra coordination.

use crate::registry::{GradientInfo, GradientRegistry};
use aiacc_dnn::GradId;
use serde::{Deserialize, Serialize};

/// A contiguous slice of one gradient tensor inside an all-reduce unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Segment {
    /// The gradient this slice belongs to.
    pub grad: GradId,
    /// First element of the slice.
    pub offset: usize,
    /// Number of elements.
    pub elems: usize,
}

/// One unit of communication: what a single ring all-reduce carries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AllReduceUnit {
    /// The packed slices, in gradient-id order.
    pub segments: Vec<Segment>,
    /// Payload bytes per worker.
    pub bytes: f64,
}

impl AllReduceUnit {
    /// Total elements across segments.
    pub fn elems(&self) -> usize {
        self.segments.iter().map(|s| s.elems).sum()
    }
}

/// Packs the given gradients (by id, using sizes from `registry`) into units
/// of at most `granularity_bytes`. Returns `(full_units, partial)`: the
/// trailing unit smaller than the granularity is handed back separately so
/// the caller can hold it for more gradients or flush it at the end of
/// backward.
///
/// # Panics
/// Panics if `granularity_bytes` is not strictly positive.
pub fn pack_units(
    registry: &GradientRegistry,
    ready: impl IntoIterator<Item = GradId>,
    granularity_bytes: f64,
) -> (Vec<AllReduceUnit>, Option<AllReduceUnit>) {
    assert!(granularity_bytes > 0.0 && granularity_bytes.is_finite(), "invalid granularity");
    let bytes_per_elem = registry.dtype().bytes_per_elem() as f64;
    let gran_elems = (granularity_bytes / bytes_per_elem).floor().max(1.0) as usize;

    let mut full = Vec::new();
    let mut cur = AllReduceUnit { segments: Vec::new(), bytes: 0.0 };
    let mut cur_elems = 0usize;

    let mut ids: Vec<GradId> = ready.into_iter().collect();
    ids.sort();
    ids.dedup();

    for id in ids {
        let info: &GradientInfo = registry.get(id);
        let mut offset = 0usize;
        while offset < info.elems {
            let room = gran_elems - cur_elems;
            let take = room.min(info.elems - offset);
            cur.segments.push(Segment { grad: id, offset, elems: take });
            cur_elems += take;
            cur.bytes += take as f64 * bytes_per_elem;
            offset += take;
            if cur_elems == gran_elems {
                full.push(std::mem::replace(
                    &mut cur,
                    AllReduceUnit { segments: Vec::new(), bytes: 0.0 },
                ));
                cur_elems = 0;
            }
        }
        if info.elems == 0 {
            // Zero-length gradients still need a completion record.
            cur.segments.push(Segment { grad: id, offset: 0, elems: 0 });
        }
    }
    let partial = (!cur.segments.is_empty()).then_some(cur);
    (full, partial)
}

/// Tracks which gradients have been fully reduced as units complete
/// ("gradient unpack" + callback dispatch of Algorithm 1, lines 12–15).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReduceTracker {
    remaining: Vec<usize>,
    zero_len_done: Vec<bool>,
    done_count: usize,
}

impl ReduceTracker {
    /// A tracker covering every gradient of `registry`.
    pub fn new(registry: &GradientRegistry) -> Self {
        ReduceTracker {
            remaining: registry.iter().map(|g| g.elems).collect(),
            zero_len_done: registry.iter().map(|g| g.elems > 0).collect(),
            done_count: 0,
        }
    }

    /// Records a completed unit; returns the gradients that became fully
    /// reduced by it, in id order.
    ///
    /// # Panics
    /// Panics if a segment over-completes its gradient (double counting).
    pub fn complete_unit(&mut self, unit: &AllReduceUnit) -> Vec<GradId> {
        let mut newly = Vec::new();
        for seg in &unit.segments {
            let i = seg.grad.as_usize();
            if seg.elems == 0 {
                if !self.zero_len_done[i] {
                    self.zero_len_done[i] = true;
                    if self.remaining[i] == 0 {
                        newly.push(seg.grad);
                        self.done_count += 1;
                    }
                }
                continue;
            }
            assert!(
                self.remaining[i] >= seg.elems,
                "segment over-completes {} (remaining {}, segment {})",
                seg.grad,
                self.remaining[i],
                seg.elems
            );
            self.remaining[i] -= seg.elems;
            if self.remaining[i] == 0 {
                newly.push(seg.grad);
                self.done_count += 1;
            }
        }
        newly.sort();
        newly
    }

    /// Gradients fully reduced so far.
    pub fn done_count(&self) -> usize {
        self.done_count
    }

    /// `true` once every registered gradient has been reduced.
    pub fn all_done(&self) -> bool {
        self.done_count == self.remaining.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aiacc_dnn::DType;

    fn registry(sizes: &[usize]) -> GradientRegistry {
        let layout: Vec<(String, usize)> =
            sizes.iter().enumerate().map(|(i, &s)| (format!("g{i}"), s)).collect();
        GradientRegistry::from_layout(&layout, DType::F32)
    }

    #[test]
    fn small_tensors_merge_into_one_unit() {
        let reg = registry(&[10, 20, 30]);
        let (full, partial) = pack_units(&reg, (0..3).map(GradId), 4096.0);
        assert!(full.is_empty());
        let p = partial.unwrap();
        assert_eq!(p.segments.len(), 3);
        assert_eq!(p.elems(), 60);
        assert_eq!(p.bytes, 240.0);
    }

    #[test]
    fn large_tensor_splits_across_units() {
        let reg = registry(&[1000]);
        // Granularity of 300 elements = 1200 bytes.
        let (full, partial) = pack_units(&reg, [GradId(0)], 1200.0);
        assert_eq!(full.len(), 3);
        for u in &full {
            assert_eq!(u.elems(), 300);
        }
        assert_eq!(partial.unwrap().elems(), 100);
    }

    #[test]
    fn mixed_sizes_fill_units_exactly() {
        let reg = registry(&[100, 250, 70, 600]);
        let (full, partial) = pack_units(&reg, (0..4).map(GradId), 4.0 * 256.0);
        // 1020 elements total, units of 256: 3 full + 252 partial.
        assert_eq!(full.len(), 3);
        let total: usize = full.iter().map(AllReduceUnit::elems).sum::<usize>()
            + partial.as_ref().unwrap().elems();
        assert_eq!(total, 1020);
        // Units cover gradient ids in order: first unit starts with grad 0.
        assert_eq!(full[0].segments[0].grad, GradId(0));
    }

    #[test]
    fn duplicate_and_unordered_ids_are_normalized() {
        let reg = registry(&[5, 5]);
        let (_, partial) = pack_units(&reg, vec![GradId(1), GradId(0), GradId(1)], 1e6);
        let p = partial.unwrap();
        assert_eq!(p.segments.len(), 2);
        assert_eq!(p.segments[0].grad, GradId(0));
    }

    #[test]
    fn tracker_completes_gradients_once_all_segments_arrive() {
        let reg = registry(&[1000]);
        let (full, partial) = pack_units(&reg, [GradId(0)], 1200.0);
        let mut tracker = ReduceTracker::new(&reg);
        for u in &full {
            assert!(tracker.complete_unit(u).is_empty(), "completed too early");
        }
        let done = tracker.complete_unit(&partial.unwrap());
        assert_eq!(done, vec![GradId(0)]);
        assert!(tracker.all_done());
    }

    #[test]
    fn tracker_counts_multiple_gradients() {
        let reg = registry(&[10, 10, 10]);
        let (full, partial) = pack_units(&reg, (0..3).map(GradId), 40.0);
        let mut tracker = ReduceTracker::new(&reg);
        let mut done = Vec::new();
        for u in &full {
            done.extend(tracker.complete_unit(u));
        }
        if let Some(p) = partial {
            done.extend(tracker.complete_unit(&p));
        }
        done.sort();
        assert_eq!(done, vec![GradId(0), GradId(1), GradId(2)]);
        assert_eq!(tracker.done_count(), 3);
    }

    #[test]
    #[should_panic(expected = "over-completes")]
    fn double_completion_detected() {
        let reg = registry(&[10]);
        let (_, partial) = pack_units(&reg, [GradId(0)], 1e6);
        let p = partial.unwrap();
        let mut tracker = ReduceTracker::new(&reg);
        tracker.complete_unit(&p);
        tracker.complete_unit(&p);
    }

    #[test]
    fn granularity_smaller_than_element_still_packs() {
        let reg = registry(&[3]);
        let (full, partial) = pack_units(&reg, [GradId(0)], 1.0);
        // 1 element per unit.
        assert_eq!(full.len(), 3);
        assert!(partial.is_none());
    }
}
