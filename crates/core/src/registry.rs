//! Gradient registration (§V-A1).

use aiacc_dnn::{DType, GradId, ModelProfile};
use serde::{Deserialize, Serialize};

/// Static description of one registered gradient.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GradientInfo {
    /// Registration index == synchronization-vector slot.
    pub id: GradId,
    /// `"<layer>.<param>"`.
    pub name: String,
    /// Element count.
    pub elems: usize,
    /// Bytes on the wire at the registry's dtype.
    pub bytes: f64,
}

/// The registered gradient set of a model.
///
/// Built when the model is loaded: parameters are sorted (here: layer order,
/// then parameter order — already canonical in [`ModelProfile`]) and assigned
/// a unique index used consistently by the synchronization vector and by
/// packing, so all workers implicitly agree on communication order (§V-B).
///
/// # Example
/// ```
/// use aiacc_core::GradientRegistry;
/// use aiacc_dnn::{zoo, DType, GradId};
/// let reg = GradientRegistry::from_profile(&zoo::tiny_cnn(), DType::F32);
/// let g = reg.get(GradId(0));
/// assert!(g.elems > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GradientRegistry {
    grads: Vec<GradientInfo>,
    dtype: DType,
    total_bytes: f64,
}

impl GradientRegistry {
    /// Registers every parameter tensor of `model` at wire dtype `dtype`.
    pub fn from_profile(model: &ModelProfile, dtype: DType) -> Self {
        let mut grads: Vec<GradientInfo> = model
            .gradients(dtype)
            .into_iter()
            .map(|g| GradientInfo { id: g.id, name: g.name, elems: g.elems, bytes: g.bytes })
            .collect();
        grads.sort_by_key(|g| g.id);
        let total_bytes = grads.iter().map(|g| g.bytes).sum();
        GradientRegistry { grads, dtype, total_bytes }
    }

    /// Builds a registry directly from `(name, elems)` pairs — used by the
    /// real-MLP path where there is no [`ModelProfile`].
    pub fn from_layout(layout: &[(String, usize)], dtype: DType) -> Self {
        let grads: Vec<GradientInfo> = layout
            .iter()
            .enumerate()
            .map(|(i, (name, elems))| GradientInfo {
                id: GradId(u32::try_from(i).expect("too many gradients")),
                name: name.clone(),
                elems: *elems,
                bytes: (elems * dtype.bytes_per_elem()) as f64,
            })
            .collect();
        let total_bytes = grads.iter().map(|g| g.bytes).sum();
        GradientRegistry { grads, dtype, total_bytes }
    }

    /// Number of registered gradients.
    pub fn len(&self) -> usize {
        self.grads.len()
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.grads.is_empty()
    }

    /// Wire dtype.
    pub fn dtype(&self) -> DType {
        self.dtype
    }

    /// Total wire bytes of one full gradient set.
    pub fn total_bytes(&self) -> f64 {
        self.total_bytes
    }

    /// Gradient by registration id.
    ///
    /// # Panics
    /// Panics if `id` was not assigned by this registry.
    pub fn get(&self, id: GradId) -> &GradientInfo {
        &self.grads[id.as_usize()]
    }

    /// All gradients in registration (id) order.
    pub fn iter(&self) -> impl Iterator<Item = &GradientInfo> {
        self.grads.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aiacc_dnn::zoo;

    #[test]
    fn ids_are_dense_and_ordered() {
        let reg = GradientRegistry::from_profile(&zoo::resnet50(), DType::F32);
        for (i, g) in reg.iter().enumerate() {
            assert_eq!(g.id.as_usize(), i);
        }
    }

    #[test]
    fn totals_match_model() {
        let model = zoo::vgg16();
        let reg = GradientRegistry::from_profile(&model, DType::F32);
        assert_eq!(reg.len(), model.num_gradients());
        assert!((reg.total_bytes() - model.grad_bytes(DType::F32)).abs() < 1.0);
    }

    #[test]
    fn fp16_halves_bytes() {
        let model = zoo::resnet50();
        let full = GradientRegistry::from_profile(&model, DType::F32);
        let half = GradientRegistry::from_profile(&model, DType::F16);
        assert!((full.total_bytes() / half.total_bytes() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn layout_constructor() {
        let layout = vec![("a".to_string(), 10), ("b".to_string(), 5)];
        let reg = GradientRegistry::from_layout(&layout, DType::F32);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.get(GradId(1)).elems, 5);
        assert_eq!(reg.total_bytes(), 60.0);
    }
}
