//! Threaded Perseus: per-worker handles over real OS threads.
//!
//! [`crate::Perseus`] is lock-step (one call aggregates everyone's
//! gradients); this module provides the Horovod-shaped alternative the
//! paper's API implies — every training worker holds its own handle, calls
//! `allreduce` with just *its* gradients, and blocks until the collective
//! completes. A coordinator thread plays the role of the per-GPU MPI
//! communication processes (Fig. 4): it gathers one submission per rank,
//! runs the exact packed ring all-reduce, and returns the aggregated
//! gradients to every caller.

use crate::perseus::{Perseus, PerseusConfig};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use std::thread;

enum Msg {
    Submit { rank: usize, grads: Vec<Vec<f32>>, reply: Sender<Vec<Vec<f32>>> },
}

/// A per-worker endpoint of a threaded Perseus session.
///
/// Handles are `Send`: move each one into its worker thread.
#[derive(Debug)]
pub struct PerseusHandle {
    rank: usize,
    world: usize,
    to_coordinator: Sender<Msg>,
}

impl PerseusHandle {
    /// This worker's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of workers in the session.
    pub fn size(&self) -> usize {
        self.world
    }

    /// Submits this worker's gradients and blocks until every rank has
    /// contributed and the aggregate is ready (synchronous data-parallel
    /// semantics).
    ///
    /// # Panics
    /// Panics if the coordinator has shut down (another handle was dropped
    /// mid-round) or the tensor shapes disagree with the registration.
    pub fn allreduce(&self, grads: Vec<Vec<f32>>) -> Vec<Vec<f32>> {
        let (reply_tx, reply_rx) = bounded(1);
        self.to_coordinator
            .send(Msg::Submit { rank: self.rank, grads, reply: reply_tx })
            .expect("perseus coordinator is gone");
        reply_rx.recv().expect("perseus coordinator dropped mid-round")
    }
}

/// Launches a threaded session: returns one handle per rank. The
/// coordinator thread exits when every handle has been dropped.
///
/// # Example
/// ```
/// use aiacc_core::{perseus_world, PerseusConfig};
/// use std::thread;
///
/// let layout = vec![("g".to_string(), 2usize)];
/// let handles = perseus_world(&layout, PerseusConfig::new(3));
/// let joins: Vec<_> = handles
///     .into_iter()
///     .map(|h| {
///         thread::spawn(move || {
///             let out = h.allreduce(vec![vec![h.rank() as f32; 2]]);
///             out[0][0]
///         })
///     })
///     .collect();
/// for j in joins {
///     assert_eq!(j.join().unwrap(), 1.0); // (0+1+2)/3
/// }
/// ```
pub fn perseus_world(layout: &[(String, usize)], cfg: PerseusConfig) -> Vec<PerseusHandle> {
    let world = cfg.world;
    let session = Perseus::new(layout, cfg);
    let (tx, rx): (Sender<Msg>, Receiver<Msg>) = unbounded();

    thread::spawn(move || coordinator_loop(session, rx, world));

    (0..world).map(|rank| PerseusHandle { rank, world, to_coordinator: tx.clone() }).collect()
}

/// One rank's submitted gradients plus the channel to send its share back on.
type PendingSubmit = (Vec<Vec<f32>>, Sender<Vec<Vec<f32>>>);

fn coordinator_loop(session: Perseus, rx: Receiver<Msg>, world: usize) {
    loop {
        // Gather exactly one submission per rank for this round.
        let mut pending: Vec<Option<PendingSubmit>> = (0..world).map(|_| None).collect();
        let mut received = 0;
        while received < world {
            let Ok(Msg::Submit { rank, grads, reply }) = rx.recv() else {
                // All handles dropped: session over.
                return;
            };
            assert!(pending[rank].is_none(), "rank {rank} submitted twice in one round");
            pending[rank] = Some((grads, reply));
            received += 1;
        }
        let mut replies = Vec::with_capacity(world);
        let grads_per_worker: Vec<Vec<Vec<f32>>> = pending
            .into_iter()
            .map(|slot| {
                let (grads, reply) = slot.expect("all ranks present");
                replies.push(reply);
                grads
            })
            .collect();
        let result = session.allreduce_step(grads_per_worker);
        for reply in replies {
            // A dropped handle mid-round only loses its own reply.
            let _ = reply.send(result.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout(sizes: &[usize]) -> Vec<(String, usize)> {
        sizes.iter().enumerate().map(|(i, &s)| (format!("t{i}"), s)).collect()
    }

    #[test]
    fn threads_receive_identical_averages() {
        let handles = perseus_world(&layout(&[3, 1]), PerseusConfig::new(4));
        let joins: Vec<_> = handles
            .into_iter()
            .map(|h| {
                thread::spawn(move || {
                    let r = h.rank() as f32;
                    h.allreduce(vec![vec![r; 3], vec![10.0 * r]])
                })
            })
            .collect();
        let results: Vec<_> = joins.into_iter().map(|j| j.join().unwrap()).collect();
        for r in &results {
            assert_eq!(r, &results[0]);
        }
        assert_eq!(results[0][0], vec![1.5; 3]); // mean of 0..4
        assert_eq!(results[0][1], vec![15.0]);
    }

    #[test]
    fn multiple_rounds_in_any_thread_order() {
        let handles = perseus_world(&layout(&[2]), PerseusConfig::new(3));
        let joins: Vec<_> = handles
            .into_iter()
            .map(|h| {
                thread::spawn(move || {
                    let mut outs = Vec::new();
                    for round in 0..5u32 {
                        let v = (h.rank() as f32) + round as f32;
                        outs.push(h.allreduce(vec![vec![v, -v]])[0][0]);
                    }
                    outs
                })
            })
            .collect();
        let results: Vec<Vec<f32>> = joins.into_iter().map(|j| j.join().unwrap()).collect();
        for r in &results {
            // Round k: mean over ranks of (rank + k) = 1 + k.
            for (k, &v) in r.iter().enumerate() {
                assert!((v - (1.0 + k as f32)).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn matches_lockstep_session() {
        let sizes = [5usize, 2];
        let grads: Vec<Vec<Vec<f32>>> = (0..3)
            .map(|w| {
                sizes.iter().map(|&s| (0..s).map(|i| (w * 7 + i) as f32 * 0.3).collect()).collect()
            })
            .collect();
        let lockstep = Perseus::new(&layout(&sizes), PerseusConfig::new(3));
        let want = lockstep.allreduce_step(grads.clone());

        let handles = perseus_world(&layout(&sizes), PerseusConfig::new(3));
        let joins: Vec<_> = handles
            .into_iter()
            .zip(grads)
            .map(|(h, g)| thread::spawn(move || h.allreduce(g)))
            .collect();
        for j in joins {
            assert_eq!(j.join().unwrap(), want);
        }
    }

    #[test]
    fn dropping_all_handles_shuts_down_cleanly() {
        let handles = perseus_world(&layout(&[1]), PerseusConfig::new(2));
        drop(handles);
        // Nothing to assert directly — the coordinator must exit instead of
        // spinning; give it a moment and rely on the test harness to catch
        // leaks/hangs.
        thread::sleep(std::time::Duration::from_millis(10));
    }

    #[test]
    fn handle_reports_identity() {
        let handles = perseus_world(&layout(&[1]), PerseusConfig::new(2));
        assert_eq!(handles[0].rank(), 0);
        assert_eq!(handles[1].rank(), 1);
        assert_eq!(handles[0].size(), 2);
    }
}
