//! The AIACC multi-streamed concurrent gradient communication engine
//! (Algorithm 1, Fig. 5–8).
//!
//! Per iteration the engine:
//!
//! 1. collects local readiness bits as workers produce gradients;
//! 2. when any worker's un-synchronized ready volume reaches the
//!    communication granularity, runs a decentralized **sync round** (ring
//!    min-all-reduce of the bit vectors, costing only latency — §V-A2);
//! 3. packs the globally agreed gradients into all-reduce units of the tuned
//!    granularity (§V-B);
//! 4. dispatches units to a pool of communication streams — each stream an
//!    independent concurrent ring/tree all-reduce over the same physical
//!    links (Fig. 7b) — bounded by the GPU's current stream budget;
//! 5. unpacks completed units and reports the iteration done when every
//!    gradient has been aggregated.

use crate::ddl::{DdlCtx, DdlEngine, ENGINE_TIMER_KIND};
use crate::packing::{pack_units, AllReduceUnit, ReduceTracker};
use crate::registry::GradientRegistry;
use crate::syncvec::SyncVector;
use aiacc_collectives::timing::sync_round_latency;
use aiacc_collectives::{Algo, CollectiveSpec, OpId, RingMode};
use aiacc_compress::Scheme;
use aiacc_dnn::{DType, GradId, ModelProfile};
use aiacc_simnet::trace::track;
use aiacc_simnet::{FaultRecord, SimDuration, SimTime, Token};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

/// Timer code: a sync round finished.
const TIMER_SYNC_DONE: u32 = 0;

/// Timer code: watchdog check on a dispatched all-reduce unit.
const TIMER_UNIT_STALL: u32 = 1;

/// Tunable communication hyper-parameters — exactly the knobs the
/// auto-tuner of §VI searches over.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AiaccConfig {
    /// Communication thread-pool size (concurrent CUDA streams), N in
    /// Algorithm 1.
    pub streams: usize,
    /// All-reduce unit granularity in bytes.
    pub granularity: f64,
    /// All-reduce algorithm.
    pub algo: Algo,
    /// Ring timing fidelity.
    pub mode: RingMode,
    /// Gradient compression scheme (§X / RedSync): what actually travels
    /// on the wire. The engine charges the scheme's exact compressed wire
    /// size per unit and its compress/decompress kernels on compute.
    #[serde(default)]
    pub compress: Scheme,
    /// Stall watchdog: if a dispatched unit has not completed after this
    /// long, cancel it and resubmit on a fresh stream (doubling the timeout
    /// each retry). `None` disables the watchdog — the default, since on a
    /// healthy network a resubmission can only lose work.
    pub stall_timeout: Option<SimDuration>,
    /// Upper bound on watchdog resubmissions *per unit*. Once a unit has
    /// been resubmitted this many times, its final attempt runs unwatched
    /// to completion — under sustained chaos an unbounded watchdog can
    /// thrash forever cancelling work that would eventually finish.
    /// `None` (the default) keeps the pre-existing unbounded behaviour.
    pub max_resubmissions: Option<u32>,
}

impl Default for AiaccConfig {
    /// 8 streams, 16 MiB granularity, ring all-reduce, no compression —
    /// a robust static setting near the auto-tuner's typical choice; §VI
    /// tunes all three knobs per deployment.
    fn default() -> Self {
        AiaccConfig {
            streams: 8,
            granularity: 16.0 * 1024.0 * 1024.0,
            algo: Algo::Ring,
            mode: RingMode::Auto,
            compress: Scheme::None,
            stall_timeout: None,
            max_resubmissions: None,
        }
    }
}

impl AiaccConfig {
    /// Sets the stream count.
    ///
    /// # Panics
    /// Panics if `streams` is zero.
    pub fn with_streams(mut self, streams: usize) -> Self {
        assert!(streams > 0, "need at least one stream");
        self.streams = streams;
        self
    }

    /// Sets the unit granularity in bytes.
    ///
    /// # Panics
    /// Panics if `granularity` is not strictly positive.
    pub fn with_granularity(mut self, granularity: f64) -> Self {
        assert!(granularity > 0.0 && granularity.is_finite(), "invalid granularity");
        self.granularity = granularity;
        self
    }

    /// Sets the all-reduce algorithm.
    pub fn with_algo(mut self, algo: Algo) -> Self {
        self.algo = algo;
        self
    }

    /// Sets the ring timing fidelity.
    pub fn with_mode(mut self, mode: RingMode) -> Self {
        self.mode = mode;
        self
    }

    /// Enables (or disables) fp16 wire compression — the legacy boolean
    /// knob, kept as a shorthand for [`AiaccConfig::with_compress`] with
    /// [`Scheme::Fp16`].
    pub fn with_compression(mut self, on: bool) -> Self {
        self.compress = if on { Scheme::Fp16 } else { Scheme::None };
        self
    }

    /// Selects the gradient compression scheme.
    pub fn with_compress(mut self, scheme: Scheme) -> Self {
        self.compress = scheme;
        self
    }

    /// Enables the unit stall watchdog with the given base timeout.
    ///
    /// # Panics
    /// Panics if `timeout` is zero.
    pub fn with_stall_timeout(mut self, timeout: SimDuration) -> Self {
        assert!(timeout > SimDuration::ZERO, "stall timeout must be positive");
        self.stall_timeout = Some(timeout);
        self
    }

    /// Bounds watchdog resubmissions per unit; the attempt after the last
    /// allowed resubmission runs unwatched to completion.
    pub fn with_max_resubmissions(mut self, max: u32) -> Self {
        self.max_resubmissions = Some(max);
        self
    }

    /// The wire *dtype* implied by the compression scheme — what the frame
    /// encoder tags payloads with. Only fp16 maps to a plain dtype; int8
    /// and top-k payloads carry their own framing and stay `F32` here.
    pub fn wire_dtype(self) -> DType {
        if self.compress == Scheme::Fp16 {
            DType::F16
        } else {
            DType::F32
        }
    }
}

/// Counters exposed for tests, tuning diagnostics and the experiment
/// harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AiaccStats {
    /// Decentralized sync rounds run this iteration.
    pub sync_rounds: u64,
    /// All-reduce units launched this iteration.
    pub units_launched: u64,
    /// Highest number of simultaneously active streams observed.
    pub peak_streams: usize,
    /// Units cancelled and resubmitted by the stall watchdog.
    pub resubmissions: u64,
}

/// A dispatched unit plus its watchdog state.
#[derive(Debug)]
struct InflightUnit {
    unit: AllReduceUnit,
    /// Times this unit has been (re)submitted; scales the watchdog timeout.
    attempts: u32,
    /// Stream slot occupied while in flight (trace lane; Fig. 7 lanes are
    /// reconstructed from this assignment).
    slot: usize,
    /// When this attempt was dispatched (for resubmission-latency tracing).
    submitted_at: SimTime,
}

/// Trace span name of one in-flight unit attempt.
fn unit_span_name(op: OpId, bytes: f64) -> String {
    format!("op#{} {:.1} MiB", op.0, bytes / (1024.0 * 1024.0))
}

/// The AIACC-Training communication engine (timing plane).
#[derive(Debug)]
pub struct AiaccEngine {
    cfg: AiaccConfig,
    registry: GradientRegistry,
    world: usize,
    /// Per-NIC health observed from fault records: resource → (baseline
    /// capacity, current capacity). Persists across iterations — a degraded
    /// link stays degraded until its restore record arrives.
    link_health: HashMap<u32, (f64, f64)>,
    /// Worst current/baseline capacity ratio across observed links; scales
    /// the stream pool (a degraded NIC supports fewer useful streams).
    nic_scale: f64,
    // Per-iteration state:
    iter: u64,
    ready: Vec<SyncVector>,
    synced: SyncVector,
    unsynced_bytes: Vec<f64>,
    tracker: ReduceTracker,
    queue: VecDeque<AllReduceUnit>,
    inflight: HashMap<OpId, InflightUnit>,
    sync_in_flight: bool,
    backward_done: Vec<bool>,
    stats: AiaccStats,
}

impl AiaccEngine {
    /// Builds an engine for `model` on a `world`-GPU job.
    ///
    /// # Panics
    /// Panics if `world` is zero.
    pub fn new(model: &ModelProfile, world: usize, cfg: AiaccConfig) -> Self {
        assert!(world > 0, "world must be positive");
        // The registry always carries uncompressed f32 sizes — granularity
        // is an *uncompressed*-payload knob. Compression is applied at
        // submit time: each unit's wire bytes come from the scheme's exact
        // closed form over the unit's element count.
        let registry = GradientRegistry::from_profile(model, DType::F32);
        let n = registry.len();
        let tracker = ReduceTracker::new(&registry);
        AiaccEngine {
            cfg,
            registry,
            world,
            link_health: HashMap::new(),
            nic_scale: 1.0,
            iter: 0,
            ready: vec![SyncVector::new(n); world],
            synced: SyncVector::new(n),
            unsynced_bytes: vec![0.0; world],
            tracker,
            queue: VecDeque::new(),
            inflight: HashMap::new(),
            sync_in_flight: false,
            backward_done: vec![false; world],
            stats: AiaccStats::default(),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> AiaccConfig {
        self.cfg
    }

    /// This iteration's counters.
    pub fn stats(&self) -> AiaccStats {
        self.stats
    }

    /// The gradient registry in use.
    pub fn registry(&self) -> &GradientRegistry {
        &self.registry
    }

    /// Number of workers this engine coordinates.
    pub fn world_size(&self) -> usize {
        self.world
    }

    fn all_backward_done(&self) -> bool {
        self.backward_done.iter().all(|&b| b)
    }

    /// Triggers a sync round when warranted: any worker's un-synchronized
    /// ready volume has reached the granularity, or backward has finished and
    /// gradients remain unagreed.
    fn maybe_trigger_sync(&mut self, cx: &mut DdlCtx<'_>) {
        if self.sync_in_flight || self.synced.all_ready() {
            return;
        }
        let bucket_full = self.unsynced_bytes.iter().any(|&b| b >= self.cfg.granularity);
        let flush = self.all_backward_done();
        if bucket_full || flush {
            self.sync_in_flight = true;
            self.stats.sync_rounds += 1;
            if cx.sim.tracing_enabled() {
                cx.sim.trace_span_begin(
                    track::ENGINE,
                    0,
                    &format!("sync#{}", self.stats.sync_rounds),
                    "sync",
                );
            }
            let latency = sync_round_latency(cx.cluster.spec());
            cx.sim.schedule(latency, Token::new(ENGINE_TIMER_KIND, TIMER_SYNC_DONE, self.iter));
        }
    }

    /// Completes a sync round: intersect all workers' bit vectors, pack the
    /// newly agreed gradients, dispatch.
    fn finish_sync(&mut self, cx: &mut DdlCtx<'_>) {
        self.sync_in_flight = false;
        if cx.sim.tracing_enabled() {
            cx.sim.trace_span_end(
                track::ENGINE,
                0,
                &format!("sync#{}", self.stats.sync_rounds),
                "sync",
            );
        }
        let agreed = SyncVector::intersect_all(&self.ready);
        let mut new_ids: Vec<GradId> = Vec::new();
        for id in agreed.iter_ready() {
            if !self.synced.get(id) {
                self.synced.set(id);
                new_ids.push(id);
                let bytes = self.registry.get(id).bytes;
                for b in self.unsynced_bytes.iter_mut() {
                    *b = (*b - bytes).max(0.0);
                }
            }
        }
        if !new_ids.is_empty() {
            let (full, partial) = pack_units(&self.registry, new_ids, self.cfg.granularity);
            self.queue.extend(full);
            // Units below the granularity are flushed with their sync round:
            // holding them back would delay the tail of every round, and the
            // batch already merged whatever arrived together.
            self.queue.extend(partial);
        }
        self.dispatch(cx);
        // More gradients may already be waiting (or the final flush may still
        // be incomplete): chain another round if needed.
        self.maybe_trigger_sync(cx);
    }

    /// The stream pool size under current link health: a NIC at half
    /// capacity sustains proportionally fewer useful concurrent streams, so
    /// the pool shrinks with it (and grows back on restore).
    fn scaled_pool(&self) -> usize {
        if self.nic_scale >= 1.0 {
            self.cfg.streams
        } else {
            ((self.cfg.streams as f64 * self.nic_scale).ceil() as usize).max(1)
        }
    }

    /// Fills the stream pool up to the current budget (Algorithm 1, l. 4–10).
    fn dispatch(&mut self, cx: &mut DdlCtx<'_>) {
        let limit = self.scaled_pool().min(cx.max_streams_now).max(1);
        while self.inflight.len() < limit {
            let Some(unit) = self.queue.pop_front() else { break };
            self.submit(cx, unit, 0);
        }
        self.stats.peak_streams = self.stats.peak_streams.max(self.inflight.len());
        if cx.sim.tracing_enabled() {
            cx.sim.trace_counter(track::ENGINE, "queue_depth", self.queue.len() as f64);
        }
    }

    /// The lowest stream slot not occupied by an in-flight unit. Re-using
    /// the smallest free index keeps trace lanes dense, so the number of
    /// distinct lanes equals the peak concurrent stream count.
    fn alloc_slot(&self) -> usize {
        let mut slot = 0;
        while self.inflight.values().any(|u| u.slot == slot) {
            slot += 1;
        }
        slot
    }

    /// Launches one unit as a collective and arms its stall watchdog.
    fn submit(&mut self, cx: &mut DdlCtx<'_>, unit: AllReduceUnit, attempts: u32) {
        // The wire carries the compressed payload; the compress/decompress
        // kernels are charged on the compute side as per-op overhead.
        let wire_bytes = self.cfg.compress.wire_bytes_for_f32_payload(unit.bytes);
        let overhead =
            SimDuration::from_nanos(self.cfg.compress.compute_cost_ns(unit.elems()).round() as u64);
        let spec = CollectiveSpec::allreduce(wire_bytes)
            .with_algo(self.cfg.algo)
            .with_mode(self.cfg.mode)
            .with_overhead(overhead);
        let op = cx.coll.launch(cx.sim, cx.cluster, spec);
        let watched = self.cfg.max_resubmissions.is_none_or(|max| attempts < max);
        if let Some(base) = self.cfg.stall_timeout.filter(|_| watched) {
            // Exponential backoff: each retry waits twice as long before
            // declaring the unit stalled again. `mul_f64` saturates, so a
            // huge backoff schedules at the clamped far future, not in the
            // past. Once the resubmission budget is spent the attempt runs
            // unwatched — cancelling it again could starve the op forever.
            let timeout = base.mul_f64(f64::from(1u32 << attempts.min(16)));
            cx.sim.schedule(timeout, Token::new(ENGINE_TIMER_KIND, TIMER_UNIT_STALL, op.0));
        }
        let slot = self.alloc_slot();
        if cx.sim.tracing_enabled() {
            cx.sim.trace_span_begin(
                track::STREAMS,
                slot as u64,
                &unit_span_name(op, unit.bytes),
                "unit",
            );
        }
        let submitted_at = cx.sim.now();
        self.inflight.insert(op, InflightUnit { unit, attempts, slot, submitted_at });
        self.stats.units_launched += 1;
    }

    /// Watchdog expiry for `op`: if it is still in flight, cancel it and
    /// resubmit the unit (its flows may be starved on a downed link).
    fn on_unit_stall(&mut self, cx: &mut DdlCtx<'_>, op: OpId) {
        let Some(inflight) = self.inflight.remove(&op) else {
            return; // completed before the watchdog fired
        };
        cx.coll.cancel_op(cx.sim, op);
        if cx.sim.tracing_enabled() {
            cx.sim.trace_span_end(
                track::STREAMS,
                inflight.slot as u64,
                &unit_span_name(op, inflight.unit.bytes),
                "unit",
            );
            let waited = cx.sim.now().saturating_since(inflight.submitted_at).as_secs_f64();
            cx.sim.trace_instant(track::ENGINE, 0, "resubmit", "watchdog", Some(waited));
        }
        self.stats.resubmissions += 1;
        self.submit(cx, inflight.unit, inflight.attempts + 1);
    }
}

impl DdlEngine for AiaccEngine {
    fn name(&self) -> String {
        format!(
            "aiacc(streams={},gran={:.0}MiB,{:?})",
            self.cfg.streams,
            self.cfg.granularity / (1024.0 * 1024.0),
            self.cfg.algo
        )
    }

    fn begin_iteration(&mut self, cx: &mut DdlCtx<'_>, iter: u64) {
        if cx.sim.tracing_enabled() {
            // An aborted attempt (node crash) can leave spans open; close
            // them so traces stay balanced. Deterministic order: op id.
            if self.sync_in_flight {
                cx.sim.trace_span_end(
                    track::ENGINE,
                    0,
                    &format!("sync#{}", self.stats.sync_rounds),
                    "sync",
                );
            }
            let mut open: Vec<(OpId, usize, f64)> =
                self.inflight.iter().map(|(&op, u)| (op, u.slot, u.unit.bytes)).collect();
            open.sort_by_key(|&(op, _, _)| op);
            for (op, slot, bytes) in open {
                cx.sim.trace_span_end(
                    track::STREAMS,
                    slot as u64,
                    &unit_span_name(op, bytes),
                    "unit",
                );
            }
        }
        self.iter = iter;
        for v in &mut self.ready {
            v.clear();
        }
        self.synced.clear();
        self.unsynced_bytes.fill(0.0);
        self.tracker = ReduceTracker::new(&self.registry);
        self.queue.clear();
        self.inflight.clear();
        self.sync_in_flight = false;
        self.backward_done.fill(false);
        self.stats = AiaccStats::default();
    }

    fn on_grad_ready(&mut self, cx: &mut DdlCtx<'_>, worker: usize, grad: GradId) {
        self.ready[worker].set(grad);
        self.unsynced_bytes[worker] += self.registry.get(grad).bytes;
        self.maybe_trigger_sync(cx);
    }

    fn on_backward_done(&mut self, cx: &mut DdlCtx<'_>, worker: usize) {
        self.backward_done[worker] = true;
        if self.all_backward_done() {
            // Final flush: agree on (and send) everything that remains.
            self.maybe_trigger_sync(cx);
            // The stream budget also rises once compute is off the GPU.
            self.dispatch(cx);
        }
    }

    fn on_collective_done(&mut self, cx: &mut DdlCtx<'_>, op: OpId) {
        let inflight = self.inflight.remove(&op).expect("collective completion for unknown unit");
        if cx.sim.tracing_enabled() {
            cx.sim.trace_span_end(
                track::STREAMS,
                inflight.slot as u64,
                &unit_span_name(op, inflight.unit.bytes),
                "unit",
            );
        }
        self.tracker.complete_unit(&inflight.unit);
        self.dispatch(cx);
    }

    fn on_timer(&mut self, cx: &mut DdlCtx<'_>, a: u32, b: u64) {
        match a {
            TIMER_SYNC_DONE if b == self.iter => self.finish_sync(cx),
            TIMER_UNIT_STALL => self.on_unit_stall(cx, OpId(b)),
            _ => {}
        }
    }

    fn on_fault(&mut self, cx: &mut DdlCtx<'_>, record: &FaultRecord) {
        let entry = self
            .link_health
            .entry(record.resource.as_u32())
            // The first record's pre-fault capacity is the healthy baseline.
            .or_insert((record.capacity_before, record.capacity_before));
        entry.1 = record.capacity_after;
        self.nic_scale = self
            .link_health
            .values()
            .map(|&(base, cur)| if base > 0.0 { cur / base } else { 1.0 })
            .fold(1.0, f64::min);
        // A restore may have grown the pool: top it up immediately.
        self.dispatch(cx);
    }

    fn comm_done(&self) -> bool {
        self.tracker.all_done()
    }

    fn aiacc_stats(&self) -> Option<AiaccStats> {
        Some(self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddl::ENGINE_TIMER_KIND;
    use aiacc_cluster::{ClusterNet, ClusterSpec, ComputeModel};
    use aiacc_collectives::CollectiveEngine;
    use aiacc_dnn::zoo;
    use aiacc_simnet::{Event, Simulator};

    /// Minimal driver: all workers produce gradients on the model's backward
    /// schedule (no jitter) and the engine runs to completion. Returns the
    /// finish time in seconds.
    fn drive(model: &ModelProfile, gpus: usize, cfg: AiaccConfig) -> (f64, AiaccStats) {
        let spec = ClusterSpec::tcp_v100(gpus);
        let mut sim = Simulator::new();
        let cluster = ClusterNet::build(&spec, sim.net_mut());
        let mut coll = CollectiveEngine::new();
        let cm = ComputeModel::v100();
        let timing = cm.iteration_timing(model, model.default_batch_per_gpu(), cfg.wire_dtype());
        let mut eng = AiaccEngine::new(model, spec.world_size(), cfg);

        const GRAD_KIND: u32 = 1;
        const BWD_KIND: u32 = 2;
        {
            let mut cx = DdlCtx {
                sim: &mut sim,
                coll: &mut coll,
                cluster: &cluster,
                max_streams_now: cm.max_comm_streams_during_compute(model),
            };
            eng.begin_iteration(&mut cx, 0);
        }
        for w in 0..spec.world_size() {
            for &(g, off) in &timing.grad_ready {
                sim.schedule(timing.forward + off, Token::new(GRAD_KIND, w as u32, g.0 as u64));
            }
            sim.schedule(timing.forward + timing.backward, Token::new(BWD_KIND, w as u32, 0));
        }
        let mut busy = spec.world_size();
        let mut t_done = 0.0;
        while let Some((t, ev)) = sim.next_event() {
            let streams = if busy > 0 {
                cm.max_comm_streams_during_compute(model)
            } else {
                cm.max_comm_streams_idle()
            };
            let mut cx = DdlCtx {
                sim: &mut sim,
                coll: &mut coll,
                cluster: &cluster,
                max_streams_now: streams,
            };
            match ev {
                Event::Timer(tok) if tok.kind == GRAD_KIND => {
                    eng.on_grad_ready(&mut cx, tok.a as usize, GradId(tok.b as u32));
                }
                Event::Timer(tok) if tok.kind == BWD_KIND => {
                    busy -= 1;
                    eng.on_backward_done(&mut cx, tok.a as usize);
                }
                Event::Timer(tok) if tok.kind == ENGINE_TIMER_KIND => {
                    eng.on_timer(&mut cx, tok.a, tok.b);
                }
                Event::Timer(_) => {}
                Event::FlowCompleted(f) => {
                    if let Some(op) = coll.on_flow_completed(&mut sim, f) {
                        let mut cx2 = DdlCtx {
                            sim: &mut sim,
                            coll: &mut coll,
                            cluster: &cluster,
                            max_streams_now: streams,
                        };
                        eng.on_collective_done(&mut cx2, op);
                    }
                }
                Event::Fault(rec) => eng.on_fault(&mut cx, &rec),
            }
            if eng.comm_done() {
                t_done = t.as_secs_f64();
                break;
            }
        }
        assert!(eng.comm_done(), "engine never finished");
        (t_done, eng.stats())
    }

    #[test]
    fn completes_every_gradient_single_node() {
        let (t, stats) = drive(&zoo::tiny_cnn(), 8, AiaccConfig::default());
        assert!(t > 0.0);
        assert!(stats.units_launched >= 1);
        assert!(stats.sync_rounds >= 1);
    }

    #[test]
    fn completes_resnet50_two_nodes() {
        let cfg = AiaccConfig::default().with_streams(8);
        let (t, stats) = drive(&zoo::resnet50(), 16, cfg);
        // Compute-only backward is ~0.47 s; with overlap the comm should
        // finish within ~3x of that, not serialize behind it.
        assert!(t > 0.1 && t < 2.0, "finish at {t}");
        assert!(stats.peak_streams > 1, "never used concurrent streams");
    }

    #[test]
    fn more_streams_is_faster_on_comm_bound_model() {
        // VGG-16 on 2 nodes is communication-bound: 1 stream vs 8 streams
        // must show the paper's multi-stream speedup.
        let (t1, _) = drive(&zoo::vgg16(), 16, AiaccConfig::default().with_streams(1));
        let (t8, _) = drive(&zoo::vgg16(), 16, AiaccConfig::default().with_streams(8));
        assert!(t8 < t1 * 0.7, "8 streams ({t8}s) should be much faster than 1 ({t1}s)");
        // With 8 streams the communication is fully hidden behind compute:
        // the finish time sits at the compute floor (fwd + bwd ≈ 0.69 s).
        assert!(t8 < 0.78, "8-stream time {t8}s did not reach the compute floor");
    }

    #[test]
    fn compression_halves_wire_time_when_comm_bound() {
        // One stream keeps VGG-16 firmly communication-bound, so halving the
        // wire bytes must show through end-to-end.
        let base = AiaccConfig::default().with_streams(1);
        let (t_full, _) = drive(&zoo::vgg16(), 16, base);
        let (t_half, _) = drive(&zoo::vgg16(), 16, base.with_compression(true));
        assert!(t_half < t_full * 0.75, "fp16 {t_half} vs fp32 {t_full}");
    }

    #[test]
    fn granularity_extremes_still_complete() {
        // Absurdly fine and absurdly coarse granularity both finish.
        let fine = AiaccConfig::default().with_granularity(256.0 * 1024.0);
        let coarse = AiaccConfig::default().with_granularity(1e9);
        let (tf, sf) = drive(&zoo::tiny_cnn(), 8, fine);
        let (tc, sc) = drive(&zoo::tiny_cnn(), 8, coarse);
        assert!(tf > 0.0 && tc > 0.0);
        assert!(sf.units_launched >= sc.units_launched);
    }

    #[test]
    fn tree_algo_completes() {
        let cfg = AiaccConfig::default().with_algo(Algo::Tree);
        let (t, _) = drive(&zoo::resnet50(), 16, cfg);
        assert!(t > 0.0 && t < 3.0);
    }

    #[test]
    fn single_gpu_degenerates_gracefully() {
        let (t, _) = drive(&zoo::tiny_cnn(), 1, AiaccConfig::default());
        assert!(t >= 0.0);
    }

    #[test]
    fn sync_rounds_scale_with_gradient_volume() {
        let small_gran = AiaccConfig::default().with_granularity(8.0 * 1024.0 * 1024.0);
        let (_, stats) = drive(&zoo::resnet50(), 8, small_gran);
        // 102 MB of gradients at 8 MiB buckets: many rounds.
        assert!(stats.sync_rounds >= 5, "got {}", stats.sync_rounds);
    }

    #[test]
    fn resubmission_bound_caps_watchdog_thrash() {
        // An absurdly aggressive watchdog on a healthy network: every unit
        // stalls out repeatedly until backoff catches up with reality.
        let trigger = AiaccConfig::default()
            .with_streams(2)
            .with_stall_timeout(SimDuration::from_secs_f64(1e-3));
        let (t_unbounded, unbounded) = drive(&zoo::vgg16(), 16, trigger);
        assert!(unbounded.resubmissions > 0, "watchdog never fired — test is vacuous");

        let (t_bounded, bounded) = drive(&zoo::vgg16(), 16, trigger.with_max_resubmissions(1));
        let distinct = bounded.units_launched - bounded.resubmissions;
        assert!(
            bounded.resubmissions <= distinct,
            "{} resubmissions for {} units exceeds the per-unit bound of 1",
            bounded.resubmissions,
            distinct
        );
        assert!(bounded.resubmissions < unbounded.resubmissions);
        // Both runs complete; the bounded one never finishes later than the
        // thrashing one since it stops cancelling work that would land.
        assert!(t_bounded > 0.0 && t_bounded <= t_unbounded + 1e-9);
    }

    #[test]
    fn engine_reports_name_with_config() {
        let eng = AiaccEngine::new(&zoo::tiny_cnn(), 4, AiaccConfig::default());
        assert!(eng.name().contains("aiacc"));
        assert!(eng.name().contains("streams=8"));
    }
}
