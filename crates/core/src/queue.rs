//! The gradient message queue between the training worker and the
//! communication process (Fig. 6 / Fig. 8, §V-A2).
//!
//! During backward propagation a hook pushes every computed gradient tensor
//! into this queue; the communication side drains it in **communication
//! buckets**: once the queued volume reaches the minimum communication
//! granularity, a batch is handed over (in the real system this is the
//! moment the CPU-side MPI process wakes up, sets the sync-vector bits and
//! moves tensors into the communication bucket). This is the data-plane
//! counterpart of [`crate::AiaccEngine`]'s trigger logic.

use crate::registry::GradientRegistry;
use aiacc_dnn::{GradId, Tensor};
use std::collections::VecDeque;

/// A drained communication bucket: gradients in push order.
pub type Bucket = Vec<(GradId, Tensor)>;

/// The per-worker gradient queue with granularity-triggered draining.
///
/// # Example
/// ```
/// use aiacc_core::{GradientQueue, GradientRegistry};
/// use aiacc_dnn::{DType, GradId, Tensor};
/// let layout = vec![("a".to_string(), 4usize), ("b".to_string(), 4)];
/// let reg = GradientRegistry::from_layout(&layout, DType::F32);
/// let mut q = GradientQueue::new(&reg, 32.0); // granularity: 8 elements
/// assert!(q.push(GradId(0), Tensor::zeros(4)).is_none()); // 16 B queued
/// let bucket = q.push(GradId(1), Tensor::zeros(4)).expect("granularity met");
/// assert_eq!(bucket.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct GradientQueue {
    granularity: f64,
    elem_bytes: f64,
    expected_elems: Vec<usize>,
    pending: VecDeque<(GradId, Tensor)>,
    pending_bytes: f64,
    pushed: Vec<bool>,
}

impl GradientQueue {
    /// Creates a queue for the registered gradient set, draining whenever
    /// `granularity` bytes are waiting.
    ///
    /// # Panics
    /// Panics if `granularity` is not strictly positive.
    pub fn new(registry: &GradientRegistry, granularity: f64) -> Self {
        assert!(granularity > 0.0 && granularity.is_finite(), "invalid granularity");
        GradientQueue {
            granularity,
            elem_bytes: registry.dtype().bytes_per_elem() as f64,
            expected_elems: registry.iter().map(|g| g.elems).collect(),
            pending: VecDeque::new(),
            pending_bytes: 0.0,
            pushed: vec![false; registry.len()],
        }
    }

    /// Bytes currently waiting.
    pub fn pending_bytes(&self) -> f64 {
        self.pending_bytes
    }

    /// The hook callback: pushes a locally computed gradient. Returns a
    /// drained bucket when the queued volume reaches the granularity.
    ///
    /// # Panics
    /// Panics if the gradient id is unknown, its length disagrees with the
    /// registration, or it was already pushed this iteration.
    pub fn push(&mut self, id: GradId, tensor: Tensor) -> Option<Bucket> {
        let idx = id.as_usize();
        assert!(idx < self.expected_elems.len(), "unregistered gradient {id}");
        assert_eq!(tensor.len(), self.expected_elems[idx], "{id}: wrong tensor length");
        assert!(!self.pushed[idx], "{id} pushed twice in one iteration");
        self.pushed[idx] = true;
        self.pending_bytes += tensor.len() as f64 * self.elem_bytes;
        self.pending.push_back((id, tensor));
        (self.pending_bytes >= self.granularity).then(|| self.drain())
    }

    /// Drains whatever is waiting (the end-of-backward flush).
    pub fn flush(&mut self) -> Bucket {
        self.drain()
    }

    /// `true` once every registered gradient has been pushed this iteration.
    pub fn all_pushed(&self) -> bool {
        self.pushed.iter().all(|&b| b)
    }

    /// Resets for the next iteration.
    ///
    /// # Panics
    /// Panics if gradients are still waiting un-drained (losing them would
    /// silently corrupt training).
    pub fn reset(&mut self) {
        assert!(self.pending.is_empty(), "resetting a queue with pending gradients");
        self.pushed.fill(false);
    }

    fn drain(&mut self) -> Bucket {
        self.pending_bytes = 0.0;
        self.pending.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aiacc_dnn::DType;

    fn queue(sizes: &[usize], gran: f64) -> GradientQueue {
        let layout: Vec<(String, usize)> =
            sizes.iter().enumerate().map(|(i, &s)| (format!("g{i}"), s)).collect();
        let reg = GradientRegistry::from_layout(&layout, DType::F32);
        GradientQueue::new(&reg, gran)
    }

    #[test]
    fn drains_at_granularity_in_push_order() {
        let mut q = queue(&[2, 2, 2], 16.0);
        assert!(q.push(GradId(2), Tensor::zeros(2)).is_none());
        let b = q.push(GradId(0), Tensor::zeros(2)).expect("16 bytes reached");
        assert_eq!(b[0].0, GradId(2));
        assert_eq!(b[1].0, GradId(0));
        assert_eq!(q.pending_bytes(), 0.0);
    }

    #[test]
    fn flush_returns_the_tail() {
        let mut q = queue(&[2, 2, 2], 1e9);
        q.push(GradId(0), Tensor::zeros(2));
        q.push(GradId(1), Tensor::zeros(2));
        assert!(!q.all_pushed());
        q.push(GradId(2), Tensor::zeros(2));
        assert!(q.all_pushed());
        let b = q.flush();
        assert_eq!(b.len(), 3);
        q.reset();
        assert!(!q.all_pushed());
    }

    #[test]
    #[should_panic(expected = "pushed twice")]
    fn double_push_rejected() {
        let mut q = queue(&[2], 1e9);
        q.push(GradId(0), Tensor::zeros(2));
        q.push(GradId(0), Tensor::zeros(2));
    }

    #[test]
    #[should_panic(expected = "wrong tensor length")]
    fn wrong_length_rejected() {
        let mut q = queue(&[2], 1e9);
        q.push(GradId(0), Tensor::zeros(3));
    }

    #[test]
    #[should_panic(expected = "pending gradients")]
    fn reset_with_pending_rejected() {
        let mut q = queue(&[2], 1e9);
        q.push(GradId(0), Tensor::zeros(2));
        q.reset();
    }

    #[test]
    fn synthetic_tensors_flow_through() {
        let mut q = queue(&[1000], 2000.0);
        let b = q.push(GradId(0), Tensor::synthetic(1000)).expect("4000 B > 2000 B");
        assert!(b[0].1.is_synthetic());
    }
}
