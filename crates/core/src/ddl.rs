//! The engine interface shared by AIACC and every baseline framework.
//!
//! A *DDL engine* models the communication side of one data-parallel
//! training job on the simulated cluster. The training loop (in
//! `aiacc-trainer`) owns the simulator and routes events:
//!
//! * gradient-ready events as each worker's backward pass produces tensors,
//! * collective completions from the [`CollectiveEngine`],
//! * engine-scheduled timers (tagged [`ENGINE_TIMER_KIND`]).
//!
//! The iteration's communication is finished when [`DdlEngine::comm_done`]
//! reports `true`.

use aiacc_cluster::ClusterNet;
use aiacc_collectives::{CollectiveEngine, OpId};
use aiacc_dnn::GradId;
use aiacc_simnet::{FaultRecord, Simulator};

/// Token `kind` reserved for engine timers; the training loop routes these
/// to [`DdlEngine::on_timer`].
pub const ENGINE_TIMER_KIND: u32 = 1000;

/// Mutable context handed to every engine callback.
#[derive(Debug)]
pub struct DdlCtx<'a> {
    /// The event simulator (for timers and custom flows).
    pub sim: &'a mut Simulator,
    /// The collective multiplexer.
    pub coll: &'a mut CollectiveEngine,
    /// Cluster topology.
    pub cluster: &'a ClusterNet,
    /// How many concurrent communication streams the GPUs can sustain right
    /// now (depends on whether backward is still running — §II-D).
    pub max_streams_now: usize,
}

/// The communication engine of one DDL framework.
///
/// Implementations: [`crate::AiaccEngine`] here, plus Horovod, PyTorch-DDP,
/// BytePS and MXNet-KVStore in `aiacc-baselines`.
pub trait DdlEngine {
    /// Framework name for reports.
    fn name(&self) -> String;

    /// Resets per-iteration state. Called before any gradient of iteration
    /// `iter` is produced.
    fn begin_iteration(&mut self, cx: &mut DdlCtx<'_>, iter: u64);

    /// Worker `worker` finished computing gradient `grad` locally.
    fn on_grad_ready(&mut self, cx: &mut DdlCtx<'_>, worker: usize, grad: GradId);

    /// Worker `worker` finished its entire backward pass.
    fn on_backward_done(&mut self, cx: &mut DdlCtx<'_>, worker: usize);

    /// A collective this engine launched has completed.
    fn on_collective_done(&mut self, cx: &mut DdlCtx<'_>, op: OpId);

    /// A timer this engine scheduled (token kind [`ENGINE_TIMER_KIND`]) has
    /// fired, with the token's `a`/`b` payload.
    fn on_timer(&mut self, cx: &mut DdlCtx<'_>, a: u32, b: u64);

    /// A link fault was applied or lifted on the simulated network. The
    /// capacity change itself has already happened; engines may react (e.g.
    /// shrink their stream pool while a NIC is degraded). The default
    /// ignores faults — baselines without degradation handling keep their
    /// behavior.
    fn on_fault(&mut self, cx: &mut DdlCtx<'_>, record: &FaultRecord) {
        let _ = (cx, record);
    }

    /// `true` once every registered gradient has been aggregated across all
    /// workers for the current iteration.
    fn comm_done(&self) -> bool;

    /// The AIACC per-iteration counters, when this engine exposes them.
    /// Baselines return `None` (the default); [`crate::AiaccEngine`] reports
    /// its [`crate::AiaccStats`] so harnesses can cross-check them against
    /// trace-derived metrics (e.g. lane count vs `peak_streams`).
    fn aiacc_stats(&self) -> Option<crate::AiaccStats> {
        None
    }
}
