//! Property-based tests of the AIACC engine: for ANY gradient arrival
//! order, jitter pattern and configuration, every iteration completes with
//! every gradient reduced exactly once (over-completion panics inside
//! `ReduceTracker`, so mere completion is a strong property).

use aiacc_cluster::{ClusterNet, ClusterSpec, ComputeModel};
use aiacc_collectives::CollectiveEngine;
use aiacc_core::ddl::{DdlCtx, DdlEngine, ENGINE_TIMER_KIND};
use aiacc_core::{AiaccConfig, AiaccEngine};
use aiacc_dnn::{zoo, GradId};
use aiacc_simnet::{Event, SimDuration, Simulator, Token};
use proptest::prelude::*;

const GRAD_KIND: u32 = 1;
const BWD_KIND: u32 = 2;

/// Drives one iteration with per-(worker, gradient) ready times supplied by
/// the property strategy. Returns (finish_secs, sync_rounds, units).
fn drive_random(
    gpus: usize,
    cfg: AiaccConfig,
    ready_ns: &[Vec<u64>], // [worker][grad] offsets
) -> (f64, u64, u64) {
    let model = zoo::tiny_cnn();
    let spec = ClusterSpec::tcp_v100(gpus);
    let mut sim = Simulator::new();
    let cluster = ClusterNet::build(&spec, sim.net_mut());
    let mut coll = CollectiveEngine::new();
    let cm = ComputeModel::v100();
    let mut eng = AiaccEngine::new(&model, spec.world_size(), cfg);

    {
        let mut cx = DdlCtx {
            sim: &mut sim,
            coll: &mut coll,
            cluster: &cluster,
            max_streams_now: cm.max_comm_streams_during_compute(&model),
        };
        eng.begin_iteration(&mut cx, 0);
    }
    for (w, offsets) in ready_ns.iter().enumerate() {
        let mut last = 0;
        for (g, &off) in offsets.iter().enumerate() {
            sim.schedule(SimDuration::from_nanos(off), Token::new(GRAD_KIND, w as u32, g as u64));
            last = last.max(off);
        }
        sim.schedule(SimDuration::from_nanos(last + 1), Token::new(BWD_KIND, w as u32, 0));
    }

    let mut busy = spec.world_size();
    let mut guard = 0u64;
    loop {
        guard += 1;
        assert!(guard < 2_000_000, "event-loop runaway");
        let Some((t, ev)) = sim.next_event() else {
            panic!("drained before comm_done");
        };
        let streams = if busy > 0 {
            cm.max_comm_streams_during_compute(&model)
        } else {
            cm.max_comm_streams_idle()
        };
        match ev {
            Event::Timer(tok) if tok.kind == GRAD_KIND => {
                let mut cx = DdlCtx {
                    sim: &mut sim,
                    coll: &mut coll,
                    cluster: &cluster,
                    max_streams_now: streams,
                };
                eng.on_grad_ready(&mut cx, tok.a as usize, GradId(tok.b as u32));
            }
            Event::Timer(tok) if tok.kind == BWD_KIND => {
                busy -= 1;
                let mut cx = DdlCtx {
                    sim: &mut sim,
                    coll: &mut coll,
                    cluster: &cluster,
                    max_streams_now: streams,
                };
                eng.on_backward_done(&mut cx, tok.a as usize);
            }
            Event::Timer(tok) if tok.kind == ENGINE_TIMER_KIND => {
                let mut cx = DdlCtx {
                    sim: &mut sim,
                    coll: &mut coll,
                    cluster: &cluster,
                    max_streams_now: streams,
                };
                eng.on_timer(&mut cx, tok.a, tok.b);
            }
            Event::Timer(_) => {}
            Event::FlowCompleted(f) => {
                if let Some(op) = coll.on_flow_completed(&mut sim, f) {
                    let mut cx = DdlCtx {
                        sim: &mut sim,
                        coll: &mut coll,
                        cluster: &cluster,
                        max_streams_now: streams,
                    };
                    eng.on_collective_done(&mut cx, op);
                }
            }
            // No fault plan is installed in these tests.
            Event::Fault(_) => {}
        }
        if busy == 0 && eng.comm_done() {
            let stats = eng.stats();
            return (t.as_secs_f64(), stats.sync_rounds, stats.units_launched);
        }
    }
}

fn schedules(gpus: usize) -> impl Strategy<Value = Vec<Vec<u64>>> {
    let n_grads = zoo::tiny_cnn().num_gradients();
    prop::collection::vec(prop::collection::vec(0u64..50_000_000, n_grads..=n_grads), gpus..=gpus)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any arrival order on 4 GPUs (single node) completes with plausible
    /// stats.
    #[test]
    fn completes_under_any_arrival_order_single_node(ready in schedules(4)) {
        let (t, rounds, units) = drive_random(4, AiaccConfig::default(), &ready);
        prop_assert!(t > 0.0);
        prop_assert!(rounds >= 1);
        prop_assert!(units >= 1);
    }

    /// Cross-node worlds with extreme granularity settings still complete.
    #[test]
    fn completes_cross_node_with_random_granularity(
        ready in schedules(16),
        gran_kib in 1u64..200_000,
        streams in 1usize..24,
    ) {
        let cfg = AiaccConfig::default()
            .with_streams(streams)
            .with_granularity((gran_kib * 1024) as f64);
        let (t, rounds, _) = drive_random(16, cfg, &ready);
        prop_assert!(t > 0.0);
        prop_assert!(rounds >= 1);
    }

    /// The same schedule always produces the same result (engine-level
    /// determinism, independent of HashMap iteration order etc.).
    #[test]
    fn engine_is_deterministic(ready in schedules(8)) {
        let a = drive_random(8, AiaccConfig::default(), &ready);
        let b = drive_random(8, AiaccConfig::default(), &ready);
        prop_assert_eq!(a, b);
    }
}
