//! Property-based tests of gradient packing and the reduce tracker.

use aiacc_core::packing::{pack_units, ReduceTracker};
use aiacc_core::{GradientRegistry, SyncVector};
use aiacc_dnn::{DType, GradId};
use proptest::prelude::*;

fn registry_from(sizes: &[usize]) -> GradientRegistry {
    let layout: Vec<(String, usize)> =
        sizes.iter().enumerate().map(|(i, &s)| (format!("g{i}"), s)).collect();
    GradientRegistry::from_layout(&layout, DType::F32)
}

proptest! {
    /// Packing covers every element of every requested gradient exactly once.
    #[test]
    fn packing_is_an_exact_partition(
        sizes in prop::collection::vec(0usize..5000, 1..40),
        gran_elems in 1usize..4096,
    ) {
        let reg = registry_from(&sizes);
        let ids: Vec<GradId> = (0..sizes.len() as u32).map(GradId).collect();
        let (full, partial) = pack_units(&reg, ids, (gran_elems * 4) as f64);
        let mut covered = vec![0usize; sizes.len()];
        for unit in full.iter().chain(partial.iter()) {
            let mut unit_elems = 0usize;
            for seg in &unit.segments {
                covered[seg.grad.as_usize()] += seg.elems;
                unit_elems += seg.elems;
                prop_assert!(seg.offset + seg.elems <= sizes[seg.grad.as_usize()]);
            }
            prop_assert!(unit_elems <= gran_elems, "unit exceeds granularity");
        }
        prop_assert_eq!(covered, sizes);
    }

    /// Every full unit (all but the trailing partial) is filled exactly to
    /// the granularity.
    #[test]
    fn full_units_are_full(
        sizes in prop::collection::vec(1usize..2000, 1..20),
        gran_elems in 1usize..512,
    ) {
        let reg = registry_from(&sizes);
        let ids: Vec<GradId> = (0..sizes.len() as u32).map(GradId).collect();
        let (full, _) = pack_units(&reg, ids, (gran_elems * 4) as f64);
        for u in &full {
            let elems: usize = u.segments.iter().map(|s| s.elems).sum();
            prop_assert_eq!(elems, gran_elems);
        }
    }

    /// Completing all units in ANY order completes every gradient exactly
    /// once.
    #[test]
    fn tracker_completion_is_order_independent(
        sizes in prop::collection::vec(1usize..800, 1..15),
        gran_elems in 1usize..256,
        order_seed in 0u64..1000,
    ) {
        let reg = registry_from(&sizes);
        let ids: Vec<GradId> = (0..sizes.len() as u32).map(GradId).collect();
        let (mut units, partial) = pack_units(&reg, ids, (gran_elems * 4) as f64);
        units.extend(partial);
        // Deterministic pseudo-shuffle.
        let n = units.len();
        for i in 0..n {
            let j = ((order_seed as usize).wrapping_mul(31).wrapping_add(i * 17)) % n;
            units.swap(i, j);
        }
        let mut tracker = ReduceTracker::new(&reg);
        let mut completed = Vec::new();
        for u in &units {
            completed.extend(tracker.complete_unit(u));
        }
        prop_assert!(tracker.all_done());
        completed.sort();
        completed.dedup();
        prop_assert_eq!(completed.len(), sizes.len());
    }

    /// Packing a subset never touches gradients outside that subset.
    #[test]
    fn packing_respects_the_requested_subset(
        sizes in prop::collection::vec(1usize..500, 2..20),
        pick in prop::collection::vec(any::<bool>(), 2..20),
    ) {
        let reg = registry_from(&sizes);
        let chosen: Vec<GradId> = sizes
            .iter()
            .enumerate()
            .zip(pick.iter().cycle())
            .filter(|(_, &p)| p)
            .map(|((i, _), _)| GradId(i as u32))
            .collect();
        let (full, partial) = pack_units(&reg, chosen.clone(), 1024.0);
        let mut seen: Vec<u32> = full
            .iter()
            .chain(partial.iter())
            .flat_map(|u| u.segments.iter().map(|s| s.grad.0))
            .collect();
        seen.sort();
        seen.dedup();
        let mut want: Vec<u32> = chosen.iter().map(|g| g.0).collect();
        want.sort();
        prop_assert_eq!(seen, want);
    }

    /// SyncVector intersection is exactly element-wise AND over arbitrary
    /// bit patterns.
    #[test]
    fn syncvec_intersection_matches_reference(
        patterns in prop::collection::vec(
            prop::collection::vec(any::<bool>(), 1..300),
            1..8,
        ),
    ) {
        let len = patterns.iter().map(Vec::len).min().unwrap();
        let mut vecs: Vec<SyncVector> = Vec::new();
        for p in &patterns {
            let mut v = SyncVector::new(len);
            for (i, &b) in p.iter().take(len).enumerate() {
                if b {
                    v.set(GradId(i as u32));
                }
            }
            vecs.push(v);
        }
        let inter = SyncVector::intersect_all(&vecs);
        for i in 0..len {
            let want = patterns.iter().all(|p| p[i]);
            prop_assert_eq!(inter.get(GradId(i as u32)), want, "bit {}", i);
        }
    }
}
