//! Property-based bit-identity tests for the multi-core solver.
//!
//! The partitioned solver may fan dirty components across the persistent
//! worker pool; the contract is that the worker count changes *nothing*
//! observable — every rate bit, every remaining-bytes bit, every completion
//! instant and every worker-independent solver counter must match the
//! serial run exactly, for any interleaving of flow starts, completions
//! and capacity changes, on both flat and racked topologies.

use aiacc_simnet::{FlowId, FlowNet, FlowSpec, SimDuration, SolverStats};
use proptest::prelude::*;

/// Independent leaf links. Enough that a wave of starts dirties well over
/// `PAR_SOLVE_MIN_COMPS` components, so the pool path actually engages.
const LINKS: usize = 12;
/// Racked mode: every `LINKS_PER_UPLINK` consecutive leaves share an
/// uplink, merging them into one solver component.
const LINKS_PER_UPLINK: usize = 4;

#[derive(Debug, Clone)]
struct WaveFlow {
    link: usize,
    bytes: f64,
    cap: Option<f64>,
    latency_ns: u64,
}

#[derive(Debug, Clone)]
struct Wave {
    flows: Vec<WaveFlow>,
    /// Leaf whose capacity is rescaled before the wave advances.
    retune: usize,
    factor: f64,
    /// Bounded number of `next_change` steps taken inside the wave, so
    /// live flows and queued predictions survive into the next wave.
    steps: usize,
}

fn wave() -> impl Strategy<Value = Wave> {
    let flow = (0..LINKS, 1.0..1e5f64, prop::option::of(10.0..5e3f64), 0u64..500_000)
        .prop_map(|(link, bytes, cap, latency_ns)| WaveFlow { link, bytes, cap, latency_ns });
    (prop::collection::vec(flow, 1..16), 0..LINKS, 0.2..1.5f64, 0usize..3)
        .prop_map(|(flows, retune, factor, steps)| Wave { flows, retune, factor, steps })
}

/// Everything a run exposes, bit-exact. `PartialEq` on `f64` bits and ids.
#[derive(Debug, PartialEq)]
struct Trace {
    /// `(t_ns, completed ids)` per observed change point.
    completions: Vec<(u64, Vec<FlowId>)>,
    /// `(remaining, rate)` bits of every live flow, sampled after each wave.
    snapshots: Vec<(u64, u64)>,
}

/// Worker-independent slice of [`SolverStats`] (`par_*` legitimately
/// differs across worker counts — it records which path was taken).
fn deterministic_stats(s: &SolverStats) -> (u64, u64, u64, u64, u64, u64, u64) {
    (
        s.recomputes,
        s.comps_solved,
        s.comps_existing,
        s.parts_solved,
        s.fill_rounds,
        s.comp_parts_max,
        s.solve_parts_max,
    )
}

fn run_scenario(waves: &[Wave], workers: usize, racked: bool) -> (Trace, SolverStats) {
    let mut net = FlowNet::new();
    net.set_solve_workers(Some(workers));
    // One solver partition group per leaf (and per uplink): without
    // distinct groups everything folds into a single component and the
    // parallel fan-out has nothing to distribute.
    let leaves: Vec<_> =
        (0..LINKS).map(|i| net.add_resource_in_group(format!("leaf{i}"), 1e4, i as u32)).collect();
    let uplinks: Vec<_> = if racked {
        (0..LINKS / LINKS_PER_UPLINK)
            .map(|i| net.add_resource_in_group(format!("up{i}"), 2.5e4, (LINKS + i) as u32))
            .collect()
    } else {
        Vec::new()
    };
    let path = |link: usize| {
        if racked {
            vec![leaves[link], uplinks[link / LINKS_PER_UPLINK]]
        } else {
            vec![leaves[link]]
        }
    };

    let mut trace = Trace { completions: Vec::new(), snapshots: Vec::new() };
    let mut started: Vec<FlowId> = Vec::new();
    let step = |net: &mut FlowNet, trace: &mut Trace| {
        if let Some(t) = net.next_change() {
            net.advance_to(t);
            let mut done = net.take_completed();
            done.sort();
            trace.completions.push((t.as_nanos(), done));
        }
    };
    for w in waves {
        for f in &w.flows {
            let mut spec = FlowSpec::new(path(f.link), f.bytes)
                .with_latency(SimDuration::from_nanos(f.latency_ns));
            if let Some(c) = f.cap {
                spec = spec.with_rate_cap(c);
            }
            started.push(net.start_flow(spec));
        }
        net.set_capacity(leaves[w.retune], 1e4 * w.factor);
        for _ in 0..w.steps {
            step(&mut net, &mut trace);
        }
        for &id in &started {
            if let Some(f) = net.flow(id) {
                trace.snapshots.push((f.remaining.to_bits(), f.rate.to_bits()));
            }
        }
    }
    let mut guard = 0;
    while net.flow_count() > 0 {
        guard += 1;
        assert!(guard < 20_000, "drain did not terminate");
        step(&mut net, &mut trace);
    }
    (trace, net.solver_stats())
}

/// The scenarios above must actually exercise the pool path, not just the
/// serial fallback: one dense wave across all leaves dirties `LINKS`
/// components at once, which is well past the parallel threshold.
#[test]
fn dense_wave_takes_parallel_path() {
    let waves = vec![Wave {
        flows: (0..LINKS)
            .map(|link| WaveFlow { link, bytes: 1e4, cap: None, latency_ns: 0 })
            .collect(),
        retune: 0,
        factor: 1.0,
        steps: 2,
    }];
    let (serial, stats1) = run_scenario(&waves, 1, false);
    let (par, stats8) = run_scenario(&waves, 8, false);
    assert_eq!(par, serial);
    assert_eq!(stats1.par_solves, 0, "serial run must never fan out");
    assert!(stats8.par_solves > 0, "8-worker run never took the parallel path");
    assert_eq!(deterministic_stats(&stats8), deterministic_stats(&stats1));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Flat topology (every leaf its own component): worker counts 1, 2
    /// and 8 produce bit-identical traces and solver counters.
    #[test]
    fn parallel_solve_is_bit_identical_flat(waves in prop::collection::vec(wave(), 2..6)) {
        let (serial, stats1) = run_scenario(&waves, 1, false);
        for workers in [2usize, 8] {
            let (par, stats_n) = run_scenario(&waves, workers, false);
            prop_assert_eq!(&par, &serial, "trace diverged at {} workers", workers);
            prop_assert_eq!(
                deterministic_stats(&stats_n),
                deterministic_stats(&stats1),
                "solver counters diverged at {} workers", workers
            );
        }
    }

    /// Racked topology (leaves merged through shared uplinks): same
    /// contract with multi-resource components.
    #[test]
    fn parallel_solve_is_bit_identical_racked(waves in prop::collection::vec(wave(), 2..6)) {
        let (serial, stats1) = run_scenario(&waves, 1, true);
        for workers in [2usize, 8] {
            let (par, stats_n) = run_scenario(&waves, workers, true);
            prop_assert_eq!(&par, &serial, "trace diverged at {} workers", workers);
            prop_assert_eq!(
                deterministic_stats(&stats_n),
                deterministic_stats(&stats1),
                "solver counters diverged at {} workers", workers
            );
        }
    }
}
