//! Property-based tests for the fluid-flow network model.

use aiacc_simnet::{Event, FlowNet, FlowSpec, SimDuration, Simulator};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandFlow {
    res_a: usize,
    res_b: usize,
    bytes: f64,
    cap: Option<f64>,
    latency_ns: u64,
}

fn rand_flow(n_res: usize) -> impl Strategy<Value = RandFlow> {
    (0..n_res, 0..n_res, 1.0..1e6f64, prop::option::of(1.0..1e4f64), 0u64..1_000_000).prop_map(
        |(res_a, res_b, bytes, cap, latency_ns)| RandFlow { res_a, res_b, bytes, cap, latency_ns },
    )
}

proptest! {
    /// Every flow eventually completes, exactly once.
    #[test]
    fn all_flows_complete(flows in prop::collection::vec(rand_flow(4), 1..20)) {
        let mut sim = Simulator::new();
        let res: Vec<_> = (0..4).map(|i| sim.net_mut().add_resource(format!("r{i}"), 1e4)).collect();
        let mut ids = std::collections::BTreeSet::new();
        for f in &flows {
            let mut spec = FlowSpec::new(vec![res[f.res_a], res[f.res_b]], f.bytes)
                .with_latency(SimDuration::from_nanos(f.latency_ns));
            if let Some(c) = f.cap {
                spec = spec.with_rate_cap(c);
            }
            ids.insert(sim.start_flow(spec));
        }
        let mut seen = std::collections::BTreeSet::new();
        let mut guard = 0;
        while let Some((_, ev)) = sim.next_event() {
            guard += 1;
            prop_assert!(guard < 10_000, "event loop did not terminate");
            if let Event::FlowCompleted(id) = ev {
                prop_assert!(seen.insert(id), "duplicate completion for {id}");
            }
        }
        prop_assert_eq!(seen, ids);
    }

    /// At any observation point no resource is oversubscribed and no flow
    /// exceeds its cap.
    #[test]
    fn rates_respect_capacities_and_caps(flows in prop::collection::vec(rand_flow(3), 1..16)) {
        let mut net = FlowNet::new();
        let caps = [50.0, 500.0, 5_000.0];
        let res: Vec<_> = caps
            .iter()
            .enumerate()
            .map(|(i, &c)| net.add_resource(format!("r{i}"), c))
            .collect();
        let mut started = Vec::new();
        for f in &flows {
            let mut spec = FlowSpec::new(vec![res[f.res_a % 3], res[f.res_b % 3]], f.bytes)
                .with_latency(SimDuration::from_nanos(f.latency_ns));
            if let Some(c) = f.cap {
                spec = spec.with_rate_cap(c);
            }
            started.push((net.start_flow(spec), f.cap));
        }
        let mut steps = 0;
        while let Some(t) = net.next_change() {
            steps += 1;
            prop_assert!(steps < 10_000);
            // Check the allocation that holds on [now, t).
            for (i, &r) in res.iter().enumerate() {
                let util = net.utilization(r);
                prop_assert!(util <= 1.0 + 1e-9, "resource {i} oversubscribed: {util}");
            }
            for (id, cap) in &started {
                if let (Some(flow), Some(cap)) = (net.flow(*id), cap) {
                    if flow.rate.is_finite() {
                        prop_assert!(flow.rate <= cap * (1.0 + 1e-9),
                            "flow over cap: {} > {}", flow.rate, cap);
                    }
                }
            }
            net.advance_to(t);
            net.take_completed();
        }
    }

    /// Completion times are monotone in flow size for otherwise-identical
    /// flows sharing one link.
    #[test]
    fn bigger_flows_finish_no_earlier(sizes in prop::collection::vec(1.0..1e5f64, 2..10)) {
        let mut sim = Simulator::new();
        let r = sim.net_mut().add_resource("link", 1e3);
        let mut by_id = std::collections::BTreeMap::new();
        for &s in &sizes {
            let id = sim.start_flow(FlowSpec::new(vec![r], s));
            by_id.insert(id, s);
        }
        let mut finish = Vec::new();
        while let Some((t, ev)) = sim.next_event() {
            if let Event::FlowCompleted(id) = ev {
                finish.push((by_id[&id], t.as_secs_f64()));
            }
        }
        finish.sort_by(|a, b| a.0.total_cmp(&b.0));
        for w in finish.windows(2) {
            prop_assert!(w[0].1 <= w[1].1 + 1e-9,
                "smaller flow {} finished after bigger {}", w[0].0, w[1].0);
        }
    }

    /// Slot reuse never resurrects a completed flow: after a flow finishes,
    /// its id must stay dead (`flow()` returns `None`, `cancel_flow` is a
    /// no-op) even when later flows recycle the same storage slot — the
    /// generation stamp in the id must not match the slot's new tenant.
    #[test]
    fn completed_flow_ids_never_resurrect(
        waves in prop::collection::vec(prop::collection::vec(1.0..1e4f64, 1..8), 2..6)
    ) {
        let mut net = FlowNet::new();
        let r = net.add_resource("link", 1e4);
        let mut dead: Vec<aiacc_simnet::FlowId> = Vec::new();
        for sizes in &waves {
            // Start a wave (this reuses slots vacated by earlier waves),
            // then run it to completion.
            let live: Vec<_> = sizes
                .iter()
                .map(|&s| net.start_flow(FlowSpec::new(vec![r], s)))
                .collect();
            for id in &dead {
                prop_assert!(net.flow(*id).is_none(), "dead id {id} resolves after reuse");
                prop_assert!(!live.contains(id), "dead id {id} was handed out again");
            }
            let mut guard = 0;
            while let Some(t) = net.next_change() {
                guard += 1;
                prop_assert!(guard < 10_000);
                net.advance_to(t);
                dead.extend(net.take_completed());
            }
            prop_assert_eq!(net.flow_count(), 0, "wave did not drain");
            for id in &live {
                prop_assert!(net.flow(*id).is_none(), "completed id {id} still resolves");
            }
            // Cancelling a dead id must not disturb the (empty) network.
            if let Some(id) = dead.first() {
                net.cancel_flow(*id);
                prop_assert_eq!(net.flow_count(), 0);
            }
        }
        // All dead ids are distinct: generations make reused slots unique.
        let unique: std::collections::BTreeSet<_> = dead.iter().collect();
        prop_assert_eq!(unique.len(), dead.len(), "flow ids were reused");
    }

    /// Stale calendar-queue entries never deliver: arbitrary interleavings
    /// of starts, cancellations and capacity mutations leave thousands of
    /// invalidated completion predictions in the event queue, yet every
    /// surviving flow completes exactly once, no cancelled flow ever
    /// completes, and no completion arrives for a reused slot's previous
    /// tenant (the queue-entry analogue of slab no-resurrection).
    #[test]
    fn stale_event_queue_entries_never_deliver(
        waves in prop::collection::vec(
            prop::collection::vec((1.0..1e4f64, 0u64..1_000_000, any::<bool>()), 1..8),
            2..6,
        ),
        factors in prop::collection::vec(0.1..1.5f64, 1..8),
    ) {
        let mut net = FlowNet::new();
        let r = net.add_resource("link", 1e4);
        let mut cancelled = std::collections::BTreeSet::new();
        let mut completed = std::collections::BTreeSet::new();
        let mut expect = std::collections::BTreeSet::new();
        for (fi, wave) in waves.iter().enumerate() {
            let mut live = Vec::new();
            for &(bytes, lat_ns, cancel) in wave {
                let id = net.start_flow(
                    FlowSpec::new(vec![r], bytes).with_latency(SimDuration::from_nanos(lat_ns)),
                );
                live.push((id, cancel));
            }
            // Each rate change invalidates every queued completion
            // prediction for the link's flows.
            let f = factors[fi % factors.len()];
            net.set_capacity(r, 1e4 * f);
            for &(id, cancel) in &live {
                if cancel {
                    net.cancel_flow(id);
                    cancelled.insert(id);
                } else {
                    expect.insert(id);
                }
            }
            // Drain halfway: step a bounded number of changes so stale
            // entries from this wave survive into the next.
            for _ in 0..3 {
                if let Some(t) = net.next_change() {
                    net.advance_to(t);
                    for id in net.take_completed() {
                        prop_assert!(completed.insert(id), "duplicate completion {id}");
                    }
                }
            }
        }
        net.set_capacity(r, 1e4);
        let mut guard = 0;
        while let Some(t) = net.next_change() {
            guard += 1;
            prop_assert!(guard < 10_000, "drain did not terminate");
            net.advance_to(t);
            for id in net.take_completed() {
                prop_assert!(completed.insert(id), "duplicate completion {id}");
            }
        }
        prop_assert!(
            completed.intersection(&cancelled).next().is_none(),
            "a cancelled flow completed"
        );
        prop_assert_eq!(&completed, &expect, "completion set mismatch");
        prop_assert_eq!(net.flow_count(), 0);
    }

    /// Single saturating flow on one link finishes at exactly bytes/capacity
    /// (+ latency), regardless of cap >= capacity.
    #[test]
    fn isolated_flow_timing_is_exact(bytes in 1.0..1e7f64, lat_ns in 0u64..10_000_000) {
        let mut sim = Simulator::new();
        let r = sim.net_mut().add_resource("link", 1e5);
        sim.start_flow(
            FlowSpec::new(vec![r], bytes).with_latency(SimDuration::from_nanos(lat_ns)),
        );
        let mut t_done = None;
        while let Some((t, ev)) = sim.next_event() {
            if matches!(ev, Event::FlowCompleted(_)) {
                t_done = Some(t.as_secs_f64());
            }
        }
        let expect = bytes / 1e5 + lat_ns as f64 / 1e9;
        let got = t_done.unwrap();
        prop_assert!((got - expect).abs() < 1e-6 + expect * 1e-9, "got {got}, want {expect}");
    }
}
