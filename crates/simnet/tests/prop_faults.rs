//! Property-based tests for dynamic capacity mutation (the fault-injection
//! substrate): whatever sequence of degradations and restorations hits the
//! network, the max-min allocation stays physical — no negative rates, no
//! oversubscription, no lost bytes — and restoring every capacity returns
//! the allocation to the fault-free fixed point.

use aiacc_simnet::{Event, FlowNet, FlowSpec, Simulator};
use proptest::prelude::*;

const BASE_CAPS: [f64; 3] = [100.0, 1_000.0, 10_000.0];

#[derive(Debug, Clone)]
struct RandFlow {
    res_a: usize,
    res_b: usize,
    bytes: f64,
    cap: Option<f64>,
}

fn rand_flow() -> impl Strategy<Value = RandFlow> {
    (0..3usize, 0..3usize, 1.0..1e5f64, prop::option::of(1.0..5e3f64))
        .prop_map(|(res_a, res_b, bytes, cap)| RandFlow { res_a, res_b, bytes, cap })
}

/// A capacity mutation: scale resource `res` to `factor ×` its base capacity
/// (0 = link down, 1 = healthy, up to 1.5 = burst above nominal).
fn rand_mutation() -> impl Strategy<Value = (usize, f64)> {
    (0..3usize, 0.0..1.5f64)
}

fn build(net: &mut FlowNet, flows: &[RandFlow]) -> Vec<(aiacc_simnet::FlowId, RandFlow)> {
    let res: Vec<_> =
        BASE_CAPS.iter().enumerate().map(|(i, &c)| net.add_resource(format!("r{i}"), c)).collect();
    flows
        .iter()
        .map(|f| {
            let mut spec = FlowSpec::new(vec![res[f.res_a], res[f.res_b]], f.bytes);
            if let Some(c) = f.cap {
                spec = spec.with_rate_cap(c);
            }
            (net.start_flow(spec), f.clone())
        })
        .collect()
}

proptest! {
    /// After any prefix of an arbitrary mutation sequence, every flow rate is
    /// non-negative and no resource carries more than its *current* capacity.
    #[test]
    fn rates_stay_physical_under_arbitrary_mutations(
        flows in prop::collection::vec(rand_flow(), 1..12),
        muts in prop::collection::vec(rand_mutation(), 1..24),
    ) {
        let mut net = FlowNet::new();
        let started = build(&mut net, &flows);
        // Recover the ResourceIds from the flows' paths (creation order 0..3).
        let rids: Vec<_> = {
            let mut all: Vec<_> = started
                .iter()
                .flat_map(|(id, _)| net.flow(*id).unwrap().spec.path)
                .collect();
            all.sort();
            all.dedup();
            all
        };
        for &(r, factor) in &muts {
            let mutated = rids[r % rids.len()];
            let base = BASE_CAPS[mutated.as_u32() as usize];
            net.set_capacity(mutated, base * factor);
            // The allocation that holds right now must be physical.
            for &rid in &rids {
                let cap = net.resource(rid).capacity;
                let used = net.utilization(rid);
                prop_assert!(used >= 0.0, "negative aggregate rate on {rid:?}");
                prop_assert!(
                    used <= 1.0 + 1e-9,
                    "oversubscribed after mutation: {used} of capacity {cap}"
                );
            }
            for (id, _) in &started {
                if let Some(flow) = net.flow(*id) {
                    if flow.rate.is_finite() {
                        prop_assert!(flow.rate >= 0.0, "negative rate {}", flow.rate);
                        // A flow crossing a downed link moves nothing.
                        if flow.active
                            && flow
                                .spec
                                .path
                                .iter()
                                .any(|p| net.resource(*p).capacity <= 0.0)
                        {
                            prop_assert!(
                                flow.rate <= 1e-9,
                                "flow still moving over a downed link: {}",
                                flow.rate
                            );
                        }
                    }
                }
            }
            // Let a little simulated time pass so mutations interleave with
            // actual progress.
            if let Some(t) = net.next_change() {
                net.advance_to(t);
                net.take_completed();
            }
        }
    }

    /// Bytes are conserved: however capacities move mid-transfer, once links
    /// are restored every flow completes and each single-resource flow's
    /// bytes all show up in that resource's carried counter.
    #[test]
    fn byte_conservation_across_mutations(
        sizes in prop::collection::vec(1.0..1e4f64, 1..8),
        muts in prop::collection::vec(0.0..1.5f64, 1..12),
    ) {
        let mut sim = Simulator::new();
        let r = sim.net_mut().add_resource("link", 1_000.0);
        let mut expect_completions = std::collections::BTreeSet::new();
        for &s in &sizes {
            expect_completions.insert(sim.start_flow(FlowSpec::new(vec![r], s)));
        }
        // Interleave mutations with event processing.
        let mut seen = std::collections::BTreeSet::new();
        for &factor in &muts {
            sim.net_mut().set_capacity(r, 1_000.0 * factor);
            if let Some((_, Event::FlowCompleted(id))) = sim.next_event() {
                seen.insert(id);
            }
        }
        // Restore the link and drain: every remaining flow must finish.
        sim.net_mut().set_capacity(r, 1_000.0);
        let mut guard = 0;
        while let Some((_, ev)) = sim.next_event() {
            guard += 1;
            prop_assert!(guard < 10_000, "drain did not terminate");
            if let Event::FlowCompleted(id) = ev {
                prop_assert!(seen.insert(id), "duplicate completion");
            }
        }
        prop_assert_eq!(&seen, &expect_completions);
        let total: f64 = sizes.iter().sum();
        let carried = sim.net_mut().carried_bytes(r);
        prop_assert!(
            (carried - total).abs() <= total * 1e-6 + 1e-6,
            "bytes not conserved: carried {carried}, sent {total}"
        );
        // On a single-hop network with one tag the per-resource carried
        // counter and the per-tag delivered counter account the same bytes
        // through the same additions, so they must agree *bitwise* — the
        // infinite-rate settle branch used to skip the carried credit.
        let delivered = sim.net_mut().delivered_bytes_by_tag(0);
        prop_assert_eq!(
            carried.to_bits(),
            delivered.to_bits(),
            "carried {} != delivered {}",
            carried,
            delivered
        );
    }

    /// Mutating capacities and then restoring them — without any time
    /// passing — leaves the max-min allocation exactly where a never-faulted
    /// network sits: the fault-free fixed point.
    #[test]
    fn restore_returns_to_fault_free_fixed_point(
        flows in prop::collection::vec(rand_flow(), 1..12),
        muts in prop::collection::vec(rand_mutation(), 1..24),
    ) {
        let mut faulted = FlowNet::new();
        let mut pristine = FlowNet::new();
        let started_f = build(&mut faulted, &flows);
        let started_p = build(&mut pristine, &flows);

        let rids: Vec<_> = {
            let mut all: Vec<_> = started_f
                .iter()
                .flat_map(|(id, _)| faulted.flow(*id).unwrap().spec.path)
                .collect();
            all.sort();
            all.dedup();
            all
        };
        for &(r, factor) in &muts {
            let rid = rids[r % rids.len()];
            let base = BASE_CAPS[rid.as_u32() as usize];
            faulted.set_capacity(rid, base * factor);
            // Force a rate solve against the mutated topology.
            let _ = faulted.next_change();
        }
        // Restore every capacity to its base value.
        for &rid in &rids {
            faulted.set_capacity(rid, BASE_CAPS[rid.as_u32() as usize]);
        }
        let _ = faulted.next_change();
        let _ = pristine.next_change();
        for ((idf, _), (idp, _)) in started_f.iter().zip(&started_p) {
            let ff = faulted.flow(*idf).unwrap();
            let fp = pristine.flow(*idp).unwrap();
            prop_assert_eq!(
                ff.rate.to_bits(),
                fp.rate.to_bits(),
                "restored allocation diverges from fault-free fixed point: {} vs {}",
                ff.rate,
                fp.rate
            );
            prop_assert_eq!(ff.remaining.to_bits(), fp.remaining.to_bits());
        }
    }
}
