//! Deterministic, seeded fault injection for the simulator.
//!
//! A [`FaultPlan`] is pure data: a list of [`FaultEvent`]s, each naming a
//! target (a network [`ResourceId`] or a logical node index), a kind, an
//! onset time, and an optional duration. Plans can be built explicitly with
//! the fluent constructors or generated pseudo-randomly from a seed with
//! [`FaultPlan::randomized`] — in both cases the plan is plain data, so the
//! same plan fed into the same simulation always reproduces the same
//! trajectory bit-for-bit.
//!
//! Link-level faults (degrade, flap) are executed by the simulator itself:
//! [`crate::Simulator::install_faults`] compiles the plan into a sorted
//! apply/restore schedule, and each action surfaces as an
//! [`crate::Event::Fault`] carrying a [`FaultRecord`]. A resource's
//! *effective* capacity is `baseline × Π(active fault factors)`; when the
//! last overlapping fault is restored the product is empty and the capacity
//! returns to **exactly** its baseline — restoration is not subject to
//! floating-point drift.
//!
//! Compute-level faults (straggler multipliers, node crashes) cannot be
//! interpreted by the network layer; higher layers query them through
//! [`FaultPlan::compute_factor`] and [`FaultPlan::crash_times`], and map
//! node-targeted link faults onto concrete NIC resources with
//! [`FaultPlan::resolve_links`].
//!
//! # Example
//! ```
//! use aiacc_simnet::{Event, FaultPhase, FaultPlan, FlowSpec, SimDuration, SimTime, Simulator};
//!
//! let mut sim = Simulator::new();
//! let link = sim.net_mut().add_resource("nic", 10.0);
//! // Halve the link for one second starting at t=1s.
//! let plan = FaultPlan::new().degrade_link(
//!     link,
//!     0.5,
//!     SimTime::from_secs_f64(1.0),
//!     Some(SimDuration::from_secs_f64(1.0)),
//! );
//! sim.install_faults(&plan);
//! sim.start_flow(FlowSpec::new(vec![link], 25.0));
//! let mut finished_at = 0.0;
//! while let Some((t, ev)) = sim.next_event() {
//!     match ev {
//!         Event::Fault(rec) if rec.phase == FaultPhase::Applied => {
//!             assert_eq!(rec.capacity_after, 5.0);
//!         }
//!         Event::FlowCompleted(_) => finished_at = t.as_secs_f64(),
//!         _ => {}
//!     }
//! }
//! // 10 B in the first second, 5 B in the degraded second, 10 B after.
//! assert!((finished_at - 3.0).abs() < 1e-6);
//! ```

use crate::flownet::{FlowNet, ResourceId};
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// What a fault does to its target.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Scale the target link's capacity by `factor` (0 < factor < 1) for the
    /// event's duration.
    Degrade {
        /// Capacity multiplier while the fault is active.
        factor: f64,
    },
    /// Take the link fully down (capacity 0) for the event's duration, then
    /// restore it.
    Flap,
    /// Multiply the target node's compute time by `factor` (> 1) for the
    /// event's duration. Interpreted by the training layer, not the network.
    Straggler {
        /// Compute-time multiplier while the fault is active.
        factor: f64,
    },
    /// The target node crashes at the event's onset. Interpreted by the
    /// training layer (checkpoint restart). A `Some(duration)` means the
    /// node is *repaired* — its capacity returns to the pool — at
    /// `at + duration`; `None` means the node never comes back.
    Crash,
}

/// What a fault applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultTarget {
    /// A concrete network resource (link port).
    Resource(ResourceId),
    /// A logical node index; resolved to NIC resources by higher layers via
    /// [`FaultPlan::resolve_links`] (for link faults) or consumed directly
    /// (stragglers, crashes).
    Node(u32),
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// The fault's target.
    pub target: FaultTarget,
    /// What happens to the target.
    pub kind: FaultKind,
    /// Onset time.
    pub at: SimTime,
    /// How long the fault lasts; `None` means it persists to the end of the
    /// simulation.
    pub duration: Option<SimDuration>,
}

impl FaultEvent {
    /// The instant the fault is lifted, if it has a finite duration.
    pub fn ends_at(&self) -> Option<SimTime> {
        self.duration.map(|d| self.at + d)
    }

    /// Whether the fault is active at time `t` (onset inclusive, end
    /// exclusive; unbounded faults never end).
    pub fn active_at(&self, t: SimTime) -> bool {
        t >= self.at && self.ends_at().is_none_or(|e| t < e)
    }
}

/// A declarative, reproducible schedule of faults.
///
/// Plans are inert data: building one has no effect until it is handed to
/// [`crate::Simulator::install_faults`] (link faults) or queried by the
/// training layer (compute faults).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// The scheduled events, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Adds an arbitrary event.
    pub fn with_event(mut self, event: FaultEvent) -> Self {
        self.validate(&event);
        self.events.push(event);
        self
    }

    /// Scales a link's capacity by `factor` starting at `at`.
    pub fn degrade_link(
        self,
        resource: ResourceId,
        factor: f64,
        at: SimTime,
        duration: Option<SimDuration>,
    ) -> Self {
        self.with_event(FaultEvent {
            target: FaultTarget::Resource(resource),
            kind: FaultKind::Degrade { factor },
            at,
            duration,
        })
    }

    /// Takes a link down entirely for `duration` starting at `at`.
    pub fn flap_link(self, resource: ResourceId, at: SimTime, duration: SimDuration) -> Self {
        self.with_event(FaultEvent {
            target: FaultTarget::Resource(resource),
            kind: FaultKind::Flap,
            at,
            duration: Some(duration),
        })
    }

    /// Degrades every NIC resource of logical node `node` by `factor`.
    pub fn degrade_node(
        self,
        node: u32,
        factor: f64,
        at: SimTime,
        duration: Option<SimDuration>,
    ) -> Self {
        self.with_event(FaultEvent {
            target: FaultTarget::Node(node),
            kind: FaultKind::Degrade { factor },
            at,
            duration,
        })
    }

    /// Multiplies node `node`'s compute time by `factor` over a window.
    pub fn straggle_node(
        self,
        node: u32,
        factor: f64,
        at: SimTime,
        duration: Option<SimDuration>,
    ) -> Self {
        self.with_event(FaultEvent {
            target: FaultTarget::Node(node),
            kind: FaultKind::Straggler { factor },
            at,
            duration,
        })
    }

    /// Crashes node `node` at `at`; the node never comes back.
    pub fn crash_node(self, node: u32, at: SimTime) -> Self {
        self.with_event(FaultEvent {
            target: FaultTarget::Node(node),
            kind: FaultKind::Crash,
            at,
            duration: None,
        })
    }

    /// Crashes node `node` at `at` and repairs it `repair_after` later,
    /// returning its capacity to whoever tracks node liveness.
    pub fn crash_node_for(self, node: u32, at: SimTime, repair_after: SimDuration) -> Self {
        self.with_event(FaultEvent {
            target: FaultTarget::Node(node),
            kind: FaultKind::Crash,
            at,
            duration: Some(repair_after),
        })
    }

    fn validate(&self, event: &FaultEvent) {
        match event.kind {
            FaultKind::Degrade { factor } => assert!(
                factor.is_finite() && (0.0..=1.0).contains(&factor),
                "degrade factor must be in [0, 1]: {factor}"
            ),
            FaultKind::Straggler { factor } => assert!(
                factor.is_finite() && factor >= 1.0,
                "straggler factor must be >= 1: {factor}"
            ),
            FaultKind::Flap => assert!(
                event.duration.is_some(),
                "a link flap needs a duration (an unbounded flap is a crash)"
            ),
            FaultKind::Crash => {}
        }
    }

    /// Generates a reproducible pseudo-random plan of `count` link faults
    /// (degrades and flaps) over `links`, with onsets in `[0, 0.8·horizon)`
    /// and durations in `[0.05, 0.20]·horizon`. The same `(seed, links,
    /// horizon, count)` always yields the identical plan.
    pub fn randomized(seed: u64, links: &[ResourceId], horizon: SimDuration, count: usize) -> Self {
        FaultPlan::randomized_mix(seed, links, &[], horizon, count, 0.0)
    }

    /// Like [`FaultPlan::randomized`], but a `node_fault_frac` fraction of
    /// the events are *node* faults drawn from `nodes` — 60 % straggler
    /// windows (compute 1.5–3× slower), 40 % crashes with a repair time —
    /// so chaos sweeps exercise every [`FaultKind`]. With
    /// `node_fault_frac == 0.0` the draw sequence (and therefore the plan)
    /// is byte-identical to [`FaultPlan::randomized`].
    ///
    /// # Panics
    /// Panics if `links` is empty, or if `node_fault_frac` is outside
    /// `[0, 1]` or positive while `nodes` is empty.
    pub fn randomized_mix(
        seed: u64,
        links: &[ResourceId],
        nodes: &[u32],
        horizon: SimDuration,
        count: usize,
        node_fault_frac: f64,
    ) -> Self {
        assert!(!links.is_empty(), "randomized plan needs candidate links");
        assert!(
            (0.0..=1.0).contains(&node_fault_frac),
            "node fault fraction must be in [0, 1]: {node_fault_frac}"
        );
        assert!(
            node_fault_frac == 0.0 || !nodes.is_empty(),
            "node faults requested but no candidate nodes given"
        );
        let mut state = seed ^ 0xA1AC_C0DE_5EED_0001;
        let mut plan = FaultPlan::new();
        let horizon_ns = horizon.as_nanos() as f64;
        for _ in 0..count {
            // The extra draw only happens when node faults are enabled, so
            // the frac == 0.0 stream matches the legacy generator exactly.
            if node_fault_frac > 0.0 && unit_f64(&mut state) < node_fault_frac {
                let node = nodes[(splitmix64(&mut state) % nodes.len() as u64) as usize];
                let at = SimTime::from_nanos((unit_f64(&mut state) * 0.8 * horizon_ns) as u64);
                let dur = SimDuration::from_nanos(
                    ((0.05 + 0.15 * unit_f64(&mut state)) * horizon_ns) as u64,
                );
                plan = if unit_f64(&mut state) < 0.6 {
                    let factor = 1.5 + 1.5 * unit_f64(&mut state);
                    plan.straggle_node(node, factor, at, Some(dur))
                } else {
                    // Repair takes twice the straggler window: crashes are
                    // rarer and costlier than soft degradation.
                    plan.crash_node_for(node, at, dur + dur)
                };
                continue;
            }
            let link = links[(splitmix64(&mut state) % links.len() as u64) as usize];
            let at = SimTime::from_nanos((unit_f64(&mut state) * 0.8 * horizon_ns) as u64);
            let dur =
                SimDuration::from_nanos(((0.05 + 0.15 * unit_f64(&mut state)) * horizon_ns) as u64);
            // 70 % capacity degradation, 30 % full flap.
            plan = if unit_f64(&mut state) < 0.7 {
                let factor = 0.2 + 0.7 * unit_f64(&mut state);
                plan.degrade_link(link, factor, at, Some(dur))
            } else {
                plan.flap_link(link, at, dur)
            };
        }
        plan
    }

    /// A seeded, fully node-targeted chaos plan for cluster scenarios that
    /// have no resource ids yet (the scheduler resolves node-targeted link
    /// faults to each node's NICs via [`FaultPlan::resolve_links`]).
    ///
    /// The plan always contains at least one straggler window and one
    /// crash-with-repair (so every chaos run exercises both recovery paths),
    /// plus `count` extra mixed events: 30 % node faults (straggler or
    /// crash, as in [`FaultPlan::randomized_mix`]) and 70 % NIC-level
    /// degrades/flaps. The same `(seed, nodes, horizon, count)` always
    /// yields the identical plan.
    ///
    /// # Panics
    /// Panics if `nodes` is zero.
    pub fn chaos(seed: u64, nodes: usize, horizon: SimDuration, count: usize) -> Self {
        assert!(nodes > 0, "chaos plan needs at least one node");
        let mut state = seed ^ 0xA1AC_C0DE_C4A0_5001;
        let horizon_ns = horizon.as_nanos() as f64;
        let pick = |state: &mut u64| (splitmix64(state) % nodes as u64) as u32;
        // Guaranteed straggler window in the first half of the horizon.
        let s_node = pick(&mut state);
        let s_factor = 1.5 + 1.5 * unit_f64(&mut state);
        let s_at = SimTime::from_nanos(((0.1 + 0.2 * unit_f64(&mut state)) * horizon_ns) as u64);
        let s_dur = SimDuration::from_nanos((0.25 * horizon_ns) as u64);
        // Guaranteed crash, repaired after a fifth of the horizon.
        let c_node = pick(&mut state);
        let c_at = SimTime::from_nanos(((0.3 + 0.2 * unit_f64(&mut state)) * horizon_ns) as u64);
        let c_repair = SimDuration::from_nanos((0.2 * horizon_ns) as u64);
        let mut plan = FaultPlan::new()
            .straggle_node(s_node, s_factor, s_at, Some(s_dur))
            .crash_node_for(c_node, c_at, c_repair);
        for _ in 0..count {
            let node = pick(&mut state);
            let at = SimTime::from_nanos((unit_f64(&mut state) * 0.8 * horizon_ns) as u64);
            let dur =
                SimDuration::from_nanos(((0.05 + 0.15 * unit_f64(&mut state)) * horizon_ns) as u64);
            let draw = unit_f64(&mut state);
            plan = if draw < 0.18 {
                let factor = 1.5 + 1.5 * unit_f64(&mut state);
                plan.straggle_node(node, factor, at, Some(dur))
            } else if draw < 0.30 {
                plan.crash_node_for(node, at, dur + dur)
            } else if draw < 0.79 {
                let factor = 0.2 + 0.7 * unit_f64(&mut state);
                plan.degrade_node(node, factor, at, Some(dur))
            } else {
                plan.with_event(FaultEvent {
                    target: FaultTarget::Node(node),
                    kind: FaultKind::Flap,
                    at,
                    duration: Some(dur),
                })
            };
        }
        plan
    }

    /// Rewrites node-targeted *link* faults (degrade/flap) into per-resource
    /// faults using `nics` to map a node index to its NIC resources.
    /// Stragglers and crashes are kept verbatim: they stay node-scoped.
    pub fn resolve_links(&self, mut nics: impl FnMut(u32) -> Vec<ResourceId>) -> FaultPlan {
        let mut out = FaultPlan::new();
        for ev in &self.events {
            match (ev.target, ev.kind) {
                (FaultTarget::Node(n), FaultKind::Degrade { .. } | FaultKind::Flap) => {
                    for r in nics(n) {
                        out.events.push(FaultEvent { target: FaultTarget::Resource(r), ..*ev });
                    }
                }
                _ => out.events.push(*ev),
            }
        }
        out
    }

    /// The combined compute-time multiplier for `node` at time `t`: the
    /// product of every straggler fault active then (1.0 when none are).
    pub fn compute_factor(&self, node: u32, t: SimTime) -> f64 {
        self.events
            .iter()
            .filter_map(|ev| match (ev.target, ev.kind) {
                (FaultTarget::Node(n), FaultKind::Straggler { factor })
                    if n == node && ev.active_at(t) =>
                {
                    Some(factor)
                }
                _ => None,
            })
            .product()
    }

    /// Every scheduled crash as `(node, time)`, sorted by time.
    pub fn crash_times(&self) -> Vec<(u32, SimTime)> {
        let mut out: Vec<(u32, SimTime)> = self
            .events
            .iter()
            .filter_map(|ev| match (ev.target, ev.kind) {
                (FaultTarget::Node(n), FaultKind::Crash) => Some((n, ev.at)),
                _ => None,
            })
            .collect();
        out.sort_by_key(|&(n, t)| (t, n));
        out
    }

    /// Every scheduled crash as `(node, crash time, repair time)`, sorted by
    /// `(crash time, node)`. A `None` repair time means the node never comes
    /// back (see [`FaultKind::Crash`]).
    pub fn crash_spans(&self) -> Vec<(u32, SimTime, Option<SimTime>)> {
        let mut out: Vec<(u32, SimTime, Option<SimTime>)> = self
            .events
            .iter()
            .filter_map(|ev| match (ev.target, ev.kind) {
                (FaultTarget::Node(n), FaultKind::Crash) => Some((n, ev.at, ev.ends_at())),
                _ => None,
            })
            .collect();
        out.sort_by_key(|&(n, t, _)| (t, n));
        out
    }

    /// Link faults (degrade/flap) already bound to concrete resources.
    /// Node-targeted link faults are *not* included — call
    /// [`FaultPlan::resolve_links`] first if the plan has any.
    pub fn resolved_link_faults(&self) -> Vec<FaultEvent> {
        self.events
            .iter()
            .filter(|ev| {
                matches!(ev.target, FaultTarget::Resource(_))
                    && matches!(ev.kind, FaultKind::Degrade { .. } | FaultKind::Flap)
            })
            .copied()
            .collect()
    }
}

/// Whether a [`FaultRecord`] marks a fault taking effect or being lifted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultPhase {
    /// The fault just took effect.
    Applied,
    /// The fault was just lifted.
    Restored,
}

/// A capacity change executed by the fault injector, surfaced as
/// [`crate::Event::Fault`] and appended to [`crate::Simulator::fault_log`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRecord {
    /// The resource whose capacity changed.
    pub resource: ResourceId,
    /// Whether the fault was applied or lifted.
    pub phase: FaultPhase,
    /// Effective capacity immediately before this action.
    pub capacity_before: f64,
    /// Effective capacity immediately after this action.
    pub capacity_after: f64,
}

/// One half (apply or restore) of a scheduled link fault.
#[derive(Debug, Clone, Copy)]
struct Action {
    at: SimTime,
    resource: ResourceId,
    phase: FaultPhase,
    /// Capacity multiplier of the owning fault (0.0 for a flap).
    factor: f64,
    /// Index of the owning fault, pairing applies with restores.
    fault: usize,
}

/// Per-resource bookkeeping: the pre-fault capacity and the set of faults
/// currently acting on it.
#[derive(Debug, Clone, Default)]
struct ResourceFaultState {
    baseline: Option<f64>,
    active: Vec<(usize, f64)>,
}

/// Compiled link-fault schedule; owned by [`crate::Simulator`].
#[derive(Debug, Clone, Default)]
pub(crate) struct FaultInjector {
    actions: Vec<Action>,
    next: usize,
    states: BTreeMap<u32, ResourceFaultState>,
}

impl FaultInjector {
    /// Compiles the resource-targeted link faults of `plan` into a
    /// time-sorted action schedule.
    pub(crate) fn compile(plan: &FaultPlan) -> Self {
        let mut actions = Vec::new();
        for (idx, ev) in plan.resolved_link_faults().into_iter().enumerate() {
            let FaultTarget::Resource(resource) = ev.target else {
                unreachable!("resolved_link_faults returns resource targets only");
            };
            let factor = match ev.kind {
                FaultKind::Degrade { factor } => factor,
                FaultKind::Flap => 0.0,
                _ => unreachable!("resolved_link_faults returns link faults only"),
            };
            actions.push(Action {
                at: ev.at,
                resource,
                phase: FaultPhase::Applied,
                factor,
                fault: idx,
            });
            if let Some(end) = ev.ends_at() {
                actions.push(Action {
                    at: end,
                    resource,
                    phase: FaultPhase::Restored,
                    factor,
                    fault: idx,
                });
            }
        }
        // Stable: simultaneous actions keep plan order, restores of an
        // earlier fault land before applies of a later one scheduled at the
        // same instant iff they were inserted first.
        actions.sort_by_key(|a| a.at);
        FaultInjector { actions, next: 0, states: BTreeMap::new() }
    }

    /// The instant of the next pending action.
    pub(crate) fn next_at(&self) -> Option<SimTime> {
        self.actions.get(self.next).map(|a| a.at)
    }

    /// Executes the next pending action against `net`. The caller must have
    /// advanced the network to [`FaultInjector::next_at`] already.
    pub(crate) fn apply_next(&mut self, net: &mut FlowNet) -> FaultRecord {
        let action = self.actions[self.next];
        self.next += 1;
        let state = self.states.entry(action.resource.as_u32()).or_default();
        let baseline =
            *state.baseline.get_or_insert_with(|| net.resource(action.resource).capacity);
        let before = net.resource(action.resource).capacity;
        match action.phase {
            FaultPhase::Applied => state.active.push((action.fault, action.factor)),
            FaultPhase::Restored => state.active.retain(|&(f, _)| f != action.fault),
        }
        // Empty product ⇒ exactly the baseline: restoration is drift-free.
        let after = if state.active.is_empty() {
            baseline
        } else {
            baseline * state.active.iter().map(|&(_, f)| f).product::<f64>()
        };
        net.set_capacity(action.resource, after);
        FaultRecord {
            resource: action.resource,
            phase: action.phase,
            capacity_before: before,
            capacity_after: after,
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform in [0, 1).
fn unit_f64(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn randomized_plans_are_seed_deterministic() {
        let links = [ResourceId::from_index(0), ResourceId::from_index(1)];
        let a = FaultPlan::randomized(42, &links, SimDuration::from_secs_f64(10.0), 8);
        let b = FaultPlan::randomized(42, &links, SimDuration::from_secs_f64(10.0), 8);
        let c = FaultPlan::randomized(43, &links, SimDuration::from_secs_f64(10.0), 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.events().len(), 8);
    }

    #[test]
    fn randomized_mix_zero_frac_matches_legacy_stream() {
        let links = [ResourceId::from_index(0), ResourceId::from_index(1)];
        let legacy = FaultPlan::randomized(7, &links, SimDuration::from_secs_f64(20.0), 12);
        let mixed = FaultPlan::randomized_mix(
            7,
            &links,
            &[0, 1, 2],
            SimDuration::from_secs_f64(20.0),
            12,
            0.0,
        );
        assert_eq!(legacy, mixed, "frac=0 must not perturb the draw sequence");
    }

    #[test]
    fn randomized_mix_covers_every_fault_kind() {
        let links = [ResourceId::from_index(0), ResourceId::from_index(1)];
        let plan = FaultPlan::randomized_mix(
            11,
            &links,
            &[0, 1, 2, 3],
            SimDuration::from_secs_f64(30.0),
            64,
            0.5,
        );
        let plan2 = FaultPlan::randomized_mix(
            11,
            &links,
            &[0, 1, 2, 3],
            SimDuration::from_secs_f64(30.0),
            64,
            0.5,
        );
        assert_eq!(plan, plan2, "mixed plan must be seed-deterministic");
        assert_eq!(plan.events().len(), 64);
        let has = |pred: &dyn Fn(&FaultEvent) -> bool| plan.events().iter().any(pred);
        assert!(has(&|e| matches!(e.kind, FaultKind::Degrade { .. })), "no degrade");
        assert!(has(&|e| matches!(e.kind, FaultKind::Flap)), "no flap");
        assert!(has(&|e| matches!(e.kind, FaultKind::Straggler { .. })), "no straggler");
        assert!(has(&|e| matches!(e.kind, FaultKind::Crash)), "no crash");
        // Mixed-in crashes always carry a repair time.
        for (_, at, repair) in plan.crash_spans() {
            let r = repair.expect("randomized_mix crashes are always repaired");
            assert!(r > at);
        }
    }

    #[test]
    fn crash_spans_report_repair_instants() {
        let plan = FaultPlan::new().crash_node(2, SimTime::from_nanos(50)).crash_node_for(
            1,
            SimTime::from_nanos(10),
            SimDuration::from_nanos(30),
        );
        assert_eq!(
            plan.crash_spans(),
            vec![
                (1, SimTime::from_nanos(10), Some(SimTime::from_nanos(40))),
                (2, SimTime::from_nanos(50), None),
            ]
        );
        // crash_times stays repair-agnostic.
        assert_eq!(
            plan.crash_times(),
            vec![(1, SimTime::from_nanos(10)), (2, SimTime::from_nanos(50))]
        );
    }

    #[test]
    fn chaos_plan_is_deterministic_and_always_has_crash_and_straggler() {
        let h = SimDuration::from_secs_f64(40.0);
        let a = FaultPlan::chaos(7, 4, h, 6);
        let b = FaultPlan::chaos(7, 4, h, 6);
        assert_eq!(a.events(), b.events(), "same inputs must yield the same plan");
        assert_ne!(a.events(), FaultPlan::chaos(8, 4, h, 6).events());
        for plan in [FaultPlan::chaos(7, 4, h, 0), a] {
            let spans = plan.crash_spans();
            assert!(!spans.is_empty(), "chaos plan must contain a crash");
            assert!(spans.iter().any(|&(_, _, repair)| repair.is_some()), "and a repaired one");
            assert!(
                plan.events().iter().any(|ev| matches!(ev.kind, FaultKind::Straggler { .. })),
                "chaos plan must contain a straggler window"
            );
            // Every target is a node: the plan needs no resource ids.
            assert!(plan.events().iter().all(|ev| matches!(ev.target, FaultTarget::Node(_))));
        }
    }

    #[test]
    fn compute_factor_multiplies_overlapping_stragglers() {
        let plan = FaultPlan::new()
            .straggle_node(1, 2.0, SimTime::from_nanos(100), Some(SimDuration::from_nanos(100)))
            .straggle_node(1, 1.5, SimTime::from_nanos(150), None)
            .straggle_node(2, 3.0, SimTime::from_nanos(0), None);
        assert_eq!(plan.compute_factor(1, SimTime::from_nanos(0)), 1.0);
        assert_eq!(plan.compute_factor(1, SimTime::from_nanos(120)), 2.0);
        assert_eq!(plan.compute_factor(1, SimTime::from_nanos(160)), 3.0);
        // Window end is exclusive.
        assert_eq!(plan.compute_factor(1, SimTime::from_nanos(200)), 1.5);
        assert_eq!(plan.compute_factor(2, SimTime::from_nanos(500)), 3.0);
    }

    #[test]
    fn resolve_links_expands_node_link_faults_only() {
        let plan = FaultPlan::new()
            .degrade_node(0, 0.5, SimTime::from_nanos(10), None)
            .straggle_node(0, 2.0, SimTime::from_nanos(10), None)
            .crash_node(1, SimTime::from_nanos(20));
        let resolved =
            plan.resolve_links(|_| vec![ResourceId::from_index(3), ResourceId::from_index(4)]);
        assert_eq!(resolved.events().len(), 4);
        assert_eq!(resolved.resolved_link_faults().len(), 2);
        assert_eq!(resolved.crash_times(), vec![(1, SimTime::from_nanos(20))]);
        assert_eq!(resolved.compute_factor(0, SimTime::from_nanos(10)), 2.0);
    }

    #[test]
    fn injector_restores_exact_baseline_after_overlap() {
        let mut net = FlowNet::new();
        let r = net.add_resource("nic", 3.75e9);
        let plan = FaultPlan::new()
            .degrade_link(r, 0.3, SimTime::from_nanos(10), Some(SimDuration::from_nanos(100)))
            .degrade_link(r, 0.7, SimTime::from_nanos(50), Some(SimDuration::from_nanos(100)));
        let mut inj = FaultInjector::compile(&plan);
        let mut last = None;
        while let Some(at) = inj.next_at() {
            net.advance_to(at);
            last = Some(inj.apply_next(&mut net));
        }
        let last = last.unwrap();
        assert_eq!(last.phase, FaultPhase::Restored);
        // Exact equality: the empty-product path hands back the baseline.
        assert_eq!(last.capacity_after, 3.75e9);
        assert_eq!(net.resource(r).capacity, 3.75e9);
    }

    #[test]
    #[should_panic(expected = "degrade factor")]
    fn rejects_out_of_range_degrade() {
        let _ = FaultPlan::new().degrade_link(
            ResourceId::from_index(0),
            1.5,
            SimTime::from_nanos(0),
            None,
        );
    }
}
