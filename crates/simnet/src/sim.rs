//! Combined event loop: user timers interleaved with flow completions.

use crate::calq::CalendarQueue;
use crate::faults::{FaultInjector, FaultPlan, FaultRecord};
use crate::flow::{FlowId, FlowSpec};
use crate::flownet::FlowNet;
use crate::time::{SimDuration, SimTime};
use crate::trace::{track, TraceSink};
use serde::{Deserialize, Serialize};

/// An opaque, `Copy` event payload for simulator timers.
///
/// Higher layers encode their own meaning into the three fields. Keeping the
/// payload flat (instead of making [`Simulator`] generic) lets independent
/// crates (collectives, AIACC engine, baselines) share one simulator without
/// threading a common event enum through every signature.
///
/// # Example
/// ```
/// use aiacc_simnet::Token;
/// const KIND_GRAD_READY: u32 = 1;
/// let t = Token { kind: KIND_GRAD_READY, a: 3, b: 17 };
/// assert_eq!(t.a, 3);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Token {
    /// Event family (defined by the scheduling layer).
    pub kind: u32,
    /// First argument (e.g. a worker rank).
    pub a: u32,
    /// Second argument (e.g. a gradient or operation id).
    pub b: u64,
}

impl Token {
    /// Convenience constructor.
    pub const fn new(kind: u32, a: u32, b: u64) -> Self {
        Token { kind, a, b }
    }

    /// The scope stamped into this token's high kind bits by
    /// [`Simulator::set_token_scope`] (`0` = unscoped).
    pub const fn scope(self) -> u32 {
        self.kind >> TOKEN_SCOPE_SHIFT
    }

    /// The token kind with any scope stamp removed.
    pub const fn base_kind(self) -> u32 {
        self.kind & TOKEN_KIND_MASK
    }
}

/// Bit position of the scope stamp inside [`Token::kind`].
pub const TOKEN_SCOPE_SHIFT: u32 = 16;
/// Mask selecting the scope-free base kind.
pub const TOKEN_KIND_MASK: u32 = (1 << TOKEN_SCOPE_SHIFT) - 1;

/// An event yielded by [`Simulator::next_event`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A timer scheduled with [`Simulator::schedule`] has fired.
    Timer(Token),
    /// A network flow finished transferring all its bytes.
    FlowCompleted(FlowId),
    /// An installed fault was applied or lifted (see
    /// [`Simulator::install_faults`]). The capacity change has already been
    /// executed when this event is delivered.
    Fault(FaultRecord),
}

/// Discrete-event simulator combining a timer wheel with a [`FlowNet`].
///
/// Events are delivered in time order; ties are broken deterministically
/// (timers before flow completions at the same instant, timers in scheduling
/// order, flows in start order). Timers live in the same indexed
/// [`CalendarQueue`] structure the network uses for completion predictions,
/// so the per-event cost stays O(1) amortized at any fleet size.
///
/// # Example
/// ```
/// use aiacc_simnet::{Event, SimDuration, Simulator, Token};
/// let mut sim = Simulator::new();
/// sim.schedule(SimDuration::from_micros(5), Token::new(7, 0, 0));
/// let (t, ev) = sim.next_event().unwrap();
/// assert_eq!(t.as_nanos(), 5_000);
/// assert_eq!(ev, Event::Timer(Token::new(7, 0, 0)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Simulator {
    net: FlowNet,
    timers: CalendarQueue<Token>,
    /// Flow completions discovered together but not yet handed out.
    pending_flows: Vec<FlowId>,
    /// Compiled link-fault schedule (empty when no plan is installed).
    faults: FaultInjector,
    /// Every fault action executed so far, in order.
    fault_log: Vec<(SimTime, FaultRecord)>,
    /// Structured trace recorder (disabled — and free — by default).
    trace: TraceSink,
    /// Current token/flow scope (0 = unscoped). See
    /// [`Simulator::set_token_scope`].
    token_scope: u32,
    /// Bits of the last `active_flows` counter sample, for dedup: the
    /// counter is re-emitted only on an actual flow-count transition.
    last_flow_counter: Option<u64>,
}

impl Simulator {
    /// Creates an empty simulator at time zero.
    pub fn new() -> Self {
        Simulator::default()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.net.now()
    }

    /// The underlying network (e.g. to add resources or inspect utilization).
    pub fn net(&self) -> &FlowNet {
        &self.net
    }

    /// Mutable access to the underlying network.
    pub fn net_mut(&mut self) -> &mut FlowNet {
        &mut self.net
    }

    /// Schedules `token` to fire `delay` after the current time.
    pub fn schedule(&mut self, delay: SimDuration, token: Token) {
        self.schedule_at(self.now() + delay, token);
    }

    /// Schedules `token` at an absolute instant.
    ///
    /// While a token scope is armed ([`Self::set_token_scope`]) the scope is
    /// stamped into the token's high kind bits, so multiplexing drivers can
    /// route the timer back to the tenant that scheduled it.
    ///
    /// # Panics
    /// Panics if `at` is in the past, or if a scope is armed and the token's
    /// kind does not fit below [`TOKEN_SCOPE_SHIFT`].
    pub fn schedule_at(&mut self, at: SimTime, mut token: Token) {
        assert!(at >= self.now(), "scheduling in the past: {at} < {}", self.now());
        if self.token_scope != 0 {
            assert!(
                token.kind <= TOKEN_KIND_MASK,
                "token kind {} collides with the armed scope stamp",
                token.kind
            );
            token.kind |= self.token_scope << TOKEN_SCOPE_SHIFT;
        }
        self.timers.push(at.as_nanos(), token);
    }

    /// Arms (or with `0` clears) the *token scope*: every timer scheduled and
    /// every flow started while the scope is armed is stamped with it —
    /// timers in the high bits of [`Token::kind`], flows as their telemetry
    /// tag. This is how the multi-job scheduler multiplexes several tenants'
    /// engines over one shared event loop without threading a job id through
    /// every engine signature; with the scope at its default `0`, behavior is
    /// bit-identical to an unscoped simulator.
    ///
    /// # Panics
    /// Panics if `scope` does not fit above [`TOKEN_SCOPE_SHIFT`].
    pub fn set_token_scope(&mut self, scope: u32) {
        assert!(scope <= TOKEN_KIND_MASK, "scope {scope} out of range");
        self.token_scope = scope;
    }

    /// The currently armed token scope (`0` = unscoped).
    pub fn token_scope(&self) -> u32 {
        self.token_scope
    }

    /// Starts a network flow at the current time. While a token scope is
    /// armed ([`Self::set_token_scope`]), untagged specs inherit the scope as
    /// their telemetry tag.
    pub fn start_flow(&mut self, mut spec: FlowSpec) -> FlowId {
        if self.token_scope != 0 && spec.tag == 0 {
            spec.tag = self.token_scope;
        }
        let id = self.net.start_flow(spec);
        self.emit_flow_counter();
        id
    }

    /// Cancels a flow (see [`FlowNet::cancel_flow`]), recording the
    /// rate-change in the trace when tracing is armed. Returns `false` when
    /// the flow is unknown or already finished.
    pub fn cancel_flow(&mut self, id: FlowId) -> bool {
        let cancelled = self.net.cancel_flow(id);
        if cancelled {
            self.emit_flow_counter();
        }
        cancelled
    }

    /// Samples the `active_flows` trace counter if its value changed since
    /// the last sample. Called after every operation that can move the
    /// flow count — starts, cancellations, activations and completions — so
    /// Perfetto flow-count curves are exact between completions too.
    fn emit_flow_counter(&mut self) {
        if !self.trace.is_enabled() {
            return;
        }
        let n = self.net.active_flow_count() as f64;
        if self.last_flow_counter == Some(n.to_bits()) {
            return;
        }
        self.last_flow_counter = Some(n.to_bits());
        self.trace.counter(self.now(), track::NET, "active_flows", n);
    }

    /// Arms the structured trace sink; see [`crate::trace`]. Until this is
    /// called, every trace record is a no-op and simulation behavior is
    /// bit-identical to an un-instrumented run.
    pub fn enable_tracing(&mut self) {
        self.trace.enable();
    }

    /// Whether tracing is armed. Call sites that build event names with
    /// `format!` should check this first so the disabled path stays
    /// allocation-free.
    pub fn tracing_enabled(&self) -> bool {
        self.trace.is_enabled()
    }

    /// The trace sink (for export and summary analysis).
    pub fn trace(&self) -> &TraceSink {
        &self.trace
    }

    /// Mutable access to the trace sink.
    pub fn trace_mut(&mut self) -> &mut TraceSink {
        &mut self.trace
    }

    /// Opens a trace span on `(pid, tid)` at the current virtual time.
    pub fn trace_span_begin(&mut self, pid: u32, tid: u64, name: &str, cat: &'static str) {
        let t = self.now();
        self.trace.span_begin(t, pid, tid, name, cat);
    }

    /// Closes a trace span on `(pid, tid)` at the current virtual time.
    pub fn trace_span_end(&mut self, pid: u32, tid: u64, name: &str, cat: &'static str) {
        let t = self.now();
        self.trace.span_end(t, pid, tid, name, cat);
    }

    /// Records an instant trace event at the current virtual time.
    pub fn trace_instant(
        &mut self,
        pid: u32,
        tid: u64,
        name: &str,
        cat: &'static str,
        value: Option<f64>,
    ) {
        let t = self.now();
        self.trace.instant(t, pid, tid, name, cat, value);
    }

    /// Records a counter sample at the current virtual time.
    pub fn trace_counter(&mut self, pid: u32, name: &str, value: f64) {
        let t = self.now();
        self.trace.counter(t, pid, name, value);
    }

    /// Installs (replaces) the link-fault schedule of `plan`.
    ///
    /// Only resource-targeted degrade/flap events are executed by the
    /// simulator; node-scoped faults (stragglers, crashes) are data for
    /// higher layers — resolve node-targeted link faults with
    /// [`FaultPlan::resolve_links`] before installing. Fault actions are
    /// delivered as [`Event::Fault`] and take priority over timers and flow
    /// completions scheduled at the same instant, so handlers observe the
    /// post-fault capacities.
    ///
    /// # Panics
    /// Panics if any scheduled action is already in the past.
    pub fn install_faults(&mut self, plan: &FaultPlan) {
        let injector = FaultInjector::compile(plan);
        if let Some(first) = injector.next_at() {
            assert!(first >= self.now(), "fault scheduled in the past: {first} < {}", self.now());
        }
        self.faults = injector;
    }

    /// Every executed fault action so far, oldest first.
    pub fn fault_log(&self) -> &[(SimTime, FaultRecord)] {
        &self.fault_log
    }

    /// Whether the installed fault plan still has undelivered apply/restore
    /// actions. `false` means every fault has run to completion, so (for
    /// plans whose faults all carry durations) link capacities are back at
    /// their configured base values — one of the quiescence conditions the
    /// streaming scheduler requires before taking a snapshot.
    pub fn faults_pending(&self) -> bool {
        self.faults.next_at().is_some()
    }

    /// Returns the next event and advances virtual time to it, or `None` when
    /// neither timers, faults, nor flows remain.
    pub fn next_event(&mut self) -> Option<(SimTime, Event)> {
        if let Some(id) = self.pending_flows.pop() {
            return Some((self.now(), Event::FlowCompleted(id)));
        }
        // Iterative, not recursive: a network change can be an activation
        // with no completion to deliver, and arbitrarily long chains of
        // staggered flow latencies must not grow the stack.
        loop {
            let t_timer = self.timers.peek_time().map(SimTime::from_nanos);
            let t_flow = self.net.next_change();
            // Faults preempt both timers and flow events at the same instant
            // so that handlers always observe post-fault capacities.
            if let Some(tf) = self.faults.next_at() {
                let beats_timer = t_timer.is_none_or(|tt| tf <= tt);
                let beats_flow = t_flow.is_none_or(|tl| tf <= tl);
                if beats_timer && beats_flow {
                    self.net.advance_to(tf);
                    self.emit_flow_counter();
                    let rec = self.faults.apply_next(&mut self.net);
                    self.fault_log.push((tf, rec));
                    if self.trace.is_enabled() {
                        let name = format!("fault {:?} r{}", rec.phase, rec.resource.as_u32());
                        self.trace.instant(
                            tf,
                            track::NET,
                            0,
                            &name,
                            "fault",
                            Some(rec.capacity_after),
                        );
                    }
                    return Some((tf, Event::Fault(rec)));
                }
            }
            match (t_timer, t_flow) {
                (None, None) => return None,
                (Some(tt), tf) if tf.is_none_or(|tf| tt <= tf) => {
                    let (at_ns, token) = self.timers.pop().expect("peeked");
                    let at = SimTime::from_nanos(at_ns);
                    self.net.advance_to(at);
                    self.emit_flow_counter();
                    return Some((at, Event::Timer(token)));
                }
                (_, Some(tf)) => {
                    self.net.advance_to(tf);
                    let mut done = self.net.take_completed();
                    if done.is_empty() {
                        // The change was a flow activation, not a
                        // completion; sample the counter and keep looking.
                        self.emit_flow_counter();
                        continue;
                    }
                    // Deliver in start order: pop() takes from the back.
                    done.reverse();
                    self.pending_flows = done;
                    self.emit_flow_counter();
                    let id = self.pending_flows.pop().expect("nonempty");
                    return Some((self.now(), Event::FlowCompleted(id)));
                }
                // (Some, None) with a failed guard cannot happen: the guard
                // always passes when there is no flow event.
                (Some(_), None) => unreachable!(),
            }
        }
    }

    /// Runs the simulator until quiescent, invoking `handler` for every event.
    ///
    /// The handler receives the simulator itself so it can schedule follow-up
    /// timers and flows.
    pub fn run(&mut self, mut handler: impl FnMut(&mut Simulator, SimTime, Event)) {
        while let Some((t, ev)) = self.next_event() {
            handler(self, t, ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timers_fire_in_order_with_fifo_ties() {
        let mut sim = Simulator::new();
        sim.schedule(SimDuration::from_nanos(10), Token::new(1, 0, 0));
        sim.schedule(SimDuration::from_nanos(5), Token::new(2, 0, 0));
        sim.schedule(SimDuration::from_nanos(10), Token::new(3, 0, 0));
        let kinds: Vec<u32> = std::iter::from_fn(|| sim.next_event())
            .map(|(_, ev)| match ev {
                Event::Timer(t) => t.kind,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(kinds, vec![2, 1, 3]);
    }

    #[test]
    fn flows_and_timers_interleave() {
        let mut sim = Simulator::new();
        let r = sim.net_mut().add_resource("l", 10.0);
        sim.start_flow(FlowSpec::new(vec![r], 20.0)); // completes at t=2s
        sim.schedule(SimDuration::from_secs_f64(1.0), Token::new(9, 0, 0));
        let (t1, e1) = sim.next_event().unwrap();
        assert_eq!(e1, Event::Timer(Token::new(9, 0, 0)));
        assert!((t1.as_secs_f64() - 1.0).abs() < 1e-9);
        let (t2, e2) = sim.next_event().unwrap();
        assert!(matches!(e2, Event::FlowCompleted(_)));
        assert!((t2.as_secs_f64() - 2.0).abs() < 1e-6);
        assert!(sim.next_event().is_none());
    }

    #[test]
    fn simultaneous_flow_completions_delivered_in_id_order() {
        let mut sim = Simulator::new();
        let r = sim.net_mut().add_resource("l", 10.0);
        let a = sim.start_flow(FlowSpec::new(vec![r], 20.0));
        let b = sim.start_flow(FlowSpec::new(vec![r], 20.0));
        let mut ids = Vec::new();
        while let Some((_, ev)) = sim.next_event() {
            if let Event::FlowCompleted(id) = ev {
                ids.push(id);
            }
        }
        assert_eq!(ids, vec![a, b]);
    }

    #[test]
    fn handler_can_chain_work() {
        let mut sim = Simulator::new();
        let r = sim.net_mut().add_resource("l", 100.0);
        sim.schedule(SimDuration::from_nanos(1), Token::new(1, 0, 0));
        let mut completions = 0;
        sim.run(|s, _, ev| match ev {
            Event::Timer(tok) if tok.kind == 1 => {
                s.start_flow(FlowSpec::new(vec![r], 50.0));
            }
            Event::FlowCompleted(_) => completions += 1,
            _ => {}
        });
        assert_eq!(completions, 1);
    }

    #[test]
    fn schedule_at_past_panics() {
        let mut sim = Simulator::new();
        sim.schedule(SimDuration::from_nanos(100), Token::default());
        let _ = sim.next_event();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sim.schedule_at(SimTime::from_nanos(5), Token::default());
        }));
        assert!(result.is_err());
    }

    #[test]
    fn empty_sim_yields_none() {
        assert!(Simulator::new().next_event().is_none());
    }

    #[test]
    fn activation_only_chains_do_not_overflow_stack() {
        // Regression: next_event used to recurse on activation-only network
        // changes, so thousands of consecutive staggered flow latencies
        // overflowed the stack. Each flow sits on its own resource in its
        // own solver group, so each activation re-solves a one-flow
        // component and the chain cost stays O(1) per event.
        let mut sim = Simulator::new();
        let n: u64 = 20_000;
        for i in 0..n {
            let r = sim.net_mut().add_resource_in_group(format!("r{i}"), 1.0, i as u32);
            // All flows transfer for ~1s; activations are staggered 1ns
            // apart, so the first completion comes after every activation.
            sim.start_flow(
                FlowSpec::new(vec![r], 1.0).with_latency(SimDuration::from_nanos(i + 1)),
            );
        }
        // One next_event call must chew through all n activation-only
        // changes iteratively before yielding the first completion.
        let (t, ev) = sim.next_event().unwrap();
        assert!(matches!(ev, Event::FlowCompleted(_)));
        assert!(t.as_secs_f64() > 1.0);
        let mut completions = 1;
        while let Some((_, ev)) = sim.next_event() {
            assert!(matches!(ev, Event::FlowCompleted(_)));
            completions += 1;
        }
        assert_eq!(completions, n);
    }

    #[test]
    fn flow_counter_emitted_on_every_transition() {
        let mut sim = Simulator::new();
        sim.enable_tracing();
        let r = sim.net_mut().add_resource("l", 10.0);
        // One immediate flow, one delayed: the counter must step on the
        // start (1), the activation (2), and each completion (1, then 0).
        sim.start_flow(FlowSpec::new(vec![r], 10.0));
        sim.start_flow(FlowSpec::new(vec![r], 40.0).with_latency(SimDuration::from_millis(1)));
        while sim.next_event().is_some() {}
        let counters: Vec<f64> = sim
            .trace()
            .events()
            .iter()
            .filter(|e| e.phase == crate::trace::TracePhase::Counter && e.name == "active_flows")
            .filter_map(|e| e.value)
            .collect();
        assert_eq!(counters, vec![1.0, 2.0, 1.0, 0.0], "got {counters:?}");
    }
}
