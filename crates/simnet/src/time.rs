//! Virtual time types for the simulator.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in virtual simulation time, measured in nanoseconds from the
/// start of the simulation.
///
/// `SimTime` is a thin newtype over `u64` so it is `Copy`, totally ordered and
/// hashable; arithmetic with [`SimDuration`] is provided via `+`/`-`.
///
/// # Example
/// ```
/// use aiacc_simnet::{SimDuration, SimTime};
/// let t = SimTime::ZERO + SimDuration::from_micros(3);
/// assert_eq!(t.as_nanos(), 3_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of virtual time in nanoseconds.
///
/// # Example
/// ```
/// use aiacc_simnet::SimDuration;
/// assert_eq!(SimDuration::from_millis(2).as_secs_f64(), 0.002);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `nanos` nanoseconds after simulation start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant from (possibly fractional) seconds.
    ///
    /// # Panics
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid sim time: {secs}");
        SimTime((secs * 1e9).round() as u64)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating difference between two instants.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// A zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration of `nanos` nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration of `us` microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration of `ms` milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from (possibly fractional) seconds.
    ///
    /// # Panics
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration: {secs}");
        SimDuration((secs * 1e9).round() as u64)
    }

    /// The duration in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration in seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration scaled by a non-negative factor, saturating at the largest
    /// representable duration.
    ///
    /// Saturation matters for exponential backoffs (the engine stall
    /// watchdog doubles its timeout per retry, up to 2^16×): a product
    /// beyond `u64::MAX` nanoseconds clamps instead of producing a bogus
    /// value, and adding the clamped duration to any [`SimTime`] saturates
    /// at [`SimTime::MAX`] rather than wrapping into the past.
    ///
    /// # Panics
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> Self {
        assert!(factor.is_finite() && factor >= 0.0);
        let scaled = self.0 as f64 * factor;
        if scaled >= u64::MAX as f64 {
            SimDuration(u64::MAX)
        } else {
            SimDuration(scaled.round() as u64)
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        assert!(self.0 >= rhs.0, "sim time went backwards: {self} - {rhs}");
        SimDuration(self.0 - rhs.0)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_roundtrip_secs() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn add_duration_to_time() {
        let t = SimTime::from_nanos(100) + SimDuration::from_nanos(50);
        assert_eq!(t.as_nanos(), 150);
    }

    #[test]
    fn subtract_times_gives_duration() {
        let a = SimTime::from_nanos(500);
        let b = SimTime::from_nanos(200);
        assert_eq!((a - b).as_nanos(), 300);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn subtract_backwards_panics() {
        let _ = SimTime::from_nanos(1) - SimTime::from_nanos(2);
    }

    #[test]
    fn saturating_since_never_panics() {
        let a = SimTime::from_nanos(1);
        let b = SimTime::from_nanos(2);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a).as_nanos(), 1);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_micros(1).as_nanos(), 1_000);
        assert_eq!(SimDuration::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimDuration::from_secs_f64(0.001), SimDuration::from_millis(1));
    }

    #[test]
    fn mul_f64_scales() {
        assert_eq!(SimDuration::from_nanos(100).mul_f64(2.5).as_nanos(), 250);
    }

    #[test]
    fn mul_f64_saturates_instead_of_wrapping() {
        // The stall-watchdog backoff multiplies a base timeout by up to
        // 2^16; a 10^9-second base (~31 years of sim time) overflows u64
        // nanoseconds and must clamp, not wrap.
        let base = SimDuration::from_secs_f64(1e9);
        let backoff = base.mul_f64(f64::from(1u32 << 16));
        assert_eq!(backoff.as_nanos(), u64::MAX);
        // Scheduling the clamped backoff lands at SimTime::MAX, never in
        // the past.
        assert_eq!(SimTime::ZERO + backoff, SimTime::MAX);
        assert_eq!(SimTime::from_secs_f64(5.0) + backoff, SimTime::MAX);
    }

    #[test]
    fn mul_f64_exact_at_boundary() {
        assert_eq!(SimDuration::from_nanos(u64::MAX).mul_f64(1.0).as_nanos(), u64::MAX);
        assert_eq!(SimDuration::from_nanos(u64::MAX).mul_f64(0.0).as_nanos(), 0);
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(format!("{}", SimTime::from_secs_f64(0.25)), "0.250000s");
    }
}
