//! Utilization telemetry over fluid-network resources.
//!
//! The bandwidth-utilization analysis of AIACC-Training §III ("a single
//! communication stream can only utilize at most 30 % of the bandwidth")
//! is a *time-averaged* measurement; this module provides the probe that
//! takes it: average utilization of a resource between two sample points,
//! derived from the cumulative bytes-carried counter.

use crate::faults::FaultRecord;
use crate::flownet::{FlowNet, ResourceId};
use crate::time::SimTime;

/// A utilization sample annotated with the fault actions that landed on the
/// probed resource during the sampling window.
///
/// `utilization` is measured against the probe's *baseline* capacity (the
/// capacity at probe construction), so a link degraded to half capacity that
/// stays saturated reads ~0.5, making fault impact visible in the telemetry
/// stream rather than silently renormalized away. `capacity_now` carries the
/// effective (possibly degraded) capacity at sample time for consumers that
/// want the relative view.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnotatedSample {
    /// Average utilization over the window, relative to baseline capacity.
    pub utilization: f64,
    /// Effective capacity of the resource at the end of the window.
    pub capacity_now: f64,
    /// Fault applications/restorations on this resource inside the window
    /// (half-open: strictly after the previous sample, up to and including
    /// this one). The probe's *first* window is closed on the left instead —
    /// it also includes faults applied at exactly the probe's creation time,
    /// so a boundary fault is attributed to exactly one window rather than
    /// none.
    pub faults: Vec<(SimTime, FaultRecord)>,
}

/// Windowed average-utilization probe for one resource.
///
/// # Example
/// ```
/// use aiacc_simnet::{FlowNet, FlowSpec, SimTime, UtilizationProbe};
/// let mut net = FlowNet::new();
/// let r = net.add_resource("nic", 100.0);
/// let mut probe = UtilizationProbe::new(&net, r);
/// net.start_flow(FlowSpec::new(vec![r], 1000.0).with_rate_cap(30.0));
/// net.next_change(); // compute rates
/// net.advance_to(SimTime::from_secs_f64(2.0));
/// let u = probe.sample(&net);
/// assert!((u - 0.30).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct UtilizationProbe {
    resource: ResourceId,
    capacity: f64,
    last_carried: f64,
    last_time: SimTime,
    /// Whether the next sample is the probe's first window, which includes
    /// its left boundary (faults at exactly the creation instant).
    first_window: bool,
}

impl UtilizationProbe {
    /// Starts a probe at the network's current time.
    pub fn new(net: &FlowNet, resource: ResourceId) -> Self {
        UtilizationProbe {
            resource,
            capacity: net.resource(resource).capacity,
            last_carried: net.carried_bytes(resource),
            last_time: net.now(),
            first_window: true,
        }
    }

    /// The probed resource.
    pub fn resource(&self) -> ResourceId {
        self.resource
    }

    /// Average utilization (0–1) since the previous sample (or creation),
    /// and resets the window. Returns 0 when no time has passed.
    pub fn sample(&mut self, net: &FlowNet) -> f64 {
        let carried = net.carried_bytes(self.resource);
        let now = net.now();
        let dt = now.saturating_since(self.last_time).as_secs_f64();
        let moved = carried - self.last_carried;
        self.last_carried = carried;
        self.last_time = now;
        self.first_window = false;
        if dt <= 0.0 {
            0.0
        } else {
            moved / (self.capacity * dt)
        }
    }

    /// Like [`UtilizationProbe::sample`], but also reports the resource's
    /// current effective capacity and the fault actions that hit it during
    /// the window. Pass [`crate::Simulator::fault_log`] as `fault_log`; the
    /// probe filters it down to its own resource and window.
    pub fn sample_annotated(
        &mut self,
        net: &FlowNet,
        fault_log: &[(SimTime, FaultRecord)],
    ) -> AnnotatedSample {
        let window_start = self.last_time;
        // The first window includes its left boundary: a fault applied at
        // exactly the probe's creation time belongs to this window, not to
        // no window at all. Later windows stay half-open (a boundary fault
        // was already reported by the sample ending at that instant).
        let include_start = self.first_window;
        let utilization = self.sample(net);
        let window_end = self.last_time;
        let faults = fault_log
            .iter()
            .filter(|(t, rec)| {
                rec.resource == self.resource
                    && (*t > window_start || (include_start && *t == window_start))
                    && *t <= window_end
            })
            .copied()
            .collect();
        AnnotatedSample { utilization, capacity_now: net.resource(self.resource).capacity, faults }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowSpec;

    #[test]
    fn measures_capped_flow_share() {
        let mut net = FlowNet::new();
        let r = net.add_resource("nic", 1000.0);
        let mut probe = UtilizationProbe::new(&net, r);
        net.start_flow(FlowSpec::new(vec![r], 1e6).with_rate_cap(250.0));
        net.next_change();
        net.advance_to(SimTime::from_secs_f64(4.0));
        assert!((probe.sample(&net) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn window_resets_between_samples() {
        let mut net = FlowNet::new();
        let r = net.add_resource("nic", 100.0);
        let mut probe = UtilizationProbe::new(&net, r);
        // Busy window.
        let f = net.start_flow(FlowSpec::new(vec![r], 1e9));
        net.next_change();
        net.advance_to(SimTime::from_secs_f64(1.0));
        assert!((probe.sample(&net) - 1.0).abs() < 1e-9);
        // Idle window.
        net.cancel_flow(f);
        net.advance_to(SimTime::from_secs_f64(3.0));
        assert_eq!(probe.sample(&net), 0.0);
    }

    #[test]
    fn zero_elapsed_time_is_zero_not_nan() {
        let mut net = FlowNet::new();
        let r = net.add_resource("nic", 100.0);
        let mut probe = UtilizationProbe::new(&net, r);
        assert_eq!(probe.sample(&net), 0.0);
    }

    #[test]
    fn boundary_fault_lands_in_first_window_exactly_once() {
        use crate::faults::FaultPhase;
        let mut net = FlowNet::new();
        let r = net.add_resource("nic", 100.0);
        let other = net.add_resource("other", 100.0);
        let mut probe = UtilizationProbe::new(&net, r);
        // A fault applied at exactly the probe's creation time (t=0): the
        // old strictly-greater filter attributed it to *no* window.
        let fault_log = vec![
            (
                SimTime::ZERO,
                FaultRecord {
                    resource: r,
                    phase: FaultPhase::Applied,
                    capacity_before: 100.0,
                    capacity_after: 50.0,
                },
            ),
            (
                SimTime::ZERO,
                FaultRecord {
                    resource: other,
                    phase: FaultPhase::Applied,
                    capacity_before: 100.0,
                    capacity_after: 50.0,
                },
            ),
        ];
        net.advance_to(SimTime::from_secs_f64(1.0));
        let first = probe.sample_annotated(&net, &fault_log);
        assert_eq!(first.faults.len(), 1, "boundary fault missing from the first window");
        assert_eq!(first.faults[0].0, SimTime::ZERO);
        assert_eq!(first.faults[0].1.resource, r);
        // The next window must not report it again.
        net.advance_to(SimTime::from_secs_f64(2.0));
        let second = probe.sample_annotated(&net, &fault_log);
        assert!(second.faults.is_empty(), "boundary fault double-counted");
    }

    #[test]
    fn sample_boundary_fault_belongs_to_the_earlier_window() {
        use crate::faults::FaultPhase;
        let mut net = FlowNet::new();
        let r = net.add_resource("nic", 100.0);
        let mut probe = UtilizationProbe::new(&net, r);
        net.advance_to(SimTime::from_secs_f64(1.0));
        let fault_log = vec![(
            SimTime::from_secs_f64(1.0),
            FaultRecord {
                resource: r,
                phase: FaultPhase::Applied,
                capacity_before: 100.0,
                capacity_after: 50.0,
            },
        )];
        let first = probe.sample_annotated(&net, &fault_log);
        assert_eq!(first.faults.len(), 1);
        net.advance_to(SimTime::from_secs_f64(2.0));
        let second = probe.sample_annotated(&net, &fault_log);
        assert!(second.faults.is_empty());
    }

    #[test]
    fn carried_bytes_accumulate_across_flows() {
        let mut net = FlowNet::new();
        let r = net.add_resource("nic", 10.0);
        net.start_flow(FlowSpec::new(vec![r], 30.0));
        while let Some(t) = net.next_change() {
            net.advance_to(t);
            net.take_completed();
        }
        net.start_flow(FlowSpec::new(vec![r], 20.0));
        while let Some(t) = net.next_change() {
            net.advance_to(t);
            net.take_completed();
        }
        assert!((net.carried_bytes(r) - 50.0).abs() < 1e-6);
    }
}
