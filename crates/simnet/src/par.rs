//! `aiacc-par`: a deterministic fan-out runner for independent simulations.
//!
//! Every sweep in this repository — figure generators, the batched
//! auto-tuner, ablations — evaluates *independent, fully-seeded*
//! simulations. Each job is a pure function of its input, so executing the
//! jobs on N worker threads and collecting results **in submission order**
//! yields output bit-identical to a serial run: parallelism changes only
//! wall-clock time, never a single byte of any table or report. This is the
//! same argument the paper makes for filling idle link capacity with
//! concurrent gradient streams, applied to our own harness (see
//! `DESIGN.md`, "Deterministic parallel execution").
//!
//! Worker count resolution, in priority order:
//!
//! 1. an explicit process-wide override installed with [`set_jobs`]
//!    (the `--jobs N` flag of `aiacc-sim` and `repro`),
//! 2. the `AIACC_JOBS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! # Example
//! ```
//! use aiacc_simnet::par;
//! // Results arrive in submission order regardless of worker interleaving.
//! let squares = par::map_indexed(8, 4, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Process-wide worker-count override; 0 = unset.
static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Installs (or with `0` clears) a process-wide worker-count override that
/// takes precedence over `AIACC_JOBS` and the detected CPU count.
///
/// Calling this is optional: it exists so CLI `--jobs N` flags and tests can
/// steer the fan-out without touching the environment. Changing the worker
/// count never changes results — only how long they take.
pub fn set_jobs(n: usize) {
    JOBS_OVERRIDE.store(n, Ordering::SeqCst);
}

/// The worker count [`map`] uses: the [`set_jobs`] override if installed,
/// else `AIACC_JOBS`, else the machine's available parallelism (at least 1).
pub fn jobs() -> usize {
    let over = JOBS_OVERRIDE.load(Ordering::SeqCst);
    if over > 0 {
        return over;
    }
    static ENV_DEFAULT: OnceLock<usize> = OnceLock::new();
    *ENV_DEFAULT.get_or_init(|| {
        std::env::var("AIACC_JOBS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
    })
}

/// Runs `f(0..n)` on up to `jobs` workers of the shared persistent pool
/// ([`crate::pool`]) and returns the results **in index order**. With
/// `jobs <= 1` (or fewer than two items) everything runs inline on the
/// caller's thread — the parallel and serial paths produce identical output
/// by construction, because each slot `i` holds exactly `f(i)` either way.
///
/// Work is claimed dynamically in chunks (an atomic cursor advanced
/// `chunk` indices at a time), so stragglers don't serialize the batch and
/// tiny jobs don't thrash the cursor; determinism is unaffected because
/// execution order never feeds back into any result. If the pool is
/// already owned by an enclosing fan-out, the whole map runs inline — a
/// sweep of simulations each solving on the pool never oversubscribes the
/// machine.
///
/// # Panics
/// Panics if `f` panics for any index (worker panics propagate to the
/// caller once the fan-out completes).
pub fn map_indexed<R, F>(n: usize, jobs: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = jobs.max(1).min(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    // Chunked claiming: aim for ~8 claims per worker so dynamic balancing
    // survives while cursor traffic stays negligible for large `n`.
    let chunk = (n / (workers * 8)).max(1);
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    crate::pool::run(workers, &|_w| loop {
        let lo = next.fetch_add(chunk, Ordering::Relaxed);
        if lo >= n {
            break;
        }
        let hi = (lo + chunk).min(n);
        for (i, slot) in slots.iter().enumerate().take(hi).skip(lo) {
            let result = f(i);
            *slot.lock().expect("result slot poisoned") = Some(result);
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().expect("result slot poisoned").expect("worker filled every slot"))
        .collect()
}

/// Maps `f` over `items` with the ambient worker count ([`jobs`]), returning
/// results in item order. The convenience form every sweep uses.
pub fn map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    map_indexed(items.len(), jobs(), |i| f(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn results_arrive_in_submission_order() {
        // Make early jobs the slowest so workers finish out of order.
        let out = map_indexed(16, 4, |i| {
            std::thread::sleep(std::time::Duration::from_micros((16 - i as u64) * 50));
            i * 10
        });
        assert_eq!(out, (0..16).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn output_is_identical_across_worker_counts() {
        let f = |i: usize| (i as f64).sqrt() * 3.0 + i as f64;
        let serial = map_indexed(33, 1, f);
        for jobs in [2, 3, 8, 64] {
            assert_eq!(map_indexed(33, jobs, f), serial, "jobs={jobs}");
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let count = AtomicU32::new(0);
        let out = map_indexed(100, 8, |i| {
            count.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(out.len(), 100);
        assert_eq!(count.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn empty_and_single_inputs_work() {
        assert_eq!(map_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(map_indexed(1, 4, |i| i + 7), vec![7]);
    }

    #[test]
    fn map_borrows_items() {
        let items = vec!["a".to_string(), "bb".to_string(), "ccc".to_string()];
        let lens = map(&items, |s| s.len());
        assert_eq!(lens, vec![1, 2, 3]);
    }

    #[test]
    fn override_takes_precedence() {
        // Save/restore around the assertion: other tests read the override.
        set_jobs(3);
        assert_eq!(jobs(), 3);
        set_jobs(0);
        assert!(jobs() >= 1);
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            map_indexed(8, 4, |i| {
                assert!(i != 5, "boom");
                i
            })
        });
        assert!(result.is_err());
    }
}
