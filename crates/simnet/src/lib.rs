//! Deterministic discrete-event simulation engine with a fluid-flow network.
//!
//! This crate is the bottom layer of the AIACC-Training reproduction. It
//! provides:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution virtual time.
//! * [`FlowNet`] — a *fluid* network model: named [`Resource`]s (link ports)
//!   with a byte/second capacity, and [`Flow`]s that each load a path of
//!   resources. Rates are solved with **progressive-filling max-min fairness**
//!   plus an optional **per-flow rate cap**, which is how we reproduce the
//!   paper's observation that a single TCP stream utilizes at most ~30 % of a
//!   VPC link (AIACC-Training §III).
//! * [`Simulator`] — a combined event loop: user timers (opaque [`Token`]s)
//!   interleaved with flow completions, always popped in deterministic order.
//! * [`FaultPlan`] — deterministic, seeded fault injection: link capacity
//!   degradation and flaps executed by the simulator itself (surfaced as
//!   [`Event::Fault`]), plus node-scoped stragglers and crashes consumed by
//!   the training layers.
//! * [`trace`] — `aiacc-trace`: a zero-overhead-when-off structured tracing
//!   sink ([`TraceSink`]) owned by the simulator, with Chrome-trace/Perfetto
//!   JSON export and overlap/busy-time summaries.
//! * [`par`] — a deterministic fan-out runner: independent seeded
//!   simulations execute on N worker threads with results collected in
//!   submission order, so parallel sweeps are bit-identical to serial runs
//!   (`--jobs N` / `AIACC_JOBS`).
//!
//! # Example
//!
//! ```
//! use aiacc_simnet::{FlowSpec, SimDuration, Simulator, Event};
//!
//! let mut sim = Simulator::new();
//! // A 10-byte/s link; two flows share it fairly.
//! let link = sim.net_mut().add_resource("link", 10.0);
//! sim.start_flow(FlowSpec::new(vec![link], 30.0));
//! sim.start_flow(FlowSpec::new(vec![link], 50.0));
//! let mut done = Vec::new();
//! while let Some((t, ev)) = sim.next_event() {
//!     if let Event::FlowCompleted(id) = ev {
//!         done.push((t.as_secs_f64(), id));
//!     }
//! }
//! // Both get 5 B/s until the first finishes at t=6s; the second then runs
//! // at 10 B/s and finishes its remaining 20 bytes at t=8s.
//! assert_eq!(done.len(), 2);
//! assert!((done[0].0 - 6.0).abs() < 1e-6);
//! assert!((done[1].0 - 8.0).abs() < 1e-6);
//! ```

// `deny` rather than `forbid`: the worker pool's lifetime erasure is the
// one sanctioned use of `unsafe` in this crate (see `pool::ErasedFn`);
// every other module stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod calq;
mod faults;
mod flow;
mod flownet;
pub mod par;
pub mod pool;
mod sim;
mod telemetry;
mod time;
pub mod trace;

pub use calq::CalendarQueue;
pub use faults::{FaultEvent, FaultKind, FaultPhase, FaultPlan, FaultRecord, FaultTarget};
pub use flow::{Flow, FlowId, FlowSpec};
pub use flownet::{
    set_default_solve_mode, FlowNet, Resource, ResourceId, SolveBreakdown, SolveMode, SolverStats,
};
pub use sim::{Event, Simulator, Token, TOKEN_KIND_MASK, TOKEN_SCOPE_SHIFT};
pub use telemetry::{AnnotatedSample, UtilizationProbe};
pub use time::{SimDuration, SimTime};
pub use trace::{TraceEvent, TracePhase, TraceSink, TraceSummary};
