//! Flow identifiers and specifications for the fluid network model.

use crate::flownet::ResourceId;
use crate::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a flow inside a [`crate::FlowNet`].
///
/// Flow ids are unique for the lifetime of a network (never reused). The id
/// packs a storage slot index and a per-slot generation counter; a slot
/// reused by a later flow gets a new generation, so a stale id held after
/// its flow completed never resolves to the replacement flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FlowId(pub(crate) u64);

impl FlowId {
    /// The raw id value (useful as a map key in user code).
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "flow#{}", self.0)
    }
}

/// Specification of a data transfer over a path of network resources.
///
/// A flow moves `bytes` bytes. While active it loads *every* resource on its
/// `path` simultaneously (e.g. source NIC tx + destination NIC rx). Before any
/// data moves, the flow waits for `latency` (propagation + protocol setup),
/// during which it consumes no bandwidth.
///
/// `rate_cap` models the paper's key observation: a *single* communication
/// stream cannot exceed a fraction of the physical link bandwidth (≤30 % on
/// VPC TCP, 5–10 % on RDMA — AIACC-Training §III). Multiple concurrent flows
/// each get their own cap, so aggregate utilization grows with concurrency.
///
/// # Example
/// ```
/// use aiacc_simnet::{FlowSpec, SimDuration};
/// let spec = FlowSpec::new(vec![], 1024.0)
///     .with_rate_cap(1e9)
///     .with_latency(SimDuration::from_micros(25));
/// assert_eq!(spec.bytes, 1024.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowSpec {
    /// Resources loaded while the flow is active.
    pub path: Vec<ResourceId>,
    /// Number of bytes to transfer. Must be non-negative and finite.
    pub bytes: f64,
    /// Optional maximum rate for this flow in bytes/second.
    pub rate_cap: Option<f64>,
    /// Startup latency before the first byte moves.
    pub latency: SimDuration,
    /// Telemetry tag (`0` = untagged). The multi-job scheduler stamps each
    /// flow with its owning job's scope so per-job delivered bytes can be
    /// audited on a shared fabric — see
    /// [`crate::FlowNet::delivered_bytes_by_tag`]. Tags never influence rate
    /// allocation or event ordering.
    pub tag: u32,
}

impl FlowSpec {
    /// Creates a flow moving `bytes` bytes over `path`, uncapped, zero latency.
    ///
    /// # Panics
    /// Panics if `bytes` is negative or not finite.
    pub fn new(path: Vec<ResourceId>, bytes: f64) -> Self {
        assert!(bytes.is_finite() && bytes >= 0.0, "invalid flow size: {bytes}");
        FlowSpec { path, bytes, rate_cap: None, latency: SimDuration::ZERO, tag: 0 }
    }

    /// Tags the flow for per-tag byte accounting (`0` = untagged).
    pub fn with_tag(mut self, tag: u32) -> Self {
        self.tag = tag;
        self
    }

    /// Limits the flow to at most `cap` bytes/second.
    ///
    /// # Panics
    /// Panics if `cap` is not strictly positive and finite.
    pub fn with_rate_cap(mut self, cap: f64) -> Self {
        assert!(cap.is_finite() && cap > 0.0, "invalid rate cap: {cap}");
        self.rate_cap = Some(cap);
        self
    }

    /// Adds startup latency before data begins to move.
    pub fn with_latency(mut self, latency: SimDuration) -> Self {
        self.latency = latency;
        self
    }
}

/// Runtime state of an active flow (read-only view exposed by
/// [`crate::FlowNet::flow`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Flow {
    /// The immutable specification this flow was started with.
    pub spec: FlowSpec,
    /// Bytes still to transfer.
    pub remaining: f64,
    /// Current allocated rate in bytes/second (0 while in the latency phase).
    pub rate: f64,
    /// Whether the latency phase has elapsed and the flow is moving data.
    pub active: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_fields() {
        let s =
            FlowSpec::new(vec![], 10.0).with_rate_cap(5.0).with_latency(SimDuration::from_nanos(7));
        assert_eq!(s.rate_cap, Some(5.0));
        assert_eq!(s.latency.as_nanos(), 7);
    }

    #[test]
    #[should_panic(expected = "invalid flow size")]
    fn negative_bytes_rejected() {
        let _ = FlowSpec::new(vec![], -1.0);
    }

    #[test]
    #[should_panic(expected = "invalid rate cap")]
    fn zero_cap_rejected() {
        let _ = FlowSpec::new(vec![], 1.0).with_rate_cap(0.0);
    }
}
