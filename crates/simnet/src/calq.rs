//! A deterministic calendar queue (bucketed timer wheel) for event times.
//!
//! Classic binary heaps pay `O(log n)` per operation and — more importantly
//! for this codebase — interleave poorly with the lazy-invalidation scheme
//! the fluid network uses for completion predictions (a heap cannot cheaply
//! drop entries that became stale). A calendar queue [Brown 1988] hashes
//! each entry into a bucket by `time >> shift` (bucket width `2^shift` ns)
//! and finds the minimum by walking days from a monotone cursor, giving
//! amortized `O(1)` push/pop for the near-sorted, mostly-monotone event
//! streams a discrete-event simulator produces.
//!
//! Determinism: ties are broken by insertion order (an internal sequence
//! stamp), so two runs performing the same pushes pop the same entries in
//! the same order regardless of bucket layout or resize history. Nothing in
//! the structure depends on addresses, hashing randomness, or wall time.
//!
//! Entries far beyond the current one-year horizon (`nbuckets` days) are
//! parked in an overflow list and migrated into the wheel as the cursor
//! approaches them, so a single far-future watchdog timer cannot degrade
//! the common case.

/// One queued entry: an absolute time in nanoseconds, the insertion stamp
/// used for deterministic tie-breaks, and the caller's payload.
#[derive(Debug, Clone)]
struct Entry<T> {
    at: u64,
    seq: u64,
    item: T,
}

// Buckets are binary heaps, so a degenerate bucket (thousands of entries at
// one instant — e.g. a barrier activating a whole cluster's flows at the
// same nanosecond) costs `O(log n)` per pop instead of a linear rescan.
// Ordering is *reversed* on `(at, seq)` — `seq` is unique, so this is a
// total order and `BinaryHeap`'s max is the earliest entry — and ignores
// the payload entirely.
impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Deterministic calendar queue keyed by `u64` nanosecond timestamps.
///
/// # Example
/// ```
/// use aiacc_simnet::CalendarQueue;
/// let mut q = CalendarQueue::new();
/// q.push(50, "b");
/// q.push(10, "a");
/// q.push(50, "c"); // same instant as "b": FIFO by insertion
/// assert_eq!(q.pop(), Some((10, "a")));
/// assert_eq!(q.pop(), Some((50, "b")));
/// assert_eq!(q.pop(), Some((50, "c")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct CalendarQueue<T> {
    /// The wheel: `buckets.len()` is a power of two; an entry with day
    /// `d = at >> shift` inside the horizon lives in `buckets[d & mask]`,
    /// a min-on-`(at, seq)` heap (see the reversed [`Ord`] on [`Entry`]).
    buckets: Vec<std::collections::BinaryHeap<Entry<T>>>,
    /// Entries at or beyond the horizon when they were pushed, as a
    /// min-on-`(at, seq)` heap: migration pops only the eligible prefix
    /// instead of rescanning the whole overflow set.
    far: std::collections::BinaryHeap<Entry<T>>,
    /// log2 of the bucket width in nanoseconds.
    shift: u32,
    /// Search cursor: no *near* entry sits below this day once the scan has
    /// passed it (pushes behind the cursor move it back).
    day: u64,
    /// Entries currently in the wheel (not counting `far`).
    near: usize,
    /// Total entries.
    len: usize,
    /// Monotone insertion stamp for deterministic ties.
    seq: u64,
}

const MIN_BUCKETS: usize = 16;
const MAX_BUCKETS: usize = 1 << 20;

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        CalendarQueue {
            buckets: (0..MIN_BUCKETS).map(|_| std::collections::BinaryHeap::new()).collect(),
            far: std::collections::BinaryHeap::new(),
            // ~1 ms buckets until the first rebuild observes the real
            // inter-event spacing.
            shift: 20,
            day: 0,
            near: 0,
            len: 0,
            seq: 0,
        }
    }
}

impl<T> CalendarQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        CalendarQueue::default()
    }

    /// Number of queued entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn mask(&self) -> u64 {
        self.buckets.len() as u64 - 1
    }

    /// The first day at or past the wheel's current one-year window.
    fn horizon(&self) -> u64 {
        self.day.saturating_add(self.buckets.len() as u64)
    }

    /// Day of the earliest parked overflow entry (`u64::MAX` when none);
    /// `at → day` is monotone, so the heap minimum is also the day minimum.
    fn far_min_day(&self) -> u64 {
        self.far.peek().map_or(u64::MAX, |e| e.at >> self.shift)
    }

    /// Inserts `item` at absolute time `at` (nanoseconds).
    pub fn push(&mut self, at: u64, item: T) {
        self.seq += 1;
        let entry = Entry { at, seq: self.seq, item };
        let day = at >> self.shift;
        // A push behind the cursor (legal: "complete now" entries issued
        // while the cursor peeked ahead) moves the cursor back so the next
        // scan starts early enough to see it.
        if day < self.day {
            self.day = day;
        }
        if day < self.horizon() {
            let idx = (day & self.mask()) as usize;
            self.buckets[idx].push(entry);
            self.near += 1;
        } else {
            self.far.push(entry);
        }
        self.len += 1;
        if self.len > self.buckets.len() * 8 + 64 && self.buckets.len() < MAX_BUCKETS {
            self.rebuild();
        }
    }

    /// Moves overflow entries that now fall inside the window into the
    /// wheel. Only the eligible prefix of the overflow heap is touched, so
    /// a deep backlog of genuinely-far entries costs nothing per call.
    fn migrate_far(&mut self) {
        let horizon = self.horizon();
        let mask = self.mask();
        while let Some(e) = self.far.peek() {
            let day = e.at >> self.shift;
            if day >= horizon {
                break;
            }
            let e = self.far.pop().expect("peeked entry exists");
            self.buckets[(day & mask) as usize].push(e);
            self.near += 1;
        }
    }

    /// Locates the bucket holding the minimum entry (by `(at, seq)`),
    /// advancing the cursor. The winner is the bucket's heap top.
    fn find_min(&mut self) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        loop {
            if self.far_min_day() < self.horizon() {
                self.migrate_far();
            }
            if self.near == 0 {
                // Everything left is far in the future: jump the cursor there.
                self.day = self.far_min_day();
                self.migrate_far();
            }
            let b = self.scan_near().expect("near entries exist");
            // The candidate is the minimum *near* entry, but a parked far
            // entry can still precede (or tie) it: a backwards cursor pull
            // shrinks the window the far entries were judged against, and
            // `scan_all` may then leapfrog the cursor past `far_min_day`.
            // Migrate and rescan until the winner strictly precedes
            // everything still parked.
            let cday = self.buckets[b].peek().expect("winning bucket non-empty").at >> self.shift;
            if self.far_min_day() <= cday {
                self.day = self.far_min_day();
                self.migrate_far();
                continue;
            }
            return Some(b);
        }
    }

    /// Minimum *near* entry by `(at, seq)`: a year scan from the cursor with
    /// a full-scan fallback. Repositions the cursor on the winning day.
    fn scan_near(&mut self) -> Option<usize> {
        let nb = self.buckets.len() as u64;
        let mask = self.mask();
        for d in self.day..self.day.saturating_add(nb) {
            let b = (d & mask) as usize;
            if let Some(e) = self.buckets[b].peek() {
                // The heap top is the bucket's earliest entry, and no near
                // entry sits below the cursor (pushes behind it roll it
                // back), so a day mismatch means this bucket currently
                // holds only later years — skip it whole.
                if e.at >> self.shift == d {
                    self.day = d;
                    return Some(b);
                }
            }
        }
        // The cursor was pulled backwards past entries that were bucketed
        // under an older window (rare): fall back to a full scan.
        self.scan_all()
    }

    /// Full scan over every bucket top for the global minimum; repositions
    /// the cursor on its day.
    fn scan_all(&mut self) -> Option<usize> {
        let mut best: Option<(usize, u64, u64)> = None;
        for (b, bucket) in self.buckets.iter().enumerate() {
            if let Some(e) = bucket.peek() {
                let better = match best {
                    None => true,
                    Some((_, at, seq)) => (e.at, e.seq) < (at, seq),
                };
                if better {
                    best = Some((b, e.at, e.seq));
                }
            }
        }
        best.map(|(b, at, _)| {
            self.day = at >> self.shift;
            b
        })
    }

    /// The earliest queued time, without removing the entry.
    pub fn peek_time(&mut self) -> Option<u64> {
        let b = self.find_min()?;
        Some(self.buckets[b].peek().expect("winning bucket non-empty").at)
    }

    /// The earliest entry's time and payload, without removing it.
    pub fn peek(&mut self) -> Option<(u64, &T)> {
        let b = self.find_min()?;
        let e = self.buckets[b].peek().expect("winning bucket non-empty");
        Some((e.at, &e.item))
    }

    /// Removes and returns the earliest entry.
    pub fn pop(&mut self) -> Option<(u64, T)> {
        let b = self.find_min()?;
        let e = self.buckets[b].pop().expect("winning bucket non-empty");
        self.near -= 1;
        self.len -= 1;
        Some((e.at, e.item))
    }

    /// Removes and returns the earliest entry iff its time is `<= t`.
    pub fn pop_due(&mut self, t: u64) -> Option<(u64, T)> {
        let b = self.find_min()?;
        if self.buckets[b].peek().expect("winning bucket non-empty").at > t {
            return None;
        }
        let e = self.buckets[b].pop().expect("winning bucket non-empty");
        self.near -= 1;
        self.len -= 1;
        Some((e.at, e.item))
    }

    /// Keeps only entries whose payload satisfies `f`, preserving each
    /// survivor's time and insertion stamp (tie order is unchanged). Used to
    /// compact lazily-invalidated entries in one `O(n)` pass.
    pub fn retain(&mut self, mut f: impl FnMut(&T) -> bool) {
        let mut all: Vec<Entry<T>> = Vec::with_capacity(self.len);
        for bucket in &mut self.buckets {
            all.extend(bucket.drain().filter(|e| f(&e.item)));
        }
        all.extend(self.far.drain().filter(|e| f(&e.item)));
        self.reload(all);
    }

    /// Recomputes bucket width/count from the current population and
    /// redistributes every entry. Amortized against the pushes that grew
    /// the queue past its trigger.
    fn rebuild(&mut self) {
        let mut all: Vec<Entry<T>> = Vec::with_capacity(self.len);
        for bucket in &mut self.buckets {
            all.extend(bucket.drain());
        }
        all.extend(self.far.drain());
        self.reload(all);
    }

    /// Rebuilds the wheel around `all` (parameters chosen from its spread).
    fn reload(&mut self, all: Vec<Entry<T>>) {
        self.len = all.len();
        self.near = 0;
        self.far.clear();
        if all.is_empty() {
            for b in &mut self.buckets {
                b.clear();
            }
            return;
        }
        // Bucket width ~ the typical inter-event gap, from a sorted sample
        // of times with the top decile dropped (far-future watchdogs would
        // otherwise stretch every bucket).
        let mut times: Vec<u64> = all.iter().map(|e| e.at).collect();
        times.sort_unstable();
        let lo = times[0];
        let hi = times[times.len() - times.len() / 10 - 1];
        let span = hi.saturating_sub(lo).max(1);
        let want = self.len.next_power_of_two().clamp(MIN_BUCKETS, MAX_BUCKETS);
        // Bucket width: at least the mean inter-entry gap (so the cursor
        // scan stays short), then widened until the wheel's window covers
        // the trimmed span — buckets are heaps, so holding several entries
        // is cheap, while a window narrower than the population would park
        // the typical push in the overflow heap and pay three heap
        // operations per entry instead of one.
        let gap = (span / times.len() as u64).max(1);
        let mut shift = (63 - gap.leading_zeros()).clamp(6, 42);
        while shift < 42 && (span >> shift) >= want as u64 {
            shift += 1;
        }
        self.shift = shift;
        if self.buckets.len() != want {
            self.buckets = (0..want).map(|_| std::collections::BinaryHeap::new()).collect();
        } else {
            for b in &mut self.buckets {
                b.clear();
            }
        }
        self.day = lo >> self.shift;
        let horizon = self.horizon();
        let mask = self.mask();
        for e in all {
            let day = e.at >> self.shift;
            if day < horizon {
                self.buckets[(day & mask) as usize].push(e);
                self.near += 1;
            } else {
                self.far.push(e);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_with_fifo_ties() {
        let mut q = CalendarQueue::new();
        q.push(30, 1u32);
        q.push(10, 2);
        q.push(30, 3);
        q.push(20, 4);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec![(10, 2), (20, 4), (30, 1), (30, 3)]);
    }

    #[test]
    fn matches_a_reference_heap_on_mixed_workload() {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut q = CalendarQueue::new();
        let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        // Deterministic pseudo-random pushes over a wide time range,
        // interleaved with pops (monotone, as the simulator drives it).
        let mut x: u64 = 0x9e3779b97f4a7c15;
        let mut seq = 0u64;
        let mut now = 0u64;
        for round in 0..2000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let at = now + (x >> 40); // up to ~16.7M ns ahead
            seq += 1;
            q.push(at, seq);
            heap.push(Reverse((at, seq)));
            if round % 3 == 0 {
                let got = q.pop();
                let want = heap.pop().map(|Reverse(p)| p);
                assert_eq!(got, want);
                if let Some((at, _)) = got {
                    now = at;
                }
            }
        }
        while let Some(Reverse((at, s))) = heap.pop() {
            assert_eq!(q.pop(), Some((at, s)));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn far_future_entries_survive_migration() {
        let mut q = CalendarQueue::new();
        q.push(u64::MAX - 1, "watchdog");
        q.push(100, "soon");
        assert_eq!(q.pop(), Some((100, "soon")));
        assert_eq!(q.peek_time(), Some(u64::MAX - 1));
        assert_eq!(q.pop(), Some((u64::MAX - 1, "watchdog")));
        assert!(q.pop().is_none());
    }

    #[test]
    fn pop_due_respects_deadline() {
        let mut q = CalendarQueue::new();
        q.push(5, 'a');
        q.push(15, 'b');
        assert_eq!(q.pop_due(10), Some((5, 'a')));
        assert_eq!(q.pop_due(10), None);
        assert_eq!(q.pop_due(20), Some((15, 'b')));
    }

    #[test]
    fn retain_preserves_time_and_tie_order() {
        let mut q = CalendarQueue::new();
        for i in 0..100u32 {
            q.push(7, i); // all at the same instant
        }
        q.retain(|&i| i % 3 == 0);
        let mut prev = None;
        while let Some((at, i)) = q.pop() {
            assert_eq!(at, 7);
            assert_eq!(i % 3, 0);
            if let Some(p) = prev {
                assert!(i > p, "tie order disturbed: {i} after {p}");
            }
            prev = Some(i);
        }
    }

    #[test]
    fn rebuild_keeps_every_entry() {
        let mut q = CalendarQueue::new();
        for i in 0..5000u64 {
            q.push(i * 1000, i);
        }
        assert_eq!(q.len(), 5000);
        for i in 0..5000u64 {
            assert_eq!(q.pop(), Some((i * 1000, i)));
        }
    }

    #[test]
    fn far_entry_between_rolled_back_window_and_near_min_wins() {
        const DAY: u64 = 1 << 20; // default bucket width
        let mut q = CalendarQueue::new();
        q.push(996 * DAY, "a");
        assert_eq!(q.peek_time(), Some(996 * DAY)); // cursor jumps to day 996
        q.push(1012 * DAY, "b"); // exactly on the horizon: parked far
        q.push(1010 * DAY, "d"); // inside the window: near
        assert_eq!(q.pop(), Some((996 * DAY, "a")));
        assert_eq!(q.pop(), Some((1010 * DAY, "d"))); // cursor now at day 1010
        q.push(1015 * DAY, "c"); // near (the window reaches day 1026)
        q.push(990 * DAY, "f"); // rolls the cursor back to day 990
        assert_eq!(q.pop(), Some((990 * DAY, "f")));
        // "b" (far, day 1012) precedes "c" (near, day 1015) but sat outside
        // the rolled-back window; find_min must migrate and rescan rather
        // than trust the near minimum.
        assert_eq!(q.pop(), Some((1012 * DAY, "b")));
        assert_eq!(q.pop(), Some((1015 * DAY, "c")));
        assert!(q.is_empty());
    }

    #[test]
    fn push_behind_cursor_is_found() {
        let mut q = CalendarQueue::new();
        q.push(1 << 30, "late");
        assert_eq!(q.peek_time(), Some(1 << 30)); // cursor jumps far ahead
        q.push(5, "early");
        assert_eq!(q.pop(), Some((5, "early")));
        assert_eq!(q.pop(), Some((1 << 30, "late")));
    }
}
