//! Fluid-flow network: resources with capacities and flows that share them
//! under progressive-filling max-min fairness with per-flow rate caps.

use crate::flow::{Flow, FlowId, FlowSpec};
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a [`Resource`] (a link port, NIC direction, bus, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ResourceId(u32);

impl ResourceId {
    /// The raw index value.
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// Test-only constructor; ids are normally minted by
    /// [`FlowNet::add_resource`].
    #[cfg(test)]
    pub(crate) const fn from_index(i: u32) -> Self {
        ResourceId(i)
    }
}

impl fmt::Display for ResourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "res#{}", self.0)
    }
}

/// A capacity-limited network resource (e.g. one direction of a NIC).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Resource {
    /// Human-readable name used in diagnostics.
    pub name: String,
    /// Capacity in bytes/second. Strictly positive at creation; fault
    /// injection may scale it down to zero (link down) at runtime via
    /// [`FlowNet::set_capacity`].
    pub capacity: f64,
    /// Optional per-flow share: any single flow crossing this resource is
    /// individually limited to `share × capacity` bytes/second. Unlike a
    /// [`FlowSpec::rate_cap`] (absolute), this limit tracks the *current*
    /// capacity, so a degraded NIC also degrades each stream's ceiling —
    /// the paper's single-stream cap (§III) expressed as a property of the
    /// link rather than the flow.
    pub flow_share: Option<f64>,
}

#[derive(Debug, Clone)]
struct FlowState {
    spec: FlowSpec,
    remaining: f64,
    rate: f64,
    activates_at: SimTime,
    active: bool,
}

/// Minimum leftover bytes treated as "transfer complete" (guards float drift).
const EPS_BYTES: f64 = 1e-3;

/// The fluid network model.
///
/// Flows are started with [`FlowNet::start_flow`]; the driver alternates
/// [`FlowNet::next_change`] / [`FlowNet::advance_to`] /
/// [`FlowNet::take_completed`]. [`crate::Simulator`] wraps this loop together
/// with user timers; most code should use that instead of driving `FlowNet`
/// directly.
///
/// # Rate allocation
///
/// Rates are recomputed lazily whenever the set of active flows changes, using
/// progressive filling: all unfrozen flows grow at the same rate until either
/// a resource saturates (its flows freeze) or a flow hits its own
/// [`FlowSpec::rate_cap`] (it freezes). This yields the classical max-min fair
/// allocation extended with per-flow caps.
///
/// # Example
/// ```
/// use aiacc_simnet::{FlowNet, FlowSpec, SimTime};
/// let mut net = FlowNet::new();
/// let r = net.add_resource("nic", 100.0);
/// // One flow capped at 30 B/s on a 100 B/s link: 30 % utilization.
/// net.start_flow(FlowSpec::new(vec![r], 300.0).with_rate_cap(30.0));
/// let t = net.next_change().unwrap();
/// assert!((t.as_secs_f64() - 10.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FlowNet {
    resources: Vec<Resource>,
    flows: BTreeMap<u64, FlowState>,
    now: SimTime,
    next_id: u64,
    rates_valid: bool,
    /// Cumulative bytes carried per resource (telemetry).
    carried: Vec<f64>,
}

impl FlowNet {
    /// Creates an empty network at time zero.
    pub fn new() -> Self {
        FlowNet::default()
    }

    /// Adds a resource with the given capacity in bytes/second.
    ///
    /// # Panics
    /// Panics if `capacity` is not strictly positive and finite.
    pub fn add_resource(&mut self, name: impl Into<String>, capacity: f64) -> ResourceId {
        assert!(capacity.is_finite() && capacity > 0.0, "invalid capacity: {capacity}");
        let id = ResourceId(u32::try_from(self.resources.len()).expect("too many resources"));
        self.resources.push(Resource { name: name.into(), capacity, flow_share: None });
        self.carried.push(0.0);
        id
    }

    /// Limits every individual flow crossing `id` to `share × capacity`
    /// bytes/second (`None` removes the limit). The limit follows later
    /// capacity changes — see [`Resource::flow_share`].
    ///
    /// # Panics
    /// Panics if `share` is not in `(0, 1]`.
    pub fn set_flow_share(&mut self, id: ResourceId, share: Option<f64>) {
        if let Some(s) = share {
            assert!(s.is_finite() && s > 0.0 && s <= 1.0, "invalid flow share: {s}");
        }
        self.resources[id.0 as usize].flow_share = share;
        self.rates_valid = false;
    }

    /// Sets the capacity of `id` to `capacity` bytes/second, effective at
    /// the current virtual time, and re-solves max-min rates for all flows
    /// in progress. A capacity of `0` models a downed link: flows crossing
    /// it stall (rate 0) until capacity is restored.
    ///
    /// Bytes already moved are unaffected; only the allocation that holds
    /// from `now` onward changes. This is the mutation hook used by the
    /// fault-injection layer ([`crate::faults`]).
    ///
    /// # Panics
    /// Panics if `capacity` is negative, NaN or infinite.
    pub fn set_capacity(&mut self, id: ResourceId, capacity: f64) {
        assert!(capacity.is_finite() && capacity >= 0.0, "invalid capacity: {capacity}");
        let res = &mut self.resources[id.0 as usize];
        if res.capacity != capacity {
            res.capacity = capacity;
            self.rates_valid = false;
        }
    }

    /// Cumulative bytes this resource has carried since simulation start —
    /// the counter behind utilization telemetry: average utilization over a
    /// window is `Δcarried / (capacity · Δt)`.
    pub fn carried_bytes(&self, id: ResourceId) -> f64 {
        self.carried[id.as_u32() as usize]
    }

    /// Read-only view of a resource.
    ///
    /// # Panics
    /// Panics if `id` was not returned by this network's
    /// [`add_resource`](Self::add_resource).
    pub fn resource(&self, id: ResourceId) -> &Resource {
        &self.resources[id.0 as usize]
    }

    /// Number of resources.
    pub fn resource_count(&self) -> usize {
        self.resources.len()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Starts a flow at the current time. Data begins moving after the spec's
    /// latency.
    ///
    /// # Panics
    /// Panics if the spec references a resource not in this network.
    pub fn start_flow(&mut self, spec: FlowSpec) -> FlowId {
        for r in &spec.path {
            assert!((r.0 as usize) < self.resources.len(), "unknown resource {r}");
        }
        let id = FlowId(self.next_id);
        self.next_id += 1;
        let activates_at = self.now + spec.latency;
        let active = spec.latency.as_nanos() == 0;
        let remaining = spec.bytes;
        self.flows.insert(id.0, FlowState { spec, remaining, rate: 0.0, activates_at, active });
        self.rates_valid = false;
        id
    }

    /// Read-only view of a flow still present in the network.
    pub fn flow(&self, id: FlowId) -> Option<Flow> {
        self.flows.get(&id.0).map(|s| Flow {
            spec: s.spec.clone(),
            remaining: s.remaining,
            rate: s.rate,
            active: s.active,
        })
    }

    /// Number of flows not yet completed (including latency-phase flows).
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Aggregate allocated rate over a resource, in bytes/second.
    ///
    /// Useful for measuring utilization in tests and the bandwidth
    /// micro-benchmark.
    pub fn utilization(&mut self, id: ResourceId) -> f64 {
        self.recompute_if_dirty();
        let capacity = self.resources[id.0 as usize].capacity;
        if capacity <= 0.0 {
            // A downed link carries nothing by construction.
            return 0.0;
        }
        let total: f64 = self
            .flows
            .values()
            .filter(|f| f.active && f.spec.path.contains(&id))
            .map(|f| f.rate)
            .sum();
        total / capacity
    }

    /// The next instant at which the network state changes: a flow activates
    /// (latency elapsed) or a flow completes. `None` when no flows remain.
    pub fn next_change(&mut self) -> Option<SimTime> {
        self.recompute_if_dirty();
        let mut best: Option<SimTime> = None;
        for st in self.flows.values() {
            let t = if !st.active {
                st.activates_at
            } else if st.remaining <= self.completion_eps(st.rate) {
                self.now
            } else if st.rate > 0.0 {
                // Ceil to the next nanosecond so that advancing to `t`
                // guarantees remaining <= eps despite rounding.
                let dt_ns = (st.remaining / st.rate * 1e9).ceil() as u64;
                SimTime::from_nanos(self.now.as_nanos().saturating_add(dt_ns.max(1)))
            } else if st.rate.is_infinite() {
                self.now
            } else {
                continue; // starved flow: no progress until the flow set changes
            };
            best = Some(match best {
                Some(b) if b <= t => b,
                _ => t,
            });
        }
        best
    }

    /// Advances virtual time to `t`, moving bytes on all active flows and
    /// activating flows whose latency has elapsed.
    ///
    /// # Panics
    /// Panics if `t` is earlier than the current time.
    pub fn advance_to(&mut self, t: SimTime) {
        assert!(t >= self.now, "advance_to({t}) before now ({})", self.now);
        self.recompute_if_dirty();
        let dt = (t - self.now).as_secs_f64();
        if dt > 0.0 {
            for st in self.flows.values_mut() {
                if st.active {
                    if st.rate.is_infinite() {
                        st.remaining = 0.0;
                    } else {
                        let moved = (st.rate * dt).min(st.remaining);
                        st.remaining -= moved;
                        for r in &st.spec.path {
                            self.carried[r.as_u32() as usize] += moved;
                        }
                    }
                }
            }
        }
        let mut activated = false;
        for st in self.flows.values_mut() {
            if !st.active && st.activates_at <= t {
                st.active = true;
                activated = true;
            }
        }
        if activated {
            self.rates_valid = false;
        }
        self.now = t;
    }

    /// Removes and returns all flows that have finished transferring, in flow
    /// id order. Call after [`advance_to`](Self::advance_to).
    pub fn take_completed(&mut self) -> Vec<FlowId> {
        // Borrow-friendly: collect ids first.
        let done: Vec<u64> = self
            .flows
            .iter()
            .filter(|(_, st)| {
                st.active && (st.remaining <= self.completion_eps(st.rate) || st.rate.is_infinite())
            })
            .map(|(&id, _)| id)
            .collect();
        if !done.is_empty() {
            for id in &done {
                self.flows.remove(id);
            }
            self.rates_valid = false;
        }
        done.into_iter().map(FlowId).collect()
    }

    /// Cancels a flow (e.g. elastic scale-down), returning `true` if it was
    /// present.
    pub fn cancel_flow(&mut self, id: FlowId) -> bool {
        let removed = self.flows.remove(&id.0).is_some();
        if removed {
            self.rates_valid = false;
        }
        removed
    }

    fn completion_eps(&self, rate: f64) -> f64 {
        // 2 ns worth of data at the current rate, at least EPS_BYTES: covers
        // nanosecond rounding of completion times plus float drift.
        if rate.is_finite() {
            EPS_BYTES.max(rate * 2e-9)
        } else {
            f64::INFINITY
        }
    }

    fn recompute_if_dirty(&mut self) {
        if self.rates_valid {
            return;
        }
        self.recompute_rates();
        self.rates_valid = true;
    }

    /// The rate ceiling for one flow: its own [`FlowSpec::rate_cap`]
    /// combined with every per-flow share limit on its path. Share limits
    /// track the *current* capacity, so capacity mutation (fault
    /// injection) tightens them automatically.
    fn effective_cap(&self, st: &FlowState) -> Option<f64> {
        let mut cap = st.spec.rate_cap;
        for r in &st.spec.path {
            let res = &self.resources[r.0 as usize];
            if let Some(share) = res.flow_share {
                let limit = share * res.capacity;
                cap = Some(cap.map_or(limit, |c| c.min(limit)));
            }
        }
        cap
    }

    /// Progressive-filling max-min fairness with per-flow caps.
    fn recompute_rates(&mut self) {
        let mut residual: Vec<f64> = self.resources.iter().map(|r| r.capacity).collect();
        // (flow key, frozen?)
        let mut unfrozen: Vec<u64> = Vec::new();
        for (&id, st) in self.flows.iter_mut() {
            st.rate = 0.0;
            if st.active && st.remaining > 0.0 {
                unfrozen.push(id);
            }
        }
        let eff_caps: BTreeMap<u64, Option<f64>> =
            unfrozen.iter().map(|&id| (id, self.effective_cap(&self.flows[&id]))).collect();
        let mut guard = 0usize;
        while !unfrozen.is_empty() {
            guard += 1;
            assert!(
                guard <= self.resources.len() + self.flows.len() + 2,
                "progressive filling failed to converge"
            );
            // Per-resource unfrozen flow counts.
            let mut counts = vec![0u32; self.resources.len()];
            for &id in &unfrozen {
                for r in &self.flows[&id].spec.path {
                    counts[r.0 as usize] += 1;
                }
            }
            // Water level: smallest equal increment that saturates a resource.
            let mut inc = f64::INFINITY;
            for (i, &c) in counts.iter().enumerate() {
                if c > 0 {
                    inc = inc.min(residual[i].max(0.0) / c as f64);
                }
            }
            // Or that drives a flow into its cap.
            for &id in &unfrozen {
                let st = &self.flows[&id];
                if let Some(cap) = eff_caps[&id] {
                    inc = inc.min((cap - st.rate).max(0.0));
                }
            }
            if inc.is_infinite() {
                // No resource and no cap constrains these flows: infinitely
                // fast (zero-cost transfers, e.g. loopback control messages).
                for &id in &unfrozen {
                    self.flows.get_mut(&id).unwrap().rate = f64::INFINITY;
                }
                break;
            }
            for &id in &unfrozen {
                let st = self.flows.get_mut(&id).unwrap();
                st.rate += inc;
                for r in &st.spec.path {
                    residual[r.0 as usize] -= inc;
                }
            }
            // Freeze flows at their cap or on a saturated resource.
            let mut still: Vec<u64> = Vec::with_capacity(unfrozen.len());
            for &id in &unfrozen {
                let st = &self.flows[&id];
                let capped = eff_caps[&id].is_some_and(|cap| st.rate >= cap - cap * 1e-12 - 1e-15);
                let saturated = st.spec.path.iter().any(|r| {
                    residual[r.0 as usize] <= self.resources[r.0 as usize].capacity * 1e-12
                });
                if !capped && !saturated {
                    still.push(id);
                }
            }
            assert!(still.len() < unfrozen.len(), "progressive filling made no progress");
            unfrozen = still;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn drain(net: &mut FlowNet) -> Vec<(f64, FlowId)> {
        let mut out = Vec::new();
        while let Some(t) = net.next_change() {
            net.advance_to(t);
            for id in net.take_completed() {
                out.push((t.as_secs_f64(), id));
            }
        }
        out
    }

    #[test]
    fn single_uncapped_flow_uses_full_capacity() {
        let mut net = FlowNet::new();
        let r = net.add_resource("link", 10.0);
        net.start_flow(FlowSpec::new(vec![r], 100.0));
        let done = drain(&mut net);
        assert_eq!(done.len(), 1);
        assert!((done[0].0 - 10.0).abs() < 1e-6, "t={}", done[0].0);
    }

    #[test]
    fn single_capped_flow_limited_to_cap() {
        let mut net = FlowNet::new();
        let r = net.add_resource("link", 100.0);
        net.start_flow(FlowSpec::new(vec![r], 30.0).with_rate_cap(30.0));
        assert!((net.utilization(r) - 0.3).abs() < 1e-9);
        let done = drain(&mut net);
        assert!((done[0].0 - 1.0).abs() < 1e-6);
    }

    #[test]
    fn multiple_capped_flows_aggregate_bandwidth() {
        // Paper §III/§V: N concurrent streams multiplex the link.
        let mut net = FlowNet::new();
        let r = net.add_resource("nic", 100.0);
        for _ in 0..3 {
            net.start_flow(FlowSpec::new(vec![r], 30.0).with_rate_cap(30.0));
        }
        assert!((net.utilization(r) - 0.9).abs() < 1e-9);
        let done = drain(&mut net);
        assert_eq!(done.len(), 3);
        for (t, _) in done {
            assert!((t - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn caps_cannot_oversubscribe_capacity() {
        let mut net = FlowNet::new();
        let r = net.add_resource("nic", 100.0);
        for _ in 0..5 {
            net.start_flow(FlowSpec::new(vec![r], 100.0).with_rate_cap(30.0));
        }
        // 5 * 30 > 100 => fair share 20 each.
        assert!((net.utilization(r) - 1.0).abs() < 1e-9);
        let done = drain(&mut net);
        for (t, _) in done {
            assert!((t - 5.0).abs() < 1e-6, "t={t}");
        }
    }

    #[test]
    fn fair_sharing_two_flows_then_speedup() {
        let mut net = FlowNet::new();
        let r = net.add_resource("link", 10.0);
        net.start_flow(FlowSpec::new(vec![r], 30.0));
        net.start_flow(FlowSpec::new(vec![r], 50.0));
        let done = drain(&mut net);
        assert!((done[0].0 - 6.0).abs() < 1e-6);
        assert!((done[1].0 - 8.0).abs() < 1e-6);
    }

    #[test]
    fn max_min_with_heterogeneous_paths() {
        // f1 uses A only; f2 uses A and B; B is the tighter link.
        let mut net = FlowNet::new();
        let a = net.add_resource("A", 10.0);
        let b = net.add_resource("B", 4.0);
        let f1 = net.start_flow(FlowSpec::new(vec![a], 1000.0));
        let f2 = net.start_flow(FlowSpec::new(vec![a, b], 1000.0));
        net.next_change();
        // f2 limited by B to 4; f1 gets the rest of A: 6.
        assert!((net.flow(f2).unwrap().rate - 4.0).abs() < 1e-9);
        assert!((net.flow(f1).unwrap().rate - 6.0).abs() < 1e-9);
    }

    #[test]
    fn latency_delays_start() {
        let mut net = FlowNet::new();
        let r = net.add_resource("link", 10.0);
        net.start_flow(FlowSpec::new(vec![r], 10.0).with_latency(SimDuration::from_secs_f64(2.0)));
        let done = drain(&mut net);
        assert!((done[0].0 - 3.0).abs() < 1e-6, "t={}", done[0].0);
    }

    #[test]
    fn zero_byte_flow_completes_after_latency() {
        let mut net = FlowNet::new();
        let r = net.add_resource("link", 10.0);
        net.start_flow(FlowSpec::new(vec![r], 0.0).with_latency(SimDuration::from_millis(1)));
        let done = drain(&mut net);
        assert_eq!(done.len(), 1);
        assert!((done[0].0 - 0.001).abs() < 1e-9);
    }

    #[test]
    fn pathless_flow_completes_immediately() {
        let mut net = FlowNet::new();
        net.start_flow(FlowSpec::new(vec![], 1e9));
        let done = drain(&mut net);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].0, 0.0);
    }

    #[test]
    fn cancel_flow_releases_bandwidth() {
        let mut net = FlowNet::new();
        let r = net.add_resource("link", 10.0);
        let f1 = net.start_flow(FlowSpec::new(vec![r], 100.0));
        let f2 = net.start_flow(FlowSpec::new(vec![r], 100.0));
        net.next_change();
        assert!((net.flow(f1).unwrap().rate - 5.0).abs() < 1e-9);
        assert!(net.cancel_flow(f2));
        net.next_change();
        assert!((net.flow(f1).unwrap().rate - 10.0).abs() < 1e-9);
        assert!(!net.cancel_flow(f2));
    }

    #[test]
    fn completion_frees_bandwidth_for_later_flows() {
        let mut net = FlowNet::new();
        let r = net.add_resource("link", 10.0);
        net.start_flow(FlowSpec::new(vec![r], 100.0));
        net.start_flow(FlowSpec::new(vec![r], 10.0));
        // Short flow done at t=2 (5 B/s each); long one then accelerates.
        let done = drain(&mut net);
        assert!((done[0].0 - 2.0).abs() < 1e-6);
        // Long flow: 90 left at t=2, 10 B/s => t=11.
        assert!((done[1].0 - 11.0).abs() < 1e-6, "t={}", done[1].0);
    }

    #[test]
    fn utilization_reports_fraction() {
        let mut net = FlowNet::new();
        let r = net.add_resource("link", 100.0);
        net.start_flow(FlowSpec::new(vec![r], 1e6).with_rate_cap(25.0));
        net.start_flow(FlowSpec::new(vec![r], 1e6).with_rate_cap(25.0));
        assert!((net.utilization(r) - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "unknown resource")]
    fn foreign_resource_rejected() {
        let mut a = FlowNet::new();
        let mut b = FlowNet::new();
        let _ = a.add_resource("x", 1.0);
        let ra2 = a.add_resource("y", 1.0);
        let _ = b.add_resource("z", 1.0);
        b.start_flow(FlowSpec::new(vec![ra2], 1.0)); // index 1 unknown to b
    }

    #[test]
    fn many_symmetric_flows_complete_together() {
        let mut net = FlowNet::new();
        let mut path_res = Vec::new();
        for i in 0..16 {
            path_res.push(net.add_resource(format!("nic{i}"), 1e9));
        }
        for i in 0..16 {
            let p = vec![path_res[i], path_res[(i + 1) % 16]];
            net.start_flow(FlowSpec::new(p, 1e8).with_rate_cap(3e8));
        }
        let done = drain(&mut net);
        assert_eq!(done.len(), 16);
        let t0 = done[0].0;
        for (t, _) in done {
            assert!((t - t0).abs() < 1e-6);
        }
    }
}
