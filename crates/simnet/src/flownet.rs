//! Fluid-flow network: resources with capacities and flows that share them
//! under progressive-filling max-min fairness with per-flow rate caps.
//!
//! # Partitioned solving
//!
//! Resources belong to *groups* (e.g. one group per rack — see
//! [`FlowNet::add_resource_in_group`]). Groups linked by a live multi-group
//! flow form a *component*; max-min fairness is always solved per component
//! (the allocation on one component is independent of every other by
//! construction). Dirty-tracking is per component: in
//! [`SolveMode::Partitioned`] only components whose flow set, capacities or
//! shares changed are re-solved, while [`SolveMode::Full`] re-solves every
//! component whenever anything changed. Because each component solve is a
//! pure function of that component's flows and capacities, the two modes
//! produce bit-identical rates, byte counters and event orderings — `Full`
//! exists as the oracle the scale CI job diffs against.
//!
//! # Event index
//!
//! `next_change`/`advance_to` do not scan flows. Every activation and every
//! predicted completion is an entry in a [`CalendarQueue`]; entries are
//! invalidated lazily (a rate change bumps the flow's prediction counter, a
//! vacated slot bumps its generation) and discarded when popped, so the next
//! event is found in amortized O(1) regardless of how many flows are live.

use crate::calq::CalendarQueue;
use crate::flow::{Flow, FlowId, FlowSpec};
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::OnceLock;

/// Identifier of a [`Resource`] (a link port, NIC direction, bus, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ResourceId(u32);

impl ResourceId {
    /// The raw index value.
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// Test-only constructor; ids are normally minted by
    /// [`FlowNet::add_resource`].
    #[cfg(test)]
    pub(crate) const fn from_index(i: u32) -> Self {
        ResourceId(i)
    }
}

impl fmt::Display for ResourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "res#{}", self.0)
    }
}

/// A capacity-limited network resource (e.g. one direction of a NIC).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Resource {
    /// Human-readable name used in diagnostics.
    pub name: String,
    /// Capacity in bytes/second. Strictly positive at creation; fault
    /// injection may scale it down to zero (link down) at runtime via
    /// [`FlowNet::set_capacity`].
    pub capacity: f64,
    /// Optional per-flow share: any single flow crossing this resource is
    /// individually limited to `share × capacity` bytes/second. Unlike a
    /// [`FlowSpec::rate_cap`] (absolute), this limit tracks the *current*
    /// capacity, so a degraded NIC also degrades each stream's ceiling —
    /// the paper's single-stream cap (§III) expressed as a property of the
    /// link rather than the flow.
    pub flow_share: Option<f64>,
}

/// How the max-min solver reacts to a dirty network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SolveMode {
    /// Re-solve every component whenever anything changed. This is the flat
    /// baseline: asymptotically the old global solve, kept as the
    /// bit-identity oracle for [`SolveMode::Partitioned`].
    Full,
    /// Re-solve only components marked dirty since the last solve (default).
    Partitioned,
}

static DEFAULT_SOLVE_MODE: OnceLock<SolveMode> = OnceLock::new();

/// Sets the process-wide default [`SolveMode`] for networks created after
/// this call (e.g. from a `--flat-solver` CLI flag). Returns `false` if the
/// default was already fixed — by an earlier call or by a network having
/// read the `AIACC_SOLVER` environment variable (`flat`, `full`, or the
/// CLI-flag spelling `flat-solver` select [`SolveMode::Full`];
/// `partitioned` selects [`SolveMode::Partitioned`]).
pub fn set_default_solve_mode(mode: SolveMode) -> bool {
    DEFAULT_SOLVE_MODE.set(mode).is_ok()
}

fn default_solve_mode() -> SolveMode {
    *DEFAULT_SOLVE_MODE.get_or_init(|| match std::env::var("AIACC_SOLVER").ok().as_deref() {
        Some("flat") | Some("full") | Some("flat-solver") => SolveMode::Full,
        Some("partitioned") | None => SolveMode::Partitioned,
        Some(other) => {
            // OnceLock init runs at most once, so this warns exactly once
            // per process no matter how many networks are built.
            eprintln!(
                "warning: unrecognized AIACC_SOLVER value {other:?} \
                 (expected \"flat\", \"full\", \"flat-solver\" or \
                 \"partitioned\"); using the partitioned solver"
            );
            SolveMode::Partitioned
        }
    })
}

/// Cumulative solver work counters (see [`FlowNet::solver_stats`]).
///
/// `comps_solved / comps_existing` measures how much work partitioned
/// dirty-tracking avoids: `1.0` in [`SolveMode::Full`], well below that on a
/// racked topology where most events stay inside one rack.
///
/// Every field except the `par_*` pair is independent of the solver worker
/// count (the parallel path computes the same components, participants and
/// fill rounds as the serial one); `par_solves`/`par_workers` record how the
/// work was *scheduled* and legitimately differ across worker counts — keep
/// them out of any cross-worker-count byte comparison.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SolverStats {
    /// Number of times a dirty network was re-solved.
    pub recomputes: u64,
    /// Components actually solved, summed over all recomputes.
    pub comps_solved: u64,
    /// Components in existence, summed over all recomputes.
    pub comps_existing: u64,
    /// Participant flows across all solved components (solve cost scales
    /// with this; `parts_solved / comps_solved` is the mean solve size).
    pub parts_solved: u64,
    /// Progressive-filling rounds across all solved components.
    pub fill_rounds: u64,
    /// Largest single component (in participant flows) ever solved.
    pub comp_parts_max: u64,
    /// Per-recompute largest component size, summed over all recomputes
    /// (`solve_parts_max / recomputes` is the mean critical-path size; see
    /// [`SolverStats::imbalance_ratio`]).
    pub solve_parts_max: u64,
    /// Recomputes that took the multi-worker path (scheduling detail:
    /// differs across worker counts).
    pub par_solves: u64,
    /// Workers used, summed over parallel recomputes (scheduling detail:
    /// differs across worker counts).
    pub par_workers: u64,
}

impl SolverStats {
    /// Mean participant flows per solved component.
    pub fn mean_comp_parts(&self) -> f64 {
        if self.comps_solved == 0 {
            return 0.0;
        }
        self.parts_solved as f64 / self.comps_solved as f64
    }

    /// Mean workers used per parallel recompute (`0.0` if the parallel path
    /// never ran).
    pub fn mean_par_workers(&self) -> f64 {
        if self.par_solves == 0 {
            return 0.0;
        }
        self.par_workers as f64 / self.par_solves as f64
    }

    /// Mean-largest over mean-mean component size: how much bigger the
    /// critical-path component of a typical recompute is than the average
    /// component it solves. `1.0` = perfectly balanced shards; large values
    /// mean one component dominates each solve and caps the parallel
    /// speedup (Amdahl on the biggest shard).
    pub fn imbalance_ratio(&self) -> f64 {
        if self.recomputes == 0 || self.parts_solved == 0 {
            return 1.0;
        }
        let mean_max = self.solve_parts_max as f64 / self.recomputes as f64;
        let mean_mean = self.mean_comp_parts();
        if mean_mean <= 0.0 {
            return 1.0;
        }
        mean_max / mean_mean
    }
}

impl std::fmt::Display for SolverStats {
    /// One diagnostic line, the shape the CLIs print to stderr. Includes
    /// the `par_*` counters, so don't byte-compare rendered stats across
    /// worker counts — compare the fields the solver guarantees instead.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} recomputes | {}/{} comps solved | {} parts, {} fill rounds | \
             largest comp {} | {} parallel fan-outs (mean {:.1} workers)",
            self.recomputes,
            self.comps_solved,
            self.comps_existing,
            self.parts_solved,
            self.fill_rounds,
            self.comp_parts_max,
            self.par_solves,
            self.mean_par_workers(),
        )
    }
}

/// Cumulative wall-clock spent in the solver's phases (see
/// [`FlowNet::solve_breakdown`]). Pure observability: wall time never feeds
/// back into simulation state, so instrumented runs stay bit-identical —
/// but the values themselves are machine-dependent and must stay out of any
/// byte-compared report field.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SolveBreakdown {
    /// Seconds computing max-min rates + completion predictions (the
    /// per-component, read-only phase the worker pool parallelizes).
    pub solve_s: f64,
    /// Seconds committing results: settling bytes, re-stamping rates,
    /// pushing completion entries (serial, canonical component order).
    pub apply_s: f64,
    /// Seconds draining due events and compacting the event queue.
    pub queue_s: f64,
}

#[derive(Debug, Clone)]
struct FlowState {
    spec: FlowSpec,
    /// Bytes left at `anchor` (settled lazily; see [`live_remaining`]).
    remaining: f64,
    rate: f64,
    active: bool,
    /// Start-order sequence number: completions are delivered in this order
    /// (slab slots are reused, so slot index order is not start order).
    seq: u64,
    /// Instant up to which `remaining` and the byte counters are settled.
    anchor: SimTime,
    /// Prediction counter: bumped whenever the rate changes, invalidating
    /// any completion entry in the event queue stamped with an older value.
    pred: u32,
}

/// One slab slot: a generation counter plus the (optional) resident flow.
///
/// The generation increments every time a flow leaves the slot, so a stale
/// [`FlowId`] — which packs `(generation, slot)` — can never resolve to a
/// later flow that happens to reuse the same slot.
#[derive(Debug, Clone, Default)]
struct Slot {
    gen: u32,
    state: Option<FlowState>,
}

/// Sentinel in [`NetEvent::pred`] marking a latency-elapsed activation
/// entry rather than a completion prediction.
const ACTIVATION: u32 = u32::MAX;

/// An entry in the indexed event queue. Validity is re-checked lazily when
/// the entry surfaces: the slot generation must still match, and completion
/// entries additionally require the flow's current prediction counter.
#[derive(Debug, Clone, Copy)]
struct NetEvent {
    slot: u32,
    gen: u32,
    pred: u32,
}

/// Whether a queue entry still refers to live, current state.
fn event_valid(slots: &[Slot], ev: &NetEvent) -> bool {
    let Some(s) = slots.get(ev.slot as usize) else { return false };
    if s.gen != ev.gen {
        return false;
    }
    let Some(st) = &s.state else { return false };
    if ev.pred == ACTIVATION {
        !st.active
    } else {
        st.active && st.pred == ev.pred
    }
}

/// Bytes left on `st` at `now`, mirroring the settle arithmetic exactly
/// (so "would this settle change anything" can be answered without
/// mutating).
fn live_remaining(st: &FlowState, now: SimTime) -> f64 {
    if !st.active {
        return st.remaining;
    }
    let dt = (now - st.anchor).as_secs_f64();
    if dt > 0.0 {
        if st.rate.is_infinite() {
            0.0
        } else if st.rate > 0.0 {
            st.remaining - (st.rate * dt).min(st.remaining)
        } else {
            st.remaining
        }
    } else {
        st.remaining
    }
}

/// Bytes `st` has moved since its anchor (the unsettled complement of
/// [`live_remaining`]).
fn in_flight(st: &FlowState, now: SimTime) -> f64 {
    if !st.active {
        return 0.0;
    }
    let dt = (now - st.anchor).as_secs_f64();
    if dt > 0.0 {
        if st.rate.is_infinite() {
            st.remaining
        } else if st.rate > 0.0 {
            (st.rate * dt).min(st.remaining)
        } else {
            0.0
        }
    } else {
        0.0
    }
}

/// Union-find over resource groups; roots are always the minimum group id
/// of their class, so `find` doubles as the deterministic component
/// representative.
fn uf_find(uf: &mut [u32], mut x: u32) -> u32 {
    while uf[x as usize] != x {
        let p = uf[x as usize];
        uf[x as usize] = uf[p as usize]; // path halving
        x = uf[x as usize];
    }
    x
}

fn uf_union(uf: &mut [u32], a: u32, b: u32) {
    let ra = uf_find(uf, a);
    let rb = uf_find(uf, b);
    if ra != rb {
        // Larger root points at smaller: the class minimum stays the root.
        let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
        uf[hi as usize] = lo;
    }
}

/// Reusable scratch for the per-component solver: it runs on every flow
/// start/finish/capacity change (the hot inner loop of every sweep), so its
/// working set is hoisted here instead of being reallocated per call. All
/// buffers are cleared or epoch-guarded before use; none carries state
/// between solves.
#[derive(Debug, Clone, Default)]
struct Scratch {
    /// Participant slots of the component being solved, in group-ascending
    /// then slot-ascending order (the deterministic iteration order).
    parts: Vec<u32>,
    /// Active flows whose bytes ran out but that have not been collected.
    zombies: Vec<u32>,
    /// Solved rate per participant (parallel to `parts`).
    rates: Vec<f64>,
    /// Effective per-flow rate ceiling per participant
    /// (`f64::INFINITY` = uncapped).
    eff_caps: Vec<f64>,
    /// Local resource index → global resource id for this solve.
    res_ids: Vec<u32>,
    /// Global resource id → local index, valid iff the epoch matches.
    res_local: Vec<u32>,
    res_epoch: Vec<u64>,
    epoch: u64,
    /// Remaining capacity per local resource during progressive filling.
    residual: Vec<f64>,
    /// Unfrozen-flow count per local resource.
    counts: Vec<u32>,
    /// Participant indices of flows still growing.
    unfrozen: Vec<u32>,
    /// Next round's unfrozen set (swapped with `unfrozen`).
    still: Vec<u32>,
    /// `(resource, cap, participant)` triples for the single-resource fast
    /// path.
    single: Vec<(u32, f64, u32)>,
    /// Per-participant completion prediction (parallel to `parts`), encoded
    /// as nanoseconds; [`PRED_UNCHANGED`] marks a participant whose rate did
    /// not change bitwise (nothing to commit), [`PRED_STARVED`] a changed
    /// participant with no completion entry (rate 0, bytes left).
    pred_at: Vec<u64>,
    /// Participants solved through this scratch (folded into
    /// [`SolverStats::parts_solved`] by the owner).
    stat_parts: u64,
    /// Fill rounds run through this scratch (folded into
    /// [`SolverStats::fill_rounds`]).
    stat_rounds: u64,
    /// Largest component (participants) solved through this scratch since
    /// the owner last folded stats.
    stat_comp_max: u64,
}

/// Results of one worker's component solves, appended in claim order:
/// flat `parts`/`rates`/`pred_at` (and `zombies`) buffers plus one
/// `(dirty-list index, parts offset, zombies offset)` record per solved
/// component. The serial apply phase reads components back in canonical
/// dirty-list order via [`SolvedBuf::comp_slices`].
#[derive(Debug, Clone, Default)]
struct SolvedBuf {
    comps: Vec<(u32, u32, u32)>,
    parts: Vec<u32>,
    rates: Vec<f64>,
    pred_at: Vec<u64>,
    zombies: Vec<u32>,
}

impl SolvedBuf {
    fn clear(&mut self) {
        self.comps.clear();
        self.parts.clear();
        self.rates.clear();
        self.pred_at.clear();
        self.zombies.clear();
    }

    /// Appends the component the scratch just solved, identified by its
    /// index in the sorted dirty list.
    fn push_comp(&mut self, idx: u32, sc: &Scratch) {
        self.comps.push((idx, self.parts.len() as u32, self.zombies.len() as u32));
        let n = sc.parts.len();
        self.parts.extend_from_slice(&sc.parts);
        // `sc.rates` may hold stale capacity beyond `parts` for an empty
        // component (it is only resized when there are participants), so
        // slice all three parallel arrays to the participant count.
        self.rates.extend_from_slice(&sc.rates[..n]);
        self.pred_at.extend_from_slice(&sc.pred_at[..n]);
        self.zombies.extend_from_slice(&sc.zombies);
    }

    /// The `k`-th solved component's `(parts, rates, pred_at, zombies)`.
    fn comp_slices(&self, k: usize) -> (&[u32], &[f64], &[u64], &[u32]) {
        let (_, p0, z0) = self.comps[k];
        let (p0, z0) = (p0 as usize, z0 as usize);
        let (p1, z1) = match self.comps.get(k + 1) {
            Some(&(_, p, z)) => (p as usize, z as usize),
            None => (self.parts.len(), self.zombies.len()),
        };
        (&self.parts[p0..p1], &self.rates[p0..p1], &self.pred_at[p0..p1], &self.zombies[z0..z1])
    }
}

/// One worker's private working set for the parallel solve path: solver
/// scratch plus the result buffer its solves append to.
#[derive(Debug, Default)]
struct WorkerSlot {
    scratch: Scratch,
    out: SolvedBuf,
}

/// Per-worker working sets for the parallel solve path. Worker `w` locks
/// slot `w` uncontended for the duration of one fan-out. Slots carry no
/// state between solves (every buffer is cleared or epoch-guarded before
/// use, and the `stat_*` accumulators are folded after every recompute), so
/// a cloned network simply starts with an empty pool.
#[derive(Debug, Default)]
struct WorkerScratches(Vec<std::sync::Mutex<WorkerSlot>>);

impl Clone for WorkerScratches {
    fn clone(&self) -> Self {
        WorkerScratches(Vec::new())
    }
}

/// [`Scratch::pred_at`] sentinel: participant's rate is bitwise unchanged.
const PRED_UNCHANGED: u64 = u64::MAX;
/// [`Scratch::pred_at`] sentinel: rate changed to 0 with bytes left — no
/// completion entry until the flow set or a capacity changes.
const PRED_STARVED: u64 = u64::MAX - 1;

/// Minimum leftover bytes treated as "transfer complete" (guards float drift).
const EPS_BYTES: f64 = 1e-3;

/// Fewest dirty components worth fanning out: below this the pool's
/// dispatch latency exceeds the solve work (steady-state event handling
/// dirties exactly one component, and that must stay on the zero-overhead
/// serial path).
const PAR_SOLVE_MIN_COMPS: usize = 4;

/// Fewest batched completion settlements worth fanning out in
/// [`FlowNet::advance_to`]'s drain (per-entry settle arithmetic is tens of
/// nanoseconds, so only bulk-synchronous completion bursts pay for
/// dispatch).
const PAR_SETTLE_MIN: usize = 1024;

/// Packs a slab slot index and its generation into a raw flow id.
const fn pack_id(slot: u32, gen: u32) -> u64 {
    ((gen as u64) << 32) | slot as u64
}

/// Splits a raw flow id into `(slot, generation)`.
const fn unpack_id(id: u64) -> (u32, u32) {
    (id as u32, (id >> 32) as u32)
}

/// The fluid network model.
///
/// Flows are started with [`FlowNet::start_flow`]; the driver alternates
/// [`FlowNet::next_change`] / [`FlowNet::advance_to`] /
/// [`FlowNet::take_completed`]. [`crate::Simulator`] wraps this loop together
/// with user timers; most code should use that instead of driving `FlowNet`
/// directly.
///
/// # Rate allocation
///
/// Rates are recomputed lazily whenever the set of active flows changes, using
/// progressive filling per component: all unfrozen flows grow at the same rate
/// until either a resource saturates (its flows freeze) or a flow hits its own
/// [`FlowSpec::rate_cap`] (it freezes). This yields the classical max-min fair
/// allocation extended with per-flow caps. See the module docs for the
/// component partitioning and the indexed event core.
///
/// # Example
/// ```
/// use aiacc_simnet::{FlowNet, FlowSpec, SimTime};
/// let mut net = FlowNet::new();
/// let r = net.add_resource("nic", 100.0);
/// // One flow capped at 30 B/s on a 100 B/s link: 30 % utilization.
/// net.start_flow(FlowSpec::new(vec![r], 300.0).with_rate_cap(30.0));
/// let t = net.next_change().unwrap();
/// assert!((t.as_secs_f64() - 10.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct FlowNet {
    resources: Vec<Resource>,
    /// Group id per resource (parallel to `resources`).
    res_group: Vec<u32>,
    /// Generation-indexed flow slab: O(1) id → state, no per-flow
    /// allocation churn, deterministic (LIFO) slot reuse.
    slots: Vec<Slot>,
    /// Vacant slot indices, most recently freed last.
    free: Vec<u32>,
    /// Number of occupied slots.
    live: usize,
    /// Number of flows past their latency phase (data moving or finished
    /// but uncollected).
    nactive: usize,
    now: SimTime,
    /// Start-order counter stamped onto each flow (drives completion order).
    next_seq: u64,
    mode: SolveMode,
    /// Union-find scratch over groups, rebuilt from `cross`.
    uf: Vec<u32>,
    /// Component representative (minimum group id) per group.
    comp_of_group: Vec<u32>,
    /// Number of distinct components.
    ncomps: usize,
    /// Dirty flag per component representative.
    dirty: Vec<bool>,
    /// Representatives currently flagged dirty (dup-free via `dirty`).
    dirty_list: Vec<u32>,
    any_dirty: bool,
    /// Live path-flow slots per home group (group of the first path hop),
    /// kept sorted by slot index.
    group_flows: Vec<Vec<u32>>,
    /// Slots of live flows whose path spans more than one group.
    cross: BTreeSet<u32>,
    /// Live cross-flow hop count per unordered group pair `(lo, hi)`. A
    /// pair appearing (0 → 1) merges two components incrementally; a pair
    /// vanishing (1 → 0) may split one, which only a rebuild can detect —
    /// so it just sets `topo_stale`. Lookup-only (never iterated), so the
    /// hash order cannot leak into behaviour.
    edge_count: std::collections::HashMap<(u32, u32), u32>,
    /// A cross-group flow departed and took the last reference to one of
    /// its group edges: the component mapping is (at worst) over-merged
    /// until [`Self::rebuild_topology`] runs at the next solve.
    topo_stale: bool,
    /// Indexed activation/completion entries (see module docs).
    events: CalendarQueue<NetEvent>,
    /// Completion entries that fired during the last advance: `(slot, gen)`
    /// pairs awaiting [`FlowNet::take_completed`].
    ripe: Vec<(u32, u32)>,
    /// Cumulative settled bytes carried per resource (telemetry); the public
    /// getter adds each live flow's unsettled in-flight bytes on top.
    carried: Vec<f64>,
    /// Cumulative settled bytes delivered per flow tag (index = tag).
    delivered_by_tag: Vec<f64>,
    /// Cumulative bytes offered per flow tag (stamped at flow start).
    launched_by_tag: Vec<f64>,
    stats: SolverStats,
    /// Cumulative wall-clock per solver phase (observability only).
    breakdown: SolveBreakdown,
    /// Persistent solver working set (see [`Scratch`]).
    scratch: Scratch,
    /// Per-network override of the solver worker count (`None` = follow the
    /// process-wide [`crate::par::jobs`] setting).
    solve_workers: Option<usize>,
    /// Per-worker solver working sets for the parallel path (lazily grown;
    /// worker `w` owns `worker_scratches.0[w]` for the duration of one
    /// fan-out, so no scratch is ever shared between threads).
    worker_scratches: WorkerScratches,
    /// Reusable buffer for a flow's path groups during link/unlink.
    tmp_groups: Vec<u32>,
    /// Consecutive completion settlements deferred during one drain:
    /// `(slot, at_ns)` in pop order (see [`Self::flush_settles`]).
    settle_batch: Vec<(u32, u64)>,
    /// Bytes moved per deferred settlement (parallel to `settle_batch`).
    settle_moved: Vec<f64>,
    /// Per-slot mark (`== seen_epoch` when the slot already has a deferred
    /// settlement in the current batch): a second completion entry for the
    /// same slot must observe the first one's settle, so it flushes.
    slot_seen: Vec<u32>,
    seen_epoch: u32,
}

impl Default for FlowNet {
    fn default() -> Self {
        FlowNet {
            resources: Vec::new(),
            res_group: Vec::new(),
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            nactive: 0,
            now: SimTime::ZERO,
            next_seq: 0,
            mode: default_solve_mode(),
            uf: Vec::new(),
            comp_of_group: Vec::new(),
            ncomps: 0,
            dirty: Vec::new(),
            dirty_list: Vec::new(),
            any_dirty: false,
            group_flows: Vec::new(),
            cross: BTreeSet::new(),
            edge_count: std::collections::HashMap::new(),
            topo_stale: false,
            events: CalendarQueue::new(),
            ripe: Vec::new(),
            carried: Vec::new(),
            delivered_by_tag: Vec::new(),
            launched_by_tag: Vec::new(),
            stats: SolverStats::default(),
            breakdown: SolveBreakdown::default(),
            scratch: Scratch::default(),
            solve_workers: None,
            worker_scratches: WorkerScratches::default(),
            tmp_groups: Vec::new(),
            settle_batch: Vec::new(),
            settle_moved: Vec::new(),
            slot_seen: Vec::new(),
            seen_epoch: 0,
        }
    }
}

impl FlowNet {
    /// Creates an empty network at time zero, using the process default
    /// [`SolveMode`] (see [`set_default_solve_mode`]).
    pub fn new() -> Self {
        FlowNet::default()
    }

    /// Overrides this network's [`SolveMode`] and marks every component
    /// dirty so the next solve starts from a mode-independent state.
    pub fn set_solve_mode(&mut self, mode: SolveMode) {
        self.mode = mode;
        for g in 0..self.comp_of_group.len() as u32 {
            if self.comp_of_group[g as usize] == g {
                self.mark_comp_dirty(g);
            }
        }
    }

    /// The solve mode in effect.
    pub fn solve_mode(&self) -> SolveMode {
        self.mode
    }

    /// Cumulative solver work counters.
    pub fn solver_stats(&self) -> SolverStats {
        self.stats
    }

    /// Cumulative wall-clock spent per solver phase (see [`SolveBreakdown`]).
    pub fn solve_breakdown(&self) -> SolveBreakdown {
        self.breakdown
    }

    /// Overrides how many workers the partitioned solver fans dirty
    /// components out across (`None` restores the default: the process-wide
    /// [`crate::par::jobs`] count). `Some(1)` forces the serial path. The
    /// worker count never changes results — the parallel path applies every
    /// component's rates in canonical ascending-representative order, so
    /// output is bit-identical to serial for any value (property-tested).
    pub fn set_solve_workers(&mut self, workers: Option<usize>) {
        self.solve_workers = workers;
    }

    /// The solver worker count currently in effect (resolved against
    /// [`crate::par::jobs`] when no override is installed).
    pub fn solve_workers(&self) -> usize {
        self.solve_workers.unwrap_or_else(crate::par::jobs).max(1)
    }

    /// Adds a resource with the given capacity in bytes/second to group 0.
    ///
    /// # Panics
    /// Panics if `capacity` is not strictly positive and finite.
    pub fn add_resource(&mut self, name: impl Into<String>, capacity: f64) -> ResourceId {
        self.add_resource_in_group(name, capacity, 0)
    }

    /// Adds a resource to a solver partition group (e.g. one group per
    /// rack). Flows whose path stays within one group's component never
    /// force other components to re-solve. Group membership is fixed at
    /// creation.
    ///
    /// # Panics
    /// Panics if `capacity` is not strictly positive and finite.
    pub fn add_resource_in_group(
        &mut self,
        name: impl Into<String>,
        capacity: f64,
        group: u32,
    ) -> ResourceId {
        assert!(capacity.is_finite() && capacity > 0.0, "invalid capacity: {capacity}");
        self.ensure_group(group);
        let id = ResourceId(u32::try_from(self.resources.len()).expect("too many resources"));
        self.resources.push(Resource { name: name.into(), capacity, flow_share: None });
        self.res_group.push(group);
        self.carried.push(0.0);
        id
    }

    /// The solver partition group `id` was created in.
    pub fn resource_group(&self, id: ResourceId) -> u32 {
        self.res_group[id.0 as usize]
    }

    fn ensure_group(&mut self, group: u32) {
        while self.uf.len() <= group as usize {
            let g = self.uf.len() as u32;
            self.uf.push(g);
            self.comp_of_group.push(g);
            self.dirty.push(false);
            self.group_flows.push(Vec::new());
            self.ncomps += 1;
        }
    }

    /// Limits every individual flow crossing `id` to `share × capacity`
    /// bytes/second (`None` removes the limit). The limit follows later
    /// capacity changes — see [`Resource::flow_share`].
    ///
    /// # Panics
    /// Panics if `share` is not in `(0, 1]`.
    pub fn set_flow_share(&mut self, id: ResourceId, share: Option<f64>) {
        if let Some(s) = share {
            assert!(s.is_finite() && s > 0.0 && s <= 1.0, "invalid flow share: {s}");
        }
        self.resources[id.0 as usize].flow_share = share;
        self.mark_group_dirty(self.res_group[id.0 as usize]);
    }

    /// Sets the capacity of `id` to `capacity` bytes/second, effective at
    /// the current virtual time, and re-solves max-min rates for all flows
    /// in progress. A capacity of `0` models a downed link: flows crossing
    /// it stall (rate 0) until capacity is restored.
    ///
    /// Bytes already moved are unaffected; only the allocation that holds
    /// from `now` onward changes. This is the mutation hook used by the
    /// fault-injection layer ([`crate::faults`]).
    ///
    /// # Panics
    /// Panics if `capacity` is negative, NaN or infinite.
    pub fn set_capacity(&mut self, id: ResourceId, capacity: f64) {
        assert!(capacity.is_finite() && capacity >= 0.0, "invalid capacity: {capacity}");
        let res = &mut self.resources[id.0 as usize];
        if res.capacity != capacity {
            res.capacity = capacity;
            self.mark_group_dirty(self.res_group[id.0 as usize]);
        }
    }

    /// Cumulative bytes this resource has carried since simulation start —
    /// the counter behind utilization telemetry: average utilization over a
    /// window is `Δcarried / (capacity · Δt)`. Includes each live flow's
    /// bytes in flight since its last settlement, so the value at any
    /// instant equals what eager per-event settlement would have recorded.
    pub fn carried_bytes(&self, id: ResourceId) -> f64 {
        let mut total = self.carried[id.0 as usize];
        for st in self.states() {
            let m = in_flight(st, self.now);
            if m > 0.0 {
                for r in &st.spec.path {
                    if *r == id {
                        total += m;
                    }
                }
            }
        }
        total
    }

    /// Cumulative bytes *delivered* (moved to completion) by flows carrying
    /// `tag` ([`FlowSpec::with_tag`]). The multi-job scheduler tags every
    /// flow with its owning job, so on a shared fabric each tenant's traffic
    /// stays individually auditable: for a run in which every tagged flow
    /// completes, `delivered == launched` per tag (byte conservation). Like
    /// [`Self::carried_bytes`], includes unsettled in-flight bytes.
    pub fn delivered_bytes_by_tag(&self, tag: u32) -> f64 {
        let mut total = self.delivered_by_tag.get(tag as usize).copied().unwrap_or(0.0);
        for st in self.states() {
            if st.spec.tag == tag {
                let m = in_flight(st, self.now);
                if m > 0.0 {
                    total += m;
                }
            }
        }
        total
    }

    /// Cumulative bytes offered by flows started with `tag` (counted at flow
    /// start, whether or not they later complete).
    pub fn launched_bytes_by_tag(&self, tag: u32) -> f64 {
        self.launched_by_tag.get(tag as usize).copied().unwrap_or(0.0)
    }

    /// Zeroes the per-tag delivered/launched accumulators for `tag`, so the
    /// tag can be reused by a new owner with byte accounting that starts
    /// from exactly `0.0`. Used by the streaming scheduler, whose finite
    /// token-scope space recycles tags across job generations.
    pub fn reset_bytes_by_tag(&mut self, tag: u32) {
        let i = tag as usize;
        if let Some(v) = self.delivered_by_tag.get_mut(i) {
            *v = 0.0;
        }
        if let Some(v) = self.launched_by_tag.get_mut(i) {
            *v = 0.0;
        }
    }

    /// Overwrites the cumulative carried-bytes accumulator for `id`.
    /// Snapshot resume seeds a fresh network with the exact accumulator
    /// values of the interrupted run, so utilization telemetry continues
    /// bit-identically (subsequent additions see the same partial sums).
    pub fn seed_carried_bytes(&mut self, id: ResourceId, bytes: f64) {
        self.carried[id.as_u32() as usize] = bytes;
    }

    fn bump_tag(v: &mut Vec<f64>, tag: u32, bytes: f64) {
        let i = tag as usize;
        if v.len() <= i {
            v.resize(i + 1, 0.0);
        }
        v[i] += bytes;
    }

    /// Read-only view of a resource.
    ///
    /// # Panics
    /// Panics if `id` was not returned by this network's
    /// [`add_resource`](Self::add_resource).
    pub fn resource(&self, id: ResourceId) -> &Resource {
        &self.resources[id.0 as usize]
    }

    /// Number of resources.
    pub fn resource_count(&self) -> usize {
        self.resources.len()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Starts a flow at the current time. Data begins moving after the spec's
    /// latency.
    ///
    /// # Panics
    /// Panics if the spec references a resource not in this network.
    pub fn start_flow(&mut self, spec: FlowSpec) -> FlowId {
        for r in &spec.path {
            assert!((r.0 as usize) < self.resources.len(), "unknown resource {r}");
        }
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.slots.push(Slot::default());
                u32::try_from(self.slots.len() - 1).expect("too many flows")
            }
        };
        let gen = self.slots[slot as usize].gen;
        let id = FlowId(pack_id(slot, gen));
        let activates_at = self.now + spec.latency;
        let active = spec.latency.as_nanos() == 0;
        let remaining = spec.bytes;
        Self::bump_tag(&mut self.launched_by_tag, spec.tag, spec.bytes);
        let seq = self.next_seq;
        self.next_seq += 1;
        let pathless = spec.path.is_empty();
        self.slots[slot as usize].state =
            Some(FlowState { spec, remaining, rate: 0.0, active, seq, anchor: self.now, pred: 0 });
        self.live += 1;
        if active {
            self.nactive += 1;
        }
        if pathless {
            // Pathless flows never contend for resources: their rate is
            // their own cap (or infinite) the moment they activate, and
            // they never enter the solver.
            if active {
                let st = self.slots[slot as usize].state.as_mut().expect("just stored");
                st.rate = st.spec.rate_cap.unwrap_or(f64::INFINITY);
                self.push_completion_at(slot, self.now);
            } else {
                self.events.push(activates_at.as_nanos(), NetEvent { slot, gen, pred: ACTIVATION });
            }
        } else {
            self.link_flow(slot);
            if !active {
                self.events.push(activates_at.as_nanos(), NetEvent { slot, gen, pred: ACTIVATION });
            }
        }
        id
    }

    /// The resident flow for `id`, iff the id's generation matches the slot
    /// (a completed/cancelled flow's id never resolves to a reused slot).
    fn state(&self, id: FlowId) -> Option<&FlowState> {
        let (slot, gen) = unpack_id(id.0);
        self.slots.get(slot as usize).filter(|s| s.gen == gen).and_then(|s| s.state.as_ref())
    }

    /// Vacates `slot`, returning its flow and retiring the slot's current
    /// generation so stale ids (and queue entries) can never resurrect.
    fn vacate(&mut self, slot: u32) -> FlowState {
        let s = &mut self.slots[slot as usize];
        let st = s.state.take().expect("vacating an empty slot");
        s.gen = s.gen.wrapping_add(1);
        self.free.push(slot);
        self.live -= 1;
        if st.active {
            self.nactive -= 1;
        }
        st
    }

    /// Occupied slots in index order (the telemetry iteration order).
    fn states(&self) -> impl Iterator<Item = &FlowState> {
        self.slots.iter().filter_map(|s| s.state.as_ref())
    }

    /// Read-only view of a flow still present in the network.
    pub fn flow(&self, id: FlowId) -> Option<Flow> {
        self.state(id).map(|s| Flow {
            spec: s.spec.clone(),
            remaining: live_remaining(s, self.now),
            rate: s.rate,
            active: s.active,
        })
    }

    /// Number of flows not yet completed (including latency-phase flows).
    pub fn flow_count(&self) -> usize {
        self.live
    }

    /// Number of flows past their latency phase — the count of flows that
    /// are moving data (or have just finished and await collection). This is
    /// the value behind the `active_flows` trace counter.
    pub fn active_flow_count(&self) -> usize {
        self.nactive
    }

    /// Aggregate allocated rate over a resource, in bytes/second.
    ///
    /// Useful for measuring utilization in tests and the bandwidth
    /// micro-benchmark.
    pub fn utilization(&mut self, id: ResourceId) -> f64 {
        self.recompute_if_dirty();
        let capacity = self.resources[id.0 as usize].capacity;
        if capacity <= 0.0 {
            // A downed link carries nothing by construction.
            return 0.0;
        }
        let total: f64 =
            self.states().filter(|f| f.active && f.spec.path.contains(&id)).map(|f| f.rate).sum();
        total / capacity
    }

    /// The next instant at which the network state changes: a flow activates
    /// (latency elapsed) or a flow completes. `None` when no flow will ever
    /// make progress again without outside intervention (no flows left, or
    /// only flows starved by a downed link).
    pub fn next_change(&mut self) -> Option<SimTime> {
        self.recompute_if_dirty();
        if !self.ripe.is_empty() {
            // Completions that fired during the last advance still await
            // collection at the current instant.
            return Some(self.now);
        }
        self.maybe_compact();
        loop {
            let (at, ev) = match self.events.peek() {
                Some((at, ev)) => (at, *ev),
                None => return None,
            };
            if event_valid(&self.slots, &ev) {
                return Some(SimTime::from_nanos(at));
            }
            self.events.pop();
        }
    }

    /// Drops lazily-invalidated queue entries once they outnumber live
    /// flows by a wide margin, bounding queue memory for long runs.
    fn maybe_compact(&mut self) {
        if self.events.len() > self.live * 4 + 64 {
            let t0 = std::time::Instant::now();
            let slots = &self.slots;
            self.events.retain(|ev| event_valid(slots, ev));
            self.breakdown.queue_s += t0.elapsed().as_secs_f64();
        }
    }

    /// Advances virtual time to `t`, firing every activation and predicted
    /// completion scheduled up to then. Completions are settled at their
    /// exact predicted instants and parked for
    /// [`take_completed`](Self::take_completed); rates are *not* re-solved
    /// mid-advance (flows move at their pre-advance rates for the whole
    /// span, as the fluid model defines).
    ///
    /// # Panics
    /// Panics if `t` is earlier than the current time.
    pub fn advance_to(&mut self, t: SimTime) {
        assert!(t >= self.now, "advance_to({t}) before now ({})", self.now);
        self.recompute_if_dirty();
        self.drain_due(t);
        self.now = t;
    }

    /// Pops every queue entry due at or before `t`, in (time, insertion)
    /// order: activations flip the flow on; valid completions settle at
    /// their predicted instant and land in `ripe`.
    ///
    /// Completion settlements are *batched*: runs of consecutive completion
    /// entries defer their settles into `settle_batch` and commit together
    /// in [`Self::flush_settles`] — which, for bulk-synchronous bursts
    /// (thousands of flows completing at one instant, the shape of a
    /// synchronized training round), computes the per-flow byte movement on
    /// the worker pool. The batch flushes whenever an activation surfaces
    /// (it mutates a flow mid-run) or a slot re-appears (its second settle
    /// must observe its first), so each deferred settle still sees exactly
    /// the state it would have seen serially.
    fn drain_due(&mut self, t: SimTime) {
        let t0 = std::time::Instant::now();
        let mut batch = std::mem::take(&mut self.settle_batch);
        debug_assert!(batch.is_empty());
        if self.slot_seen.len() < self.slots.len() {
            self.slot_seen.resize(self.slots.len(), 0);
        }
        self.bump_seen_epoch();
        while let Some((at_ns, ev)) = self.events.pop_due(t.as_nanos()) {
            if !event_valid(&self.slots, &ev) {
                continue;
            }
            if ev.pred == ACTIVATION {
                self.flush_settles(&mut batch);
                self.activate(ev.slot, SimTime::from_nanos(at_ns));
            } else {
                if self.slot_seen[ev.slot as usize] == self.seen_epoch {
                    self.flush_settles(&mut batch);
                }
                self.slot_seen[ev.slot as usize] = self.seen_epoch;
                batch.push((ev.slot, at_ns));
                self.ripe.push((ev.slot, ev.gen));
            }
        }
        self.flush_settles(&mut batch);
        self.settle_batch = batch;
        self.breakdown.queue_s += t0.elapsed().as_secs_f64();
    }

    /// Commits the deferred completion settlements of one batch, in pop
    /// order. Small batches settle serially; large ones compute each
    /// entry's byte movement read-only on the worker pool first (`moved` is
    /// a pure function of the flow's pre-batch state — batch slots are
    /// distinct, so no entry's settle changes another's inputs) and then
    /// apply serially, keeping the byte-counter accumulation order — and
    /// thus every output bit — identical to the serial path.
    fn flush_settles(&mut self, batch: &mut Vec<(u32, u64)>) {
        if batch.is_empty() {
            return;
        }
        let workers = self.solve_workers();
        if batch.len() >= PAR_SETTLE_MIN && workers >= 2 && !crate::pool::is_busy() {
            let mut moved = std::mem::take(&mut self.settle_moved);
            moved.clear();
            moved.resize(batch.len(), 0.0);
            let chunk_len = batch.len().div_ceil(workers);
            {
                let chunks: Vec<std::sync::Mutex<&mut [f64]>> =
                    moved.chunks_mut(chunk_len).map(std::sync::Mutex::new).collect();
                let this: &FlowNet = self;
                let entries: &[(u32, u64)] = batch;
                crate::pool::run(chunks.len(), &|w| {
                    let mut out = chunks[w].lock().expect("settle chunk poisoned");
                    let base = w * chunk_len;
                    for (j, m) in out.iter_mut().enumerate() {
                        let (slot, at_ns) = entries[base + j];
                        let st = this.slots[slot as usize]
                            .state
                            .as_ref()
                            .expect("batched slot occupied");
                        *m = in_flight(st, SimTime::from_nanos(at_ns));
                    }
                });
            }
            for (k, &(slot, at_ns)) in batch.iter().enumerate() {
                self.settle_with_moved(slot, SimTime::from_nanos(at_ns), moved[k]);
            }
            self.settle_moved = moved;
        } else {
            for &(slot, at_ns) in batch.iter() {
                self.settle(slot, SimTime::from_nanos(at_ns));
            }
        }
        batch.clear();
        self.bump_seen_epoch();
    }

    /// Advances the duplicate-slot epoch, clearing stale marks on wrap.
    fn bump_seen_epoch(&mut self) {
        self.seen_epoch = self.seen_epoch.wrapping_add(1);
        if self.seen_epoch == 0 {
            self.slot_seen.iter_mut().for_each(|m| *m = 0);
            self.seen_epoch = 1;
        }
    }

    /// [`Self::settle`] with the byte movement already computed (the
    /// parallel half of [`Self::flush_settles`]). The arithmetic mirrors
    /// `settle` exactly — `moved` is the same `(rate·dt).min(remaining)`
    /// float expression, so `remaining -= moved` produces the same bits.
    fn settle_with_moved(&mut self, slot: u32, to: SimTime, moved: f64) {
        let st = self.slots[slot as usize].state.as_mut().expect("settling an empty slot");
        debug_assert_eq!(
            moved.to_bits(),
            in_flight(st, to).to_bits(),
            "pool-computed byte movement diverged from serial settle"
        );
        if st.active && st.rate.is_infinite() && (to - st.anchor).as_nanos() > 0 {
            st.remaining = 0.0;
        } else {
            // `x - 0.0 == x` bitwise for every non-NaN `x`, so inactive,
            // zero-rate and zero-dt entries leave `remaining` untouched
            // exactly as `settle` does.
            st.remaining -= moved;
        }
        st.anchor = to;
        if moved > 0.0 {
            for r in &st.spec.path {
                self.carried[r.0 as usize] += moved;
            }
            Self::bump_tag(&mut self.delivered_by_tag, st.spec.tag, moved);
        }
    }

    /// Latency elapsed: the flow begins moving data at `at`.
    fn activate(&mut self, slot: u32, at: SimTime) {
        let st = self.slots[slot as usize].state.as_mut().expect("activating an empty slot");
        st.active = true;
        st.anchor = at;
        self.nactive += 1;
        if st.spec.path.is_empty() {
            st.rate = st.spec.rate_cap.unwrap_or(f64::INFINITY);
            self.push_completion_at(slot, at);
        } else {
            // All the flow's path groups were linked into one component at
            // start, so marking the home group covers every hop.
            let home = self.res_group[st.spec.path[0].0 as usize];
            self.mark_group_dirty(home);
        }
    }

    /// Credits bytes moved between `st.anchor` and `to` to the flow and the
    /// per-resource/per-tag telemetry, and re-anchors at `to`. Carried bytes
    /// are credited on every path hop in both the finite- and infinite-rate
    /// branches, keeping `carried ≡ delivered` on single-hop paths.
    fn settle(&mut self, slot: u32, to: SimTime) {
        let st = self.slots[slot as usize].state.as_mut().expect("settling an empty slot");
        if st.active {
            let dt = (to - st.anchor).as_secs_f64();
            let moved = if dt > 0.0 {
                if st.rate.is_infinite() {
                    std::mem::replace(&mut st.remaining, 0.0)
                } else if st.rate > 0.0 {
                    let m = (st.rate * dt).min(st.remaining);
                    st.remaining -= m;
                    m
                } else {
                    0.0
                }
            } else {
                0.0
            };
            if moved > 0.0 {
                for r in &st.spec.path {
                    self.carried[r.0 as usize] += moved;
                }
                Self::bump_tag(&mut self.delivered_by_tag, st.spec.tag, moved);
            }
        }
        let st = self.slots[slot as usize].state.as_mut().expect("settling an empty slot");
        st.anchor = to;
    }

    /// Pushes the completion entry predicted by the flow's current rate and
    /// (settled) remaining bytes, stamped with its prediction counter.
    /// Starved flows (rate 0, bytes left) get no entry: nothing will happen
    /// until the flow set or a capacity changes.
    fn push_completion_at(&mut self, slot: u32, from: SimTime) {
        let s = &self.slots[slot as usize];
        let st = s.state.as_ref().expect("predicting an empty slot");
        let Some(at_ns) = predict_completion_ns(st.rate, st.remaining, from) else {
            return;
        };
        let ev = NetEvent { slot, gen: s.gen, pred: st.pred };
        self.events.push(at_ns, ev);
    }

    /// Removes and returns all flows that have finished transferring, in
    /// start order (ids are delivered oldest flow first). Call after
    /// [`advance_to`](Self::advance_to).
    pub fn take_completed(&mut self) -> Vec<FlowId> {
        // Collect anything due at the current instant as well (e.g.
        // complete-now entries pushed by the last solve).
        self.drain_due(self.now);
        if self.ripe.is_empty() {
            return Vec::new();
        }
        let ripe = std::mem::take(&mut self.ripe);
        let mut done: Vec<(u64, u32)> = Vec::new();
        for (slot, gen) in ripe {
            let s = &self.slots[slot as usize];
            if s.gen != gen {
                continue; // already collected via a duplicate entry
            }
            let st = s.state.as_ref().expect("gen-matched slot occupied");
            if live_remaining(st, self.now) > completion_eps(st.rate) {
                // Nanosecond rounding left a sliver behind: re-predict
                // instead of completing early.
                self.settle(slot, self.now);
                let st = self.slots[slot as usize].state.as_mut().expect("occupied");
                st.pred = st.pred.wrapping_add(1);
                self.push_completion_at(slot, self.now);
                continue;
            }
            done.push((st.seq, slot));
        }
        // Slot order is reuse order, not start order: sort by sequence so
        // delivery (and downstream event handling) follows flow age. A flow
        // surfaced twice (e.g. a re-solve pushed a second complete-now
        // entry) appears as identical pairs — dedup before vacating.
        done.sort_unstable();
        done.dedup();
        let ids: Vec<FlowId> = done
            .iter()
            .map(|&(_, slot)| FlowId(pack_id(slot, self.slots[slot as usize].gen)))
            .collect();
        for &(_, slot) in &done {
            self.unlink_flow(slot);
            let st = self.vacate(slot);
            // Credit the sub-epsilon residual (and the full payload of
            // infinite-rate flows that completed without time advancing)
            // on every path hop and to the flow's tag, so both counters
            // account every byte of a completed flow exactly.
            for r in &st.spec.path {
                self.carried[r.0 as usize] += st.remaining;
            }
            Self::bump_tag(&mut self.delivered_by_tag, st.spec.tag, st.remaining);
        }
        ids
    }

    /// Cancels a flow (e.g. elastic scale-down), returning `true` if it was
    /// present. Bytes moved so far are settled into the telemetry counters;
    /// the unmoved remainder is dropped (never delivered).
    pub fn cancel_flow(&mut self, id: FlowId) -> bool {
        if self.state(id).is_none() {
            return false;
        }
        let (slot, _) = unpack_id(id.0);
        self.settle(slot, self.now);
        self.unlink_flow(slot);
        self.vacate(slot);
        true
    }

    /// Registers a freshly started path flow in its home group's flow list
    /// and, if the path spans several groups, merges those groups into one
    /// component. Marks every touched component dirty.
    ///
    /// Merging is incremental: each cross-group hop bumps its `(home, g)`
    /// edge refcount, and only a 0 → 1 transition unions the two
    /// components — restarting a flow over a warm edge costs `O(1)`, not a
    /// topology rebuild.
    fn link_flow(&mut self, slot: u32) {
        let home;
        let mut cross_flow = false;
        {
            let st = self.slots[slot as usize].state.as_ref().expect("linking an empty slot");
            home = self.res_group[st.spec.path[0].0 as usize];
            self.tmp_groups.clear();
            for r in &st.spec.path {
                let g = self.res_group[r.0 as usize];
                if g != home {
                    cross_flow = true;
                }
                self.tmp_groups.push(g);
            }
        }
        let list = &mut self.group_flows[home as usize];
        match list.binary_search(&slot) {
            Err(pos) => list.insert(pos, slot),
            Ok(_) => unreachable!("slot {slot} linked twice"),
        }
        if cross_flow {
            self.cross.insert(slot);
            let tmp = std::mem::take(&mut self.tmp_groups);
            for &g in &tmp {
                if g == home {
                    continue;
                }
                let key = if home < g { (home, g) } else { (g, home) };
                let count = self.edge_count.entry(key).or_insert(0);
                *count += 1;
                if *count == 1 && !self.topo_stale {
                    // A pending rebuild re-derives connectivity from
                    // `cross` (which already holds this slot), so the
                    // incremental union only runs on a fresh mapping.
                    self.merge_comps(home, g);
                }
            }
            self.tmp_groups = tmp;
        }
        let tmp = std::mem::take(&mut self.tmp_groups);
        for &g in &tmp {
            self.mark_group_dirty(g);
        }
        self.tmp_groups = tmp;
    }

    /// Unions the components of groups `a` and `b` in place: the smaller
    /// representative wins (same deterministic choice as a full rebuild),
    /// the materialized mapping is rewritten, and the loser's dirty mark —
    /// if any — moves to the winner.
    fn merge_comps(&mut self, a: u32, b: u32) {
        let ra = uf_find(&mut self.uf, a);
        let rb = uf_find(&mut self.uf, b);
        if ra == rb {
            return;
        }
        let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
        self.uf[hi as usize] = lo;
        for c in self.comp_of_group.iter_mut() {
            if *c == hi {
                *c = lo;
            }
        }
        self.ncomps -= 1;
        if self.dirty[hi as usize] {
            self.dirty[hi as usize] = false;
            self.dirty_list.retain(|&r| r != hi);
            self.mark_comp_dirty(lo);
        }
    }

    /// Inverse of [`Self::link_flow`]; called just before a flow's slot is
    /// vacated. A departing cross-group flow may split its component.
    fn unlink_flow(&mut self, slot: u32) {
        let home;
        let mut cross_flow = false;
        {
            let st = self.slots[slot as usize].state.as_ref().expect("unlinking an empty slot");
            if st.spec.path.is_empty() {
                return;
            }
            home = self.res_group[st.spec.path[0].0 as usize];
            self.tmp_groups.clear();
            for r in &st.spec.path {
                let g = self.res_group[r.0 as usize];
                if g != home {
                    cross_flow = true;
                }
                self.tmp_groups.push(g);
            }
        }
        let list = &mut self.group_flows[home as usize];
        match list.binary_search(&slot) {
            Ok(pos) => {
                list.remove(pos);
            }
            Err(_) => unreachable!("slot {slot} missing from its group list"),
        }
        if cross_flow {
            self.cross.remove(&slot);
            let tmp = std::mem::take(&mut self.tmp_groups);
            for &g in &tmp {
                if g == home {
                    continue;
                }
                let key = if home < g { (home, g) } else { (g, home) };
                let count =
                    self.edge_count.get_mut(&key).expect("unlinking an uncounted group edge");
                *count -= 1;
                if *count == 0 {
                    // Last flow over this edge: its component may have
                    // split. Defer the rebuild to the next solve — a burst
                    // of departures then pays for one rebuild, not one per
                    // flow.
                    self.edge_count.remove(&key);
                    self.topo_stale = true;
                }
            }
            self.tmp_groups = tmp;
        }
        let tmp = std::mem::take(&mut self.tmp_groups);
        for &g in &tmp {
            self.mark_group_dirty(g);
        }
        self.tmp_groups = tmp;
    }

    /// Recomputes the group → component mapping from the surviving
    /// cross-group flows, carrying existing dirty marks across the remap
    /// (every group whose old component was dirty keeps its new component
    /// dirty).
    fn rebuild_topology(&mut self) {
        self.topo_stale = false;
        let n = self.comp_of_group.len();
        self.uf.clear();
        self.uf.extend(0..n as u32);
        for &slot in &self.cross {
            let st = self.slots[slot as usize].state.as_ref().expect("cross slot occupied");
            let g0 = self.res_group[st.spec.path[0].0 as usize];
            for r in &st.spec.path[1..] {
                let g = self.res_group[r.0 as usize];
                uf_union(&mut self.uf, g0, g);
            }
        }
        let mut newc = vec![0u32; n];
        let mut ncomps = 0usize;
        for (g, c) in newc.iter_mut().enumerate() {
            let rep = uf_find(&mut self.uf, g as u32);
            *c = rep;
            if rep as usize == g {
                ncomps += 1;
            }
        }
        let mut nd = vec![false; n];
        self.dirty_list.clear();
        for (&old, &rep) in self.comp_of_group.iter().zip(&newc) {
            if self.dirty[old as usize] && !nd[rep as usize] {
                nd[rep as usize] = true;
                self.dirty_list.push(rep);
            }
        }
        self.comp_of_group = newc;
        self.dirty = nd;
        self.ncomps = ncomps;
    }

    fn mark_group_dirty(&mut self, group: u32) {
        let rep = self.comp_of_group[group as usize];
        self.mark_comp_dirty(rep);
    }

    fn mark_comp_dirty(&mut self, rep: u32) {
        if !self.dirty[rep as usize] {
            self.dirty[rep as usize] = true;
            self.dirty_list.push(rep);
        }
        self.any_dirty = true;
    }

    /// Re-solves dirty components ([`SolveMode::Partitioned`]) or every
    /// component ([`SolveMode::Full`]). Either way components are visited
    /// in ascending-representative order and rates committed only on a
    /// bitwise change, so the two modes stay byte-for-byte interchangeable.
    fn recompute_if_dirty(&mut self) {
        if !self.any_dirty {
            return;
        }
        if self.topo_stale {
            // A departed cross flow may have split a component; re-derive
            // the mapping (and re-home the dirty marks) before solving.
            self.rebuild_topology();
        }
        self.stats.recomputes += 1;
        self.stats.comps_existing += self.ncomps as u64;
        match self.mode {
            SolveMode::Full => {
                let mut sc = std::mem::take(&mut self.scratch);
                for g in 0..self.comp_of_group.len() as u32 {
                    if self.comp_of_group[g as usize] == g {
                        self.stats.comps_solved += 1;
                        self.solve_apply_one(g, &mut sc);
                    }
                }
                self.scratch = sc;
                let list = std::mem::take(&mut self.dirty_list);
                for &rep in &list {
                    self.dirty[rep as usize] = false;
                }
                self.dirty_list = list;
                self.dirty_list.clear();
            }
            SolveMode::Partitioned => {
                let mut list = std::mem::take(&mut self.dirty_list);
                list.sort_unstable();
                self.stats.comps_solved += list.len() as u64;
                if !self.solve_dirty_parallel(&list) {
                    let mut sc = std::mem::take(&mut self.scratch);
                    for &rep in &list {
                        debug_assert_eq!(self.comp_of_group[rep as usize], rep);
                        self.solve_apply_one(rep, &mut sc);
                    }
                    self.scratch = sc;
                }
                for &rep in &list {
                    self.dirty[rep as usize] = false;
                }
                list.clear();
                self.dirty_list = list;
            }
        }
        self.fold_scratch_stats();
        self.any_dirty = false;
    }

    /// Attempts the multi-worker solve of the sorted dirty-component list,
    /// returning `false` when the solve should run serially instead (one
    /// worker, too few dirty components to pay the dispatch, or the pool
    /// already owned by an enclosing fan-out such as a `par::map` sweep).
    ///
    /// Workers claim components off an atomic cursor and solve each into
    /// their private [`WorkerSlot`] ([`Self::solve_comp_rates`] reads only
    /// the component's own flows and resources, which are disjoint between
    /// components by construction). The commit then replays every solved
    /// component through [`Self::apply_solved`] in ascending dirty-list
    /// (= ascending representative) order — the same order the serial path
    /// uses — so byte counters, queue insertion order and every rate bit
    /// match the serial solve for any worker count.
    fn solve_dirty_parallel(&mut self, list: &[u32]) -> bool {
        let workers = self.solve_workers().min(list.len());
        if workers < 2 || list.len() < PAR_SOLVE_MIN_COMPS || crate::pool::is_busy() {
            return false;
        }
        let t0 = std::time::Instant::now();
        let mut slots = std::mem::take(&mut self.worker_scratches.0);
        while slots.len() < workers {
            slots.push(std::sync::Mutex::new(WorkerSlot::default()));
        }
        let cursor = std::sync::atomic::AtomicUsize::new(0);
        {
            let this: &FlowNet = self;
            crate::pool::run(workers, &|w| {
                let mut slot = slots[w].lock().expect("worker slot poisoned");
                let slot = &mut *slot;
                slot.out.clear();
                loop {
                    let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= list.len() {
                        break;
                    }
                    let rep = list[i];
                    debug_assert_eq!(this.comp_of_group[rep as usize], rep);
                    this.solve_comp_rates(rep, &mut slot.scratch);
                    slot.out.push_comp(i as u32, &slot.scratch);
                }
            });
        }
        let t1 = std::time::Instant::now();
        // Canonical commit: move the result buffers out of their mutexes
        // (the fan-out is over; this is plain single-threaded code again),
        // locate each dirty-list index in whichever worker's buffer solved
        // it, then apply in ascending index order.
        let mut outs: Vec<SolvedBuf> = slots
            .iter_mut()
            .take(workers)
            .map(|m| std::mem::take(&mut m.get_mut().expect("worker slot poisoned").out))
            .collect();
        let mut where_of = vec![(u32::MAX, u32::MAX); list.len()];
        for (w, out) in outs.iter().enumerate() {
            for (k, &(idx, _, _)) in out.comps.iter().enumerate() {
                where_of[idx as usize] = (w as u32, k as u32);
            }
        }
        for &(w, k) in &where_of {
            debug_assert_ne!(w, u32::MAX, "a dirty component was never solved");
            let (parts, rates, pred_at, zombies) = outs[w as usize].comp_slices(k as usize);
            self.apply_solved(parts, rates, pred_at, zombies);
        }
        for (m, out) in slots.iter_mut().zip(outs.drain(..)) {
            m.get_mut().expect("worker slot poisoned").out = out;
        }
        for m in slots.iter_mut().take(workers) {
            let sc = &mut m.get_mut().expect("worker slot poisoned").scratch;
            self.scratch.stat_parts += sc.stat_parts;
            self.scratch.stat_rounds += sc.stat_rounds;
            self.scratch.stat_comp_max = self.scratch.stat_comp_max.max(sc.stat_comp_max);
            sc.stat_parts = 0;
            sc.stat_rounds = 0;
            sc.stat_comp_max = 0;
        }
        self.worker_scratches.0 = slots;
        self.stats.par_solves += 1;
        self.stats.par_workers += workers as u64;
        self.breakdown.solve_s += (t1 - t0).as_secs_f64();
        self.breakdown.apply_s += t1.elapsed().as_secs_f64();
        true
    }

    /// Serial solve + immediate apply of one component (the [`SolveMode::Full`]
    /// oracle path and the small-solve fast path).
    fn solve_apply_one(&mut self, rep: u32, sc: &mut Scratch) {
        let t0 = std::time::Instant::now();
        self.solve_comp_rates(rep, sc);
        let t1 = std::time::Instant::now();
        self.apply_comp(sc);
        self.breakdown.solve_s += (t1 - t0).as_secs_f64();
        self.breakdown.apply_s += t1.elapsed().as_secs_f64();
    }

    /// Moves the scratch-accumulated work counters into [`SolverStats`] and
    /// charges this recompute's largest component to the imbalance
    /// accumulators. Called once per recompute, after every scratch
    /// (persistent or per-worker) has been folded back.
    fn fold_scratch_stats(&mut self) {
        let sc = &mut self.scratch;
        self.stats.parts_solved += sc.stat_parts;
        self.stats.fill_rounds += sc.stat_rounds;
        self.stats.comp_parts_max = self.stats.comp_parts_max.max(sc.stat_comp_max);
        self.stats.solve_parts_max += sc.stat_comp_max;
        sc.stat_parts = 0;
        sc.stat_rounds = 0;
        sc.stat_comp_max = 0;
    }

    /// Pure solve phase for one component: collects its active
    /// participants, computes their max-min rates, and precomputes each
    /// changed participant's completion prediction into `sc`. Takes `&self`
    /// only — components partition the resource groups and their flows, so
    /// disjoint components run this concurrently on the worker pool; all
    /// mutation is deferred to [`Self::apply_comp`], which commits in
    /// canonical component order.
    fn solve_comp_rates(&self, rep: u32, sc: &mut Scratch) {
        sc.parts.clear();
        sc.zombies.clear();
        let now = self.now;
        for g in 0..self.comp_of_group.len() {
            if self.comp_of_group[g] != rep {
                continue;
            }
            for &slot in &self.group_flows[g] {
                let st = self.slots[slot as usize].state.as_ref().expect("grouped slot occupied");
                if !st.active {
                    continue;
                }
                if live_remaining(st, now) > 0.0 {
                    sc.parts.push(slot);
                } else {
                    sc.zombies.push(slot);
                }
            }
        }
        sc.stat_parts += sc.parts.len() as u64;
        sc.stat_comp_max = sc.stat_comp_max.max(sc.parts.len() as u64);
        if !sc.parts.is_empty() {
            // Map the resources on participant paths to dense local indices
            // (epoch-guarded: no per-solve clearing of global-sized arrays).
            sc.epoch = sc.epoch.wrapping_add(1);
            if sc.res_epoch.len() < self.resources.len() {
                sc.res_epoch.resize(self.resources.len(), 0);
                sc.res_local.resize(self.resources.len(), 0);
            }
            sc.res_ids.clear();
            sc.eff_caps.clear();
            let mut all_single = true;
            for &slot in &sc.parts {
                let st = self.slots[slot as usize].state.as_ref().expect("occupied");
                if st.spec.path.len() != 1 {
                    all_single = false;
                }
                // Effective cap: the flow's own rate cap combined with every
                // per-flow share limit on its path. Share limits track the
                // *current* capacity, so capacity mutation (fault injection)
                // tightens them automatically.
                let mut cap = st.spec.rate_cap.unwrap_or(f64::INFINITY);
                for r in &st.spec.path {
                    let ri = r.0 as usize;
                    if sc.res_epoch[ri] != sc.epoch {
                        sc.res_epoch[ri] = sc.epoch;
                        sc.res_local[ri] = sc.res_ids.len() as u32;
                        sc.res_ids.push(r.0);
                    }
                    let res = &self.resources[ri];
                    if let Some(share) = res.flow_share {
                        cap = cap.min(share * res.capacity);
                    }
                }
                sc.eff_caps.push(cap);
            }
            sc.rates.clear();
            sc.rates.resize(sc.parts.len(), 0.0);
            if all_single {
                self.solve_single_resource(sc);
            } else {
                self.solve_progressive(sc);
            }
        }
        // Prediction rebuild: each changed participant's completion instant
        // is a pure function of its new rate and post-settle remaining
        // bytes (`live_remaining` mirrors the settle arithmetic exactly),
        // so it can be computed here, off the serial apply path.
        sc.pred_at.clear();
        for (k, &slot) in sc.parts.iter().enumerate() {
            let st = self.slots[slot as usize].state.as_ref().expect("occupied");
            let new_rate = sc.rates[k];
            if new_rate.to_bits() == st.rate.to_bits() {
                sc.pred_at.push(PRED_UNCHANGED);
            } else {
                let rem = live_remaining(st, now);
                sc.pred_at.push(match predict_completion_ns(new_rate, rem, now) {
                    Some(at) => at,
                    None => PRED_STARVED,
                });
            }
        }
    }

    /// Commit phase for one solved component: settles and re-stamps every
    /// participant whose rate changed bitwise (an unchanged participant
    /// keeps its anchor and queue entry untouched, which is what makes
    /// re-solving a clean component a no-op), then parks zombies. Runs in
    /// ascending-representative order across components — byte-counter
    /// accumulation and event-queue insertion order are part of the
    /// deterministic output, so this phase is never fanned out.
    fn apply_comp(&mut self, sc: &Scratch) {
        self.apply_solved(&sc.parts, &sc.rates, &sc.pred_at, &sc.zombies);
    }

    /// Slice-based body of [`Self::apply_comp`]: the parallel path replays
    /// each worker's [`SolvedBuf`] through this in canonical order.
    fn apply_solved(&mut self, parts: &[u32], rates: &[f64], pred_at: &[u64], zombies: &[u32]) {
        let now = self.now;
        for (k, &slot) in parts.iter().enumerate() {
            let at = pred_at[k];
            if at == PRED_UNCHANGED {
                continue;
            }
            self.settle(slot, now);
            let s = &mut self.slots[slot as usize];
            let gen = s.gen;
            let st = s.state.as_mut().expect("occupied");
            st.rate = rates[k];
            st.pred = st.pred.wrapping_add(1);
            debug_assert_eq!(
                predict_completion_ns(st.rate, st.remaining, now),
                (at != PRED_STARVED).then_some(at),
                "solve-phase prediction diverged from post-settle state"
            );
            if at != PRED_STARVED {
                let pred = st.pred;
                self.events.push(at, NetEvent { slot, gen, pred });
            }
        }
        for &slot in zombies {
            // A flow whose bytes ran out but that was not collected yet
            // (e.g. a fault preempted its completion event): settle the last
            // bytes, park the rate at 0 and queue a complete-now entry so it
            // surfaces on the next collection.
            let st = self.slots[slot as usize].state.as_ref().expect("occupied");
            if st.rate != 0.0 {
                self.settle(slot, now);
                let st = self.slots[slot as usize].state.as_mut().expect("occupied");
                st.rate = 0.0;
            }
            let st = self.slots[slot as usize].state.as_mut().expect("occupied");
            st.pred = st.pred.wrapping_add(1);
            self.push_completion_at(slot, now);
        }
    }

    /// Exact max-min for the case where every unfrozen flow loads exactly
    /// one resource: resources are then independent, and the allocation on
    /// each is a single sorted water-fill — flows whose cap is below the
    /// running fair share get their cap, the rest split the remainder
    /// equally. One `O(n log n)` pass replaces up to `n` progressive-filling
    /// rounds.
    fn solve_single_resource(&self, sc: &mut Scratch) {
        sc.single.clear();
        for (k, &slot) in sc.parts.iter().enumerate() {
            let st = self.slots[slot as usize].state.as_ref().expect("occupied");
            sc.single.push((st.spec.path[0].0, sc.eff_caps[k], k as u32));
        }
        // Group by resource; within a group ascending cap (participant
        // index — i.e. slot order — as the deterministic tie-break).
        sc.single
            .sort_unstable_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)).then(a.2.cmp(&b.2)));
        let mut g = 0;
        while g < sc.single.len() {
            let res = sc.single[g].0;
            let mut end = g;
            while end < sc.single.len() && sc.single[end].0 == res {
                end += 1;
            }
            let mut remaining = self.resources[res as usize].capacity.max(0.0);
            let mut left = end - g;
            let mut j = g;
            while j < end {
                let fair = if remaining > 0.0 { remaining / left as f64 } else { 0.0 };
                let (_, cap, k) = sc.single[j];
                if cap < fair {
                    sc.rates[k as usize] = cap;
                    remaining -= cap;
                    left -= 1;
                    j += 1;
                } else {
                    // Ascending caps: every remaining flow's cap is >= fair,
                    // so they all settle at the equal share.
                    for &(_, _, k) in &sc.single[j..end] {
                        sc.rates[k as usize] = fair;
                    }
                    break;
                }
            }
            g = end;
        }
    }

    /// General progressive filling: all unfrozen flows grow at the same
    /// rate until a resource saturates or a flow hits its cap, repeating
    /// until every flow is frozen.
    fn solve_progressive(&self, sc: &mut Scratch) {
        let nres = sc.res_ids.len();
        sc.residual.clear();
        for &r in &sc.res_ids {
            sc.residual.push(self.resources[r as usize].capacity);
        }
        sc.unfrozen.clear();
        sc.unfrozen.extend(0..sc.parts.len() as u32);
        let mut guard = 0usize;
        while !sc.unfrozen.is_empty() {
            sc.stat_rounds += 1;
            guard += 1;
            assert!(guard <= nres + sc.parts.len() + 2, "progressive filling failed to converge");
            // Per-resource unfrozen flow counts.
            sc.counts.clear();
            sc.counts.resize(nres, 0);
            for &k in &sc.unfrozen {
                let slot = sc.parts[k as usize];
                let st = self.slots[slot as usize].state.as_ref().expect("occupied");
                for r in &st.spec.path {
                    sc.counts[sc.res_local[r.0 as usize] as usize] += 1;
                }
            }
            // Water level: smallest equal increment that saturates a resource.
            let mut inc = f64::INFINITY;
            for (i, &c) in sc.counts.iter().enumerate() {
                if c > 0 {
                    inc = inc.min(sc.residual[i].max(0.0) / c as f64);
                }
            }
            // Or that drives a flow into its cap.
            for &k in &sc.unfrozen {
                let cap = sc.eff_caps[k as usize];
                if cap.is_finite() {
                    inc = inc.min((cap - sc.rates[k as usize]).max(0.0));
                }
            }
            if inc.is_infinite() {
                // No resource and no cap constrains these flows: infinitely
                // fast (zero-cost transfers, e.g. loopback control messages).
                for &k in &sc.unfrozen {
                    sc.rates[k as usize] = f64::INFINITY;
                }
                break;
            }
            for &k in &sc.unfrozen {
                sc.rates[k as usize] += inc;
                let slot = sc.parts[k as usize];
                let st = self.slots[slot as usize].state.as_ref().expect("occupied");
                for r in &st.spec.path {
                    sc.residual[sc.res_local[r.0 as usize] as usize] -= inc;
                }
            }
            // Freeze flows at their cap or on a saturated resource.
            sc.still.clear();
            for &k in &sc.unfrozen {
                let cap = sc.eff_caps[k as usize];
                let rate = sc.rates[k as usize];
                let capped = cap.is_finite() && rate >= cap - cap * 1e-12 - 1e-15;
                let slot = sc.parts[k as usize];
                let st = self.slots[slot as usize].state.as_ref().expect("occupied");
                let saturated = st.spec.path.iter().any(|r| {
                    let local = sc.res_local[r.0 as usize] as usize;
                    sc.residual[local] <= self.resources[r.0 as usize].capacity * 1e-12
                });
                if !capped && !saturated {
                    sc.still.push(k);
                }
            }
            assert!(sc.still.len() < sc.unfrozen.len(), "progressive filling made no progress");
            std::mem::swap(&mut sc.unfrozen, &mut sc.still);
        }
    }
}

/// The completion instant implied by `rate` and (settled) `remaining` bytes
/// from `from`, in nanoseconds — `None` for a starved flow (rate 0, bytes
/// left). The single source of the prediction arithmetic: both the serial
/// [`FlowNet::push_completion_at`] and the read-only parallel solve phase
/// call it, so the two paths agree bit-for-bit by construction.
fn predict_completion_ns(rate: f64, remaining: f64, from: SimTime) -> Option<u64> {
    if rate.is_infinite() || remaining <= completion_eps(rate) {
        Some(from.as_nanos())
    } else if rate > 0.0 {
        // Ceil to the next nanosecond so that advancing to the predicted
        // instant guarantees remaining <= eps despite rounding.
        let dt_ns = (remaining / rate * 1e9).ceil() as u64;
        Some(from.as_nanos().saturating_add(dt_ns.max(1)))
    } else {
        None
    }
}

/// Minimum leftover bytes treated as "transfer complete": 2 ns worth of data
/// at the current rate, at least [`EPS_BYTES`] — covers nanosecond rounding
/// of completion times plus float drift.
fn completion_eps(rate: f64) -> f64 {
    if rate.is_finite() {
        EPS_BYTES.max(rate * 2e-9)
    } else {
        f64::INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn drain(net: &mut FlowNet) -> Vec<(f64, FlowId)> {
        let mut out = Vec::new();
        while let Some(t) = net.next_change() {
            net.advance_to(t);
            for id in net.take_completed() {
                out.push((t.as_secs_f64(), id));
            }
        }
        out
    }

    #[test]
    fn single_uncapped_flow_uses_full_capacity() {
        let mut net = FlowNet::new();
        let r = net.add_resource("link", 10.0);
        net.start_flow(FlowSpec::new(vec![r], 100.0));
        let done = drain(&mut net);
        assert_eq!(done.len(), 1);
        assert!((done[0].0 - 10.0).abs() < 1e-6, "t={}", done[0].0);
    }

    #[test]
    fn single_capped_flow_limited_to_cap() {
        let mut net = FlowNet::new();
        let r = net.add_resource("link", 100.0);
        net.start_flow(FlowSpec::new(vec![r], 30.0).with_rate_cap(30.0));
        assert!((net.utilization(r) - 0.3).abs() < 1e-9);
        let done = drain(&mut net);
        assert!((done[0].0 - 1.0).abs() < 1e-6);
    }

    #[test]
    fn multiple_capped_flows_aggregate_bandwidth() {
        // Paper §III/§V: N concurrent streams multiplex the link.
        let mut net = FlowNet::new();
        let r = net.add_resource("nic", 100.0);
        for _ in 0..3 {
            net.start_flow(FlowSpec::new(vec![r], 30.0).with_rate_cap(30.0));
        }
        assert!((net.utilization(r) - 0.9).abs() < 1e-9);
        let done = drain(&mut net);
        assert_eq!(done.len(), 3);
        for (t, _) in done {
            assert!((t - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn caps_cannot_oversubscribe_capacity() {
        let mut net = FlowNet::new();
        let r = net.add_resource("nic", 100.0);
        for _ in 0..5 {
            net.start_flow(FlowSpec::new(vec![r], 100.0).with_rate_cap(30.0));
        }
        // 5 * 30 > 100 => fair share 20 each.
        assert!((net.utilization(r) - 1.0).abs() < 1e-9);
        let done = drain(&mut net);
        for (t, _) in done {
            assert!((t - 5.0).abs() < 1e-6, "t={t}");
        }
    }

    #[test]
    fn fair_sharing_two_flows_then_speedup() {
        let mut net = FlowNet::new();
        let r = net.add_resource("link", 10.0);
        net.start_flow(FlowSpec::new(vec![r], 30.0));
        net.start_flow(FlowSpec::new(vec![r], 50.0));
        let done = drain(&mut net);
        assert!((done[0].0 - 6.0).abs() < 1e-6);
        assert!((done[1].0 - 8.0).abs() < 1e-6);
    }

    #[test]
    fn max_min_with_heterogeneous_paths() {
        // f1 uses A only; f2 uses A and B; B is the tighter link.
        let mut net = FlowNet::new();
        let a = net.add_resource("A", 10.0);
        let b = net.add_resource("B", 4.0);
        let f1 = net.start_flow(FlowSpec::new(vec![a], 1000.0));
        let f2 = net.start_flow(FlowSpec::new(vec![a, b], 1000.0));
        net.next_change();
        // f2 limited by B to 4; f1 gets the rest of A: 6.
        assert!((net.flow(f2).unwrap().rate - 4.0).abs() < 1e-9);
        assert!((net.flow(f1).unwrap().rate - 6.0).abs() < 1e-9);
    }

    #[test]
    fn latency_delays_start() {
        let mut net = FlowNet::new();
        let r = net.add_resource("link", 10.0);
        net.start_flow(FlowSpec::new(vec![r], 10.0).with_latency(SimDuration::from_secs_f64(2.0)));
        let done = drain(&mut net);
        assert!((done[0].0 - 3.0).abs() < 1e-6, "t={}", done[0].0);
    }

    #[test]
    fn zero_byte_flow_completes_after_latency() {
        let mut net = FlowNet::new();
        let r = net.add_resource("link", 10.0);
        net.start_flow(FlowSpec::new(vec![r], 0.0).with_latency(SimDuration::from_millis(1)));
        let done = drain(&mut net);
        assert_eq!(done.len(), 1);
        assert!((done[0].0 - 0.001).abs() < 1e-9);
    }

    #[test]
    fn pathless_flow_completes_immediately() {
        let mut net = FlowNet::new();
        net.start_flow(FlowSpec::new(vec![], 1e9));
        let done = drain(&mut net);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].0, 0.0);
    }

    #[test]
    fn cancel_flow_releases_bandwidth() {
        let mut net = FlowNet::new();
        let r = net.add_resource("link", 10.0);
        let f1 = net.start_flow(FlowSpec::new(vec![r], 100.0));
        let f2 = net.start_flow(FlowSpec::new(vec![r], 100.0));
        net.next_change();
        assert!((net.flow(f1).unwrap().rate - 5.0).abs() < 1e-9);
        assert!(net.cancel_flow(f2));
        net.next_change();
        assert!((net.flow(f1).unwrap().rate - 10.0).abs() < 1e-9);
        assert!(!net.cancel_flow(f2));
    }

    #[test]
    fn completion_frees_bandwidth_for_later_flows() {
        let mut net = FlowNet::new();
        let r = net.add_resource("link", 10.0);
        net.start_flow(FlowSpec::new(vec![r], 100.0));
        net.start_flow(FlowSpec::new(vec![r], 10.0));
        // Short flow done at t=2 (5 B/s each); long one then accelerates.
        let done = drain(&mut net);
        assert!((done[0].0 - 2.0).abs() < 1e-6);
        // Long flow: 90 left at t=2, 10 B/s => t=11.
        assert!((done[1].0 - 11.0).abs() < 1e-6, "t={}", done[1].0);
    }

    #[test]
    fn utilization_reports_fraction() {
        let mut net = FlowNet::new();
        let r = net.add_resource("link", 100.0);
        net.start_flow(FlowSpec::new(vec![r], 1e6).with_rate_cap(25.0));
        net.start_flow(FlowSpec::new(vec![r], 1e6).with_rate_cap(25.0));
        assert!((net.utilization(r) - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "unknown resource")]
    fn foreign_resource_rejected() {
        let mut a = FlowNet::new();
        let mut b = FlowNet::new();
        let _ = a.add_resource("x", 1.0);
        let ra2 = a.add_resource("y", 1.0);
        let _ = b.add_resource("z", 1.0);
        b.start_flow(FlowSpec::new(vec![ra2], 1.0)); // index 1 unknown to b
    }

    #[test]
    fn many_symmetric_flows_complete_together() {
        let mut net = FlowNet::new();
        let mut path_res = Vec::new();
        for i in 0..16 {
            path_res.push(net.add_resource(format!("nic{i}"), 1e9));
        }
        for i in 0..16 {
            let p = vec![path_res[i], path_res[(i + 1) % 16]];
            net.start_flow(FlowSpec::new(p, 1e8).with_rate_cap(3e8));
        }
        let done = drain(&mut net);
        assert_eq!(done.len(), 16);
        let t0 = done[0].0;
        for (t, _) in done {
            assert!((t - t0).abs() < 1e-6);
        }
    }

    #[test]
    fn groups_partition_the_solve() {
        // Two groups, flows confined to each: two components, and an event
        // in one never re-solves the other.
        let mut net = FlowNet::new();
        net.set_solve_mode(SolveMode::Partitioned);
        let a = net.add_resource_in_group("rack0", 10.0, 0);
        let b = net.add_resource_in_group("rack1", 10.0, 1);
        net.start_flow(FlowSpec::new(vec![a], 100.0));
        net.start_flow(FlowSpec::new(vec![b], 200.0));
        let done = drain(&mut net);
        assert_eq!(done.len(), 2);
        assert!((done[0].0 - 10.0).abs() < 1e-6);
        assert!((done[1].0 - 20.0).abs() < 1e-6);
        let stats = net.solver_stats();
        assert!(
            stats.comps_solved < stats.comps_existing,
            "partitioned mode should skip clean components: {stats:?}"
        );
    }

    #[test]
    fn cross_group_flow_merges_and_split_restores() {
        // A cross-group flow couples both racks into one component; rates
        // must still be exact max-min over the union.
        let mut net = FlowNet::new();
        let a = net.add_resource_in_group("rack0", 10.0, 0);
        let b = net.add_resource_in_group("rack1", 4.0, 1);
        let f1 = net.start_flow(FlowSpec::new(vec![a], 1000.0));
        let f2 = net.start_flow(FlowSpec::new(vec![a, b], 1000.0));
        net.next_change();
        assert!((net.flow(f2).unwrap().rate - 4.0).abs() < 1e-9);
        assert!((net.flow(f1).unwrap().rate - 6.0).abs() < 1e-9);
        // Removing the cross flow splits the component and restores f1 to
        // the full rack-local capacity.
        assert!(net.cancel_flow(f2));
        net.next_change();
        assert!((net.flow(f1).unwrap().rate - 10.0).abs() < 1e-9);
    }

    #[test]
    fn full_and_partitioned_modes_agree_bitwise() {
        let run = |mode: SolveMode| {
            let mut net = FlowNet::new();
            net.set_solve_mode(mode);
            let a = net.add_resource_in_group("a", 13.0, 0);
            let b = net.add_resource_in_group("b", 7.0, 1);
            let c = net.add_resource_in_group("c", 29.0, 2);
            net.start_flow(FlowSpec::new(vec![a], 100.0));
            net.start_flow(FlowSpec::new(vec![b], 55.0).with_rate_cap(3.0));
            net.start_flow(FlowSpec::new(vec![a, b], 40.0));
            net.start_flow(FlowSpec::new(vec![c], 90.0).with_latency(SimDuration::from_millis(3)));
            let mut log: Vec<(u64, u64)> = Vec::new();
            while let Some(t) = net.next_change() {
                net.advance_to(t);
                for id in net.take_completed() {
                    log.push((t.as_nanos(), id.as_u64()));
                }
            }
            let bytes = (
                net.carried_bytes(a).to_bits(),
                net.carried_bytes(b).to_bits(),
                net.carried_bytes(c).to_bits(),
            );
            (log, bytes)
        };
        assert_eq!(run(SolveMode::Full), run(SolveMode::Partitioned));
    }

    #[test]
    fn carried_equals_delivered_on_single_hop_paths() {
        // Satellite bugfix: infinite-rate (pathless flows aside) and
        // residual credits must hit the carried counter too.
        let mut net = FlowNet::new();
        let r = net.add_resource("link", 50.0);
        net.start_flow(FlowSpec::new(vec![r], 120.0));
        net.start_flow(FlowSpec::new(vec![r], 0.0).with_latency(SimDuration::from_millis(2)));
        let done = drain(&mut net);
        assert_eq!(done.len(), 2);
        assert_eq!(
            net.carried_bytes(r).to_bits(),
            net.delivered_bytes_by_tag(0).to_bits(),
            "carried {} != delivered {}",
            net.carried_bytes(r),
            net.delivered_bytes_by_tag(0)
        );
    }

    #[test]
    fn active_flow_count_tracks_latency_phase() {
        let mut net = FlowNet::new();
        let r = net.add_resource("link", 10.0);
        net.start_flow(FlowSpec::new(vec![r], 10.0));
        net.start_flow(FlowSpec::new(vec![r], 10.0).with_latency(SimDuration::from_millis(5)));
        assert_eq!(net.flow_count(), 2);
        assert_eq!(net.active_flow_count(), 1);
        let t = net.next_change().unwrap();
        net.advance_to(t);
        net.take_completed();
        // Either the first flow finished or the second activated first;
        // drain fully and check the counters empty out.
        drain(&mut net);
        assert_eq!(net.flow_count(), 0);
        assert_eq!(net.active_flow_count(), 0);
    }

    #[test]
    fn stale_queue_entries_never_deliver() {
        // Cancel a flow whose completion entry is still queued, then reuse
        // its slot: the stale entry must not complete the new tenant.
        let mut net = FlowNet::new();
        let r = net.add_resource("link", 10.0);
        let f1 = net.start_flow(FlowSpec::new(vec![r], 10.0)); // would complete at 1s
        net.next_change();
        assert!(net.cancel_flow(f1));
        let f2 = net.start_flow(FlowSpec::new(vec![r], 1000.0)); // same slot, 100s
        let done = drain(&mut net);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].1, f2);
        assert!((done[0].0 - 100.0).abs() < 1e-6, "t={}", done[0].0);
    }
}
