//! Fluid-flow network: resources with capacities and flows that share them
//! under progressive-filling max-min fairness with per-flow rate caps.

use crate::flow::{Flow, FlowId, FlowSpec};
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a [`Resource`] (a link port, NIC direction, bus, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ResourceId(u32);

impl ResourceId {
    /// The raw index value.
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// Test-only constructor; ids are normally minted by
    /// [`FlowNet::add_resource`].
    #[cfg(test)]
    pub(crate) const fn from_index(i: u32) -> Self {
        ResourceId(i)
    }
}

impl fmt::Display for ResourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "res#{}", self.0)
    }
}

/// A capacity-limited network resource (e.g. one direction of a NIC).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Resource {
    /// Human-readable name used in diagnostics.
    pub name: String,
    /// Capacity in bytes/second. Strictly positive at creation; fault
    /// injection may scale it down to zero (link down) at runtime via
    /// [`FlowNet::set_capacity`].
    pub capacity: f64,
    /// Optional per-flow share: any single flow crossing this resource is
    /// individually limited to `share × capacity` bytes/second. Unlike a
    /// [`FlowSpec::rate_cap`] (absolute), this limit tracks the *current*
    /// capacity, so a degraded NIC also degrades each stream's ceiling —
    /// the paper's single-stream cap (§III) expressed as a property of the
    /// link rather than the flow.
    pub flow_share: Option<f64>,
}

#[derive(Debug, Clone)]
struct FlowState {
    spec: FlowSpec,
    remaining: f64,
    rate: f64,
    activates_at: SimTime,
    active: bool,
    /// Start-order sequence number: completions are delivered in this order
    /// (slab slots are reused, so slot index order is not start order).
    seq: u64,
}

/// One slab slot: a generation counter plus the (optional) resident flow.
///
/// The generation increments every time a flow leaves the slot, so a stale
/// [`FlowId`] — which packs `(generation, slot)` — can never resolve to a
/// later flow that happens to reuse the same slot.
#[derive(Debug, Clone, Default)]
struct Slot {
    gen: u32,
    state: Option<FlowState>,
}

/// Reusable scratch for [`FlowNet::recompute_rates`]: the solver runs on
/// every flow start/finish/capacity change (the hot inner loop of every
/// sweep), so its working set is hoisted here instead of being reallocated
/// per call. All buffers are cleared before use; none carries state between
/// solves.
#[derive(Debug, Clone, Default)]
struct Scratch {
    /// Remaining capacity per resource during progressive filling.
    residual: Vec<f64>,
    /// Unfrozen-flow count per resource.
    counts: Vec<u32>,
    /// Slot indices of flows still growing.
    unfrozen: Vec<u32>,
    /// Next round's unfrozen set (swapped with `unfrozen`).
    still: Vec<u32>,
    /// Effective per-flow rate ceiling, indexed by slot
    /// (`f64::INFINITY` = uncapped) — a flat vector instead of a per-call
    /// `BTreeMap`.
    eff_caps: Vec<f64>,
    /// `(resource, cap, slot)` triples for the single-resource fast path.
    single: Vec<(u32, f64, u32)>,
}

/// Minimum leftover bytes treated as "transfer complete" (guards float drift).
const EPS_BYTES: f64 = 1e-3;

/// Packs a slab slot index and its generation into a raw flow id.
const fn pack_id(slot: u32, gen: u32) -> u64 {
    ((gen as u64) << 32) | slot as u64
}

/// Splits a raw flow id into `(slot, generation)`.
const fn unpack_id(id: u64) -> (u32, u32) {
    (id as u32, (id >> 32) as u32)
}

/// The fluid network model.
///
/// Flows are started with [`FlowNet::start_flow`]; the driver alternates
/// [`FlowNet::next_change`] / [`FlowNet::advance_to`] /
/// [`FlowNet::take_completed`]. [`crate::Simulator`] wraps this loop together
/// with user timers; most code should use that instead of driving `FlowNet`
/// directly.
///
/// # Rate allocation
///
/// Rates are recomputed lazily whenever the set of active flows changes, using
/// progressive filling: all unfrozen flows grow at the same rate until either
/// a resource saturates (its flows freeze) or a flow hits its own
/// [`FlowSpec::rate_cap`] (it freezes). This yields the classical max-min fair
/// allocation extended with per-flow caps.
///
/// # Example
/// ```
/// use aiacc_simnet::{FlowNet, FlowSpec, SimTime};
/// let mut net = FlowNet::new();
/// let r = net.add_resource("nic", 100.0);
/// // One flow capped at 30 B/s on a 100 B/s link: 30 % utilization.
/// net.start_flow(FlowSpec::new(vec![r], 300.0).with_rate_cap(30.0));
/// let t = net.next_change().unwrap();
/// assert!((t.as_secs_f64() - 10.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FlowNet {
    resources: Vec<Resource>,
    /// Generation-indexed flow slab: O(1) id → state, no per-flow
    /// allocation churn, deterministic (LIFO) slot reuse.
    slots: Vec<Slot>,
    /// Vacant slot indices, most recently freed last.
    free: Vec<u32>,
    /// Number of occupied slots.
    live: usize,
    now: SimTime,
    /// Start-order counter stamped onto each flow (drives completion order).
    next_seq: u64,
    rates_valid: bool,
    /// Cumulative bytes carried per resource (telemetry).
    carried: Vec<f64>,
    /// Cumulative bytes delivered per flow tag (index = tag; telemetry).
    delivered_by_tag: Vec<f64>,
    /// Cumulative bytes offered per flow tag (stamped at flow start).
    launched_by_tag: Vec<f64>,
    /// Persistent solver working set (see [`Scratch`]).
    scratch: Scratch,
}

impl FlowNet {
    /// Creates an empty network at time zero.
    pub fn new() -> Self {
        FlowNet::default()
    }

    /// Adds a resource with the given capacity in bytes/second.
    ///
    /// # Panics
    /// Panics if `capacity` is not strictly positive and finite.
    pub fn add_resource(&mut self, name: impl Into<String>, capacity: f64) -> ResourceId {
        assert!(capacity.is_finite() && capacity > 0.0, "invalid capacity: {capacity}");
        let id = ResourceId(u32::try_from(self.resources.len()).expect("too many resources"));
        self.resources.push(Resource { name: name.into(), capacity, flow_share: None });
        self.carried.push(0.0);
        id
    }

    /// Limits every individual flow crossing `id` to `share × capacity`
    /// bytes/second (`None` removes the limit). The limit follows later
    /// capacity changes — see [`Resource::flow_share`].
    ///
    /// # Panics
    /// Panics if `share` is not in `(0, 1]`.
    pub fn set_flow_share(&mut self, id: ResourceId, share: Option<f64>) {
        if let Some(s) = share {
            assert!(s.is_finite() && s > 0.0 && s <= 1.0, "invalid flow share: {s}");
        }
        self.resources[id.0 as usize].flow_share = share;
        self.rates_valid = false;
    }

    /// Sets the capacity of `id` to `capacity` bytes/second, effective at
    /// the current virtual time, and re-solves max-min rates for all flows
    /// in progress. A capacity of `0` models a downed link: flows crossing
    /// it stall (rate 0) until capacity is restored.
    ///
    /// Bytes already moved are unaffected; only the allocation that holds
    /// from `now` onward changes. This is the mutation hook used by the
    /// fault-injection layer ([`crate::faults`]).
    ///
    /// # Panics
    /// Panics if `capacity` is negative, NaN or infinite.
    pub fn set_capacity(&mut self, id: ResourceId, capacity: f64) {
        assert!(capacity.is_finite() && capacity >= 0.0, "invalid capacity: {capacity}");
        let res = &mut self.resources[id.0 as usize];
        if res.capacity != capacity {
            res.capacity = capacity;
            self.rates_valid = false;
        }
    }

    /// Cumulative bytes this resource has carried since simulation start —
    /// the counter behind utilization telemetry: average utilization over a
    /// window is `Δcarried / (capacity · Δt)`.
    pub fn carried_bytes(&self, id: ResourceId) -> f64 {
        self.carried[id.as_u32() as usize]
    }

    /// Cumulative bytes *delivered* (moved to completion) by flows carrying
    /// `tag` ([`FlowSpec::with_tag`]). The multi-job scheduler tags every
    /// flow with its owning job, so on a shared fabric each tenant's traffic
    /// stays individually auditable: for a run in which every tagged flow
    /// completes, `delivered == launched` per tag (byte conservation).
    pub fn delivered_bytes_by_tag(&self, tag: u32) -> f64 {
        self.delivered_by_tag.get(tag as usize).copied().unwrap_or(0.0)
    }

    /// Cumulative bytes offered by flows started with `tag` (counted at flow
    /// start, whether or not they later complete).
    pub fn launched_bytes_by_tag(&self, tag: u32) -> f64 {
        self.launched_by_tag.get(tag as usize).copied().unwrap_or(0.0)
    }

    /// Zeroes the per-tag delivered/launched accumulators for `tag`, so the
    /// tag can be reused by a new owner with byte accounting that starts
    /// from exactly `0.0`. Used by the streaming scheduler, whose finite
    /// token-scope space recycles tags across job generations.
    pub fn reset_bytes_by_tag(&mut self, tag: u32) {
        let i = tag as usize;
        if let Some(v) = self.delivered_by_tag.get_mut(i) {
            *v = 0.0;
        }
        if let Some(v) = self.launched_by_tag.get_mut(i) {
            *v = 0.0;
        }
    }

    /// Overwrites the cumulative carried-bytes accumulator for `id`.
    /// Snapshot resume seeds a fresh network with the exact accumulator
    /// values of the interrupted run, so utilization telemetry continues
    /// bit-identically (subsequent additions see the same partial sums).
    pub fn seed_carried_bytes(&mut self, id: ResourceId, bytes: f64) {
        self.carried[id.as_u32() as usize] = bytes;
    }

    fn bump_tag(v: &mut Vec<f64>, tag: u32, bytes: f64) {
        let i = tag as usize;
        if v.len() <= i {
            v.resize(i + 1, 0.0);
        }
        v[i] += bytes;
    }

    /// Read-only view of a resource.
    ///
    /// # Panics
    /// Panics if `id` was not returned by this network's
    /// [`add_resource`](Self::add_resource).
    pub fn resource(&self, id: ResourceId) -> &Resource {
        &self.resources[id.0 as usize]
    }

    /// Number of resources.
    pub fn resource_count(&self) -> usize {
        self.resources.len()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Starts a flow at the current time. Data begins moving after the spec's
    /// latency.
    ///
    /// # Panics
    /// Panics if the spec references a resource not in this network.
    pub fn start_flow(&mut self, spec: FlowSpec) -> FlowId {
        for r in &spec.path {
            assert!((r.0 as usize) < self.resources.len(), "unknown resource {r}");
        }
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.slots.push(Slot::default());
                u32::try_from(self.slots.len() - 1).expect("too many flows")
            }
        };
        let gen = self.slots[slot as usize].gen;
        let id = FlowId(pack_id(slot, gen));
        let activates_at = self.now + spec.latency;
        let active = spec.latency.as_nanos() == 0;
        let remaining = spec.bytes;
        Self::bump_tag(&mut self.launched_by_tag, spec.tag, spec.bytes);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.slots[slot as usize].state =
            Some(FlowState { spec, remaining, rate: 0.0, activates_at, active, seq });
        self.live += 1;
        self.rates_valid = false;
        id
    }

    /// The resident flow for `id`, iff the id's generation matches the slot
    /// (a completed/cancelled flow's id never resolves to a reused slot).
    fn state(&self, id: FlowId) -> Option<&FlowState> {
        let (slot, gen) = unpack_id(id.0);
        self.slots.get(slot as usize).filter(|s| s.gen == gen).and_then(|s| s.state.as_ref())
    }

    /// Vacates `slot`, returning its flow and retiring the slot's current
    /// generation so stale ids can never resurrect.
    fn vacate(&mut self, slot: u32) -> FlowState {
        let s = &mut self.slots[slot as usize];
        let st = s.state.take().expect("vacating an empty slot");
        s.gen = s.gen.wrapping_add(1);
        self.free.push(slot);
        self.live -= 1;
        st
    }

    /// Occupied slots in index order (the solver's iteration order).
    fn states(&self) -> impl Iterator<Item = &FlowState> {
        self.slots.iter().filter_map(|s| s.state.as_ref())
    }

    /// Read-only view of a flow still present in the network.
    pub fn flow(&self, id: FlowId) -> Option<Flow> {
        self.state(id).map(|s| Flow {
            spec: s.spec.clone(),
            remaining: s.remaining,
            rate: s.rate,
            active: s.active,
        })
    }

    /// Number of flows not yet completed (including latency-phase flows).
    pub fn flow_count(&self) -> usize {
        self.live
    }

    /// Aggregate allocated rate over a resource, in bytes/second.
    ///
    /// Useful for measuring utilization in tests and the bandwidth
    /// micro-benchmark.
    pub fn utilization(&mut self, id: ResourceId) -> f64 {
        self.recompute_if_dirty();
        let capacity = self.resources[id.0 as usize].capacity;
        if capacity <= 0.0 {
            // A downed link carries nothing by construction.
            return 0.0;
        }
        let total: f64 =
            self.states().filter(|f| f.active && f.spec.path.contains(&id)).map(|f| f.rate).sum();
        total / capacity
    }

    /// The next instant at which the network state changes: a flow activates
    /// (latency elapsed) or a flow completes. `None` when no flows remain.
    pub fn next_change(&mut self) -> Option<SimTime> {
        self.recompute_if_dirty();
        let mut best: Option<SimTime> = None;
        for st in self.slots.iter().filter_map(|s| s.state.as_ref()) {
            let t = if !st.active {
                st.activates_at
            } else if st.remaining <= completion_eps(st.rate) {
                self.now
            } else if st.rate > 0.0 {
                // Ceil to the next nanosecond so that advancing to `t`
                // guarantees remaining <= eps despite rounding.
                let dt_ns = (st.remaining / st.rate * 1e9).ceil() as u64;
                SimTime::from_nanos(self.now.as_nanos().saturating_add(dt_ns.max(1)))
            } else if st.rate.is_infinite() {
                self.now
            } else {
                continue; // starved flow: no progress until the flow set changes
            };
            best = Some(match best {
                Some(b) if b <= t => b,
                _ => t,
            });
        }
        best
    }

    /// Advances virtual time to `t`, moving bytes on all active flows and
    /// activating flows whose latency has elapsed.
    ///
    /// # Panics
    /// Panics if `t` is earlier than the current time.
    pub fn advance_to(&mut self, t: SimTime) {
        assert!(t >= self.now, "advance_to({t}) before now ({})", self.now);
        self.recompute_if_dirty();
        let dt = (t - self.now).as_secs_f64();
        if dt > 0.0 {
            let carried = &mut self.carried;
            let delivered = &mut self.delivered_by_tag;
            for st in self.slots.iter_mut().filter_map(|s| s.state.as_mut()) {
                if st.active {
                    let moved = if st.rate.is_infinite() {
                        std::mem::replace(&mut st.remaining, 0.0)
                    } else {
                        let moved = (st.rate * dt).min(st.remaining);
                        st.remaining -= moved;
                        for r in &st.spec.path {
                            carried[r.as_u32() as usize] += moved;
                        }
                        moved
                    };
                    Self::bump_tag(delivered, st.spec.tag, moved);
                }
            }
        }
        let mut activated = false;
        for st in self.slots.iter_mut().filter_map(|s| s.state.as_mut()) {
            if !st.active && st.activates_at <= t {
                st.active = true;
                activated = true;
            }
        }
        if activated {
            self.rates_valid = false;
        }
        self.now = t;
    }

    /// Removes and returns all flows that have finished transferring, in
    /// start order (ids are delivered oldest flow first). Call after
    /// [`advance_to`](Self::advance_to).
    pub fn take_completed(&mut self) -> Vec<FlowId> {
        // Borrow-friendly: collect (seq, slot) pairs first.
        let mut done: Vec<(u64, u32)> = Vec::new();
        for (i, s) in self.slots.iter().enumerate() {
            if let Some(st) = &s.state {
                if st.active && (st.remaining <= completion_eps(st.rate) || st.rate.is_infinite()) {
                    done.push((st.seq, i as u32));
                }
            }
        }
        // Slot order is reuse order, not start order: sort by sequence so
        // delivery (and downstream event handling) follows flow age.
        done.sort_unstable();
        let ids: Vec<FlowId> = done
            .iter()
            .map(|&(_, slot)| FlowId(pack_id(slot, self.slots[slot as usize].gen)))
            .collect();
        if !done.is_empty() {
            for &(_, slot) in &done {
                let st = self.vacate(slot);
                // Credit the sub-epsilon residual (and the full payload of
                // infinite-rate flows that completed without time advancing)
                // so per-tag delivered bytes equal launched bytes exactly
                // for every completed flow.
                Self::bump_tag(&mut self.delivered_by_tag, st.spec.tag, st.remaining);
            }
            self.rates_valid = false;
        }
        ids
    }

    /// Cancels a flow (e.g. elastic scale-down), returning `true` if it was
    /// present.
    pub fn cancel_flow(&mut self, id: FlowId) -> bool {
        if self.state(id).is_none() {
            return false;
        }
        let (slot, _) = unpack_id(id.0);
        self.vacate(slot);
        self.rates_valid = false;
        true
    }

    fn recompute_if_dirty(&mut self) {
        if self.rates_valid {
            return;
        }
        self.recompute_rates();
        self.rates_valid = true;
    }

    /// Progressive-filling max-min fairness with per-flow caps.
    ///
    /// This is the hot inner loop of every sweep: it runs on each flow
    /// start, finish and capacity change. Two structural optimizations keep
    /// it cheap: (1) all working buffers live in the persistent [`Scratch`]
    /// (no per-call allocation), with the effective-cap cache as a flat
    /// slot-indexed `Vec`; (2) the common case — every contending flow
    /// loading exactly one resource — takes a closed-form water-fill
    /// ([`Self::solve_single_resource`]) instead of iterative filling.
    fn recompute_rates(&mut self) {
        // Take the scratch out so the solver can borrow flows mutably while
        // using the buffers (returned at the end; Scratch is all Vecs, so
        // this is pointer shuffling, not allocation).
        let mut sc = std::mem::take(&mut self.scratch);
        sc.residual.clear();
        sc.residual.extend(self.resources.iter().map(|r| r.capacity));
        sc.unfrozen.clear();
        sc.eff_caps.clear();
        sc.eff_caps.resize(self.slots.len(), f64::INFINITY);
        let mut all_single = true;
        for (i, s) in self.slots.iter_mut().enumerate() {
            let Some(st) = s.state.as_mut() else { continue };
            st.rate = 0.0;
            if st.active && st.remaining > 0.0 {
                sc.unfrozen.push(i as u32);
                if st.spec.path.len() != 1 {
                    all_single = false;
                }
            }
        }
        // Effective cap per unfrozen flow: its own rate cap combined with
        // every per-flow share limit on its path. Share limits track the
        // *current* capacity, so capacity mutation (fault injection)
        // tightens them automatically.
        for &i in &sc.unfrozen {
            let st = self.slots[i as usize].state.as_ref().expect("unfrozen slot occupied");
            let mut cap = st.spec.rate_cap.unwrap_or(f64::INFINITY);
            for r in &st.spec.path {
                let res = &self.resources[r.0 as usize];
                if let Some(share) = res.flow_share {
                    cap = cap.min(share * res.capacity);
                }
            }
            sc.eff_caps[i as usize] = cap;
        }
        if sc.unfrozen.is_empty() {
            self.scratch = sc;
            return;
        }
        if all_single {
            self.solve_single_resource(&mut sc);
        } else {
            self.solve_progressive(&mut sc);
        }
        self.scratch = sc;
    }

    /// Exact max-min for the case where every unfrozen flow loads exactly
    /// one resource: resources are then independent, and the allocation on
    /// each is a single sorted water-fill — flows whose cap is below the
    /// running fair share get their cap, the rest split the remainder
    /// equally. One `O(n log n)` pass replaces up to `n` progressive-filling
    /// rounds.
    fn solve_single_resource(&mut self, sc: &mut Scratch) {
        sc.single.clear();
        for &i in &sc.unfrozen {
            let st = self.slots[i as usize].state.as_ref().expect("unfrozen slot occupied");
            sc.single.push((st.spec.path[0].0, sc.eff_caps[i as usize], i));
        }
        // Group by resource; within a group ascending cap (slot index as the
        // deterministic tie-break).
        sc.single
            .sort_unstable_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)).then(a.2.cmp(&b.2)));
        let mut g = 0;
        while g < sc.single.len() {
            let res = sc.single[g].0;
            let mut end = g;
            while end < sc.single.len() && sc.single[end].0 == res {
                end += 1;
            }
            let mut remaining = self.resources[res as usize].capacity.max(0.0);
            let mut left = end - g;
            let mut j = g;
            while j < end {
                let fair = if remaining > 0.0 { remaining / left as f64 } else { 0.0 };
                let (_, cap, slot) = sc.single[j];
                if cap < fair {
                    self.slots[slot as usize].state.as_mut().expect("occupied").rate = cap;
                    remaining -= cap;
                    left -= 1;
                    j += 1;
                } else {
                    // Ascending caps: every remaining flow's cap is >= fair,
                    // so they all settle at the equal share.
                    for &(_, _, s) in &sc.single[j..end] {
                        self.slots[s as usize].state.as_mut().expect("occupied").rate = fair;
                    }
                    break;
                }
            }
            g = end;
        }
    }

    /// General progressive filling: all unfrozen flows grow at the same
    /// rate until a resource saturates or a flow hits its cap, repeating
    /// until every flow is frozen.
    fn solve_progressive(&mut self, sc: &mut Scratch) {
        let mut guard = 0usize;
        while !sc.unfrozen.is_empty() {
            guard += 1;
            assert!(
                guard <= self.resources.len() + self.live + 2,
                "progressive filling failed to converge"
            );
            // Per-resource unfrozen flow counts.
            sc.counts.clear();
            sc.counts.resize(self.resources.len(), 0);
            for &i in &sc.unfrozen {
                let st = self.slots[i as usize].state.as_ref().expect("occupied");
                for r in &st.spec.path {
                    sc.counts[r.0 as usize] += 1;
                }
            }
            // Water level: smallest equal increment that saturates a resource.
            let mut inc = f64::INFINITY;
            for (i, &c) in sc.counts.iter().enumerate() {
                if c > 0 {
                    inc = inc.min(sc.residual[i].max(0.0) / c as f64);
                }
            }
            // Or that drives a flow into its cap.
            for &i in &sc.unfrozen {
                let st = self.slots[i as usize].state.as_ref().expect("occupied");
                let cap = sc.eff_caps[i as usize];
                if cap.is_finite() {
                    inc = inc.min((cap - st.rate).max(0.0));
                }
            }
            if inc.is_infinite() {
                // No resource and no cap constrains these flows: infinitely
                // fast (zero-cost transfers, e.g. loopback control messages).
                for &i in &sc.unfrozen {
                    self.slots[i as usize].state.as_mut().expect("occupied").rate = f64::INFINITY;
                }
                break;
            }
            for &i in &sc.unfrozen {
                let st = self.slots[i as usize].state.as_mut().expect("occupied");
                st.rate += inc;
                for r in &st.spec.path {
                    sc.residual[r.0 as usize] -= inc;
                }
            }
            // Freeze flows at their cap or on a saturated resource.
            sc.still.clear();
            for &i in &sc.unfrozen {
                let st = self.slots[i as usize].state.as_ref().expect("occupied");
                let cap = sc.eff_caps[i as usize];
                let capped = cap.is_finite() && st.rate >= cap - cap * 1e-12 - 1e-15;
                let saturated = st.spec.path.iter().any(|r| {
                    sc.residual[r.0 as usize] <= self.resources[r.0 as usize].capacity * 1e-12
                });
                if !capped && !saturated {
                    sc.still.push(i);
                }
            }
            assert!(sc.still.len() < sc.unfrozen.len(), "progressive filling made no progress");
            std::mem::swap(&mut sc.unfrozen, &mut sc.still);
        }
    }
}

/// Minimum leftover bytes treated as "transfer complete": 2 ns worth of data
/// at the current rate, at least [`EPS_BYTES`] — covers nanosecond rounding
/// of completion times plus float drift.
fn completion_eps(rate: f64) -> f64 {
    if rate.is_finite() {
        EPS_BYTES.max(rate * 2e-9)
    } else {
        f64::INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn drain(net: &mut FlowNet) -> Vec<(f64, FlowId)> {
        let mut out = Vec::new();
        while let Some(t) = net.next_change() {
            net.advance_to(t);
            for id in net.take_completed() {
                out.push((t.as_secs_f64(), id));
            }
        }
        out
    }

    #[test]
    fn single_uncapped_flow_uses_full_capacity() {
        let mut net = FlowNet::new();
        let r = net.add_resource("link", 10.0);
        net.start_flow(FlowSpec::new(vec![r], 100.0));
        let done = drain(&mut net);
        assert_eq!(done.len(), 1);
        assert!((done[0].0 - 10.0).abs() < 1e-6, "t={}", done[0].0);
    }

    #[test]
    fn single_capped_flow_limited_to_cap() {
        let mut net = FlowNet::new();
        let r = net.add_resource("link", 100.0);
        net.start_flow(FlowSpec::new(vec![r], 30.0).with_rate_cap(30.0));
        assert!((net.utilization(r) - 0.3).abs() < 1e-9);
        let done = drain(&mut net);
        assert!((done[0].0 - 1.0).abs() < 1e-6);
    }

    #[test]
    fn multiple_capped_flows_aggregate_bandwidth() {
        // Paper §III/§V: N concurrent streams multiplex the link.
        let mut net = FlowNet::new();
        let r = net.add_resource("nic", 100.0);
        for _ in 0..3 {
            net.start_flow(FlowSpec::new(vec![r], 30.0).with_rate_cap(30.0));
        }
        assert!((net.utilization(r) - 0.9).abs() < 1e-9);
        let done = drain(&mut net);
        assert_eq!(done.len(), 3);
        for (t, _) in done {
            assert!((t - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn caps_cannot_oversubscribe_capacity() {
        let mut net = FlowNet::new();
        let r = net.add_resource("nic", 100.0);
        for _ in 0..5 {
            net.start_flow(FlowSpec::new(vec![r], 100.0).with_rate_cap(30.0));
        }
        // 5 * 30 > 100 => fair share 20 each.
        assert!((net.utilization(r) - 1.0).abs() < 1e-9);
        let done = drain(&mut net);
        for (t, _) in done {
            assert!((t - 5.0).abs() < 1e-6, "t={t}");
        }
    }

    #[test]
    fn fair_sharing_two_flows_then_speedup() {
        let mut net = FlowNet::new();
        let r = net.add_resource("link", 10.0);
        net.start_flow(FlowSpec::new(vec![r], 30.0));
        net.start_flow(FlowSpec::new(vec![r], 50.0));
        let done = drain(&mut net);
        assert!((done[0].0 - 6.0).abs() < 1e-6);
        assert!((done[1].0 - 8.0).abs() < 1e-6);
    }

    #[test]
    fn max_min_with_heterogeneous_paths() {
        // f1 uses A only; f2 uses A and B; B is the tighter link.
        let mut net = FlowNet::new();
        let a = net.add_resource("A", 10.0);
        let b = net.add_resource("B", 4.0);
        let f1 = net.start_flow(FlowSpec::new(vec![a], 1000.0));
        let f2 = net.start_flow(FlowSpec::new(vec![a, b], 1000.0));
        net.next_change();
        // f2 limited by B to 4; f1 gets the rest of A: 6.
        assert!((net.flow(f2).unwrap().rate - 4.0).abs() < 1e-9);
        assert!((net.flow(f1).unwrap().rate - 6.0).abs() < 1e-9);
    }

    #[test]
    fn latency_delays_start() {
        let mut net = FlowNet::new();
        let r = net.add_resource("link", 10.0);
        net.start_flow(FlowSpec::new(vec![r], 10.0).with_latency(SimDuration::from_secs_f64(2.0)));
        let done = drain(&mut net);
        assert!((done[0].0 - 3.0).abs() < 1e-6, "t={}", done[0].0);
    }

    #[test]
    fn zero_byte_flow_completes_after_latency() {
        let mut net = FlowNet::new();
        let r = net.add_resource("link", 10.0);
        net.start_flow(FlowSpec::new(vec![r], 0.0).with_latency(SimDuration::from_millis(1)));
        let done = drain(&mut net);
        assert_eq!(done.len(), 1);
        assert!((done[0].0 - 0.001).abs() < 1e-9);
    }

    #[test]
    fn pathless_flow_completes_immediately() {
        let mut net = FlowNet::new();
        net.start_flow(FlowSpec::new(vec![], 1e9));
        let done = drain(&mut net);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].0, 0.0);
    }

    #[test]
    fn cancel_flow_releases_bandwidth() {
        let mut net = FlowNet::new();
        let r = net.add_resource("link", 10.0);
        let f1 = net.start_flow(FlowSpec::new(vec![r], 100.0));
        let f2 = net.start_flow(FlowSpec::new(vec![r], 100.0));
        net.next_change();
        assert!((net.flow(f1).unwrap().rate - 5.0).abs() < 1e-9);
        assert!(net.cancel_flow(f2));
        net.next_change();
        assert!((net.flow(f1).unwrap().rate - 10.0).abs() < 1e-9);
        assert!(!net.cancel_flow(f2));
    }

    #[test]
    fn completion_frees_bandwidth_for_later_flows() {
        let mut net = FlowNet::new();
        let r = net.add_resource("link", 10.0);
        net.start_flow(FlowSpec::new(vec![r], 100.0));
        net.start_flow(FlowSpec::new(vec![r], 10.0));
        // Short flow done at t=2 (5 B/s each); long one then accelerates.
        let done = drain(&mut net);
        assert!((done[0].0 - 2.0).abs() < 1e-6);
        // Long flow: 90 left at t=2, 10 B/s => t=11.
        assert!((done[1].0 - 11.0).abs() < 1e-6, "t={}", done[1].0);
    }

    #[test]
    fn utilization_reports_fraction() {
        let mut net = FlowNet::new();
        let r = net.add_resource("link", 100.0);
        net.start_flow(FlowSpec::new(vec![r], 1e6).with_rate_cap(25.0));
        net.start_flow(FlowSpec::new(vec![r], 1e6).with_rate_cap(25.0));
        assert!((net.utilization(r) - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "unknown resource")]
    fn foreign_resource_rejected() {
        let mut a = FlowNet::new();
        let mut b = FlowNet::new();
        let _ = a.add_resource("x", 1.0);
        let ra2 = a.add_resource("y", 1.0);
        let _ = b.add_resource("z", 1.0);
        b.start_flow(FlowSpec::new(vec![ra2], 1.0)); // index 1 unknown to b
    }

    #[test]
    fn many_symmetric_flows_complete_together() {
        let mut net = FlowNet::new();
        let mut path_res = Vec::new();
        for i in 0..16 {
            path_res.push(net.add_resource(format!("nic{i}"), 1e9));
        }
        for i in 0..16 {
            let p = vec![path_res[i], path_res[(i + 1) % 16]];
            net.start_flow(FlowSpec::new(p, 1e8).with_rate_cap(3e8));
        }
        let done = drain(&mut net);
        assert_eq!(done.len(), 16);
        let t0 = done[0].0;
        for (t, _) in done {
            assert!((t - t0).abs() < 1e-6);
        }
    }
}
