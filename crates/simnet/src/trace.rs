//! `aiacc-trace` — structured, zero-overhead-when-off tracing for the whole
//! stack.
//!
//! The paper's entire argument is read off timelines: §III measures that one
//! stream drives ≤30 % of the TCP bandwidth, and Fig. 7 shows the
//! multi-stream win as per-stream communication lanes overlapping in time.
//! [`TraceSink`] records exactly those lanes — span open/close and instant
//! events keyed by virtual [`SimTime`] — and exports them as a Chrome-trace
//! JSON file that `chrome://tracing` or <https://ui.perfetto.dev> renders as
//! a Fig. 7-style timeline.
//!
//! The sink lives inside [`crate::Simulator`], so every layer that already
//! holds the simulator (the collective engine, the AIACC engine, the
//! training loop) can emit events without new plumbing. When tracing is
//! disabled (the default) every record call returns after one branch and no
//! allocation happens, so simulation results are bit-identical with and
//! without the sink armed.
//!
//! Event grouping follows the Chrome trace model: a *process* id per
//! subsystem (see [`track`]) and a *thread* id per lane within it — for the
//! communication-stream track, the thread id **is** the stream slot, so
//! concurrent all-reduce units render as parallel lanes.
//!
//! # Example
//!
//! ```
//! use aiacc_simnet::trace::{track, TraceSink};
//! use aiacc_simnet::SimTime;
//!
//! let mut sink = TraceSink::default();
//! sink.enable();
//! sink.span_begin(SimTime::ZERO, track::STREAMS, 0, "op#0 1.0 MiB", "unit");
//! sink.span_end(SimTime::from_secs_f64(0.5), track::STREAMS, 0, "op#0 1.0 MiB", "unit");
//! let json = sink.to_chrome_json();
//! assert!(json.contains("\"ph\":\"B\"") && json.contains("\"ph\":\"E\""));
//! ```

use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Well-known trace tracks (Chrome-trace process ids), one per subsystem.
pub mod track {
    /// Training loop: iteration spans, backward/comm-done markers, crashes.
    pub const TRAINER: u32 = 1;
    /// Engine control lane: sync rounds, queue depth, resubmission markers.
    pub const ENGINE: u32 = 2;
    /// Per-stream communication lanes; the thread id is the stream slot.
    pub const STREAMS: u32 = 3;
    /// Collective operations; the thread id is the operation id.
    pub const COLLECTIVES: u32 = 4;
    /// Network substrate: fault events and active-flow counters.
    pub const NET: u32 = 5;
}

/// What kind of Chrome-trace record an event is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TracePhase {
    /// Span open (`ph:"B"`).
    Begin,
    /// Span close (`ph:"E"`).
    End,
    /// Point event (`ph:"i"`).
    Instant,
    /// Counter sample (`ph:"C"`).
    Counter,
}

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Virtual time the event happened.
    pub at: SimTime,
    /// Record kind.
    pub phase: TracePhase,
    /// Track (Chrome-trace process id); see [`track`].
    pub pid: u32,
    /// Lane within the track (Chrome-trace thread id).
    pub tid: u64,
    /// Event name (span names must match between `Begin` and `End`).
    pub name: String,
    /// Category tag.
    pub cat: &'static str,
    /// Counter value, or a numeric annotation on an instant event.
    pub value: Option<f64>,
}

/// Structured trace recorder with Chrome-trace export.
///
/// Disabled by default: every record method first checks
/// [`TraceSink::is_enabled`] and returns immediately when tracing is off, so
/// an un-armed sink costs one branch per call site and allocates nothing.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceSink {
    enabled: bool,
    events: Vec<TraceEvent>,
}

impl TraceSink {
    /// Arms the sink: subsequent record calls are kept.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Whether the sink is recording. Callers building event names with
    /// `format!` should check this first to keep the disabled path
    /// allocation-free.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// All recorded events, oldest first.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Drops all recorded events (the sink stays armed).
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Opens a span on `(pid, tid)` at `at`.
    pub fn span_begin(&mut self, at: SimTime, pid: u32, tid: u64, name: &str, cat: &'static str) {
        self.push(at, TracePhase::Begin, pid, tid, name, cat, None);
    }

    /// Closes the innermost span on `(pid, tid)`; `name` should match the
    /// matching [`TraceSink::span_begin`].
    pub fn span_end(&mut self, at: SimTime, pid: u32, tid: u64, name: &str, cat: &'static str) {
        self.push(at, TracePhase::End, pid, tid, name, cat, None);
    }

    /// Records a point event, optionally annotated with a numeric `value`.
    pub fn instant(
        &mut self,
        at: SimTime,
        pid: u32,
        tid: u64,
        name: &str,
        cat: &'static str,
        value: Option<f64>,
    ) {
        self.push(at, TracePhase::Instant, pid, tid, name, cat, value);
    }

    /// Records a counter sample on track `pid`.
    pub fn counter(&mut self, at: SimTime, pid: u32, name: &str, value: f64) {
        self.push(at, TracePhase::Counter, pid, 0, name, "counter", Some(value));
    }

    #[allow(clippy::too_many_arguments)]
    fn push(
        &mut self,
        at: SimTime,
        phase: TracePhase,
        pid: u32,
        tid: u64,
        name: &str,
        cat: &'static str,
        value: Option<f64>,
    ) {
        if !self.enabled {
            return;
        }
        self.events.push(TraceEvent { at, phase, pid, tid, name: name.to_string(), cat, value });
    }

    /// Serializes the trace in Chrome-trace ("Trace Event Format") JSON,
    /// loadable by `chrome://tracing` and <https://ui.perfetto.dev>.
    ///
    /// Timestamps are microseconds of virtual time. Process/thread metadata
    /// records name the subsystems and per-stream lanes.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 96 + 256);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        let mut emit = |out: &mut String, body: &str| {
            if !first {
                out.push(',');
            }
            first = false;
            out.push('{');
            out.push_str(body);
            out.push('}');
        };

        // Metadata: name every track and each per-stream lane.
        let mut pids = BTreeSet::new();
        let mut stream_tids = BTreeSet::new();
        for ev in &self.events {
            pids.insert(ev.pid);
            if ev.pid == track::STREAMS {
                stream_tids.insert(ev.tid);
            }
        }
        for pid in pids {
            let name = match pid {
                track::TRAINER => "trainer",
                track::ENGINE => "aiacc-engine",
                track::STREAMS => "comm-streams",
                track::COLLECTIVES => "collectives",
                track::NET => "network",
                _ => "track",
            };
            emit(
                &mut out,
                &format!(
                    "\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                     \"args\":{{\"name\":\"{name}\"}}"
                ),
            );
        }
        for tid in stream_tids {
            emit(
                &mut out,
                &format!(
                    "\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{},\"tid\":{tid},\
                     \"args\":{{\"name\":\"stream {tid}\"}}",
                    track::STREAMS
                ),
            );
        }

        for ev in &self.events {
            let ph = match ev.phase {
                TracePhase::Begin => "B",
                TracePhase::End => "E",
                TracePhase::Instant => "i",
                TracePhase::Counter => "C",
            };
            let ts = ev.at.as_nanos() as f64 / 1e3;
            let mut body = String::with_capacity(96);
            body.push_str("\"name\":\"");
            escape_json_into(&ev.name, &mut body);
            body.push_str("\",\"cat\":\"");
            escape_json_into(ev.cat, &mut body);
            body.push_str(&format!(
                "\",\"ph\":\"{ph}\",\"ts\":{ts:.3},\"pid\":{},\"tid\":{}",
                ev.pid, ev.tid
            ));
            match (ev.phase, ev.value) {
                (TracePhase::Counter, Some(v)) => {
                    body.push_str(&format!(",\"args\":{{\"value\":{}}}", json_f64(v)));
                }
                (TracePhase::Instant, v) => {
                    body.push_str(",\"s\":\"t\"");
                    if let Some(v) = v {
                        body.push_str(&format!(",\"args\":{{\"value\":{}}}", json_f64(v)));
                    }
                }
                _ => {}
            }
            emit(&mut out, &body);
        }
        out.push_str("]}");
        out
    }

    /// Derives summary metrics from the recorded events; see
    /// [`TraceSummary`].
    pub fn summary(&self) -> TraceSummary {
        // Per-stream busy time and the concurrency sweep over stream lanes.
        let mut deltas: Vec<(u64, i64)> = Vec::new();
        let mut open: BTreeMap<u64, (u64, u32)> = BTreeMap::new(); // lane -> (opened_at, depth)
        let mut busy: BTreeMap<u64, f64> = BTreeMap::new();
        let mut lanes = BTreeSet::new();
        let mut max_queue_depth = 0.0f64;
        let mut resubmissions = 0u64;
        let mut resubmit_latency_sum = 0.0f64;
        for ev in &self.events {
            match (ev.pid, ev.phase) {
                (track::STREAMS, TracePhase::Begin) => {
                    lanes.insert(ev.tid);
                    deltas.push((ev.at.as_nanos(), 1));
                    let slot = open.entry(ev.tid).or_insert((ev.at.as_nanos(), 0));
                    if slot.1 == 0 {
                        slot.0 = ev.at.as_nanos();
                    }
                    slot.1 += 1;
                }
                (track::STREAMS, TracePhase::End) => {
                    deltas.push((ev.at.as_nanos(), -1));
                    if let Some(slot) = open.get_mut(&ev.tid) {
                        slot.1 = slot.1.saturating_sub(1);
                        if slot.1 == 0 {
                            *busy.entry(ev.tid).or_default() +=
                                (ev.at.as_nanos() - slot.0) as f64 / 1e9;
                        }
                    }
                }
                (track::ENGINE, TracePhase::Counter) if ev.name == "queue_depth" => {
                    max_queue_depth = max_queue_depth.max(ev.value.unwrap_or(0.0));
                }
                (track::ENGINE, TracePhase::Instant) if ev.name == "resubmit" => {
                    resubmissions += 1;
                    resubmit_latency_sum += ev.value.unwrap_or(0.0);
                }
                _ => {}
            }
        }
        deltas.sort_unstable();
        let (mut active, mut any_secs, mut overlap_secs) = (0i64, 0.0f64, 0.0f64);
        let mut prev = deltas.first().map_or(0, |&(t, _)| t);
        for (t, d) in deltas {
            let dt = (t - prev) as f64 / 1e9;
            if active >= 1 {
                any_secs += dt;
            }
            if active >= 2 {
                overlap_secs += dt;
            }
            active += d;
            prev = t;
        }
        TraceSummary {
            stream_lanes: lanes.len(),
            per_stream_busy_secs: busy.into_iter().collect(),
            comm_busy_secs: any_secs,
            overlap_fraction: if any_secs > 0.0 { overlap_secs / any_secs } else { 0.0 },
            max_queue_depth,
            resubmissions,
            mean_resubmission_latency_secs: if resubmissions > 0 {
                resubmit_latency_sum / resubmissions as f64
            } else {
                0.0
            },
        }
    }
}

/// Counters and histogram-style aggregates derived from a recorded trace.
///
/// `overlap_fraction` is the share of communication-busy time during which
/// **two or more** stream lanes were simultaneously active — the direct,
/// measurable form of the paper's Fig. 7 multi-stream overlap claim.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Distinct per-stream lanes that carried at least one all-reduce unit.
    pub stream_lanes: usize,
    /// Busy seconds per stream lane, keyed by lane (stream slot).
    pub per_stream_busy_secs: Vec<(u64, f64)>,
    /// Seconds during which at least one stream lane was active.
    pub comm_busy_secs: f64,
    /// Share of `comm_busy_secs` with ≥ 2 lanes concurrently active (0–1).
    pub overlap_fraction: f64,
    /// Deepest all-reduce unit queue observed.
    pub max_queue_depth: f64,
    /// Units cancelled and resubmitted by the stall watchdog.
    pub resubmissions: u64,
    /// Mean time a resubmitted unit had been in flight before its watchdog
    /// fired, in seconds.
    pub mean_resubmission_latency_secs: f64,
}

/// Escapes `s` as JSON string content (without surrounding quotes).
fn escape_json_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Formats a float as a JSON number (finite inputs only).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let mut sink = TraceSink::default();
        sink.span_begin(t(0.0), track::STREAMS, 0, "x", "unit");
        sink.instant(t(0.0), track::NET, 0, "y", "fault", Some(1.0));
        sink.counter(t(0.0), track::ENGINE, "queue_depth", 3.0);
        assert!(sink.events().is_empty());
    }

    #[test]
    fn enabled_sink_keeps_events_in_order() {
        let mut sink = TraceSink::default();
        sink.enable();
        sink.span_begin(t(0.0), track::STREAMS, 0, "a", "unit");
        sink.span_end(t(1.0), track::STREAMS, 0, "a", "unit");
        assert_eq!(sink.events().len(), 2);
        assert_eq!(sink.events()[0].phase, TracePhase::Begin);
        assert_eq!(sink.events()[1].phase, TracePhase::End);
    }

    #[test]
    fn summary_measures_overlap_and_busy_time() {
        let mut sink = TraceSink::default();
        sink.enable();
        // Lane 0 busy [0,2]; lane 1 busy [1,3]: union 3 s, overlap 1 s.
        sink.span_begin(t(0.0), track::STREAMS, 0, "a", "unit");
        sink.span_begin(t(1.0), track::STREAMS, 1, "b", "unit");
        sink.span_end(t(2.0), track::STREAMS, 0, "a", "unit");
        sink.span_end(t(3.0), track::STREAMS, 1, "b", "unit");
        let s = sink.summary();
        assert_eq!(s.stream_lanes, 2);
        assert!((s.comm_busy_secs - 3.0).abs() < 1e-9);
        assert!((s.overlap_fraction - 1.0 / 3.0).abs() < 1e-9);
        let busy: f64 = s.per_stream_busy_secs.iter().map(|&(_, b)| b).sum();
        assert!((busy - 4.0).abs() < 1e-9);
    }

    #[test]
    fn summary_aggregates_counters_and_resubmits() {
        let mut sink = TraceSink::default();
        sink.enable();
        sink.counter(t(0.0), track::ENGINE, "queue_depth", 2.0);
        sink.counter(t(1.0), track::ENGINE, "queue_depth", 7.0);
        sink.instant(t(2.0), track::ENGINE, 0, "resubmit", "watchdog", Some(0.5));
        sink.instant(t(3.0), track::ENGINE, 0, "resubmit", "watchdog", Some(1.5));
        let s = sink.summary();
        assert_eq!(s.max_queue_depth, 7.0);
        assert_eq!(s.resubmissions, 2);
        assert!((s.mean_resubmission_latency_secs - 1.0).abs() < 1e-9);
    }

    #[test]
    fn chrome_json_escapes_and_names_tracks() {
        let mut sink = TraceSink::default();
        sink.enable();
        sink.span_begin(t(0.0), track::STREAMS, 3, "quote\"back\\slash", "unit");
        sink.span_end(t(1.0), track::STREAMS, 3, "quote\"back\\slash", "unit");
        let json = sink.to_chrome_json();
        assert!(json.contains("quote\\\"back\\\\slash"));
        assert!(json.contains("\"name\":\"stream 3\""));
        assert!(json.contains("\"name\":\"comm-streams\""));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn empty_trace_exports_valid_skeleton() {
        let sink = TraceSink::default();
        assert_eq!(sink.to_chrome_json(), "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}");
    }
}
