//! `simnet::pool` — the process-wide persistent worker pool.
//!
//! Every fan-out in this repository — sweep-level parallelism
//! ([`crate::par::map`]) and solve-level parallelism (the partitioned
//! max-min solver fanning dirty components out) — runs on this one pool.
//! Threads are spawned lazily the first time a width is requested and then
//! parked on a condvar, so dispatching a fan-out costs a mutex lock and a
//! wake-up (microseconds), not a `thread::spawn` per call — cheap enough to
//! sit on the per-event solver hot path.
//!
//! # Exclusivity: one fan-out at a time, by design
//!
//! The pool is deliberately *non-reentrant*: [`run`] hands the pool to one
//! fan-out at a time, and any [`run`] call that finds the pool busy (a
//! nested call from inside a worker, or a concurrent call from another
//! thread) executes its closure inline on the caller's thread instead. This
//! is what lets sweep-level and solve-level parallelism coexist without
//! oversubscription: when `par::map` is fanning simulation cells across N
//! workers, each cell's solver sees a busy pool and solves serially — N
//! busy threads total, never N×M.
//!
//! # Determinism contract
//!
//! [`run`] guarantees only that `f(w)` is called exactly once for every
//! `w in 0..workers`, by *some* thread, with all calls returning before
//! [`run`] does. Which OS thread runs which index, and in what real-time
//! order, is unspecified — callers must make worker identity and execution
//! order feed back into nothing (claim work through an atomic cursor,
//! write results into per-index slots, commit in a canonical order
//! afterwards). Every caller in this crate follows that shape, which is why
//! worker count changes wall-clock time and not a single output byte.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// One posted fan-out: the erased closure plus completion bookkeeping.
struct Job {
    /// Monotonic id so a worker never runs the same job twice.
    gen: u64,
    /// The caller's closure, lifetime-erased. Valid until every index has
    /// been run and [`run`] observes completion — workers only dereference
    /// it inside `f(w)` calls, all of which happen-before that observation.
    f: ErasedFn,
    /// Number of logical worker indices in this fan-out.
    workers: usize,
    /// Next unclaimed worker index.
    next: AtomicUsize,
    /// Completed index count + first panic payload, under the done lock.
    done: Mutex<(usize, Option<Box<dyn std::any::Any + Send>>)>,
    /// Signaled when the last index completes.
    done_cv: Condvar,
}

/// A lifetime-erased `&(dyn Fn(usize) + Sync)`.
///
/// The `'static` is a lie told to the type system (see [`erase`]): the
/// pointee lives exactly until [`run`] returns, and [`run`] does not
/// return until every dereference has happened-before it. The `Sync`
/// bound was checked at [`run`]'s signature, so sharing across pool
/// threads is sound; `Send`/`Sync` then come for free (`&T: Send + Sync`
/// where `T: Sync`).
type ErasedFn = &'static (dyn Fn(usize) + Sync);

/// Erases the caller-stack lifetime of a fan-out closure.
///
/// # Safety
/// The returned reference must not be dereferenced after the closure's
/// real lifetime ends. [`run`] upholds this: it blocks until all `f(w)`
/// calls complete and clears the postbox before returning, and parked
/// workers never dereference a job they have already seen.
#[allow(unsafe_code)]
fn erase(f: &(dyn Fn(usize) + Sync)) -> ErasedFn {
    unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), ErasedFn>(f) }
}

/// The pool: a postbox the dispatcher drops jobs into and workers watch.
struct Pool {
    /// The currently posted job, if any.
    postbox: Mutex<Option<Arc<Job>>>,
    /// Signaled when a new job is posted.
    posted: Condvar,
    /// Parked pool threads spawned so far (grown lazily by [`run`]).
    threads: Mutex<usize>,
}

static POOL: OnceLock<Pool> = OnceLock::new();
/// Whether a fan-out currently owns the pool (see module docs).
static BUSY: AtomicBool = AtomicBool::new(false);
/// Monotonic job id source.
static NEXT_GEN: AtomicUsize = AtomicUsize::new(1);

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        postbox: Mutex::new(None),
        posted: Condvar::new(),
        threads: Mutex::new(0),
    })
}

/// Claims and runs indices of `job` until the cursor is exhausted,
/// recording completions (and the first panic) in the job's done state.
/// Both the dispatching thread and pool threads drive jobs through this
/// one function, so an index is never skipped even if no pool thread
/// wakes in time — whoever is awake claims the remainder.
fn drive(job: &Job) {
    loop {
        let w = job.next.fetch_add(1, Ordering::Relaxed);
        if w >= job.workers {
            return;
        }
        let f = job.f;
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| f(w)));
        let mut done = job.done.lock().expect("pool done lock poisoned");
        if let Err(payload) = result {
            if done.1.is_none() {
                done.1 = Some(payload);
            }
        }
        done.0 += 1;
        if done.0 == job.workers {
            job.done_cv.notify_all();
        }
    }
}

/// Body of one parked pool thread: wait for an unseen job, help drive it,
/// repeat forever. Threads never exit; a handful of parked threads is the
/// price of nanosecond dispatch.
fn worker_loop() {
    let pool = pool();
    let mut last_gen = 0u64;
    loop {
        let job = {
            let mut slot = pool.postbox.lock().expect("pool postbox poisoned");
            loop {
                match slot.as_ref() {
                    Some(job) if job.gen != last_gen => break Arc::clone(job),
                    _ => slot = pool.posted.wait(slot).expect("pool postbox poisoned"),
                }
            }
        };
        last_gen = job.gen;
        drive(&job);
    }
}

/// Ensures at least `n` pool threads exist.
fn ensure_threads(n: usize) {
    let pool = pool();
    let mut count = pool.threads.lock().expect("pool thread count poisoned");
    while *count < n {
        std::thread::Builder::new()
            .name(format!("aiacc-pool-{count}"))
            .spawn(worker_loop)
            .expect("spawning a pool worker");
        *count += 1;
    }
}

/// Runs `f(w)` exactly once for every `w in 0..workers`, returning after
/// all calls complete. The caller's thread participates (it drives indices
/// alongside the pool threads), so `run(1, f)` — or any call finding the
/// pool busy — degenerates to an inline loop with zero dispatch cost.
///
/// # Panics
/// If any `f(w)` panics, the panic is resumed on the caller's thread after
/// every other index has finished (results are never silently dropped
/// mid-fan-out).
pub fn run(workers: usize, f: &(dyn Fn(usize) + Sync)) {
    if workers <= 1 || BUSY.swap(true, Ordering::Acquire) {
        // Width 1, a nested call from inside a worker, or a concurrent
        // fan-out elsewhere: run inline. Exactly the same calls happen,
        // just on this one thread.
        for w in 0..workers {
            f(w);
        }
        return;
    }
    // Drop-guard so the lease is released even if we unwind.
    struct Lease;
    impl Drop for Lease {
        fn drop(&mut self) {
            BUSY.store(false, Ordering::Release);
        }
    }
    let _lease = Lease;
    ensure_threads(workers - 1);
    let job = Arc::new(Job {
        gen: NEXT_GEN.fetch_add(1, Ordering::Relaxed) as u64,
        f: erase(f),
        workers,
        next: AtomicUsize::new(0),
        done: Mutex::new((0, None)),
        done_cv: Condvar::new(),
    });
    let pool = pool();
    {
        let mut slot = pool.postbox.lock().expect("pool postbox poisoned");
        *slot = Some(Arc::clone(&job));
        pool.posted.notify_all();
    }
    // Help out: claim indices until the cursor runs dry...
    drive(&job);
    // ...then wait for in-flight indices on other threads.
    let mut done = job.done.lock().expect("pool done lock poisoned");
    while done.0 < job.workers {
        done = job.done_cv.wait(done).expect("pool done lock poisoned");
    }
    let payload = done.1.take();
    drop(done);
    {
        // Clear the postbox (if a later fan-out has not already replaced
        // it) so the erased closure pointer never outlives this call.
        let mut slot = pool.postbox.lock().expect("pool postbox poisoned");
        if slot.as_ref().is_some_and(|j| j.gen == job.gen) {
            *slot = None;
        }
    }
    if let Some(payload) = payload {
        std::panic::resume_unwind(payload);
    }
}

/// Whether a fan-out currently owns the pool. Callers with optional
/// parallel paths (the solver) can skip result-buffer setup when the
/// answer is `false` — though [`run`] itself is always safe to call.
pub fn is_busy() -> bool {
    BUSY.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn every_index_runs_exactly_once() {
        for workers in [1, 2, 3, 8, 17] {
            let hits: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
            run(workers, &|w| {
                hits[w].fetch_add(1, Ordering::Relaxed);
            });
            for (w, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "index {w} of {workers}");
            }
        }
    }

    #[test]
    fn nested_fanout_runs_inline() {
        let total = AtomicU64::new(0);
        run(4, &|_| {
            // The outer fan-out holds the lease, so this runs inline on
            // whichever thread drives it — no deadlock, same call count.
            run(3, &|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 12);
    }

    #[test]
    fn repeated_fanouts_reuse_threads() {
        for round in 0..200u64 {
            let sum = AtomicU64::new(0);
            run(4, &|w| {
                sum.fetch_add(round + w as u64, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), 4 * round + 6);
        }
    }

    #[test]
    fn worker_panic_propagates_after_completion() {
        let survivors = AtomicU64::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            run(4, &|w| {
                if w == 2 {
                    panic!("boom");
                }
                survivors.fetch_add(1, Ordering::Relaxed);
            });
        }));
        assert!(result.is_err());
        assert_eq!(survivors.load(Ordering::Relaxed), 3);
    }
}
