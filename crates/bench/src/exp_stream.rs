//! The streaming figure: steady-state service throughput of a shared
//! cluster under a saturating open-loop arrival stream — AIACC vs
//! single-stream Horovod — plus a bounded-memory scale witness that replays
//! a million-job arrival stream through the same pipeline.
//!
//! The headline metric is *service capacity*: jobs drained per simulated
//! second when arrivals outpace the cluster, so the scheduler is never
//! idle and the only limit is how fast each engine clears its gangs. The
//! scale witness runs arrival-limited instead (the backlog stays tiny) and
//! exists to pin the O(window) memory claim: live state is bounded by the
//! slot pool and the quantile sketch compacts to a few thousand items no
//! matter how many jobs flow through.

use crate::report::{fnum, Table};
use aiacc_cluster::ClusterSpec;
use aiacc_sched::stream::{run_stream, ArrivalCfg, ArrivalProcess, StreamCfg, StreamStats};
use aiacc_sched::{ClusterMetrics, JobMix, MultiJobCfg, PlacePolicy, Workload, WorkloadCfg};
use aiacc_simnet::par;
use aiacc_trainer::EngineKind;

/// Jobs per saturated capacity run (full mode).
pub const STREAM_SATURATED_JOBS: u64 = 10_000;

/// Jobs per saturated capacity run in quick mode.
pub const STREAM_SATURATED_QUICK_JOBS: u64 = 2_000;

/// Jobs replayed by the full-scale bounded-memory witness.
pub const STREAM_SCALE_JOBS: u64 = 1_000_000;

/// Jobs replayed by the quick-mode scale witness.
pub const STREAM_SCALE_QUICK_JOBS: u64 = 20_000;

/// Mean inter-arrival gap that saturates the cluster (arrivals far faster
/// than service, so the backlog grows and capacity is the bottleneck).
const SATURATED_GAP_SECS: f64 = 0.000_1;

/// Mean inter-arrival gap for the arrival-limited scale witness.
const SCALE_GAP_SECS: f64 = 0.02;

/// Iterations per streamed job (short jobs keep the event count per job
/// small so capacity reflects scheduling + communication, not epochs).
const STREAM_ITERATIONS: usize = 2;

/// Arrival seed shared by every cell so engines face the identical stream.
const STREAM_SEED: u64 = 7;

/// One engine's cell of the streaming figure.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamPoint {
    /// Engine label (`aiacc` / `horovod` / `mixed`).
    pub engine: &'static str,
    /// Jobs emitted by the arrival source.
    pub jobs: u64,
    /// End-of-run cluster summary (sketch percentiles, running means).
    pub summary: ClusterMetrics,
    /// Streaming counters: backlog, slot, and sketch bounds.
    pub stats: StreamStats,
}

impl StreamPoint {
    /// Steady-state service throughput, jobs per simulated second.
    pub fn throughput_jobs_per_sec(&self) -> f64 {
        let served = self.stats.completed - self.stats.failed;
        if self.summary.makespan_secs > 0.0 {
            served as f64 / self.summary.makespan_secs
        } else {
            0.0
        }
    }
}

/// The shared streaming scenario: tiny mix on a 4-node × 8-V100 TCP
/// cluster, packed placement, Poisson arrivals with `gap` mean seconds.
fn stream_cfg(engine: Option<EngineKind>, jobs: u64, gap: f64) -> StreamCfg {
    // The workload field is unused in streaming mode; one placeholder job
    // satisfies the batch constructor's shape.
    let wl = Workload::generate(&WorkloadCfg::new(1, 1).with_mix(JobMix::Tiny));
    let base = MultiJobCfg::new(ClusterSpec::tcp_v100(32), PlacePolicy::Packed, wl);
    let mut arrivals = ArrivalCfg::new(ArrivalProcess::Poisson, jobs, STREAM_SEED);
    arrivals.mean_interarrival_secs = gap;
    arrivals.iterations = STREAM_ITERATIONS;
    arrivals.engine = engine;
    StreamCfg::new(base, arrivals).with_window((jobs / 10).max(1))
}

fn run_point(engine: &'static str, kind: Option<EngineKind>, jobs: u64, gap: f64) -> StreamPoint {
    let report = run_stream(stream_cfg(kind, jobs, gap)).expect("streaming run");
    let summary = report.summary.expect("natural end has a summary");
    StreamPoint { engine, jobs, summary, stats: report.stats }
}

/// Runs the saturated capacity cell for each engine, in parallel.
pub fn saturated_points(jobs: u64) -> Vec<StreamPoint> {
    let cells: [(&'static str, EngineKind); 2] = [
        ("aiacc", EngineKind::aiacc_default()),
        ("horovod", EngineKind::Horovod(Default::default())),
    ];
    par::map(&cells, |&(label, kind)| run_point(label, Some(kind), jobs, SATURATED_GAP_SECS))
}

/// Runs the arrival-limited scale witness: `jobs` arrivals through the
/// bounded slot pool with the default (alternating-engine) mix.
pub fn scale_point(jobs: u64) -> StreamPoint {
    run_point("mixed", None, jobs, SCALE_GAP_SECS)
}

/// Steady-state throughput for `engine` over `points`.
pub fn steady_throughput(points: &[StreamPoint], engine: &str) -> f64 {
    points
        .iter()
        .find(|p| p.engine == engine)
        .unwrap_or_else(|| panic!("no stream point for engine {engine}"))
        .throughput_jobs_per_sec()
}

/// The streaming figure: one row per saturated engine cell plus the scale
/// witness, with the backlog/sketch bounds that prove memory stays O(window).
pub fn fig_stream(saturated_jobs: u64, scale_jobs: u64) -> Table {
    let mut t = Table::new(
        "Streaming: steady-state service capacity under saturating arrivals (packed, 4x8 V100, TCP)",
        &[
            "engine",
            "jobs",
            "throughput_jobs_per_s",
            "jct_p50_s",
            "jct_p99_s",
            "peak_backlog",
            "peak_active",
            "sketch_items",
            "sketch_rank_err",
            "failed",
        ],
    );
    let mut points = saturated_points(saturated_jobs);
    points.push(scale_point(scale_jobs));
    for p in points {
        t.push(vec![
            p.engine.to_string(),
            p.jobs.to_string(),
            fnum(p.throughput_jobs_per_sec()),
            fnum(p.summary.jct_p50_secs),
            fnum(p.summary.jct_p99_secs),
            p.stats.peak_backlog.to_string(),
            p.stats.peak_active.to_string(),
            p.stats.sketch_stored_items.to_string(),
            p.stats.sketch_max_rank_error.to_string(),
            p.stats.failed.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aiacc_sustains_higher_steady_state_throughput() {
        let points = saturated_points(STREAM_SATURATED_QUICK_JOBS);
        let aiacc = steady_throughput(&points, "aiacc");
        let horovod = steady_throughput(&points, "horovod");
        assert!(
            aiacc > horovod,
            "steady-state capacity headline broken: aiacc {aiacc:.1} jobs/s vs \
             horovod {horovod:.1} jobs/s"
        );
        // The stream actually saturated: a deep backlog formed and drained.
        for p in &points {
            assert!(
                p.stats.peak_backlog as u64 > p.jobs / 2,
                "{}: peak backlog {} never saturated",
                p.engine,
                p.stats.peak_backlog
            );
            assert_eq!(p.stats.completed, p.jobs);
            assert_eq!(p.stats.failed, 0);
        }
    }

    #[test]
    fn scale_witness_stays_bounded() {
        let p = scale_point(STREAM_SCALE_QUICK_JOBS);
        assert_eq!(p.stats.completed, STREAM_SCALE_QUICK_JOBS);
        assert_eq!(p.stats.failed, 0);
        // Arrival-limited: live state never approaches the job count.
        assert!(p.stats.peak_backlog < 100, "backlog {} not bounded", p.stats.peak_backlog);
        assert!(p.stats.peak_active <= p.stats.nslots);
        assert!(
            p.stats.sketch_stored_items as u64 * 4 < p.jobs,
            "sketch stores {} of {} jobs — not sublinear",
            p.stats.sketch_stored_items,
            p.jobs
        );
    }

    #[test]
    fn figure_is_deterministic() {
        let a = fig_stream(500, 500);
        let b = fig_stream(500, 500);
        assert_eq!(a.rows.len(), 3);
        assert_eq!(a.rows, b.rows, "stream figure must be reproducible");
    }
}
