//! The multi-job contention figure: tail JCT of a shared cluster as the
//! number of concurrent tenants grows, AIACC vs single-stream Horovod.
//!
//! This is the deployment the paper motivates but never plots: on a shared
//! GPU cloud, many jobs' gradient flows meet on the same NICs. A
//! single-stream engine leaves per-flow TCP headroom idle exactly when the
//! fabric is busiest, so its job-completion-time *tail* degrades faster than
//! AIACC's as tenancy rises.

use crate::report::{fnum, Table};
use aiacc_cluster::ClusterSpec;
use aiacc_sched::{summarize, MultiJobCfg, PlacePolicy, Workload, WorkloadCfg};
use aiacc_simnet::par;
use aiacc_trainer::EngineKind;

/// Tenancy levels swept by the full figure.
pub const MULTIJOB_SWEEP: &[usize] = &[1, 2, 4, 8];

/// A reduced sweep for quick runs.
pub const MULTIJOB_QUICK_SWEEP: &[usize] = &[1, 4];

/// The multi-job tail-JCT figure: comm-heavy jobs arriving on a
/// 4-node × 8-V100 TCP cluster under [`PlacePolicy::Spread`] (every gang
/// touches every NIC — the high-contention regime), each tenancy level run
/// once with every job on AIACC and once with every job on Horovod.
///
/// Both runs share the workload seed, so arrivals, models, and gang sizes
/// are identical pairs; only the communication engine differs.
pub fn fig_multijob(njobs_sweep: &[usize], iterations: usize) -> Table {
    let mut t = Table::new(
        "Multi-job: tail JCT under shared-fabric contention (spread placement, 4x8 V100, TCP)",
        &[
            "njobs",
            "engine",
            "jct_p50_s",
            "jct_p99_s",
            "queue_delay_s",
            "makespan_s",
            "fabric_util",
            "jain",
        ],
    );
    let mut points = Vec::new();
    for &n in njobs_sweep {
        points.push((n, EngineKind::aiacc_default()));
        points.push((n, EngineKind::Horovod(Default::default())));
    }
    let metrics = par::map(&points, |&(njobs, engine)| {
        let wl = Workload::generate(
            &WorkloadCfg::new(njobs, 7).with_engine(engine).with_iterations(iterations),
        );
        let cfg = MultiJobCfg::new(ClusterSpec::tcp_v100(32), PlacePolicy::Spread, wl);
        summarize(&aiacc_sched::run_multijob(cfg))
    });
    for ((njobs, engine), m) in points.iter().zip(&metrics) {
        t.push(vec![
            njobs.to_string(),
            engine.label().to_string(),
            fnum(m.jct_p50_secs),
            fnum(m.jct_p99_secs),
            fnum(m.queue_delay_mean_secs),
            fnum(m.makespan_secs),
            fnum(m.fabric_utilization),
            fnum(m.jain_fairness),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use aiacc_sched::ClusterMetrics;

    fn metrics_at(njobs: usize, engine: EngineKind) -> ClusterMetrics {
        let wl =
            Workload::generate(&WorkloadCfg::new(njobs, 7).with_engine(engine).with_iterations(4));
        let cfg = MultiJobCfg::new(ClusterSpec::tcp_v100(32), PlacePolicy::Spread, wl);
        summarize(&aiacc_sched::run_multijob(cfg))
    }

    #[test]
    fn aiacc_beats_horovod_tail_under_contention() {
        let a = metrics_at(4, EngineKind::aiacc_default());
        let h = metrics_at(4, EngineKind::Horovod(Default::default()));
        assert!(
            a.jct_p99_secs < h.jct_p99_secs,
            "aiacc p99 {} vs horovod p99 {}",
            a.jct_p99_secs,
            h.jct_p99_secs
        );
    }

    #[test]
    fn figure_has_one_row_per_point() {
        let t = fig_multijob(MULTIJOB_QUICK_SWEEP, 2);
        assert_eq!(t.rows.len(), 2 * MULTIJOB_QUICK_SWEEP.len());
    }
}
