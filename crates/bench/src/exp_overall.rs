//! Overall-performance experiments: Fig. 2 and Figs. 9–12.

use crate::report::{fnum, Table};
use aiacc_cluster::ClusterSpec;
use aiacc_dnn::{zoo, ModelProfile};
use aiacc_simnet::par;
use aiacc_trainer::{
    run_training_sim, scaling_efficiency, EngineKind, Framework, ThroughputReport,
    TrainingSimConfig,
};

fn run(model: &ModelProfile, gpus: usize, engine: EngineKind, fw: Framework) -> ThroughputReport {
    run_training_sim(
        TrainingSimConfig::new(ClusterSpec::tcp_v100(gpus), model.clone(), engine)
            .with_framework(fw)
            .with_iterations(1, 2),
    )
}

/// The four competing methods of §VII-C.
fn competitors() -> Vec<EngineKind> {
    vec![
        EngineKind::aiacc_default(),
        EngineKind::Horovod(Default::default()),
        EngineKind::PyTorchDdp(Default::default()),
        EngineKind::BytePs(Default::default()),
    ]
}

/// Fig. 2 — motivation: Horovod's ResNet-50 throughput versus the
/// theoretical linear speedup, with the paper's scaling-efficiency numbers.
pub fn fig2_motivation(gpu_sweep: &[usize]) -> Table {
    let model = zoo::resnet50();
    let mut t = Table::new(
        "Fig 2: Horovod vs linear scaling (ResNet-50, 30Gbps TCP)",
        &["gpus", "horovod img/s", "linear img/s", "efficiency"],
    );
    // Fan the sweep points out across workers; each point is an independent
    // seeded simulation, so results (collected in submission order) are
    // bit-identical to a serial walk.
    let mut points: Vec<usize> = vec![1];
    points.extend(gpu_sweep.iter().copied().filter(|&g| g != 1));
    let results = par::map(&points, |&g| {
        run(&model, g, EngineKind::Horovod(Default::default()), Framework::PyTorch)
    });
    let single = &results[0];
    for &g in gpu_sweep {
        let r = &results[points.iter().position(|&p| p == g).unwrap_or(0)];
        let linear = single.samples_per_sec * g as f64;
        t.push(vec![
            g.to_string(),
            fnum(r.samples_per_sec),
            fnum(linear),
            fnum(r.samples_per_sec / linear),
        ]);
    }
    t
}

fn throughput_figure(
    title: &str,
    models: &[ModelProfile],
    gpu_sweep: &[usize],
    fw: Framework,
    engines: &[EngineKind],
) -> Table {
    let mut header: Vec<String> = vec!["model".into(), "gpus".into()];
    header.extend(engines.iter().map(|e| format!("{e} (samples/s)")));
    header.push("aiacc scaling eff".into());
    let mut t = Table::new(title, &header.iter().map(String::as_str).collect::<Vec<_>>());
    // Enumerate every simulation the figure needs — the per-model 1-GPU
    // reference plus the full model × gpus × engine grid — and fan them out.
    // `usize::MAX` in the engine position marks the reference run.
    let mut points: Vec<(usize, usize, usize)> = Vec::new();
    for mi in 0..models.len() {
        points.push((mi, 1, usize::MAX));
        for &g in gpu_sweep {
            for ei in 0..engines.len() {
                points.push((mi, g, ei));
            }
        }
    }
    let results = par::map(&points, |&(mi, g, ei)| {
        let e = if ei == usize::MAX { engines[0] } else { engines[ei] };
        run(&models[mi], g, e, fw)
    });
    // Reassemble rows in the original serial order.
    let mut next = results.iter();
    for model in models {
        let single = next.next().expect("reference run");
        for &g in gpu_sweep {
            let mut row = vec![model.name().to_string(), g.to_string()];
            let mut aiacc_eff = String::new();
            for i in 0..engines.len() {
                let r = next.next().expect("grid run");
                row.push(fnum(r.samples_per_sec));
                if i == 0 {
                    aiacc_eff = if g == 1 {
                        "1.000".to_string()
                    } else {
                        fnum(scaling_efficiency(single, r))
                    };
                }
            }
            row.push(aiacc_eff);
            t.push(row);
        }
    }
    t
}

/// Fig. 9 — PyTorch CV models (VGG-16, ResNet-50, ResNet-101) across GPU
/// counts, AIACC vs Horovod vs PyTorch-DDP vs BytePS.
pub fn fig9_cv(gpu_sweep: &[usize]) -> Table {
    throughput_figure(
        "Fig 9: PyTorch CV models throughput",
        &[zoo::vgg16(), zoo::resnet50(), zoo::resnet101()],
        gpu_sweep,
        Framework::PyTorch,
        &competitors(),
    )
}

/// Fig. 10 — PyTorch NLP models (Transformer, BERT-Large).
pub fn fig10_nlp(gpu_sweep: &[usize]) -> Table {
    throughput_figure(
        "Fig 10: PyTorch NLP models throughput",
        &[zoo::transformer(), zoo::bert_large()],
        gpu_sweep,
        Framework::PyTorch,
        &competitors(),
    )
}

/// Fig. 11 — TensorFlow models: AIACC vs the framework-native engine
/// (Horovod) and BytePS.
pub fn fig11_tensorflow(gpu_sweep: &[usize]) -> Table {
    throughput_figure(
        "Fig 11: TensorFlow models throughput",
        &[zoo::vgg16(), zoo::resnet50(), zoo::bert_large()],
        gpu_sweep,
        Framework::TensorFlow,
        &[
            EngineKind::aiacc_default(),
            Framework::TensorFlow.native_engine(),
            EngineKind::BytePs(Default::default()),
        ],
    )
}

/// Fig. 12 — MXNet models: AIACC vs the native KVStore parameter server.
pub fn fig12_mxnet(gpu_sweep: &[usize]) -> Table {
    throughput_figure(
        "Fig 12: MXNet models throughput",
        &[zoo::vgg16(), zoo::resnet50(), zoo::resnet101()],
        gpu_sweep,
        Framework::Mxnet,
        &[EngineKind::aiacc_default(), Framework::Mxnet.native_engine()],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(t: &Table, name_contains: &str) -> usize {
        t.header.iter().position(|h| h.contains(name_contains)).expect("column")
    }

    fn val(t: &Table, row: usize, col: usize) -> f64 {
        t.rows[row][col].parse().expect("numeric cell")
    }

    #[test]
    fn fig2_shows_subunity_efficiency_at_scale() {
        let t = fig2_motivation(&[1, 8, 32]);
        assert_eq!(t.rows.len(), 3);
        let eff_col = col(&t, "efficiency");
        let eff32 = val(&t, 2, eff_col);
        // Paper: ~75 % at 32 GPUs.
        assert!((0.5..0.92).contains(&eff32), "eff@32 = {eff32}");
        // Single GPU is exactly linear.
        assert!((val(&t, 0, eff_col) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn fig9_aiacc_wins_at_32_gpus() {
        let t = fig9_cv(&[32]);
        let aiacc = col(&t, "aiacc (");
        let horovod = col(&t, "horovod");
        let byteps = col(&t, "byteps");
        for (i, row) in t.rows.iter().enumerate() {
            let a = val(&t, i, aiacc);
            let h = val(&t, i, horovod);
            let b = val(&t, i, byteps);
            assert!(a > h, "{}: aiacc {a} <= horovod {h}", row[0]);
            assert!(a > b, "{}: aiacc {a} <= byteps {b}", row[0]);
        }
    }

    #[test]
    fn fig10_nlp_runs_and_aiacc_leads() {
        let t = fig10_nlp(&[16]);
        let aiacc = col(&t, "aiacc (");
        let ddp = col(&t, "pytorch-ddp");
        for i in 0..t.rows.len() {
            assert!(val(&t, i, aiacc) >= val(&t, i, ddp));
        }
    }

    #[test]
    fn fig12_mxnet_parameter_server_loses() {
        let t = fig12_mxnet(&[16]);
        let aiacc = col(&t, "aiacc (");
        let kv = col(&t, "mxnet-kvstore");
        for i in 0..t.rows.len() {
            let a = val(&t, i, aiacc);
            let k = val(&t, i, kv);
            assert!(a > k, "row {i}: aiacc {a} <= kvstore {k}");
        }
    }
}
