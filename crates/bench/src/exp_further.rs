//! Table I, §III's bandwidth measurement and the further-analysis
//! experiments of §VIII-C/D (Figs. 13–15, CTR, InsightFace, DAWNBench).

use crate::report::{fnum, Table};
use aiacc_cluster::{ClusterNet, ClusterSpec};
use aiacc_dnn::zoo;
use aiacc_simnet::{par, SimTime, Simulator};
use aiacc_trainer::hybrid::{run_hybrid_sim, HybridEngine};
use aiacc_trainer::{dawnbench, run_training_sim, EngineKind, TrainingSimConfig};

/// Table I — model characteristics: our structural counts beside the
/// paper's published values.
pub fn table1_models() -> Table {
    let paper: &[(&str, f64, f64)] = &[
        ("vgg16", 138.3, 31.0),
        ("resnet50", 25.6, 4.0),
        ("resnet101", 29.4, 8.0),
        ("transformer", 66.5, 145.0),
        ("bert_large", 302.2, 232.0),
    ];
    let mut t = Table::new(
        "Table I: model characteristics (ours vs paper)",
        &["model", "params (M)", "paper params (M)", "fwd GFLOPs", "paper GFLOPs", "#gradients"],
    );
    let rows = par::map(paper, |&(name, p_params, p_flops)| {
        let m = zoo::by_name(name).expect("zoo model");
        vec![
            name.to_string(),
            fnum(m.num_params() as f64 / 1e6),
            fnum(p_params),
            fnum(m.fwd_flops_per_sample() / 1e9),
            fnum(p_flops),
            m.num_gradients().to_string(),
        ]
    });
    for row in rows {
        t.push(row);
    }
    t
}

/// §III — the single-flow bandwidth-utilization measurement that motivates
/// multi-streamed communication: utilization of a 30 Gbps TCP NIC as the
/// number of concurrent flows grows.
pub fn bandwidth_utilization() -> Table {
    let mut t = Table::new(
        "§III: TCP NIC utilization vs concurrent communication streams",
        &["streams", "utilization", "effective Gbps"],
    );
    const STREAMS: [usize; 6] = [1, 2, 3, 4, 6, 8];
    let utils = par::map(&STREAMS, |&streams| {
        let mut sim = Simulator::new();
        let cluster = ClusterNet::build(&ClusterSpec::tcp_v100(16), sim.net_mut());
        for i in 0..streams {
            let src = i % 8;
            let dst = 8 + (i % 8);
            sim.start_flow(cluster.path(src, dst).flow(1e12));
        }
        sim.net_mut().advance_to(SimTime::from_secs_f64(0.001));
        sim.net_mut().utilization(cluster.node_tx_resource(0))
    });
    for (streams, util) in STREAMS.iter().zip(&utils) {
        t.push(vec![streams.to_string(), fnum(*util), fnum(util * 30.0)]);
    }
    t
}

/// Fig. 13 — hybrid data+model parallelism: AIACC vs MXNet KVStore.
pub fn fig13_hybrid(gpu_sweep: &[usize]) -> Table {
    let model = zoo::resnet50();
    let mut t = Table::new(
        "Fig 13: hybrid data+model parallelism (ResNet-50 on MXNet)",
        &["gpus", "aiacc samples/s", "mxnet samples/s", "speedup"],
    );
    let gpus: Vec<usize> = gpu_sweep.iter().copied().filter(|&g| g >= 16).collect(); // needs ≥2 nodes
    let mut points = Vec::new();
    for &g in &gpus {
        points.push((g, HybridEngine::Aiacc));
        points.push((g, HybridEngine::MxnetKvStore));
    }
    let results =
        par::map(&points, |&(g, engine)| run_hybrid_sim(&model, g, 64, engine).samples_per_sec);
    for (i, g) in gpus.iter().enumerate() {
        let (a, k) = (results[2 * i], results[2 * i + 1]);
        t.push(vec![g.to_string(), fnum(a), fnum(k), fnum(a / k)]);
    }
    t
}

/// Fig. 14 — AIACC speedup over Horovod on BERT-Large at 16 GPUs as the
/// per-GPU batch size varies (smaller batch ⇒ more communication ⇒ larger
/// win).
pub fn fig14_batch_sweep() -> Table {
    let model = zoo::bert_large();
    let mut t = Table::new(
        "Fig 14: speedup over Horovod vs batch size (BERT-Large, 16 GPUs)",
        &["batch/gpu", "aiacc seq/s", "horovod seq/s", "speedup"],
    );
    const BATCHES: [usize; 5] = [1, 2, 4, 8, 16];
    let mut points = Vec::new();
    for batch in BATCHES {
        points.push((batch, EngineKind::aiacc_default()));
        points.push((batch, EngineKind::Horovod(Default::default())));
    }
    let results = par::map(&points, |&(batch, engine)| {
        run_training_sim(
            TrainingSimConfig::new(ClusterSpec::tcp_v100(16), model.clone(), engine)
                .with_batch(batch)
                .with_iterations(1, 2),
        )
        .samples_per_sec
    });
    for (i, batch) in BATCHES.iter().enumerate() {
        let (a, h) = (results[2 * i], results[2 * i + 1]);
        t.push(vec![batch.to_string(), fnum(a), fnum(h), fnum(a / h)]);
    }
    t
}

/// Fig. 15 — RDMA (64 GPUs): AIACC speedup over PyTorch-DDP per model,
/// including GPT-2 XL (paper: 9.8×). RDMA-era large-model training runs
/// mixed precision (GPT-2 XL does not even fit in fp32), so the compute
/// model uses the V100's tensor cores.
pub fn fig15_rdma() -> Table {
    use aiacc_cluster::{GpuSpec, NodeSpec};
    let mut t = Table::new(
        "Fig 15: speedup over PyTorch-DDP on 64 GPUs with RDMA (mixed precision)",
        &["model", "aiacc samples/s", "ddp samples/s", "speedup"],
    );
    let amp_gpu = GpuSpec {
        name: "V100 (mixed precision)".to_string(),
        fp32_tflops: 125.0,
        efficiency: 0.35,
        ..GpuSpec::v100()
    };
    let models = [zoo::resnet50(), zoo::vgg16(), zoo::bert_large(), zoo::gpt2_xl()];
    let mut points = Vec::new();
    for model in &models {
        points.push((model, EngineKind::aiacc_default()));
        points.push((model, EngineKind::PyTorchDdp(Default::default())));
    }
    let results = par::map(&points, |&(model, engine)| {
        // The transformer giants train under AMP (GPT-2 XL does not fit in
        // fp32 at all); the CV models keep the fp32 setting of Figs. 9–12.
        let amp = matches!(model.name(), "bert_large" | "gpt2_xl");
        let node = if amp {
            NodeSpec { gpu: amp_gpu.clone(), ..NodeSpec::alibaba_v100_rdma() }
        } else {
            NodeSpec::alibaba_v100_rdma()
        };
        let cluster = ClusterSpec::with_total_gpus(64, node);
        run_training_sim(
            TrainingSimConfig::new(cluster, model.clone(), engine).with_iterations(1, 2),
        )
        .samples_per_sec
    });
    for (i, model) in models.iter().enumerate() {
        let (a, d) = (results[2 * i], results[2 * i + 1]);
        t.push(vec![model.name().to_string(), fnum(a), fnum(d), fnum(a / d)]);
    }
    t
}

/// §VIII-C — the production CTR workload: a huge gradient count collapses
/// Horovod's master negotiation; AIACC's decentralized scheme does not care.
pub fn ctr_production_speedup(gpus: usize) -> Table {
    let model = zoo::ctr_production();
    let mut t = Table::new(
        format!("§VIII-C: production CTR system at {gpus} GPUs"),
        &["engine", "records/s", "speedup vs horovod"],
    );
    let engines = [EngineKind::Horovod(Default::default()), EngineKind::aiacc_default()];
    let results = par::map(&engines, |&engine| {
        run_training_sim(
            TrainingSimConfig::new(ClusterSpec::tcp_v100(gpus), model.clone(), engine)
                .with_iterations(1, 2),
        )
        .samples_per_sec
    });
    let (h, a) = (results[0], results[1]);
    t.push(vec!["horovod".into(), fnum(h), "1.000".into()]);
    t.push(vec!["aiacc".into(), fnum(a), fnum(a / h)]);
    t
}

/// §VIII-C — InsightFace hand-tuned ResNet-50 at 128 GPUs (paper: 3.8×
/// over the hand-tuned Horovod DDL).
pub fn insightface_speedup(gpus: usize) -> Table {
    let model = zoo::insightface_r50();
    let mut t = Table::new(
        format!("§VIII-C: InsightFace face recognition at {gpus} GPUs"),
        &["engine", "img/s", "speedup vs horovod"],
    );
    let engines = [EngineKind::Horovod(Default::default()), EngineKind::aiacc_default()];
    let results = par::map(&engines, |&engine| {
        run_training_sim(
            TrainingSimConfig::new(ClusterSpec::tcp_v100(gpus), model.clone(), engine)
                .with_iterations(1, 2),
        )
        .samples_per_sec
    });
    let (h, a) = (results[0], results[1]);
    t.push(vec!["horovod".into(), fnum(h), "1.000".into()]);
    t.push(vec!["aiacc".into(), fnum(a), fnum(a / h)]);
    t
}

/// §VIII-C — DAWNBench: time and cost to 93 % top-5 on ImageNet.
pub fn dawnbench_table() -> Table {
    let mut t = Table::new(
        "§VIII-C: DAWNBench time-to-accuracy (ResNet-50, ImageNet, 93% top-5)",
        &["gpus", "img/s", "seconds to target", "cost USD", "paper"],
    );
    const GPUS: [usize; 2] = [64, 128];
    let estimates = par::map(&GPUS, |&gpus| dawnbench::estimate(gpus));
    for (gpus, e) in GPUS.iter().zip(&estimates) {
        let paper = if *gpus == 128 { "158 s / $7.43" } else { "-" };
        t.push(vec![
            gpus.to_string(),
            fnum(e.images_per_sec),
            fnum(e.seconds_to_target),
            fnum(e.cost_usd),
            paper.to_string(),
        ]);
    }
    t
}

/// Helper shared by tests: parse a numeric cell.
#[cfg(test)]
fn val(t: &Table, row: usize, col: usize) -> f64 {
    t.rows[row][col].parse().expect("numeric cell")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_parameters_match_paper_where_expected() {
        let t = table1_models();
        assert_eq!(t.rows.len(), 5);
        // VGG-16, ResNet-50, BERT-Large within a few percent of Table I.
        for (row, tol) in [(0usize, 0.02), (1, 0.02), (4, 0.02)] {
            let ours = val(&t, row, 1);
            let paper = val(&t, row, 2);
            assert!(((ours - paper) / paper).abs() < tol, "{}: {ours} vs {paper}", t.rows[row][0]);
        }
    }

    #[test]
    fn bandwidth_single_flow_is_30_percent() {
        let t = bandwidth_utilization();
        assert!((val(&t, 0, 1) - 0.30).abs() < 1e-6);
        // Utilization grows with streams and saturates at 1.
        let mut prev = 0.0;
        for i in 0..t.rows.len() {
            let u = val(&t, i, 1);
            assert!(u >= prev - 1e-9);
            assert!(u <= 1.0 + 1e-9);
            prev = u;
        }
        let last = val(&t, t.rows.len() - 1, 1);
        assert!((last - 1.0).abs() < 1e-6, "8 streams should saturate: {last}");
    }

    #[test]
    fn fig14_speedup_larger_at_small_batch() {
        let t = fig14_batch_sweep();
        let first = val(&t, 0, 3);
        let last = val(&t, t.rows.len() - 1, 3);
        assert!(first > last, "speedup {first} at b=1 should exceed {last} at b=16");
        assert!(first > 1.2, "small-batch speedup {first}");
    }

    #[test]
    fn fig15_gpt2_has_largest_rdma_speedup() {
        let t = fig15_rdma();
        let gpt2 = t.rows.iter().position(|r| r[0] == "gpt2_xl").unwrap();
        let s_gpt2 = val(&t, gpt2, 3);
        for (i, row) in t.rows.iter().enumerate() {
            let s = val(&t, i, 3);
            assert!(s >= 0.95, "{} slower than DDP: {s}", row[0]);
            assert!(s_gpt2 >= s - 1e-9, "{} ({s}) beats GPT-2 ({s_gpt2})", row[0]);
        }
        assert!(s_gpt2 > 2.0, "GPT-2 RDMA speedup only {s_gpt2}");
    }

    #[test]
    fn ctr_speedup_is_dramatic() {
        let t = ctr_production_speedup(32);
        let s = val(&t, 1, 2);
        assert!(s > 2.0, "CTR speedup {s}");
    }
}
