//! The chaos figure: how much the tail JCT of a shared cluster *degrades*
//! when seeded node crashes, stragglers, and NIC faults are injected —
//! AIACC vs single-stream Horovod, identical workload and identical chaos.
//!
//! The headline metric is the absolute p99-JCT degradation
//! `Δp99 = p99(chaos) − p99(clean)` per engine, averaged over chaos seeds.
//! An absolute delta (not a ratio) is the honest comparison here: the
//! elastic-shrink pause is a fixed cost, and AIACC's much smaller clean p99
//! would make an identical pause look *worse* for AIACC on a ratio scale.
//! AIACC degrades less in absolute terms because its compressed schedule
//! spends fewer GPU-seconds exposed to the wall-clock crash windows — the
//! same seeded chaos simply finds fewer AIACC gangs to kill — and because
//! its multi-stream engine restores fabric throughput on the shrunken
//! surviving ring faster than a single-stream engine can.

use crate::report::{fnum, Table};
use aiacc_cluster::ClusterSpec;
use aiacc_core::AiaccConfig;
use aiacc_sched::{
    summarize, ClusterMetrics, MultiJobCfg, PlacePolicy, RecoveryPolicy, Workload, WorkloadCfg,
};
use aiacc_simnet::{par, FaultPlan, SimDuration};
use aiacc_trainer::EngineKind;

/// Chaos seeds swept by the full figure (each seeds both the workload and
/// the fault plan, so engines face identical pairs).
pub const CHAOS_SEEDS: &[u64] = &[3, 5, 7, 11, 13, 17, 21, 31];

/// A reduced sweep for quick runs.
pub const CHAOS_QUICK_SEEDS: &[u64] = &[3, 7];

/// Concurrent jobs per scenario.
const CHAOS_NJOBS: usize = 8;

/// Fault-plan horizon. Deliberately longer than either engine's clean
/// makespan: chaos events land at wall-clock instants spread over the whole
/// window, so an engine that clears the cluster sooner simply dodges the
/// later faults — finishing fast IS the availability advantage being
/// measured.
const CHAOS_HORIZON_SECS: f64 = 60.0;

/// Extra mixed fault events beyond the guaranteed crash + straggler.
const CHAOS_EXTRA_EVENTS: usize = 12;

/// One `(seed, engine)` cell of the chaos figure.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosPoint {
    /// The workload/fault seed.
    pub seed: u64,
    /// Engine label (`aiacc` / `horovod`).
    pub engine: &'static str,
    /// Fault-free cluster metrics.
    pub clean: ClusterMetrics,
    /// Metrics under the seeded chaos plan.
    pub chaos: ClusterMetrics,
}

impl ChaosPoint {
    /// Absolute p99-JCT degradation under chaos, seconds.
    pub fn delta_p99_secs(&self) -> f64 {
        self.chaos.jct_p99_secs - self.clean.jct_p99_secs
    }
}

/// AIACC with the chaos hardening the CLI applies under `--chaos`: stall
/// watchdog armed, resubmission budget bounded so retries back off.
fn aiacc_hardened() -> EngineKind {
    EngineKind::Aiacc(
        AiaccConfig::default()
            .with_stall_timeout(SimDuration::from_secs_f64(0.5))
            .with_max_resubmissions(4),
    )
}

/// Runs one engine through the clean and chaos variants of one seed's
/// scenario: 8 comm-heavy jobs on a 4-node × 8-V100 TCP cluster, spread
/// placement, elastic-shrink recovery, straggler mitigation at 1.3× the
/// cluster-median slowdown.
fn chaos_point(seed: u64, engine: EngineKind, iterations: usize) -> ChaosPoint {
    let cluster = ClusterSpec::tcp_v100(32);
    let wl = Workload::generate(
        &WorkloadCfg::new(CHAOS_NJOBS, seed).with_engine(engine).with_iterations(iterations),
    );
    let plan = FaultPlan::chaos(
        seed,
        cluster.nodes,
        SimDuration::from_secs_f64(CHAOS_HORIZON_SECS),
        CHAOS_EXTRA_EVENTS,
    );
    let clean = summarize(&aiacc_sched::run_multijob(MultiJobCfg::new(
        cluster.clone(),
        PlacePolicy::Spread,
        wl.clone(),
    )));
    let chaos = summarize(&aiacc_sched::run_multijob(
        MultiJobCfg::new(cluster, PlacePolicy::Spread, wl)
            .with_faults(plan)
            .with_recovery(RecoveryPolicy::Shrink)
            .with_straggler_mitigation(1.3),
    ));
    ChaosPoint { seed, engine: engine.label(), clean, chaos }
}

/// Computes every `(seed, engine)` cell of the chaos figure in parallel.
pub fn chaos_points(seeds: &[u64], iterations: usize) -> Vec<ChaosPoint> {
    let mut cells = Vec::new();
    for &seed in seeds {
        cells.push((seed, aiacc_hardened()));
        cells.push((seed, EngineKind::Horovod(Default::default())));
    }
    par::map(&cells, |&(seed, engine)| chaos_point(seed, engine, iterations))
}

/// Mean absolute p99 degradation for `engine` over `points`.
pub fn mean_delta_p99(points: &[ChaosPoint], engine: &str) -> f64 {
    let deltas: Vec<f64> =
        points.iter().filter(|p| p.engine == engine).map(|p| p.delta_p99_secs()).collect();
    assert!(!deltas.is_empty(), "no chaos points for engine {engine}");
    deltas.iter().sum::<f64>() / deltas.len() as f64
}

/// The chaos figure: per-seed clean/chaos p99 JCT, the degradation delta,
/// and the recovery accounting, one row per `(seed, engine)`.
pub fn fig_chaos(seeds: &[u64], iterations: usize) -> Table {
    let mut t = Table::new(
        "Chaos: tail-JCT degradation under seeded crashes + stragglers (shrink recovery, 4x8 V100, TCP)",
        &[
            "seed",
            "engine",
            "clean_p99_s",
            "chaos_p99_s",
            "delta_p99_s",
            "crashes",
            "shrinks",
            "mitigations",
            "recovery_s",
            "failed",
        ],
    );
    for p in chaos_points(seeds, iterations) {
        t.push(vec![
            p.seed.to_string(),
            p.engine.to_string(),
            fnum(p.clean.jct_p99_secs),
            fnum(p.chaos.jct_p99_secs),
            fnum(p.delta_p99_secs()),
            p.chaos.crashes_total.to_string(),
            p.chaos.shrinks_total.to_string(),
            p.chaos.mitigations_total.to_string(),
            fnum(p.chaos.recovery_total_secs),
            p.chaos.njobs_failed.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aiacc_degrades_less_than_horovod_under_chaos() {
        let points = chaos_points(CHAOS_SEEDS, 6);
        let aiacc = mean_delta_p99(&points, "aiacc");
        let horovod = mean_delta_p99(&points, "horovod");
        assert!(
            aiacc < horovod,
            "aiacc mean delta-p99 {aiacc:.3}s must stay below horovod's {horovod:.3}s"
        );
        // Chaos actually bites: some seed crashed a running gang.
        assert!(points.iter().any(|p| p.chaos.crashes_total > 0), "no crash ever hit a gang");
    }

    #[test]
    fn figure_has_one_row_per_cell_and_is_deterministic() {
        let a = fig_chaos(CHAOS_QUICK_SEEDS, 2);
        let b = fig_chaos(CHAOS_QUICK_SEEDS, 2);
        assert_eq!(a.rows.len(), 2 * CHAOS_QUICK_SEEDS.len());
        assert_eq!(a.rows, b.rows, "chaos figure must be reproducible");
    }
}
