//! Experiment harness: one generator per table/figure of the paper.
//!
//! Each `fig*`/`table*` function runs the corresponding sweep on the
//! simulated cluster and returns a [`Table`] whose rows mirror what the
//! paper plots; the `repro` binary prints them and writes TSV files, and the
//! criterion benches wrap reduced-scale versions. `EXPERIMENTS.md` records
//! the paper-vs-measured comparison for every entry here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod exp_chaos;
mod exp_compress;
mod exp_further;
mod exp_multijob;
mod exp_overall;
mod exp_stream;
mod exp_tuning;
mod report;

pub use exp_chaos::{
    chaos_points, fig_chaos, mean_delta_p99, ChaosPoint, CHAOS_QUICK_SEEDS, CHAOS_SEEDS,
};
pub use exp_compress::{
    best_point, data_plane_points, frontier_points, low_bandwidth_cluster, tune_comparison,
    DataPlanePoint, FrontierPoint, TuneComparison, COMPRESS_SCHEMES, FRONTIER_QUICK_STREAMS,
    FRONTIER_STREAMS,
};
pub use exp_further::{
    bandwidth_utilization, ctr_production_speedup, dawnbench_table, fig13_hybrid,
    fig14_batch_sweep, fig15_rdma, insightface_speedup, table1_models,
};
pub use exp_multijob::{fig_multijob, MULTIJOB_QUICK_SWEEP, MULTIJOB_SWEEP};
pub use exp_overall::{fig10_nlp, fig11_tensorflow, fig12_mxnet, fig2_motivation, fig9_cv};
pub use exp_stream::{
    fig_stream, saturated_points, scale_point, steady_throughput, StreamPoint,
    STREAM_SATURATED_JOBS, STREAM_SATURATED_QUICK_JOBS, STREAM_SCALE_JOBS, STREAM_SCALE_QUICK_JOBS,
};
pub use exp_tuning::{
    ablation_byteps_servers, ablation_flow_cap, ablation_granularity, ablation_meta_solver,
    ablation_sync_scheme, ablation_tree_vs_ring, tuning_report,
};
pub use report::Table;

/// The GPU counts swept by the overall-performance figures (Figs. 9–12).
pub const FULL_GPU_SWEEP: &[usize] = &[1, 2, 4, 8, 16, 32, 64, 128, 256];

/// A reduced sweep for quick runs and criterion benches.
pub const QUICK_GPU_SWEEP: &[usize] = &[1, 8, 32];
