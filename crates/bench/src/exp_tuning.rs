//! §VIII-D auto-tuning analysis and the DESIGN.md ablation studies.

use crate::report::{fnum, Table};
use aiacc_autotune::{GridSearch, Searcher, Tuner, TuningSpace};
use aiacc_cluster::{ClusterSpec, NicSpec, NodeSpec};
use aiacc_collectives::Algo;
use aiacc_core::AiaccConfig;
use aiacc_dnn::zoo;
use aiacc_simnet::par;
use aiacc_trainer::tune::{tune_aiacc, SimObjective};
use aiacc_trainer::{run_training_sim, EngineKind, TrainingSimConfig};

/// §VIII-D — what the auto-tuner chooses per model and GPU count. The paper
/// observes: ring is always chosen over tree, stream counts between 2 and 24
/// growing with the GPU count, and larger granularity for Transformer-class
/// models.
pub fn tuning_report(budget: usize) -> Table {
    let mut t = Table::new(
        "§VIII-D: auto-tuned communication parameters",
        &["model", "gpus", "streams", "granularity MiB", "algo", "iter s"],
    );
    let mut points = Vec::new();
    for model in [zoo::resnet50(), zoo::vgg16(), zoo::transformer()] {
        for gpus in [8usize, 32, 128] {
            points.push((model.clone(), gpus));
        }
    }
    // Each cell is a full tuning run; fan the cells out (the batched tuner
    // inside may fan out further — workers are scoped threads, nesting is
    // harmless and the seeds are fixed either way).
    let cells = par::map(&points, |(model, gpus)| {
        let cluster = ClusterSpec::tcp_v100(*gpus);
        tune_aiacc(model, &cluster, budget, 11, None)
    });
    for ((model, gpus), (cfg, report)) in points.iter().zip(&cells) {
        t.push(vec![
            model.name().to_string(),
            gpus.to_string(),
            cfg.streams.to_string(),
            fnum(cfg.granularity / (1024.0 * 1024.0)),
            format!("{:?}", cfg.algo),
            fnum(report.best_value),
        ]);
    }
    t
}

/// Ablation 1 — the per-flow cap × stream-count interaction: why
/// multi-streaming wins, and where it saturates.
pub fn ablation_flow_cap() -> Table {
    let mut t = Table::new(
        "Ablation: per-flow cap vs streams (VGG-16, 16 GPUs)",
        &["per-flow cap", "1 stream img/s", "4 streams img/s", "8 streams img/s"],
    );
    const CAPS: [f64; 4] = [0.1, 0.3, 0.6, 1.0];
    const STREAMS: [usize; 3] = [1, 4, 8];
    let mut points = Vec::new();
    for cap in CAPS {
        for streams in STREAMS {
            points.push((cap, streams));
        }
    }
    let results = par::map(&points, |&(cap, streams)| {
        let mut node = NodeSpec::alibaba_v100_tcp();
        node.nic = NicSpec { per_flow_cap: cap, ..node.nic };
        let cluster = ClusterSpec::with_total_gpus(16, node);
        let r = run_training_sim(
            TrainingSimConfig::new(
                cluster,
                zoo::vgg16(),
                EngineKind::Aiacc(AiaccConfig::default().with_streams(streams)),
            )
            .with_iterations(1, 2),
        );
        r.samples_per_sec
    });
    for (ci, cap) in CAPS.iter().enumerate() {
        let mut row = vec![fnum(*cap)];
        for si in 0..STREAMS.len() {
            row.push(fnum(results[ci * STREAMS.len() + si]));
        }
        t.push(row);
    }
    t
}

/// Ablation 2 — decentralized bit-vector sync vs master negotiation as the
/// gradient count explodes (the CTR regime): Horovod's coordinator cost is
/// serial in workers × tensors.
pub fn ablation_sync_scheme() -> Table {
    let mut t = Table::new(
        "Ablation: decentralized sync vs master negotiation (CTR model)",
        &["gpus", "aiacc rec/s", "horovod rec/s", "speedup"],
    );
    const GPUS: [usize; 3] = [16, 64, 128];
    let model = zoo::ctr_production();
    let mut points = Vec::new();
    for gpus in GPUS {
        points.push((gpus, EngineKind::aiacc_default()));
        points.push((gpus, EngineKind::Horovod(Default::default())));
    }
    let results = par::map(&points, |&(gpus, engine)| {
        run_training_sim(
            TrainingSimConfig::new(ClusterSpec::tcp_v100(gpus), model.clone(), engine)
                .with_iterations(1, 2),
        )
        .samples_per_sec
    });
    for (i, gpus) in GPUS.iter().enumerate() {
        let (a, h) = (results[2 * i], results[2 * i + 1]);
        t.push(vec![gpus.to_string(), fnum(a), fnum(h), fnum(a / h)]);
    }
    t
}

/// Ablation 3 — granularity sweep: too fine ⇒ latency-bound, too coarse ⇒
/// no overlap / stream starvation.
pub fn ablation_granularity() -> Table {
    const MIB: f64 = 1024.0 * 1024.0;
    // VGG-16 at 32 GPUs is communication-bound, so the granularity trade-off
    // (latency-bound when too fine, concurrency-starved when too coarse) is
    // visible end-to-end.
    let mut t = Table::new(
        "Ablation: all-reduce unit granularity (VGG-16, 32 GPUs, 8 streams)",
        &["granularity MiB", "img/s"],
    );
    const GRANS: [f64; 6] = [0.5, 2.0, 8.0, 32.0, 128.0, 512.0];
    let results = par::map(&GRANS, |&gran| {
        run_training_sim(
            TrainingSimConfig::new(
                ClusterSpec::tcp_v100(32),
                zoo::vgg16(),
                EngineKind::Aiacc(AiaccConfig::default().with_granularity(gran * MIB)),
            )
            .with_iterations(1, 2),
        )
        .samples_per_sec
    });
    for (gran, rate) in GRANS.iter().zip(&results) {
        t.push(vec![fnum(*gran), fnum(*rate)]);
    }
    t
}

/// Ablation 4 — ring vs hierarchical (tree) all-reduce across scales.
pub fn ablation_tree_vs_ring() -> Table {
    let mut t = Table::new(
        "Ablation: ring vs tree all-reduce (ResNet-50)",
        &["gpus", "ring img/s", "tree img/s"],
    );
    const GPUS: [usize; 3] = [16, 64, 128];
    let mut points = Vec::new();
    for gpus in GPUS {
        points.push((gpus, Algo::Ring));
        points.push((gpus, Algo::Tree));
    }
    let results = par::map(&points, |&(gpus, algo)| {
        run_training_sim(
            TrainingSimConfig::new(
                ClusterSpec::tcp_v100(gpus),
                zoo::resnet50(),
                EngineKind::Aiacc(AiaccConfig::default().with_algo(algo)),
            )
            .with_iterations(1, 2),
        )
        .samples_per_sec
    });
    for (i, gpus) in GPUS.iter().enumerate() {
        t.push(vec![gpus.to_string(), fnum(results[2 * i]), fnum(results[2 * i + 1])]);
    }
    t
}

/// Ablation 6 — BytePS with rented CPU server nodes: §VIII-A says improving
/// BytePS "will incur an extra financial cost for CPU machine subscription";
/// the sweep shows how little the extra NICs buy when the *worker-side* NIC
/// is the bottleneck (8 GPUs pushing + pulling their full gradients).
pub fn ablation_byteps_servers() -> Table {
    use aiacc_baselines::BytePsConfig;
    let mut t = Table::new(
        "Ablation: BytePS extra CPU server nodes (VGG-16, 32 GPUs)",
        &["extra cpu servers", "img/s", "vs aiacc"],
    );
    const EXTRAS: [usize; 4] = [0, 4, 8, 16];
    // Slot 0 is the AIACC reference; the rest are the BytePS server sweep.
    let engines: Vec<EngineKind> = std::iter::once(EngineKind::aiacc_default())
        .chain(EXTRAS.iter().map(|&extra| {
            EngineKind::BytePs(BytePsConfig { extra_cpu_server_nodes: extra, ..Default::default() })
        }))
        .collect();
    let results = par::map(&engines, |&engine| {
        run_training_sim(
            TrainingSimConfig::new(ClusterSpec::tcp_v100(32), zoo::vgg16(), engine)
                .with_iterations(1, 2),
        )
        .samples_per_sec
    });
    let aiacc = results[0];
    for (extra, rate) in EXTRAS.iter().zip(&results[1..]) {
        t.push(vec![extra.to_string(), fnum(*rate), fnum(rate / aiacc)]);
    }
    t
}

/// Ablation 5 — the MAB meta-solver ensemble versus each technique alone,
/// at equal budget (tuning regret).
pub fn ablation_meta_solver(budget: usize) -> Table {
    let model = zoo::resnet50();
    let cluster = ClusterSpec::tcp_v100(32);
    let mut t = Table::new(
        "Ablation: meta-solver ensemble vs single techniques",
        &["strategy", "best iter s", "best streams"],
    );
    // The two strategies are independent tuning runs — fan them out. Both
    // stay on the *serial* `run` path on purpose: this ablation measures the
    // MAB's sequential credit assignment itself.
    let strategies = ["ensemble (MAB)", "grid only"];
    let results = par::map(&strategies, |&name| {
        let mut obj = SimObjective::new(cluster.clone(), model.clone(), None);
        let mut tuner = if name == "grid only" {
            // Grid alone (representative single technique; others are
            // stochastic variants of the same interface).
            let space = TuningSpace::default();
            let searchers: Vec<Box<dyn Searcher>> = vec![Box::new(GridSearch::new(space.clone()))];
            Tuner::with_searchers(space, searchers)
        } else {
            Tuner::new(TuningSpace::default(), 5)
        };
        tuner.run(&mut obj, budget)
    });
    for (name, r) in strategies.iter().zip(&results) {
        t.push(vec![(*name).into(), fnum(r.best_value), r.best.streams.to_string()]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn val(t: &Table, row: usize, col: usize) -> f64 {
        t.rows[row][col].parse().expect("numeric cell")
    }

    #[test]
    fn flow_cap_ablation_shows_multistream_value() {
        let t = ablation_flow_cap();
        // At cap 0.3 (the paper's TCP), 8 streams beat 1 stream clearly.
        let row = t.rows.iter().position(|r| r[0] == "0.300").unwrap();
        let one = val(&t, row, 1);
        let eight = val(&t, row, 3);
        assert!(eight > one * 1.4, "1 stream {one}, 8 streams {eight}");
        // At cap 1.0 a single stream already saturates: multi-stream gains
        // little.
        let row_full = t.rows.iter().position(|r| r[0] == "1.000").unwrap();
        let one_f = val(&t, row_full, 1);
        let eight_f = val(&t, row_full, 3);
        assert!(eight_f < one_f * 1.25, "cap=1: {one_f} vs {eight_f}");
    }

    #[test]
    fn sync_ablation_grows_with_scale() {
        let t = ablation_sync_scheme();
        let s16 = val(&t, 0, 3);
        let s128 = val(&t, 2, 3);
        assert!(s128 > s16, "speedup must grow with workers: {s16} -> {s128}");
        assert!(s128 > 3.0, "CTR@128 speedup {s128}");
    }

    #[test]
    fn granularity_sweep_has_interior_optimum() {
        let t = ablation_granularity();
        let vals: Vec<f64> = (0..t.rows.len()).map(|i| val(&t, i, 1)).collect();
        let best = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        // The extremes must not be the best.
        assert!(vals[0] < best, "finest granularity should not win");
        assert!(*vals.last().unwrap() <= best);
    }
}
