//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro [EXPERIMENT ...] [--quick] [--out DIR] [--jobs N]
//!
//! EXPERIMENT: table1 bandwidth fig2 fig9 fig10 fig11 fig12 fig13 fig14
//!             fig15 fig_multijob fig_chaos ctr insightface dawnbench tuning
//!             ablations all
//! --quick     reduced GPU sweep (1/8/32) and smaller tuning budgets
//! --out DIR   also write each table as TSV under DIR (default: results/)
//! --jobs N    fan sweep points out over N worker threads (default:
//!             AIACC_JOBS or all cores; output is bit-identical to --jobs 1)
//! ```

use aiacc_bench::*;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));
    let jobs_arg = args.iter().position(|a| a == "--jobs").and_then(|i| args.get(i + 1)).cloned();
    if let Some(v) = &jobs_arg {
        match v.parse::<usize>() {
            Ok(n) if n > 0 => aiacc_simnet::par::set_jobs(n),
            _ => {
                eprintln!("--jobs needs a positive integer, got {v}");
                std::process::exit(2);
            }
        }
    }
    let mut wanted: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .filter(|a| Some(a.as_str()) != out_dir.to_str())
        .filter(|a| Some(a.as_str()) != jobs_arg.as_deref())
        .cloned()
        .collect();
    if wanted.is_empty() {
        wanted.push("all".to_string());
    }
    let all = wanted.iter().any(|w| w == "all");
    let sweep = if quick { QUICK_GPU_SWEEP } else { FULL_GPU_SWEEP };
    let tuning_budget = if quick { 15 } else { 60 };
    let big_gpus = if quick { 32 } else { 128 };

    let mut ran = 0;
    let mut run = |name: &str, f: &mut dyn FnMut() -> Table| {
        if !all && !wanted.iter().any(|w| w == name) {
            return;
        }
        eprintln!("[repro] running {name} ...");
        let t = f();
        println!("{t}");
        let path = out_dir.join(format!("{name}.tsv"));
        if let Err(e) = t.write_tsv(&path) {
            eprintln!("[repro] warning: could not write {}: {e}", path.display());
        }
        ran += 1;
    };

    run("table1", &mut table1_models);
    run("bandwidth", &mut bandwidth_utilization);
    run("fig2", &mut || fig2_motivation(sweep));
    run("fig9", &mut || fig9_cv(sweep));
    run("fig10", &mut || fig10_nlp(sweep));
    run("fig11", &mut || fig11_tensorflow(sweep));
    run("fig12", &mut || fig12_mxnet(sweep));
    run("fig13", &mut || fig13_hybrid(sweep));
    run("fig14", &mut fig14_batch_sweep);
    run("fig15", &mut fig15_rdma);
    run("fig_multijob", &mut || {
        fig_multijob(
            if quick { MULTIJOB_QUICK_SWEEP } else { MULTIJOB_SWEEP },
            if quick { 3 } else { 6 },
        )
    });
    run("fig_chaos", &mut || {
        fig_chaos(if quick { CHAOS_QUICK_SEEDS } else { CHAOS_SEEDS }, if quick { 3 } else { 6 })
    });
    run("ctr", &mut || ctr_production_speedup(big_gpus));
    run("insightface", &mut || insightface_speedup(big_gpus));
    run("dawnbench", &mut dawnbench_table);
    run("tuning", &mut || tuning_report(tuning_budget));
    if all || wanted.iter().any(|w| w == "ablations") {
        for (name, t) in [
            ("ablation_flow_cap", ablation_flow_cap()),
            ("ablation_byteps_servers", ablation_byteps_servers()),
            ("ablation_sync_scheme", ablation_sync_scheme()),
            ("ablation_granularity", ablation_granularity()),
            ("ablation_tree_vs_ring", ablation_tree_vs_ring()),
            ("ablation_meta_solver", ablation_meta_solver(tuning_budget)),
        ] {
            println!("{t}");
            let path = out_dir.join(format!("{name}.tsv"));
            if let Err(e) = t.write_tsv(&path) {
                eprintln!("[repro] warning: could not write {}: {e}", path.display());
            }
            ran += 1;
        }
    }

    if ran == 0 {
        eprintln!(
            "unknown experiment(s): {wanted:?}\nknown: table1 bandwidth fig2 fig9 fig10 fig11 \
             fig12 fig13 fig14 fig15 fig_multijob fig_chaos ctr insightface dawnbench tuning \
             ablations all"
        );
        std::process::exit(2);
    }
    eprintln!("[repro] done: {ran} experiment(s); TSV in {}", out_dir.display());
}
