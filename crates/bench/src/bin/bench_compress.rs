//! `bench_compress` — the convergence-vs-wall-clock gate for gradient
//! compression.
//!
//! ```text
//! bench_compress [--quick] [--jobs N] [--out FILE]
//!
//! --quick     reduced stream sweep and tuning budget
//! --jobs N    sweep worker count (default 4; output bit-identical to 1)
//! --out FILE  where to write the JSON report (default BENCH_compress.json)
//! ```
//!
//! Three sections, three gates:
//!
//! - `data_plane`: a real MLP trained through the exact Perseus data plane
//!   once per scheme. Gate: every lossy scheme still reaches within 0.10
//!   accuracy of the uncompressed run while shrinking the measured wire.
//! - `frontier`: `ctr_production` on a 5 Gbps cluster, scheme × streams.
//!   Gate: the best compressed point beats the best uncompressed point at
//!   *any* stream count — on a low-bandwidth link, multi-streaming alone
//!   cannot buy back the payload reduction.
//! - `autotune`: the §VI bandit over the 3-axis space, then over the
//!   4-axis compression space warm-started from the 3-axis winner. Gate:
//!   the 4-axis best is strictly better here.
//!
//! Everything reported is simulated (machine-independent) except the wall
//! clock under `"timing"`, which CI freshness comparison strips.

use aiacc_bench::{
    best_point, data_plane_points, frontier_points, tune_comparison, FRONTIER_QUICK_STREAMS,
    FRONTIER_STREAMS,
};
use aiacc_compress::Scheme;
use aiacc_simnet::par;
use std::fmt::Write as _;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let flag =
        |name: &str| args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned();
    let jobs: usize =
        flag("--jobs").map(|v| v.parse().expect("--jobs needs a positive integer")).unwrap_or(4);
    assert!(jobs > 0, "--jobs needs a positive integer");
    let out = flag("--out").unwrap_or_else(|| "BENCH_compress.json".to_string());

    let streams = if quick { FRONTIER_QUICK_STREAMS } else { FRONTIER_STREAMS };
    let (dp_steps, budget) = if quick { (120u64, 12usize) } else { (150, 30) };
    let started = Instant::now();

    eprintln!("[bench_compress] data plane ({dp_steps} steps per scheme)...");
    par::set_jobs(1);
    let dp_serial = data_plane_points(dp_steps);
    eprintln!("[bench_compress] frontier (scheme x {} stream counts), serial...", streams.len());
    let fr_serial = frontier_points(streams);
    eprintln!("[bench_compress] frontier again, --jobs {jobs}...");
    par::set_jobs(jobs);
    let dp_sweep = data_plane_points(dp_steps);
    let fr_sweep = frontier_points(streams);
    par::set_jobs(1);
    let identical = dp_serial == dp_sweep && fr_serial == fr_sweep;

    eprintln!("[bench_compress] autotune (budget {budget}, 3-axis then 4-axis warm-started)...");
    let tc = tune_comparison(budget, 7);

    let exact = dp_serial.iter().find(|p| p.scheme == Scheme::None).expect("uncompressed run");
    let best_plain = best_point(&fr_serial, |p| p.scheme == Scheme::None);
    let best_lossy = best_point(&fr_serial, |p| p.scheme != Scheme::None);
    let frontier_win = best_lossy.iter_s < best_plain.iter_s;
    let tuner_win = tc.compressed_s < tc.uncompressed_s;

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"scenario\": {{");
    let _ = writeln!(
        json,
        "    \"data_plane\": \"4-16-3 MLP, 4 workers, exact Perseus collectives, \
         {dp_steps} steps, error feedback on lossy wire\","
    );
    let _ = writeln!(
        json,
        "    \"frontier\": \"ctr_production on 2x8 V100 behind 5 Gbps TCP, \
         scheme x streams, one warmed-up simulated iteration each\","
    );
    let _ = writeln!(
        json,
        "    \"regenerate\": \"cargo run --release -p aiacc-bench --bin bench_compress\""
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"data_plane\": [");
    for (i, p) in dp_serial.iter().enumerate() {
        let comma = if i + 1 < dp_serial.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{ \"scheme\": \"{}\", \"final_loss\": {:.6}, \"accuracy\": {:.4}, \
             \"wire_bytes_per_step\": {}, \"loss_delta_vs_exact\": {:.6}, \
             \"wire_reduction_x\": {:.2} }}{comma}",
            p.scheme,
            p.final_loss,
            p.accuracy,
            p.wire_bytes_per_step,
            p.final_loss - exact.final_loss,
            exact.wire_bytes_per_step as f64 / p.wire_bytes_per_step as f64,
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"frontier\": {{");
    let _ = writeln!(json, "    \"points\": [");
    for (i, p) in fr_serial.iter().enumerate() {
        let comma = if i + 1 < fr_serial.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "      {{ \"scheme\": \"{}\", \"streams\": {}, \"iter_s\": {:.6} }}{comma}",
            p.scheme, p.streams, p.iter_s
        );
    }
    let _ = writeln!(json, "    ],");
    let _ = writeln!(
        json,
        "    \"best_uncompressed\": {{ \"streams\": {}, \"iter_s\": {:.6} }},",
        best_plain.streams, best_plain.iter_s
    );
    let _ = writeln!(
        json,
        "    \"best_compressed\": {{ \"scheme\": \"{}\", \"streams\": {}, \"iter_s\": {:.6} }},",
        best_lossy.scheme, best_lossy.streams, best_lossy.iter_s
    );
    let _ = writeln!(
        json,
        "    \"speedup_vs_best_uncompressed\": {:.3},",
        best_plain.iter_s / best_lossy.iter_s
    );
    let _ = writeln!(json, "    \"compressed_beats_all_stream_counts\": {frontier_win}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"autotune\": {{");
    let _ = writeln!(json, "    \"budget\": {budget},");
    let _ = writeln!(
        json,
        "    \"uncompressed_best\": {{ \"config\": \"{}\", \"iter_s\": {:.6} }},",
        tc.uncompressed, tc.uncompressed_s
    );
    let _ = writeln!(
        json,
        "    \"compressed_best\": {{ \"config\": \"{}\", \"iter_s\": {:.6} }},",
        tc.compressed, tc.compressed_s
    );
    let _ = writeln!(json, "    \"compressed_strictly_better\": {tuner_win}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"determinism\": {{");
    let _ = writeln!(json, "    \"bit_identical_across_jobs_1_and_{jobs}\": {identical}");
    let _ = writeln!(json, "  }},");
    let _ =
        writeln!(json, "  \"timing\": {{ \"wall_s\": {:.3} }}", started.elapsed().as_secs_f64());
    json.push_str("}\n");

    std::fs::write(&out, &json).expect("write report");
    eprintln!("[bench_compress] wrote {out}");
    println!("{json}");

    assert!(identical, "parallel sweep differed from serial — determinism broken");
    for p in &dp_serial {
        if p.scheme != Scheme::None {
            assert!(
                p.accuracy >= exact.accuracy - 0.10,
                "{} lost too much accuracy: {:.3} vs {:.3}",
                p.scheme,
                p.accuracy,
                exact.accuracy
            );
            assert!(
                p.wire_bytes_per_step < exact.wire_bytes_per_step,
                "{} did not shrink the wire ({} vs {} B/step)",
                p.scheme,
                p.wire_bytes_per_step,
                exact.wire_bytes_per_step
            );
        }
    }
    assert!(
        frontier_win,
        "no compressed config beat the best uncompressed ({} streams, {:.4}s) on the \
         low-bandwidth cluster",
        best_plain.streams, best_plain.iter_s
    );
    assert!(
        tc.compressed_s <= tc.uncompressed_s,
        "4-axis search regressed below its warm start: {:.4} vs {:.4}",
        tc.compressed_s,
        tc.uncompressed_s
    );
    assert!(
        tuner_win,
        "the tuner found no compressed config better than its uncompressed optimum \
         ({} at {:.4}s)",
        tc.uncompressed, tc.uncompressed_s
    );
}
