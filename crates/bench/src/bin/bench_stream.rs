//! `bench_stream` — the throughput and bounded-memory gate for the
//! streaming-replay subsystem.
//!
//! ```text
//! bench_stream [--quick] [--jobs N] [--out FILE]
//!
//! --quick    2k-job saturated cells + 20k-job scale witness (CI smoke)
//! --jobs N   sweep worker count (default 4; output is bit-identical to 1)
//! --out FILE where to write the JSON report (default BENCH_stream.json)
//! ```
//!
//! Runs the saturated capacity cell for each engine twice — once with
//! `--jobs 1`, once with `--jobs N` — checks the two sweeps are
//! bit-identical, replays the arrival-limited scale witness (one million
//! jobs in full mode) through the same bounded slot pool, then writes the
//! figure and the headline (steady-state jobs/s, AIACC vs Horovod under an
//! identical saturating arrival stream) as JSON. Exits non-zero if
//! determinism breaks, AIACC's capacity is not strictly above Horovod's, or
//! the scale witness's live state is not bounded.

use aiacc_bench::{
    saturated_points, scale_point, steady_throughput, StreamPoint, STREAM_SATURATED_JOBS,
    STREAM_SATURATED_QUICK_JOBS, STREAM_SCALE_JOBS, STREAM_SCALE_QUICK_JOBS,
};
use aiacc_simnet::par;
use std::fmt::Write as _;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let jobs: usize = args
        .iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--jobs needs a positive integer"))
        .unwrap_or(4);
    assert!(jobs > 0, "--jobs needs a positive integer");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_stream.json".to_string());
    let (sat_jobs, scale_jobs) = if quick {
        (STREAM_SATURATED_QUICK_JOBS, STREAM_SCALE_QUICK_JOBS)
    } else {
        (STREAM_SATURATED_JOBS, STREAM_SCALE_JOBS)
    };

    eprintln!("[bench_stream] saturated cells ({sat_jobs} jobs/engine), serial...");
    par::set_jobs(1);
    let serial = saturated_points(sat_jobs);
    eprintln!("[bench_stream] saturated cells again, --jobs {jobs}...");
    par::set_jobs(jobs);
    let points = saturated_points(sat_jobs);
    par::set_jobs(1);
    let identical = serial == points;

    eprintln!("[bench_stream] scale witness ({scale_jobs} jobs, arrival-limited)...");
    let scale = scale_point(scale_jobs);

    let aiacc = steady_throughput(&points, "aiacc");
    let horovod = steady_throughput(&points, "horovod");

    let row = |p: &StreamPoint, comma: &str| {
        format!(
            "    {{ \"engine\": \"{}\", \"jobs\": {}, \"throughput_jobs_per_s\": {:.3}, \
             \"jct_p50_s\": {:.3}, \"jct_p99_s\": {:.3}, \"peak_backlog\": {}, \
             \"peak_active\": {}, \"sketch_items\": {}, \"sketch_rank_err\": {}, \
             \"failed\": {} }}{comma}",
            p.engine,
            p.jobs,
            p.throughput_jobs_per_sec(),
            p.summary.jct_p50_secs,
            p.summary.jct_p99_secs,
            p.stats.peak_backlog,
            p.stats.peak_active,
            p.stats.sketch_stored_items,
            p.stats.sketch_max_rank_error,
            p.stats.failed,
        )
    };

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"scenario\": {{");
    let _ = writeln!(json, "    \"cluster\": \"4 nodes x 8 V100, 30 Gbps TCP\",");
    let _ = writeln!(json, "    \"placement\": \"packed\",");
    let _ = writeln!(
        json,
        "    \"workload\": \"tiny mix, 2 iterations/job, Poisson arrivals (seed 7)\","
    );
    let _ = writeln!(
        json,
        "    \"saturated\": \"0.1 ms mean gap — arrivals outpace service, so throughput \
         is the engine's drain capacity\","
    );
    let _ = writeln!(
        json,
        "    \"scale\": \"20 ms mean gap, {scale_jobs} jobs through the bounded slot pool \
         (alternating engines)\","
    );
    let _ = writeln!(
        json,
        "    \"regenerate\": \"cargo run --release -p aiacc-bench --bin bench_stream\""
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"saturated\": [");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        let _ = writeln!(json, "{}", row(p, comma));
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"headline\": {{");
    let _ = writeln!(
        json,
        "    \"claim\": \"under an identical saturating arrival stream AIACC drains the \
         cluster {:.2}x faster than single-stream Horovod at steady state\",",
        aiacc / horovod
    );
    let _ = writeln!(json, "    \"aiacc_jobs_per_s\": {aiacc:.3},");
    let _ = writeln!(json, "    \"horovod_jobs_per_s\": {horovod:.3},");
    let _ = writeln!(json, "    \"speedup\": {:.3},", aiacc / horovod);
    let _ = writeln!(json, "    \"gated_by\": [");
    let _ = writeln!(
        json,
        "      \"crates/bench exp_stream::tests::aiacc_sustains_higher_steady_state_throughput\","
    );
    let _ = writeln!(json, "      \"bench_stream trailing asserts\"");
    let _ = writeln!(json, "    ]");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"scale\": {{");
    let _ = writeln!(json, "    \"jobs\": {},", scale.jobs);
    let _ = writeln!(json, "    \"completed\": {},", scale.stats.completed);
    let _ = writeln!(json, "    \"failed\": {},", scale.stats.failed);
    let _ = writeln!(json, "    \"nslots\": {},", scale.stats.nslots);
    let _ = writeln!(json, "    \"peak_backlog\": {},", scale.stats.peak_backlog);
    let _ = writeln!(json, "    \"peak_active\": {},", scale.stats.peak_active);
    let _ = writeln!(json, "    \"windows_emitted\": {},", scale.stats.windows_emitted);
    let _ = writeln!(json, "    \"sketch_stored_items\": {},", scale.stats.sketch_stored_items);
    let _ = writeln!(json, "    \"sketch_max_rank_error\": {},", scale.stats.sketch_max_rank_error);
    let _ = writeln!(json, "    \"jct_p50_s\": {:.4},", scale.summary.jct_p50_secs);
    let _ = writeln!(json, "    \"jct_p99_s\": {:.4},", scale.summary.jct_p99_secs);
    let _ = writeln!(json, "    \"gated_by\": [");
    let _ =
        writeln!(json, "      \"crates/bench exp_stream::tests::scale_witness_stays_bounded\",");
    let _ = writeln!(json, "      \"tests/streaming.rs::slot_pool_bounds_live_state\",");
    let _ = writeln!(json, "      \"ci stream-smoke (peak-RSS gate)\"");
    let _ = writeln!(json, "    ]");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"determinism\": {{");
    let _ = writeln!(json, "    \"bit_identical_across_jobs_1_and_{jobs}\": {identical},");
    let _ = writeln!(json, "    \"gated_by\": [");
    let _ = writeln!(
        json,
        "      \"ci stream-smoke (byte-for-byte TSV diff, snapshot/resume cat-cmp)\","
    );
    let _ = writeln!(json, "      \"tests/streaming.rs::snapshot_resume_is_byte_identical\"");
    let _ = writeln!(json, "    ]");
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");

    std::fs::write(&out, &json).expect("write report");
    eprintln!("[bench_stream] wrote {out}");
    println!("{json}");

    assert!(identical, "parallel saturated sweep differed from serial — determinism broken");
    assert!(
        aiacc > horovod,
        "capacity headline broken: aiacc {aiacc:.1} jobs/s vs horovod {horovod:.1} jobs/s"
    );
    for p in &points {
        assert!(
            p.stats.peak_backlog as u64 > p.jobs / 2,
            "{}: backlog {} never saturated",
            p.engine,
            p.stats.peak_backlog
        );
        assert_eq!(p.stats.completed, p.jobs, "{}: jobs lost", p.engine);
    }
    assert_eq!(scale.stats.completed, scale.jobs, "scale witness lost jobs");
    assert!(
        scale.stats.peak_backlog < 100,
        "scale witness backlog {} not bounded",
        scale.stats.peak_backlog
    );
    assert!(
        (scale.stats.sketch_stored_items as u64) * 4 < scale.jobs,
        "sketch stores {} of {} jobs — not sublinear",
        scale.stats.sketch_stored_items,
        scale.jobs
    );
}
