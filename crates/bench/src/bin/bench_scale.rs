//! `bench_scale` — the datacenter-scale gate for the hierarchical FlowNet
//! and its calendar-queue event core.
//!
//! ```text
//! bench_scale [--quick] [--jobs N] [--out FILE] [--wall-budget SECS]
//!
//! --quick            short horizons: 16/64-node cells + a 1024-node smoke
//! --jobs N           sweep worker count (default 4; output bit-identical to 1)
//! --out FILE         where to write the JSON report (default BENCH_scale.json)
//! --wall-budget S    max wall-clock seconds per simulated second for the
//!                    largest cell (CI gate; default: no gate)
//! ```
//!
//! Each cell builds an 8-nodes-per-rack cluster with a 2:1-oversubscribed
//! ToR/spine tier and drives a steady-state workload: every node runs
//! `STREAMS_PER_NODE` rack-local streams against its pair neighbour
//! (restarted the moment they complete), and each rack keeps one
//! intermittent cross-rack stream at ~10 % duty (restarted by timer), so
//! the solver sees mostly-independent per-pair components with occasional
//! ToR/spine merges. Every event is folded into an FNV-1a hash, so two runs
//! are byte-comparable. The report carries nodes × flows vs wall-clock-per-
//! simulated-second curves; trailing asserts gate (a) ≥100k concurrent
//! flows at the 1024-node cell, (b) hash equality across `--jobs 1/N`,
//! (c) hash equality between the partitioned solver and the flat
//! (`Full`-mode) solver on the 64-node cell, and (d) the optional wall
//! budget.
//!
//! A second, *bulk-synchronous* workload (uniform-byte rounds with a
//! driver-side barrier, see [`run_sync_cell`]) exercises single-run
//! multicore solving: it runs at solver worker counts 1/2/4 plus a flat
//! oracle, asserts hash equality across all four unconditionally, and —
//! on hosts with ≥4 CPUs — gates a ≥2× wall-clock speedup of 4 workers
//! over 1. All machine-dependent numbers live under `"timing"` keys, which
//! CI freshness comparison strips.

use aiacc_cluster::{ClusterNet, ClusterSpec, GpuSpec, NicSpec, NodeSpec, RackSpec};
use aiacc_simnet::{par, Event, FlowId, SimDuration, SimTime, Simulator, SolveMode, Token};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::Instant;

/// Rack-local streams each node keeps in flight (102 400 concurrent flows
/// at 1024 nodes).
const STREAMS_PER_NODE: usize = 100;
const NODES_PER_RACK: usize = 8;
/// Fair-share rate of one rack-local stream: the 3.75 GB/s NIC split
/// `STREAMS_PER_NODE` ways.
const LOCAL_RATE: f64 = 3.75e9 / STREAMS_PER_NODE as f64;
/// One cross-rack burst: ~50 ms at the stream's max-min share of its source
/// NIC (it queues behind the `STREAMS_PER_NODE` local streams on `node_tx`,
/// so its share is ~`LOCAL_RATE`, not the single-stream cap). Keeping
/// bursts short keeps the spine-merged solver component intermittent.
const CROSS_BYTES: f64 = 1.875e6;

fn lcg(x: u64) -> u64 {
    x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407)
}

/// Deterministic pseudo-random fraction in `[0, 1)` from a seed.
fn frac(seed: u64) -> f64 {
    (lcg(seed) >> 40) as f64 / (1u64 << 24) as f64
}

fn fnv1a(h: &mut u64, x: u64) {
    for b in x.to_le_bytes() {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100_0000_01b3);
    }
}

#[derive(Debug, Clone)]
struct Stream {
    src: usize,
    dst: usize,
    /// `true`: rack-crossing, timer-restarted at ~10 % duty.
    cross: bool,
    launches: u64,
}

#[derive(Debug, Clone, PartialEq)]
struct CellResult {
    nodes: usize,
    racks: usize,
    sim_s: f64,
    peak_flows: usize,
    events: u64,
    completions: u64,
    hash: u64,
    recomputes: u64,
    comps_solved: u64,
    comps_existing: u64,
    /// Largest single component (participant flows) the solver ever saw.
    comp_parts_max: u64,
    /// Not compared: parallel fan-outs taken (differs across worker counts
    /// by design; every other solver counter is worker-independent).
    par_solves: u64,
    /// Not compared: wall time is machine- and load-dependent.
    wall_s: f64,
    /// Not compared: per-phase wall time (solve vs apply vs queue).
    breakdown: aiacc_simnet::SolveBreakdown,
}

impl CellResult {
    fn wall_per_sim_s(&self) -> f64 {
        self.wall_s / self.sim_s
    }

    /// Fraction of existing components the solver actually re-solved.
    fn solve_ratio(&self) -> f64 {
        if self.comps_existing == 0 {
            return 0.0;
        }
        self.comps_solved as f64 / self.comps_existing as f64
    }

    /// The mode-independent, machine-independent fields (what CI freshness
    /// and the jobs-sweep comparison look at).
    fn deterministic(&self) -> (usize, usize, u64, usize, u64, u64, u64) {
        (
            self.nodes,
            self.racks,
            self.sim_s.to_bits(),
            self.peak_flows,
            self.events,
            self.completions,
            self.hash,
        )
    }
}

fn local_bytes(stream: u64, launch: u64) -> f64 {
    // 50–200 ms of fair-share transfer, varied per stream and per launch so
    // completions de-synchronize.
    LOCAL_RATE * (0.05 + 0.15 * frac(stream * 31 + launch))
}

fn run_cell(nodes: usize, horizon: SimDuration, mode: SolveMode) -> CellResult {
    let started = Instant::now();
    let mut sim = Simulator::new();
    sim.net_mut().set_solve_mode(mode);
    let node = NodeSpec { gpus_per_node: 1, gpu: GpuSpec::v100(), nic: NicSpec::tcp_30gbps() };
    let spec = ClusterSpec::new(nodes, node)
        .with_rack_layer(RackSpec::oversubscribed_2to1(NODES_PER_RACK, &NicSpec::tcp_30gbps()));
    let racks = spec.nracks();
    let cluster = ClusterNet::build(&spec, sim.net_mut());

    // Streams 0..nodes*K are rack-local (node n ↔ its xor-pair n^1, always
    // inside the rack); the last `racks` streams hop rack r → rack r+1.
    let mut streams = Vec::with_capacity(nodes * STREAMS_PER_NODE + racks);
    for n in 0..nodes {
        for _ in 0..STREAMS_PER_NODE {
            streams.push(Stream { src: n, dst: n ^ 1, cross: false, launches: 0 });
        }
    }
    for r in 0..racks {
        let src = r * NODES_PER_RACK;
        let dst = ((r + 1) % racks) * NODES_PER_RACK;
        streams.push(Stream { src, dst, cross: true, launches: 0 });
    }

    let mut by_flow: HashMap<FlowId, usize> = HashMap::with_capacity(streams.len());
    let launch = |sim: &mut Simulator, st: &mut Stream, s: usize| -> FlowId {
        let bytes = if st.cross { CROSS_BYTES } else { local_bytes(s as u64, st.launches) };
        st.launches += 1;
        sim.start_flow(cluster.node_path(st.src, st.dst).flow(bytes))
    };
    for (s, stream) in streams.iter_mut().enumerate() {
        let id = launch(&mut sim, stream, s);
        by_flow.insert(id, s);
    }

    let horizon = SimTime::ZERO + horizon;
    let mut hash = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
    let (mut events, mut completions, mut peak_flows) = (0u64, 0u64, 0usize);
    while let Some((t, ev)) = sim.next_event() {
        if t > horizon {
            break;
        }
        events += 1;
        peak_flows = peak_flows.max(sim.net_mut().flow_count());
        if events % 16384 == 0 && std::env::var_os("BENCH_SCALE_PROGRESS").is_some() {
            let s = sim.net_mut().solver_stats();
            eprintln!(
                "[bench_scale]   {nodes}n @ {:?}: {events} events, {:.1}s wall, \
                 {} solves, {} parts, {} rounds",
                t,
                started.elapsed().as_secs_f64(),
                s.comps_solved,
                s.parts_solved,
                s.fill_rounds
            );
        }
        match ev {
            Event::FlowCompleted(id) => {
                let s = by_flow.remove(&id).expect("unknown flow completed");
                completions += 1;
                fnv1a(&mut hash, t.as_nanos());
                fnv1a(&mut hash, 1);
                fnv1a(&mut hash, s as u64);
                if t < horizon {
                    let st = &mut streams[s];
                    if st.cross {
                        // ~10 % duty: idle ≈ 9× the ~50 ms burst, jittered
                        // per rack so the cross flows de-synchronize.
                        let idle = 0.35 + 0.2 * frac(s as u64 * 977 + st.launches);
                        sim.schedule_at(
                            t + SimDuration::from_secs_f64(idle),
                            Token::new(1, s as u32, 0),
                        );
                    } else {
                        let id = launch(&mut sim, &mut streams[s], s);
                        by_flow.insert(id, s);
                    }
                }
            }
            Event::Timer(tok) => {
                let s = tok.a as usize;
                fnv1a(&mut hash, t.as_nanos());
                fnv1a(&mut hash, 2);
                fnv1a(&mut hash, s as u64);
                if t < horizon {
                    let id = launch(&mut sim, &mut streams[s], s);
                    by_flow.insert(id, s);
                }
            }
            Event::Fault(_) => unreachable!("no fault plan installed"),
        }
    }

    let stats = sim.net_mut().solver_stats();
    CellResult {
        nodes,
        racks,
        sim_s: (horizon - SimTime::ZERO).as_secs_f64(),
        peak_flows,
        events,
        completions,
        hash,
        recomputes: stats.recomputes,
        comps_solved: stats.comps_solved,
        comps_existing: stats.comps_existing,
        comp_parts_max: stats.comp_parts_max,
        par_solves: stats.par_solves,
        wall_s: started.elapsed().as_secs_f64(),
        breakdown: sim.net_mut().solve_breakdown(),
    }
}

fn run_curve(cells: &[(usize, f64)]) -> Vec<CellResult> {
    par::map(cells, |&(nodes, sim_s)| {
        run_cell(nodes, SimDuration::from_secs_f64(sim_s), SolveMode::Partitioned)
    })
}

/// Streams per node in the bulk-synchronous cell — same 102 400 concurrent
/// flows at 1024 nodes as the steady-state workload.
const SYNC_STREAMS_PER_NODE: usize = 100;
/// Per-stream rate-cap tiers as fractions of the equal-split fair share
/// (`0.0` = uncapped). Capped tiers finish a round's uniform transfer at
/// staggered instants, so each round produces four *simultaneous* bursts of
/// ~a quarter of all flows — the bulk-synchronous shape a synchronized
/// all-reduce round imposes, and the shape that exercises both parallel
/// seams at once (batched settles + many-dirty-component solves).
const SYNC_TIERS: [f64; 4] = [0.4, 0.6, 0.8, 0.0];

/// One bulk-synchronous cell: every node keeps `SYNC_STREAMS_PER_NODE`
/// streams to its xor-pair neighbour; all streams of a round move the same
/// byte count and the next round launches only when every stream of the
/// current one has completed (a driver-side barrier, like sync-SGD). Runs
/// with a *fixed* solver worker count so the multicore section can compare
/// worker counts on identical work.
fn run_sync_cell(nodes: usize, rounds: u64, mode: SolveMode, solve_workers: usize) -> CellResult {
    let started = Instant::now();
    let mut sim = Simulator::new();
    sim.net_mut().set_solve_mode(mode);
    sim.net_mut().set_solve_workers(Some(solve_workers));
    let node = NodeSpec { gpus_per_node: 1, gpu: GpuSpec::v100(), nic: NicSpec::tcp_30gbps() };
    let spec = ClusterSpec::new(nodes, node)
        .with_rack_layer(RackSpec::oversubscribed_2to1(NODES_PER_RACK, &NicSpec::tcp_30gbps()));
    let racks = spec.nracks();
    let cluster = ClusterNet::build(&spec, sim.net_mut());

    let total = nodes * SYNC_STREAMS_PER_NODE;
    let fair = 3.75e9 / SYNC_STREAMS_PER_NODE as f64;
    let mut by_flow: HashMap<FlowId, usize> = HashMap::with_capacity(total);
    let launch_round = |sim: &mut Simulator, by_flow: &mut HashMap<FlowId, usize>, round: u64| {
        // Uniform bytes per round (varied across rounds): within a cap
        // tier every flow finishes at the same instant.
        let bytes = fair * (0.04 + 0.02 * frac(round));
        for s in 0..total {
            let (n, k) = (s / SYNC_STREAMS_PER_NODE, s % SYNC_STREAMS_PER_NODE);
            let mut fs = cluster.node_path(n, n ^ 1).flow(bytes);
            let tier = SYNC_TIERS[k % SYNC_TIERS.len()];
            if tier > 0.0 {
                fs = fs.with_rate_cap(fair * tier);
            }
            by_flow.insert(sim.start_flow(fs), s);
        }
    };

    let mut hash = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
    let (mut events, mut completions, mut peak_flows) = (0u64, 0u64, 0usize);
    let (mut round, mut live) = (0u64, total);
    let mut end = SimTime::ZERO;
    launch_round(&mut sim, &mut by_flow, round);
    // Sample concurrency at round start: completed flows free their slots
    // during the event drain, before the driver sees the completions.
    peak_flows = peak_flows.max(sim.net_mut().flow_count());
    while let Some((t, ev)) = sim.next_event() {
        events += 1;
        match ev {
            Event::FlowCompleted(id) => {
                let s = by_flow.remove(&id).expect("unknown flow completed");
                completions += 1;
                live -= 1;
                fnv1a(&mut hash, t.as_nanos());
                fnv1a(&mut hash, 1);
                fnv1a(&mut hash, s as u64);
                if live == 0 {
                    end = t;
                    round += 1;
                    if round < rounds {
                        launch_round(&mut sim, &mut by_flow, round);
                        live = total;
                        peak_flows = peak_flows.max(sim.net_mut().flow_count());
                    }
                }
            }
            _ => unreachable!("sync cell schedules no timers or faults"),
        }
    }

    let stats = sim.net_mut().solver_stats();
    CellResult {
        nodes,
        racks,
        sim_s: (end - SimTime::ZERO).as_secs_f64(),
        peak_flows,
        events,
        completions,
        hash,
        recomputes: stats.recomputes,
        comps_solved: stats.comps_solved,
        comps_existing: stats.comps_existing,
        comp_parts_max: stats.comp_parts_max,
        par_solves: stats.par_solves,
        wall_s: started.elapsed().as_secs_f64(),
        breakdown: sim.net_mut().solve_breakdown(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let flag =
        |name: &str| args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned();
    let jobs: usize =
        flag("--jobs").map(|v| v.parse().expect("--jobs needs a positive integer")).unwrap_or(4);
    assert!(jobs > 0, "--jobs needs a positive integer");
    let out = flag("--out").unwrap_or_else(|| "BENCH_scale.json".to_string());
    let wall_budget: Option<f64> =
        flag("--wall-budget").map(|v| v.parse().expect("--wall-budget needs seconds"));

    // (nodes, simulated seconds) per cell. Larger cells simulate less time:
    // the wall-per-simulated-second quotient is what the curve reports.
    // The smallest horizon must clear the longest rack-local transfer
    // (~0.2 s) or a cell would report zero events.
    let cells: Vec<(usize, f64)> = if let Some(spec) = flag("--cells") {
        spec.split(',')
            .map(|c| {
                let (n, s) = c.split_once(':').expect("--cells takes nodes:sim_s,...");
                (n.parse().expect("nodes"), s.parse().expect("sim_s"))
            })
            .collect()
    } else if quick {
        vec![(16, 0.25), (64, 0.25), (1024, 0.25)]
    } else {
        vec![(16, 2.0), (64, 1.0), (256, 0.5), (1024, 0.25)]
    };

    eprintln!("[bench_scale] curve ({} cells), serial...", cells.len());
    par::set_jobs(1);
    let serial = run_curve(&cells);
    eprintln!("[bench_scale] curve again, --jobs {jobs}...");
    par::set_jobs(jobs);
    let sweep = run_curve(&cells);
    par::set_jobs(1);
    let identical = serial.iter().zip(&sweep).all(|(a, b)| a.deterministic() == b.deterministic());

    // Solver-equivalence witness: the same 64-node cell under the
    // partitioned solver and under the flat (every-component) solver must
    // produce byte-identical event streams.
    eprintln!("[bench_scale] 64-node partitioned vs flat solver...");
    let eq_cell = (64usize, if quick { 0.2 } else { 0.5 });
    let eq_horizon = SimDuration::from_secs_f64(eq_cell.1);
    let part = run_cell(eq_cell.0, eq_horizon, SolveMode::Partitioned);
    let full = run_cell(eq_cell.0, eq_horizon, SolveMode::Full);
    let modes_identical = part.deterministic() == full.deterministic();

    let big = sweep.iter().max_by_key(|c| c.nodes).expect("at least one cell");

    // Multicore section: the bulk-synchronous 1024-node cell at solver
    // worker counts 1/2/4, plus a flat-solver oracle. Hash identity across
    // all four runs is asserted unconditionally (pool threads run even on a
    // 1-CPU host); the ≥2× speedup gate needs real cores.
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let sync_nodes = big.nodes;
    let sync_rounds: u64 = if quick { 3 } else { 12 };
    let worker_counts = [1usize, 2, 4];
    let mut sync_runs = Vec::with_capacity(worker_counts.len());
    for &w in &worker_counts {
        eprintln!("[bench_scale] sync-round cell ({sync_nodes}n, {sync_rounds} rounds), {w} solver worker(s)...");
        sync_runs.push(run_sync_cell(sync_nodes, sync_rounds, SolveMode::Partitioned, w));
    }
    eprintln!("[bench_scale] sync-round cell, flat solver oracle...");
    let sync_full = run_sync_cell(sync_nodes, sync_rounds, SolveMode::Full, 4);
    let sync_identical =
        sync_runs.iter().all(|r| r.deterministic() == sync_runs[0].deterministic())
            && sync_full.deterministic() == sync_runs[0].deterministic();
    let speedup = sync_runs[0].wall_s / sync_runs.last().expect("worker sweep").wall_s;
    let gate_enforced = host_cpus >= 4;

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"scenario\": {{");
    let _ = writeln!(
        json,
        "    \"fabric\": \"1 V100 + 30 Gbps TCP NIC per node, {NODES_PER_RACK} nodes/rack, \
         2:1-oversubscribed ToR uplinks, shared spine\","
    );
    let _ = writeln!(
        json,
        "    \"workload\": \"{STREAMS_PER_NODE} restart-on-complete rack-local streams per \
         node (xor-pair neighbours) + 1 intermittent cross-rack stream per rack at ~10% \
         duty\","
    );
    let _ = writeln!(
        json,
        "    \"regenerate\": \"cargo run --release -p aiacc-bench --bin bench_scale\""
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"cells\": [");
    for (i, c) in sweep.iter().enumerate() {
        let comma = if i + 1 < sweep.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{ \"nodes\": {}, \"racks\": {}, \"sim_s\": {}, \"peak_flows\": {}, \
             \"events\": {}, \"completions\": {}, \"event_hash\": \"{:016x}\", \
             \"solver_recomputes\": {}, \"comps_solved\": {}, \"comps_existing\": {}, \
             \"comp_solve_ratio\": {:.4}, \"comp_parts_max\": {},\n      \
             \"timing\": {{ \"wall_s\": {:.3}, \"wall_per_sim_s\": {:.3}, \
             \"events_per_wall_s\": {:.0}, \"solve_s\": {:.3}, \"apply_s\": {:.3}, \
             \"queue_s\": {:.3} }} }}{comma}",
            c.nodes,
            c.racks,
            c.sim_s,
            c.peak_flows,
            c.events,
            c.completions,
            c.hash,
            c.recomputes,
            c.comps_solved,
            c.comps_existing,
            c.solve_ratio(),
            c.comp_parts_max,
            c.wall_s,
            c.wall_per_sim_s(),
            c.events as f64 / c.wall_s,
            c.breakdown.solve_s,
            c.breakdown.apply_s,
            c.breakdown.queue_s,
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"solver_equivalence\": {{");
    let _ = writeln!(json, "    \"cell_nodes\": {},", eq_cell.0);
    let _ = writeln!(json, "    \"partitioned_hash\": \"{:016x}\",", part.hash);
    let _ = writeln!(json, "    \"flat_hash\": \"{:016x}\",", full.hash);
    let _ = writeln!(json, "    \"bit_identical\": {modes_identical},");
    let _ = writeln!(
        json,
        "    \"partitioned_comp_solve_ratio\": {:.4},\n    \"flat_comp_solve_ratio\": {:.4},",
        part.solve_ratio(),
        full.solve_ratio()
    );
    let _ = writeln!(json, "    \"gated_by\": [");
    let _ = writeln!(
        json,
        "      \"crates/cluster prop_hier (bitwise rate/byte equivalence proptests)\","
    );
    let _ = writeln!(json, "      \"ci scale-smoke (hierarchical vs flat byte diff)\"");
    let _ = writeln!(json, "    ]");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"multicore\": {{");
    let _ = writeln!(
        json,
        "    \"workload\": \"bulk-synchronous rounds: {SYNC_STREAMS_PER_NODE} uniform-byte \
         streams per node in {} rate-cap tiers, driver-side barrier between rounds\",",
        SYNC_TIERS.len()
    );
    let _ = writeln!(json, "    \"nodes\": {sync_nodes},");
    let _ = writeln!(json, "    \"rounds\": {sync_rounds},");
    let s0 = &sync_runs[0];
    let _ = writeln!(json, "    \"peak_flows\": {},", s0.peak_flows);
    let _ = writeln!(json, "    \"events\": {},", s0.events);
    let _ = writeln!(json, "    \"completions\": {},", s0.completions);
    let _ = writeln!(json, "    \"event_hash\": \"{:016x}\",", s0.hash);
    let _ = writeln!(
        json,
        "    \"solver_workers_compared\": [{}],",
        worker_counts.iter().map(|w| w.to_string()).collect::<Vec<_>>().join(", ")
    );
    let _ = writeln!(json, "    \"bit_identical_across_workers_and_flat\": {sync_identical},");
    let _ = writeln!(
        json,
        "    \"par_solves_by_workers\": [{}],",
        sync_runs.iter().map(|r| r.par_solves.to_string()).collect::<Vec<_>>().join(", ")
    );
    let _ = writeln!(json, "    \"timing\": {{");
    let _ = writeln!(json, "      \"host_cpus\": {host_cpus},");
    let _ = writeln!(
        json,
        "      \"wall_s_by_workers\": [{}],",
        sync_runs.iter().map(|r| format!("{:.3}", r.wall_s)).collect::<Vec<_>>().join(", ")
    );
    let _ = writeln!(json, "      \"speedup_4_workers_vs_1\": {speedup:.3},");
    let _ = writeln!(
        json,
        "      \"speedup_gate\": \"{}\"",
        if gate_enforced { ">= 2.0 (enforced)" } else { "skipped: host_cpus < 4" }
    );
    let _ = writeln!(json, "    }}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"determinism\": {{");
    let _ = writeln!(json, "    \"bit_identical_across_jobs_1_and_{jobs}\": {identical}");
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");

    std::fs::write(&out, &json).expect("write report");
    eprintln!("[bench_scale] wrote {out}");
    println!("{json}");

    assert!(identical, "parallel curve differed from serial — determinism broken");
    assert!(
        modes_identical,
        "partitioned solver diverged from flat: {:016x} vs {:016x}",
        part.hash, full.hash
    );
    assert!(
        part.comps_solved < full.comps_solved,
        "partitioned mode did not skip any component solves ({} vs {})",
        part.comps_solved,
        full.comps_solved
    );
    assert!(big.nodes >= 1024, "largest cell below 1024 nodes");
    assert!(
        big.peak_flows >= 100_000,
        "1024-node cell peaked at {} concurrent flows (< 100k)",
        big.peak_flows
    );
    assert!(
        sync_identical,
        "sync-round cell diverged across solver worker counts or vs the flat solver"
    );
    assert!(
        sync_runs.last().expect("worker sweep").par_solves > 0,
        "4-worker sync cell never took the parallel solve path"
    );
    if sync_nodes >= 1024 {
        assert!(
            s0.peak_flows >= 100_000,
            "sync cell peaked at {} concurrent flows (< 100k)",
            s0.peak_flows
        );
    }
    if gate_enforced {
        assert!(
            speedup >= 2.0,
            "4 solver workers gave only {speedup:.2}x over 1 on a {host_cpus}-CPU host \
             (gate: >= 2.0x)"
        );
    } else {
        eprintln!(
            "[bench_scale] speedup gate skipped: host has {host_cpus} CPU(s) < 4 \
             (measured {speedup:.2}x)"
        );
    }
    if let Some(budget) = wall_budget {
        assert!(
            big.wall_per_sim_s() <= budget,
            "1024-node cell took {:.1} wall-s per simulated second (budget {budget})",
            big.wall_per_sim_s()
        );
    }
}
