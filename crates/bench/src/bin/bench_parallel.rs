//! `bench_parallel` — the perf-trajectory gate for the parallel runner and
//! the FlowNet hot-path overhaul.
//!
//! ```text
//! bench_parallel [--jobs N] [--out FILE]
//!
//! --jobs N   worker count for the parallel leg (default 4)
//! --out FILE where to write the JSON report (default BENCH_parallel.json)
//! ```
//!
//! Measures three things and writes them as JSON:
//!
//! 1. **End-to-end fan-out**: wall-clock of a quick figure sweep run
//!    serially (`jobs = 1`) vs in parallel (`--jobs`), with a cell-by-cell
//!    equality check — the parallel tables must be *bit-identical*.
//! 2. **`recompute_rates` hot path**: the slab + scratch solver against a
//!    faithful replica of the previous `BTreeMap`-backed implementation at
//!    64/256/1024 flows.
//! 3. **Host context**: CPU count, so a 2× speedup claim is interpretable —
//!    on a single-core box the parallel leg cannot beat serial, and the
//!    report says so instead of pretending.

use aiacc_bench::{ablation_granularity, fig9_cv, Table, QUICK_GPU_SWEEP};
use aiacc_simnet::{par, FlowNet, FlowSpec};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

// ---------------------------------------------------------------------------
// Baseline replica of the pre-slab FlowNet rate solver (BTreeMap flow
// storage, per-call Vec/BTreeMap allocations) so the microbench compares the
// new hot path against what the code actually used to do.
// ---------------------------------------------------------------------------

struct OldFlow {
    path: Vec<usize>,
    rate_cap: Option<f64>,
    rate: f64,
}

struct OldNet {
    capacities: Vec<f64>,
    flows: BTreeMap<u64, OldFlow>,
    next_id: u64,
}

impl OldNet {
    fn new(capacities: Vec<f64>) -> Self {
        OldNet { capacities, flows: BTreeMap::new(), next_id: 0 }
    }

    fn start_flow(&mut self, path: Vec<usize>, rate_cap: Option<f64>) {
        self.flows.insert(self.next_id, OldFlow { path, rate_cap, rate: 0.0 });
        self.next_id += 1;
    }

    /// The previous implementation, line for line where it matters: fresh
    /// `residual`/`counts`/`still` vectors and a fresh `BTreeMap` cap cache
    /// on every call, flows addressed through the ordered map.
    fn recompute_rates(&mut self) {
        let mut residual: Vec<f64> = self.capacities.clone();
        let mut unfrozen: Vec<u64> = Vec::new();
        for (&id, st) in self.flows.iter_mut() {
            st.rate = 0.0;
            unfrozen.push(id);
        }
        let eff_caps: BTreeMap<u64, Option<f64>> =
            unfrozen.iter().map(|&id| (id, self.flows[&id].rate_cap)).collect();
        while !unfrozen.is_empty() {
            let mut counts = vec![0u32; self.capacities.len()];
            for &id in &unfrozen {
                for &r in &self.flows[&id].path {
                    counts[r] += 1;
                }
            }
            let mut inc = f64::INFINITY;
            for (i, &c) in counts.iter().enumerate() {
                if c > 0 {
                    inc = inc.min(residual[i].max(0.0) / c as f64);
                }
            }
            for &id in &unfrozen {
                let st = &self.flows[&id];
                if let Some(cap) = eff_caps[&id] {
                    inc = inc.min((cap - st.rate).max(0.0));
                }
            }
            if inc.is_infinite() {
                for &id in &unfrozen {
                    self.flows.get_mut(&id).unwrap().rate = f64::INFINITY;
                }
                break;
            }
            for &id in &unfrozen {
                let st = self.flows.get_mut(&id).unwrap();
                st.rate += inc;
                for &r in &st.path {
                    residual[r] -= inc;
                }
            }
            let mut still: Vec<u64> = Vec::with_capacity(unfrozen.len());
            for &id in &unfrozen {
                let st = &self.flows[&id];
                let capped = eff_caps[&id].is_some_and(|cap| st.rate >= cap - cap * 1e-12 - 1e-15);
                let saturated = st.path.iter().any(|&r| residual[r] <= self.capacities[r] * 1e-12);
                if !capped && !saturated {
                    still.push(id);
                }
            }
            assert!(still.len() < unfrozen.len(), "no progress");
            unfrozen = still;
        }
    }
}

/// Median-of-runs nanoseconds for one invocation of `f` on a fresh setup.
fn measure_ns<S, F, T, U>(reps: usize, setup: S, f: F) -> f64
where
    S: Fn() -> T,
    F: Fn(&mut T) -> U,
{
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let mut state = setup();
            let t0 = Instant::now();
            std::hint::black_box(f(&mut state));
            t0.elapsed().as_secs_f64() * 1e9
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

struct RecomputeRow {
    flows: usize,
    old_ns: f64,
    new_ns: f64,
}

fn bench_recompute(flows: usize) -> RecomputeRow {
    const RESOURCES: usize = 64;
    let reps = 51;
    let old_ns = measure_ns(
        reps,
        || {
            let mut net = OldNet::new(vec![1e9; RESOURCES]);
            for i in 0..flows {
                net.start_flow(vec![i % RESOURCES, (i + 1) % RESOURCES], Some(3e8));
            }
            net
        },
        |net| net.recompute_rates(),
    );
    let new_ns = measure_ns(
        reps,
        || {
            let mut net = FlowNet::new();
            let res: Vec<_> =
                (0..RESOURCES).map(|i| net.add_resource(format!("r{i}"), 1e9)).collect();
            for i in 0..flows {
                net.start_flow(
                    FlowSpec::new(vec![res[i % RESOURCES], res[(i + 1) % RESOURCES]], 1e8)
                        .with_rate_cap(3e8),
                );
            }
            net
        },
        // next_change() forces the (dirty) rate recomputation.
        |net| net.next_change(),
    );
    RecomputeRow { flows, old_ns, new_ns }
}

/// The end-to-end workload: a quick CV figure plus a granularity ablation —
/// enough independent sweep points to give the fan-out something to chew on.
fn sweep() -> Vec<Table> {
    vec![fig9_cv(QUICK_GPU_SWEEP), ablation_granularity()]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let jobs: usize = args
        .iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--jobs needs a positive integer"))
        .unwrap_or(4);
    assert!(jobs > 0, "--jobs needs a positive integer");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_parallel.json".to_string());
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());

    eprintln!("[bench_parallel] end-to-end quick sweep, serial...");
    par::set_jobs(1);
    let t0 = Instant::now();
    let serial_tables = sweep();
    let serial_secs = t0.elapsed().as_secs_f64();

    eprintln!("[bench_parallel] end-to-end quick sweep, --jobs {jobs}...");
    par::set_jobs(jobs);
    let t0 = Instant::now();
    let parallel_tables = sweep();
    let parallel_secs = t0.elapsed().as_secs_f64();
    par::set_jobs(1);

    let identical = serial_tables == parallel_tables;
    let speedup = serial_secs / parallel_secs;

    eprintln!("[bench_parallel] recompute_rates microbench...");
    let recompute: Vec<RecomputeRow> =
        [64usize, 256, 1024].iter().map(|&f| bench_recompute(f)).collect();

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    let _ = writeln!(json, "  \"jobs\": {jobs},");
    let _ = writeln!(json, "  \"end_to_end\": {{");
    let _ = writeln!(json, "    \"workload\": \"fig9 quick sweep + granularity ablation\",");
    let _ = writeln!(json, "    \"serial_secs\": {serial_secs:.4},");
    let _ = writeln!(json, "    \"parallel_secs\": {parallel_secs:.4},");
    let _ = writeln!(json, "    \"speedup\": {speedup:.3},");
    let _ = writeln!(json, "    \"output_identical\": {identical}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"recompute_rates\": [");
    for (i, r) in recompute.iter().enumerate() {
        let comma = if i + 1 < recompute.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{ \"flows\": {}, \"btreemap_ns\": {:.0}, \"slab_ns\": {:.0}, \
             \"speedup\": {:.3} }}{comma}",
            r.flows,
            r.old_ns,
            r.new_ns,
            r.old_ns / r.new_ns
        );
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");

    std::fs::write(&out, &json).expect("write report");
    eprintln!("[bench_parallel] wrote {out}");
    println!("{json}");

    assert!(identical, "parallel output differed from serial — determinism broken");
    // On a multi-core host the parallel leg must actually win; on a
    // single-core box (CI containers, this dev box) threads only add
    // overhead, so the gate is reduced to the determinism check above.
    if host_cpus >= 2 * jobs {
        assert!(speedup >= 2.0, "expected >= 2x speedup at --jobs {jobs}, got {speedup:.2}x");
    } else if host_cpus > 1 {
        assert!(speedup >= 1.2, "expected some speedup on {host_cpus} cpus, got {speedup:.2}x");
    } else {
        eprintln!("[bench_parallel] single-cpu host: skipping the speedup gate");
    }
    let r = recompute.last().expect("rows");
    assert!(
        r.new_ns < r.old_ns,
        "slab recompute slower than BTreeMap baseline at {} flows: {:.0}ns vs {:.0}ns",
        r.flows,
        r.new_ns,
        r.old_ns
    );
}
