//! `bench_chaos` — the availability gate for the elastic failure-recovery
//! subsystem.
//!
//! ```text
//! bench_chaos [--quick] [--jobs N] [--out FILE]
//!
//! --quick    2 chaos seeds instead of 8 (CI smoke)
//! --jobs N   sweep worker count (default 4; output is bit-identical to 1)
//! --out FILE where to write the JSON report (default BENCH_chaos.json)
//! ```
//!
//! Runs every `(seed, engine)` cell of the chaos figure twice — once with
//! `--jobs 1`, once with `--jobs N` — checks the two sweeps are
//! bit-identical, then writes the per-seed p99 degradation table and the
//! headline (mean absolute Δp99, AIACC vs Horovod under identical seeded
//! chaos) as JSON. Exits non-zero if determinism breaks or AIACC's mean
//! degradation is not strictly below Horovod's.

use aiacc_bench::{chaos_points, mean_delta_p99, ChaosPoint, CHAOS_QUICK_SEEDS, CHAOS_SEEDS};
use aiacc_simnet::par;
use std::fmt::Write as _;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let jobs: usize = args
        .iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--jobs needs a positive integer"))
        .unwrap_or(4);
    assert!(jobs > 0, "--jobs needs a positive integer");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_chaos.json".to_string());
    let seeds = if quick { CHAOS_QUICK_SEEDS } else { CHAOS_SEEDS };
    let iterations = 6;

    eprintln!("[bench_chaos] chaos sweep over {} seed(s), serial...", seeds.len());
    par::set_jobs(1);
    let serial = chaos_points(seeds, iterations);
    eprintln!("[bench_chaos] chaos sweep again, --jobs {jobs}...");
    par::set_jobs(jobs);
    let points = chaos_points(seeds, iterations);
    par::set_jobs(1);
    let identical = serial == points;

    let aiacc = mean_delta_p99(&points, "aiacc");
    let horovod = mean_delta_p99(&points, "horovod");
    let crashes: u32 = points.iter().map(|p| p.chaos.crashes_total).sum();
    let mitigations: u32 = points.iter().map(|p| p.chaos.mitigations_total).sum();

    let row = |p: &ChaosPoint, comma: &str| {
        format!(
            "    {{ \"seed\": {}, \"engine\": \"{}\", \"clean_p99_s\": {:.3}, \
             \"chaos_p99_s\": {:.3}, \"delta_p99_s\": {:.3}, \"crashes\": {}, \
             \"shrinks\": {}, \"mitigations\": {}, \"recovery_s\": {:.3}, \
             \"failed\": {} }}{comma}",
            p.seed,
            p.engine,
            p.clean.jct_p99_secs,
            p.chaos.jct_p99_secs,
            p.delta_p99_secs(),
            p.chaos.crashes_total,
            p.chaos.shrinks_total,
            p.chaos.mitigations_total,
            p.chaos.recovery_total_secs,
            p.chaos.njobs_failed,
        )
    };

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"scenario\": {{");
    let _ = writeln!(json, "    \"cluster\": \"4 nodes x 8 V100, 30 Gbps TCP\",");
    let _ = writeln!(json, "    \"placement\": \"spread\",");
    let _ = writeln!(
        json,
        "    \"workload\": \"comm-heavy mix, 8 jobs/seed, {iterations} iterations/job\","
    );
    let _ = writeln!(
        json,
        "    \"chaos\": \"FaultPlan::chaos per seed: guaranteed crash+repair and straggler \
         window plus 12 mixed events over a 60 s horizon; shrink recovery; straggler \
         mitigation at 1.3x median\","
    );
    let _ = writeln!(
        json,
        "    \"regenerate\": \"cargo run --release -p aiacc-bench --bin bench_chaos\""
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"points\": [");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        let _ = writeln!(json, "{}", row(p, comma));
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"headline\": {{");
    let _ = writeln!(
        json,
        "    \"claim\": \"under identical seeded chaos (node crashes, stragglers, NIC faults) \
         AIACC's p99 JCT degrades {:.1}% less than single-stream Horovod's in absolute terms\",",
        (1.0 - aiacc / horovod) * 100.0
    );
    let _ = writeln!(json, "    \"aiacc_mean_delta_p99_s\": {aiacc:.3},");
    let _ = writeln!(json, "    \"horovod_mean_delta_p99_s\": {horovod:.3},");
    let _ = writeln!(json, "    \"crashes_total\": {crashes},");
    let _ = writeln!(json, "    \"mitigations_total\": {mitigations},");
    let _ = writeln!(json, "    \"gated_by\": [");
    let _ = writeln!(
        json,
        "      \"crates/bench exp_chaos::tests::aiacc_degrades_less_than_horovod_under_chaos\","
    );
    let _ = writeln!(json, "      \"tests/chaos.rs::aiacc_tail_degrades_less_under_chaos\"");
    let _ = writeln!(json, "    ]");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"determinism\": {{");
    let _ = writeln!(json, "    \"bit_identical_across_jobs_1_and_{jobs}\": {identical},");
    let _ = writeln!(json, "    \"gated_by\": [");
    let _ = writeln!(json, "      \"ci chaos-smoke (byte-for-byte TSV diff)\",");
    let _ = writeln!(json, "      \"tests/chaos.rs::chaos_scenario_is_bit_reproducible\"");
    let _ = writeln!(json, "    ]");
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");

    std::fs::write(&out, &json).expect("write report");
    eprintln!("[bench_chaos] wrote {out}");
    println!("{json}");

    assert!(identical, "parallel chaos sweep differed from serial — determinism broken");
    assert!(crashes > 0, "no crash ever hit a running gang — the chaos plan is toothless");
    assert!(
        aiacc < horovod,
        "availability headline broken: aiacc mean delta-p99 {aiacc:.3}s vs horovod {horovod:.3}s"
    );
}
