//! Minimal text/TSV table rendering for experiment output.

use std::fmt;
use std::io::Write as _;
use std::path::Path;

/// A rectangular results table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Table title (figure/table id + description).
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row width differs from the header.
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// The table as TSV text — exactly the bytes [`write_tsv`](Self::write_tsv)
    /// puts on disk (the determinism tests compare this form across worker
    /// counts).
    pub fn to_tsv(&self) -> String {
        let mut s = format!("# {}\n{}\n", self.title, self.header.join("\t"));
        for r in &self.rows {
            s.push_str(&r.join("\t"));
            s.push('\n');
        }
        s
    }

    /// Writes the table as TSV.
    ///
    /// # Errors
    /// Propagates I/O errors from file creation and writing.
    pub fn write_tsv(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_tsv().as_bytes())
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for r in &self.rows {
            for (w, cell) in widths.iter_mut().zip(r) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (w, cell) in widths.iter().zip(cells) {
                write!(f, "{cell:>w$}  ")?;
            }
            writeln!(f)
        };
        line(f, &self.header)?;
        for r in &self.rows {
            line(f, r)?;
        }
        Ok(())
    }
}

/// Formats a float with sensible precision for tables.
pub fn fnum(v: f64) -> String {
    if v >= 1000.0 {
        format!("{v:.0}")
    } else if v >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new("demo", &["a", "bbbb"]);
        t.push(vec!["1".into(), "2".into()]);
        let s = format!("{t}");
        assert!(s.contains("== demo =="));
        assert!(s.contains("bbbb"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_width_rejected() {
        let mut t = Table::new("demo", &["a"]);
        t.push(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn tsv_roundtrip() {
        let mut t = Table::new("demo", &["x", "y"]);
        t.push(vec!["1".into(), "2".into()]);
        let dir = std::env::temp_dir().join("aiacc_table_test");
        let path = dir.join("t.tsv");
        t.write_tsv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("x\ty"));
        assert!(content.contains("1\t2"));
    }

    #[test]
    fn fnum_precision_tiers() {
        assert_eq!(fnum(12345.6), "12346");
        assert_eq!(fnum(99.94), "99.9");
        assert_eq!(fnum(1.2345), "1.234");
    }
}
