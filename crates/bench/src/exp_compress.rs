//! Gradient-compression experiments: the convergence-vs-wall-clock frontier.
//!
//! Three measurements back `BENCH_compress.json`:
//!
//! 1. **Data plane** — a real MLP trained through the exact Perseus data
//!    plane once per scheme: final loss, accuracy, and the measured
//!    per-step wire bytes (with error feedback for the lossy schemes).
//! 2. **Frontier** — the many-gradient `ctr_production` model on a
//!    *low-bandwidth* (5 Gbps) cluster, swept over scheme × stream count in
//!    the timing plane. On such a link the gate is that some compressed
//!    configuration beats the best uncompressed one at *any* stream count:
//!    multi-streaming alone cannot buy back a 4–32× payload reduction.
//! 3. **Autotune** — the §VI bandit run twice on that cluster: over the
//!    classic 3-axis space, then over the 4-axis space with compression,
//!    warm-started from the 3-axis winner (via the warm-start cache), so
//!    the 4-axis best is deterministically no worse.

use aiacc_autotune::cache::TuningCache;
use aiacc_cluster::{ClusterSpec, GpuSpec, NetKind, NicSpec, NodeSpec};
use aiacc_compress::Scheme;
use aiacc_core::AiaccConfig;
use aiacc_dnn::{data::Dataset, zoo};
use aiacc_simnet::{par, SimDuration};
use aiacc_trainer::tune::tune_aiacc_in;
use aiacc_trainer::{
    DataParallelConfig, DataParallelTrainer, EngineKind, TrainingSim, TrainingSimConfig,
};

/// The schemes every compression experiment sweeps (uncompressed first).
pub const COMPRESS_SCHEMES: &[Scheme] = &[
    Scheme::None,
    Scheme::Fp16,
    Scheme::Int8,
    Scheme::TopK { ratio: 8 },
    Scheme::TopK { ratio: 64 },
];

/// Stream counts for the frontier sweep.
pub const FRONTIER_STREAMS: &[usize] = &[1, 2, 4, 8, 16];

/// A reduced stream sweep for `--quick`.
pub const FRONTIER_QUICK_STREAMS: &[usize] = &[1, 4, 16];

/// The frontier's low-bandwidth cluster: 2 × 8 V100 behind 5 Gbps TCP —
/// the regime where gradient bytes, not stream concurrency, bound the
/// iteration.
pub fn low_bandwidth_cluster(total_gpus: usize) -> ClusterSpec {
    let nic = NicSpec {
        kind: NetKind::Tcp,
        bandwidth_gbps: 5.0,
        per_flow_cap: 0.30,
        latency: SimDuration::from_micros(25),
    };
    ClusterSpec::with_total_gpus(
        total_gpus,
        NodeSpec { gpus_per_node: 8, gpu: GpuSpec::v100(), nic },
    )
}

/// One data-plane training run: real gradients, exact collectives, lossy
/// wire.
#[derive(Debug, Clone, PartialEq)]
pub struct DataPlanePoint {
    /// Compression scheme on the wire.
    pub scheme: Scheme,
    /// Final training loss after `steps`.
    pub final_loss: f64,
    /// Held-out accuracy.
    pub accuracy: f64,
    /// Measured bytes one worker put on the wire in the last step.
    pub wire_bytes_per_step: u64,
}

/// Trains the 4→16→3 MLP through the exact data plane once per scheme and
/// measures what the lossy wire costs. Fully seeded and serial per run;
/// the runs fan out over [`par::map`] workers bit-deterministically.
pub fn data_plane_points(steps: u64) -> Vec<DataPlanePoint> {
    let test = Dataset::gaussian_blobs(1000, 4, 3, 12345);
    par::map(COMPRESS_SCHEMES, |&scheme| {
        let mut cfg = DataParallelConfig::new(vec![4, 16, 3], 4, 8);
        cfg.compress = scheme;
        let mut t = DataParallelTrainer::new(cfg);
        let stats = t.train(steps);
        DataPlanePoint {
            scheme,
            final_loss: stats.losses.last().copied().unwrap_or(f64::NAN),
            accuracy: t.accuracy(&test),
            wire_bytes_per_step: t.last_step_wire_bytes(),
        }
    })
}

/// One timing-plane frontier point: scheme × streams on the low-bandwidth
/// cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierPoint {
    /// Compression scheme on the wire.
    pub scheme: Scheme,
    /// Concurrent communication streams.
    pub streams: usize,
    /// Simulated seconds per training iteration.
    pub iter_s: f64,
}

/// Sweeps scheme × stream count for `ctr_production` on the low-bandwidth
/// cluster. Each point is one warmed-up simulated iteration; points fan out
/// over [`par::map`] workers and are bit-identical for any worker count.
pub fn frontier_points(streams: &[usize]) -> Vec<FrontierPoint> {
    let cluster = low_bandwidth_cluster(16);
    let model = zoo::ctr_production();
    let grid: Vec<(Scheme, usize)> =
        COMPRESS_SCHEMES.iter().flat_map(|&sch| streams.iter().map(move |&s| (sch, s))).collect();
    par::map(&grid, |&(scheme, streams)| {
        let engine =
            EngineKind::Aiacc(AiaccConfig::default().with_streams(streams).with_compress(scheme));
        let mut sim = TrainingSim::new(
            TrainingSimConfig::new(cluster.clone(), model.clone(), engine).with_seed(1),
        );
        let _ = sim.run_iteration(); // warm-up
        FrontierPoint { scheme, streams, iter_s: sim.run_iteration().as_secs_f64() }
    })
}

/// The best (lowest `iter_s`) point among those matching `pred`.
pub fn best_point(
    points: &[FrontierPoint],
    mut pred: impl FnMut(&FrontierPoint) -> bool,
) -> &FrontierPoint {
    points
        .iter()
        .filter(|p| pred(p))
        .min_by(|a, b| a.iter_s.total_cmp(&b.iter_s))
        .expect("non-empty frontier slice")
}

/// The two auto-tuner runs of the compression experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneComparison {
    /// Winner of the classic 3-axis (streams/granularity/algo) search.
    pub uncompressed: aiacc_autotune::TuningConfig,
    /// Its per-iteration value in simulated seconds.
    pub uncompressed_s: f64,
    /// Winner of the 4-axis search with the compression knob.
    pub compressed: aiacc_autotune::TuningConfig,
    /// Its per-iteration value in simulated seconds.
    pub compressed_s: f64,
}

/// Runs the bandit over the default 3-axis space, stores the winner in a
/// warm-start cache, then searches the 4-axis compression space seeded from
/// it. The warm start is evaluated first, so `compressed_s <=
/// uncompressed_s` holds by construction; the gate is that the inequality
/// is *strict* on the low-bandwidth cluster — the tuner must find a lossy
/// scheme that beats its own uncompressed optimum.
pub fn tune_comparison(budget: usize, seed: u64) -> TuneComparison {
    use aiacc_autotune::TuningSpace;
    let cluster = low_bandwidth_cluster(16);
    let model = zoo::ctr_production();
    let cache = TuningCache::new();
    let (_, plain) =
        tune_aiacc_in(TuningSpace::default(), &model, &cluster, budget, seed, Some(&cache));
    let (_, wide) = tune_aiacc_in(
        TuningSpace::default().with_compression(),
        &model,
        &cluster,
        budget,
        seed,
        Some(&cache),
    );
    TuneComparison {
        uncompressed: plain.best,
        uncompressed_s: plain.best_value,
        compressed: wide.best,
        compressed_s: wide.best_value,
    }
}
