//! Benchmarks of the optimizer/compression substrate.

use aiacc_dnn::f16;
use aiacc_dnn::{Mlp, MlpConfig};
use aiacc_optim::{Adam, AdamSgd, Optimizer, Sgd};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const N: usize = 100_000;

fn bench_optimizers(c: &mut Criterion) {
    let grads: Vec<f32> = (0..N).map(|i| ((i % 97) as f32 - 48.0) * 1e-4).collect();
    for (name, mut opt) in [
        ("sgd_momentum", Box::new(Sgd::new(0.01).with_momentum(0.9)) as Box<dyn Optimizer>),
        ("adam", Box::new(Adam::new(1e-3))),
        ("adam_sgd_hybrid", Box::new(AdamSgd::new(1e-3, 0.01))),
    ] {
        let mut params = vec![0.0f32; N];
        c.bench_function(&format!("optim/{name}_100k_params"), |b| {
            b.iter(|| {
                opt.step(&mut params, &grads);
                black_box(params[0])
            })
        });
    }
}

fn bench_f16(c: &mut Criterion) {
    let vals: Vec<f32> = (0..N).map(|i| (i as f32 - 5e4) * 1e-3).collect();
    c.bench_function("f16/compress_100k", |b| b.iter(|| black_box(f16::compress(&vals).len())));
    let wire = f16::compress(&vals);
    c.bench_function("f16/decompress_100k", |b| b.iter(|| black_box(f16::decompress(&wire).len())));
}

fn bench_mlp(c: &mut Criterion) {
    let mlp = Mlp::new(&MlpConfig::new(vec![64, 128, 64, 10], 7));
    let x: Vec<f32> = (0..64 * 32).map(|i| (i % 13) as f32 * 0.1).collect();
    let y: Vec<usize> = (0..32).map(|i| i % 10).collect();
    c.bench_function("mlp/loss_and_grads_b32", |b| {
        b.iter(|| black_box(mlp.loss_and_grads(&x, &y).0))
    });
}

criterion_group!(benches, bench_optimizers, bench_f16, bench_mlp);
criterion_main!(benches);
