//! Benchmarks of the collective algorithms on both planes.

use aiacc_cluster::{ClusterNet, ClusterSpec};
use aiacc_collectives::dataplane::{ring_allreduce, tree_allreduce, ReduceOp};
use aiacc_collectives::{CollectiveEngine, CollectiveSpec, RingMode};
use aiacc_simnet::{Event, Simulator};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_dataplane(c: &mut Criterion) {
    let make = || -> Vec<Vec<f32>> {
        (0..8).map(|w| (0..65_536).map(|i| (w * i) as f32).collect()).collect()
    };
    c.bench_function("dataplane/ring_allreduce_8x64k", |b| {
        b.iter_batched(
            make,
            |mut bufs| {
                ring_allreduce(&mut bufs, ReduceOp::Sum);
                black_box(bufs[0][0])
            },
            criterion::BatchSize::SmallInput,
        )
    });
    c.bench_function("dataplane/tree_allreduce_8x64k", |b| {
        b.iter_batched(
            make,
            |mut bufs| {
                tree_allreduce(&mut bufs, 4, ReduceOp::Sum);
                black_box(bufs[0][0])
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_timing_plane(c: &mut Criterion) {
    c.bench_function("timing/coarse_ring_64gpu_100MB", |b| {
        b.iter(|| {
            let mut sim = Simulator::new();
            let cluster = ClusterNet::build(&ClusterSpec::tcp_v100(64), sim.net_mut());
            let mut eng = CollectiveEngine::new();
            eng.launch(
                &mut sim,
                &cluster,
                CollectiveSpec::allreduce(1e8).with_mode(RingMode::Coarse),
            );
            let mut t = 0.0;
            while let Some((time, ev)) = sim.next_event() {
                if let Event::FlowCompleted(f) = ev {
                    if eng.on_flow_completed(&mut sim, f).is_some() {
                        t = time.as_secs_f64();
                    }
                }
            }
            black_box(t)
        })
    });
    c.bench_function("timing/stepwise_ring_16gpu_16MB", |b| {
        b.iter(|| {
            let mut sim = Simulator::new();
            let cluster = ClusterNet::build(&ClusterSpec::tcp_v100(16), sim.net_mut());
            let mut eng = CollectiveEngine::new();
            eng.launch(
                &mut sim,
                &cluster,
                CollectiveSpec::allreduce(16e6).with_mode(RingMode::Stepwise),
            );
            let mut t = 0.0;
            while let Some((time, ev)) = sim.next_event() {
                if let Event::FlowCompleted(f) = ev {
                    if eng.on_flow_completed(&mut sim, f).is_some() {
                        t = time.as_secs_f64();
                    }
                }
            }
            black_box(t)
        })
    });
}

criterion_group!(benches, bench_dataplane, bench_timing_plane);
criterion_main!(benches);
