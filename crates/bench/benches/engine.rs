//! Benchmarks of the core engine machinery: sync vectors, packing, and one
//! full simulated iteration per framework.

use aiacc_cluster::ClusterSpec;
use aiacc_core::packing::{pack_units, ReduceTracker};
use aiacc_core::{GradientRegistry, SyncVector};
use aiacc_dnn::{zoo, DType, GradId};
use aiacc_trainer::{EngineKind, TrainingSim, TrainingSimConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_syncvec(c: &mut Criterion) {
    c.bench_function("core/syncvec_intersect_32x1206", |b| {
        let mut vs: Vec<SyncVector> = (0..32).map(|_| SyncVector::new(1206)).collect();
        for (w, v) in vs.iter_mut().enumerate() {
            for i in 0..1206 {
                if (i + w) % 7 != 0 {
                    v.set(GradId(i as u32));
                }
            }
        }
        b.iter(|| black_box(SyncVector::intersect_all(&vs).count_ready()))
    });
}

fn bench_packing(c: &mut Criterion) {
    let registry = GradientRegistry::from_profile(&zoo::bert_large(), DType::F32);
    let ids: Vec<GradId> = registry.iter().map(|g| g.id).collect();
    c.bench_function("core/pack_bert_32MiB_units", |b| {
        b.iter(|| {
            let (full, partial) =
                pack_units(&registry, ids.iter().copied(), 32.0 * 1024.0 * 1024.0);
            black_box((full.len(), partial.is_some()))
        })
    });
    c.bench_function("core/tracker_complete_all", |b| {
        let (full, partial) = pack_units(&registry, ids.iter().copied(), 32.0 * 1024.0 * 1024.0);
        b.iter(|| {
            let mut tracker = ReduceTracker::new(&registry);
            for u in &full {
                tracker.complete_unit(u);
            }
            if let Some(p) = &partial {
                tracker.complete_unit(p);
            }
            black_box(tracker.all_done())
        })
    });
}

fn bench_iteration(c: &mut Criterion) {
    for (name, engine) in [
        ("aiacc", EngineKind::aiacc_default()),
        ("horovod", EngineKind::Horovod(Default::default())),
        ("ddp", EngineKind::PyTorchDdp(Default::default())),
    ] {
        c.bench_function(&format!("sim/iteration_resnet50_16gpu_{name}"), |b| {
            b.iter(|| {
                let mut sim = TrainingSim::new(TrainingSimConfig::new(
                    ClusterSpec::tcp_v100(16),
                    zoo::resnet50(),
                    engine,
                ));
                black_box(sim.run_iteration().as_secs_f64())
            })
        });
    }
}

criterion_group!(benches, bench_syncvec, bench_packing, bench_iteration);
criterion_main!(benches);
