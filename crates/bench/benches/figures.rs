//! One criterion entry per paper table/figure, at reduced scale, so
//! `cargo bench` regenerates a quick version of every experiment and tracks
//! the cost of producing it.

use aiacc_bench::*;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);

    group.bench_function("table1", |b| b.iter(|| black_box(table1_models().rows.len())));
    group.bench_function("bandwidth", |b| b.iter(|| black_box(bandwidth_utilization().rows.len())));
    group.bench_function("fig2_quick", |b| {
        b.iter(|| black_box(fig2_motivation(QUICK_GPU_SWEEP).rows.len()))
    });
    group.bench_function("fig9_quick", |b| b.iter(|| black_box(fig9_cv(&[8, 32]).rows.len())));
    group.bench_function("fig10_quick", |b| b.iter(|| black_box(fig10_nlp(&[16]).rows.len())));
    group.bench_function("fig11_quick", |b| {
        b.iter(|| black_box(fig11_tensorflow(&[16]).rows.len()))
    });
    group.bench_function("fig12_quick", |b| b.iter(|| black_box(fig12_mxnet(&[16]).rows.len())));
    group.bench_function("fig13_quick", |b| {
        b.iter(|| black_box(fig13_hybrid(&[16, 32]).rows.len()))
    });
    group.bench_function("fig14", |b| b.iter(|| black_box(fig14_batch_sweep().rows.len())));
    group.bench_function("fig15", |b| b.iter(|| black_box(fig15_rdma().rows.len())));
    group.bench_function("ctr_quick", |b| {
        b.iter(|| black_box(ctr_production_speedup(16).rows.len()))
    });
    group.bench_function("dawnbench", |b| b.iter(|| black_box(dawnbench_table().rows.len())));
    group.finish();
}

criterion_group!(benches, figures);
criterion_main!(benches);
