//! Micro-benchmarks of the fluid network solver (the substrate every
//! experiment runs on).

use aiacc_simnet::{FlowNet, FlowSpec, Simulator};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// A network of `flows` two-resource capped flows over 64 shared links:
/// the general progressive-filling path.
fn multi_resource_net(flows: usize) -> FlowNet {
    let mut net = FlowNet::new();
    let res: Vec<_> = (0..64).map(|i| net.add_resource(format!("r{i}"), 1e9)).collect();
    for i in 0..flows {
        net.start_flow(FlowSpec::new(vec![res[i % 64], res[(i + 1) % 64]], 1e8).with_rate_cap(3e8));
    }
    net
}

/// A network where every flow loads exactly one resource: the closed-form
/// single-resource fast path.
fn single_resource_net(flows: usize) -> FlowNet {
    let mut net = FlowNet::new();
    let res: Vec<_> = (0..64).map(|i| net.add_resource(format!("r{i}"), 1e9)).collect();
    for i in 0..flows {
        net.start_flow(FlowSpec::new(vec![res[i % 64]], 1e8).with_rate_cap(3e8));
    }
    net
}

fn bench_rate_recompute(c: &mut Criterion) {
    for flows in [64usize, 256, 1024] {
        c.bench_function(&format!("flownet/recompute_{flows}_flows"), |b| {
            b.iter_batched(
                || multi_resource_net(flows),
                |mut net| black_box(net.next_change()),
                criterion::BatchSize::SmallInput,
            )
        });
        c.bench_function(&format!("flownet/recompute_{flows}_flows_single_resource"), |b| {
            b.iter_batched(
                || single_resource_net(flows),
                |mut net| black_box(net.next_change()),
                criterion::BatchSize::SmallInput,
            )
        });
    }
}

fn bench_drain(c: &mut Criterion) {
    c.bench_function("flownet/drain_100_flows", |b| {
        b.iter_batched(
            || {
                let mut sim = Simulator::new();
                let r = sim.net_mut().add_resource("link", 1e9);
                for i in 1..=100 {
                    sim.start_flow(FlowSpec::new(vec![r], 1e6 * i as f64));
                }
                sim
            },
            |mut sim| {
                let mut n = 0;
                while sim.next_event().is_some() {
                    n += 1;
                }
                black_box(n)
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_rate_recompute, bench_drain);
criterion_main!(benches);
