//! Benchmarks of the auto-tuning machinery (§VI).

use aiacc_autotune::cache::{graph_edit_distance, GraphSig};
use aiacc_autotune::{MetaSolver, Tuner, TuningConfig, TuningSpace};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn synthetic_surface(cfg: &TuningConfig) -> f64 {
    let s = (cfg.streams as f64).log2();
    let g = (cfg.granularity / (1024.0 * 1024.0)).log2();
    (s - 4.0).powi(2) * 0.1 + (g - 5.0).powi(2) * 0.05
}

fn bench_tuner(c: &mut Criterion) {
    c.bench_function("autotune/ensemble_40_evals_synthetic", |b| {
        b.iter(|| {
            let mut tuner = Tuner::new(TuningSpace::default(), 7);
            let report = tuner.run(&mut synthetic_surface, 40);
            black_box(report.best.streams)
        })
    });
}

fn bench_meta_solver(c: &mut Criterion) {
    c.bench_function("autotune/mab_select_after_1000_events", |b| {
        let mut m = MetaSolver::default();
        for i in 0..1000 {
            m.record(i % 4, i % 13 == 0);
        }
        b.iter(|| black_box(m.select(4)))
    });
}

fn bench_ged(c: &mut Criterion) {
    let a = GraphSig((0..600).map(|i| format!("k{}", i % 6)).collect());
    let b2 = GraphSig((0..580).map(|i| format!("k{}", (i + 1) % 6)).collect());
    c.bench_function("autotune/graph_edit_distance_600", |b| {
        b.iter(|| black_box(graph_edit_distance(&a, &b2)))
    });
}

criterion_group!(benches, bench_tuner, bench_meta_solver, bench_ged);
criterion_main!(benches);
